"""Model counting scenarios on tuple-independent databases.

Demonstrates the probability <-> counting correspondences of Section 1:

* generalized model counting (tuples in {certain, optional, absent})
  as GFOMC with probabilities {1, 1/2, 0};
* model counting for forall-CNF as FOMC with probabilities {1/2, 1};
* the duality story: why GFOMC is robust under duals and model counting
  is not (Section 1.2-1.3).

Run:  python examples/model_counting.py
"""

from fractions import Fraction

from repro.core.catalog import h0, rst_query
from repro.core.duality import DualUCQ, complement_tid
from repro.counting.problems import (
    fomc,
    generalized_model_count,
    gfomc,
    model_count,
)
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.wmc import probability

F = Fraction


def scenario_access_control() -> None:
    """A toy provenance scenario: users u, resources v, S1 = "may
    read", S2 = "may write"; Q holds when every (user, resource) pair is
    covered by an ownership or permission path."""
    q = rst_query()  # (R v S1)(S1 v S2)(S2 v T)
    U, V = ["alice", "bob"], ["doc1", "doc2"]
    shape = TID(U, V)
    database = [r_tuple("alice"), r_tuple("bob"),
                t_tuple("doc1"), t_tuple("doc2")]
    for u in U:
        for v in V:
            database += [s_tuple("S1", u, v), s_tuple("S2", u, v)]
    certain = [r_tuple("alice"), t_tuple("doc1")]

    total = generalized_model_count(q, shape, database, certain)
    free = len(database) - len(certain)
    print("Access-control scenario:")
    print(f"   database tuples: {len(database)}, certain: "
          f"{len(certain)}, optional: {free}")
    print(f"   subsets containing the certain tuples and satisfying Q: "
          f"{total} of {2 ** free}")


def scenario_h0() -> None:
    """H0 model counting — the query Amarilli & Kimelfeld proved hard
    even without certain tuples."""
    q = h0()
    U, V = ["u1", "u2"], ["v1", "v2"]
    shape = TID(U, V)
    database = [r_tuple(u) for u in U] + [t_tuple(v) for v in V] + [
        s_tuple("S", u, v) for u in U for v in V]
    count = model_count(q, shape, database)
    print("\nH0 = forall x,y (R(x) v S(x,y) v T(y)):")
    print(f"   models among subsets of a {len(database)}-tuple "
          f"database: {count} of {2 ** len(database)}")


def scenario_duality() -> None:
    """GFOMC is closed under duals; model counting is not."""
    q = rst_query()
    U, V = ["u1"], ["v1", "v2"]
    probs = {r_tuple("u1"): F(1, 2), t_tuple("v1"): F(0),
             t_tuple("v2"): F(1, 2)}
    for v in V:
        probs[s_tuple("S1", "u1", v)] = F(1, 2)
        probs[s_tuple("S2", "u1", v)] = F(1)
    tid = TID(U, V, probs)

    pr_forall = gfomc(q, tid)
    dual = DualUCQ(q)
    pr_ucq = dual.probability(tid)
    comp = complement_tid(tid)
    print("\nDuality (Section 1.3):")
    print(f"   Pr(forall-CNF Q) on Delta          = {pr_forall}")
    print(f"   Pr(dual UCQ) on Delta              = {pr_ucq}")
    print(f"   1 - Pr(Q) on complemented Delta    = "
          f"{1 - probability(q, comp)}")
    print(f"   complement probability values: "
          f"{sorted(comp.probability_values())} — still a GFOMC instance")


def scenario_fomc() -> None:
    q = rst_query()
    U, V = ["u1", "u2"], ["v1"]
    probs = {r_tuple(u): F(1, 2) for u in U}
    probs[t_tuple("v1")] = F(1)
    for u in U:
        probs[s_tuple("S1", u, "v1")] = F(1, 2)
        probs[s_tuple("S2", u, "v1")] = F(1, 2)
    tid = TID(U, V, probs)
    pr = fomc(q, tid)
    n_half = len(tid.uncertain_tuples())
    print("\nFOMC (probabilities in {1/2, 1}):")
    print(f"   Pr(Q) = {pr}; models = Pr * 2^{n_half} = "
          f"{pr * 2 ** n_half}")


def main() -> None:
    scenario_access_control()
    scenario_h0()
    scenario_duality()
    scenario_fomc()


if __name__ == "__main__":
    main()
