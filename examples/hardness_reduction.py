"""The paper's headline construction, end to end (Theorem 3.1 / 2.9(1)):

count the satisfying assignments of a positive 2CNF using ONLY an oracle
for Pr(Q) over databases whose probabilities lie in {1/2, 1}.

The script builds the block databases of Section 3.3, calls the oracle
once per parameter multiset, solves the Eq. (10) linear system exactly,
and prints every recovered signature count next to the brute-force
truth.

Run:  python examples/hardness_reduction.py
"""

from repro.core.catalog import path_query
from repro.counting.p2cnf import P2CNF
from repro.reduction.type1 import Type1Reduction


def main() -> None:
    query = path_query(2)
    print("Final Type-I query:", query)

    # Phi = (X0 v X1)(X1 v X2)(X2 v X3)(X3 v X0): a 4-cycle.
    phi = P2CNF.cycle(4)
    print(f"\n#P2CNF instance: n={phi.n} variables, m={phi.m} clauses")
    print("  edges:", phi.edges)

    reduction = Type1Reduction(query)
    print("\nBlock matrix A(1) (z_ab at probability 1/2):")
    for row in reduction.base_matrix.rows:
        print("   ", [str(e) for e in row])

    result = reduction.run(phi, oracle="product")
    print(f"\nOracle calls: {result.oracle_calls} "
          f"(one per parameter multiset, system size "
          f"{result.system_size})")
    print("Parameter multisets used:", result.parameters_used)

    print("\nRecovered signature counts #k' (k00, k01+k10, k11):")
    truth = phi.signature_counts()
    for signature in sorted(result.signature_counts):
        got = result.signature_counts[signature]
        expected = truth.get(signature, 0)
        marker = "ok" if got == expected else "MISMATCH"
        print(f"   #{signature} = {got:4d}   brute force: "
              f"{expected:4d}   [{marker}]")

    print(f"\n#Phi from the reduction:  {result.model_count}")
    print(f"#Phi by brute force:      {phi.count_satisfying()}")
    assert result.model_count == phi.count_satisfying()

    print("\nEvery database handed to the oracle was a legal FOMC "
          "instance\n(probabilities in {1/2, 1}) — hardness holds for "
          "model counting itself.")


if __name__ == "__main__":
    main()
