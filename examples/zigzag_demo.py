"""The zig-zag rewriting zg(Q) of Appendix A (Figure 2), live.

Takes a Type I-II query, builds zg(Q) (a Type I-I query of doubled
length), maps a random database Delta for zg(Q) to the database
zg(Delta) for Q, and verifies Pr_Delta(zg(Q)) = Pr_{zg(Delta)}(Q)
exactly — the content of Lemma A.1 / Lemma 2.6.

Run:  python examples/zigzag_demo.py
"""

import random
from fractions import Fraction

from repro.core.catalog import unsafe_type1_type2
from repro.core.safety import query_length, query_type
from repro.reduction.zigzag import (
    zigzag_database,
    zigzag_query,
    zigzag_vocabulary,
)
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.wmc import probability

F = Fraction


def main() -> None:
    q = unsafe_type1_type2()
    print("Q (type I-II):", q)
    print("  length:", query_length(q))

    vocab = zigzag_vocabulary(q)
    print(f"\nBranch width n = {vocab['n']}")
    print("Vocabulary copies:")
    for symbol, copies in vocab["binary_copies"].items():
        print(f"   {symbol} -> {', '.join(copies)}")

    zq = zigzag_query(q)
    print(f"\nzg(Q) (type {'-'.join(query_type(zq))}, "
          f"length {query_length(zq)}):")
    for clause in zq.clauses:
        print("   ", clause)

    # A random GFOMC database Delta over zg(R).
    rng = random.Random(0)
    U, V = ["a1", "a2"], ["b1"]
    values = [F(1, 2), F(1, 2), F(1)]  # GFOMC values; mostly uncertain
    probs = {}
    for u in U:
        probs[r_tuple(u)] = rng.choice(values)
    for v in V:
        probs[t_tuple(v)] = rng.choice(values)
    for symbol in sorted(zq.binary_symbols):
        for u in U:
            for v in V:
                probs[s_tuple(symbol, u, v)] = rng.choice(values)
    delta = TID(U, V, probs)

    mapped = zigzag_database(q, delta)
    print(f"\nDelta domain: {len(delta.left_domain)} x "
          f"{len(delta.right_domain)}")
    print(f"zg(Delta) domain: {len(mapped.left_domain)} x "
          f"{len(mapped.right_domain)} "
          "(dead-end constants f^(i), hubs e_uv)")

    lhs = probability(zq, delta)
    rhs = probability(q, mapped)
    print(f"\nPr_Delta(zg(Q))    = {lhs}")
    print(f"Pr_zg(Delta)(Q)    = {rhs}")
    assert lhs == rhs
    print("Lemma A.1 verified exactly.")


if __name__ == "__main__":
    main()
