"""Quickstart: build a bipartite forall-CNF query, classify it under the
dichotomy, and evaluate it over a tuple-independent database.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    Clause,
    Query,
    TID,
    generalized_model_count,
    is_final,
    is_safe,
    lifted_probability,
    probability,
    query_length,
    query_type,
)
from repro.tid.database import r_tuple, s_tuple, t_tuple

F = Fraction


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A query:  Q = forall x,y (R(x) v S1(x,y)) & (S1 v S2) & (S2 v T(y))
    #    — the length-2 "path" query, the simplest interesting unsafe one.
    # ------------------------------------------------------------------
    q = Query([
        Clause.left_type1("S1"),
        Clause.middle("S1", "S2"),
        Clause.right_type1("S2"),
    ])
    print("Query:", q)
    print("  safe?          ", is_safe(q))
    print("  type:          ", query_type(q))
    print("  length:        ", query_length(q))
    print("  final?         ", is_final(q))

    # ------------------------------------------------------------------
    # 2. A tuple-independent database with probabilities in {0, 1/2, 1}
    #    (a GFOMC instance).
    # ------------------------------------------------------------------
    U, V = ["u1", "u2"], ["v1", "v2"]
    probs = {r_tuple("u1"): F(1, 2), r_tuple("u2"): F(1)}
    probs.update({t_tuple(v): F(1, 2) for v in V})
    for u in U:
        for v in V:
            probs[s_tuple("S1", u, v)] = F(1, 2)
            probs[s_tuple("S2", u, v)] = F(1) if u == "u2" else F(0)
    tid = TID(U, V, probs)
    print("\nDatabase:", tid)
    print("  Pr(Q) =", probability(q, tid))

    # ------------------------------------------------------------------
    # 3. Generalized model counting: count subsets of a database that
    #    contain the certain tuples and satisfy Q.
    # ------------------------------------------------------------------
    database = [r_tuple("u1"), t_tuple("v1"),
                s_tuple("S1", "u1", "v1"), s_tuple("S2", "u1", "v1")]
    certain = [s_tuple("S1", "u1", "v1")]
    shape = TID(["u1"], ["v1"])
    count = generalized_model_count(q, shape, database, certain)
    print("\nGeneralized model count over a 4-tuple database "
          f"(1 certain): {count}")

    # ------------------------------------------------------------------
    # 4. The easy side of the dichotomy: a safe query evaluated by the
    #    PTIME lifted plan, cross-checked against the exact engine.
    # ------------------------------------------------------------------
    safe = Query([Clause.left_type1("S1"), Clause.middle("S1", "S2")])
    print("\nSafe query:", safe, "-> safe?", is_safe(safe))
    lifted = lifted_probability(safe, tid)
    exact = probability(safe, tid)
    print("  lifted evaluator:", lifted)
    print("  exact WMC:       ", exact)
    assert lifted == exact


if __name__ == "__main__":
    main()
