"""A census of the query catalog under the dichotomy (Theorem 2.2).

For every catalog query: classify safe/unsafe, report type and length,
reduce unsafe queries to final form, and — on the safe side — time the
PTIME lifted evaluator against the exponential exact engine as the
domain grows, showing the tractability gap the dichotomy predicts.

Run:  python examples/dichotomy_census.py
"""

import random
import time
from fractions import Fraction

from repro.core import catalog
from repro.core.final import find_final, is_final
from repro.core.safety import is_unsafe, query_length, query_type
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.lifted import lifted_probability
from repro.tid.wmc import probability

F = Fraction


def random_tid(query, n, seed=0):
    rng = random.Random(seed)
    U = [f"u{i}" for i in range(n)]
    V = [f"v{j}" for j in range(n)]
    values = [F(0), F(1, 2), F(1)]
    probs = {}
    for u in U:
        probs[r_tuple(u)] = rng.choice(values)
    for v in V:
        probs[t_tuple(v)] = rng.choice(values)
    for s in sorted(query.binary_symbols):
        for u in U:
            for v in V:
                probs[s_tuple(s, u, v)] = rng.choice(values)
    return TID(U, V, probs)


def census() -> None:
    print(f"{'query':24s} {'verdict':8s} {'type':8s} {'len':>4s} "
          f"{'final?':7s} {'final form (after Lemma 2.7 rewrites)'}")
    print("-" * 100)
    for name, ctor, _ in catalog.CENSUS:
        q = ctor()
        verdict = "unsafe" if is_unsafe(q) else "safe"
        qtype = query_type(q)
        type_str = "-".join(qtype) if qtype else "H0-like"
        length = query_length(q)
        final_str = ""
        final_flag = ""
        if is_unsafe(q) and not q.full_clauses:
            final_flag = "yes" if is_final(q) else "no"
            if not is_final(q):
                final, trace = find_final(q)
                final_str = f"{len(trace)} rewrites -> " \
                    f"type {'-'.join(query_type(final) or ('?',))}"
        print(f"{name:24s} {verdict:8s} {type_str:8s} "
              f"{str(length if length is not None else '-'):>4s} "
              f"{final_flag:7s} {final_str}")


def tractability_gap() -> None:
    print("\nPTIME vs exponential on the safe query "
          "(R v S1 v S2) & (S1 v S2 v S3):")
    q = catalog.safe_left_only()
    print(f"{'domain n':>9s} {'lifted (s)':>12s} {'exact WMC (s)':>14s}")
    for n in (2, 3, 4, 5, 6, 8, 10):
        tid = random_tid(q, n, seed=n)
        t0 = time.perf_counter()
        lifted = lifted_probability(q, tid)
        t_lifted = time.perf_counter() - t0
        if n <= 5:
            t0 = time.perf_counter()
            exact = probability(q, tid)
            t_exact = time.perf_counter() - t0
            assert lifted == exact
            print(f"{n:9d} {t_lifted:12.4f} {t_exact:14.4f}")
        else:
            print(f"{n:9d} {t_lifted:12.4f} {'(skipped)':>14s}")


def main() -> None:
    census()
    tractability_gap()


if __name__ == "__main__":
    main()
