"""Safe plans: the PTIME side of the dichotomy, made visible.

For every safe query the library compiles an explicit plan tree showing
*why* the query is tractable: which symbol-disjoint components
multiply, where the unary atom is Shannon-expanded, and where Type-II
disjunctions run inclusion-exclusion.  Unsafe queries have no safe
plan — that is Theorem 2.2.

Run:  python examples/safe_plans.py
"""

from fractions import Fraction

from repro.core.catalog import rst_query, safe_disconnected, safe_left_only
from repro.core.clauses import Clause
from repro.core.queries import query
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.lifted import UnsafeQueryError
from repro.tid.plans import safe_plan
from repro.tid.wmc import probability

F = Fraction


def show(name, q) -> None:
    print(f"--- {name}: {q}")
    try:
        plan = safe_plan(q)
    except UnsafeQueryError as exc:
        print(f"    no safe plan: {exc}\n")
        return
    print(plan.describe())
    U, V = ["u1", "u2"], ["v1", "v2"]
    probs = {r_tuple(u): F(1, 2) for u in U}
    probs.update({t_tuple(v): F(1, 2) for v in V})
    for s in sorted(q.binary_symbols):
        for u in U:
            for v in V:
                probs[s_tuple(s, u, v)] = F(1, 2)
    tid = TID(U, V, probs)
    value = plan.evaluate(tid)
    assert value == probability(q, tid)
    print(f"    Pr(Q) on the uniform 2x2 database = {value}\n")


def main() -> None:
    show("left-only", safe_left_only())
    show("disconnected (components multiply)", safe_disconnected())
    show("Type-II disjunction (inclusion-exclusion)",
         query(Clause.left_type2(["S1"], ["S2"]),
               Clause.middle("S1", "S3")))
    show("UNSAFE: the RST path query", rst_query())


if __name__ == "__main__":
    main()
