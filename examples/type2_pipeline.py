"""The Type-II machinery of Appendix C, assembled:

1. decompose a Type II-II query into its G/H CNF families and build the
   Moebius lattices (Section C.2);
2. verify Theorem C.19 — the Moebius block-product expansion of Pr(Q) —
   against direct exact evaluation on a zig-zag block database;
3. run the counting half of the reduction (Theorem C.4): recover all
   coloring counts of a CCP instance, hence #PP2CNF, from oracle values
   of the Corollary C.20 form.

Run:  python examples/type2_pipeline.py
"""

from fractions import Fraction

from repro.core.catalog import example_c15, example_c9
from repro.counting.ccp import TOP_COLOR
from repro.counting.pp2cnf import PP2CNF
from repro.reduction.type2 import (
    Type2Reduction,
    conditions_68_70,
    exponential_y_provider,
)
from repro.reduction.type2_blocks import type2_block
from repro.reduction.type2_lattice import TypeIIStructure
from repro.reduction.type2_mobius import (
    mobius_block_probability,
    union_of_blocks,
)
from repro.tid.wmc import probability

F = Fraction


def lattice_section() -> None:
    for name, q in (("Example C.9", example_c9()),
                    ("Example C.15 (forbidden)", example_c15())):
        st = TypeIIStructure(q)
        print(f"{name}: {q}")
        print(f"   G formulas: {st.G}")
        print(f"   H formulas: {st.H}")
        print(f"   |L0(G)| = {st.m_bar}, |L0(H)| = {st.n_bar}")
        print(f"   left Moebius: "
              f"{ {tuple(sorted(k)): v for k, v in st.left_lattice.mobius.items()} }")
        print()


def mobius_section() -> None:
    q = example_c9()
    st = TypeIIStructure(q)
    blocks = {("u", "v"): type2_block(q, p=2)}
    lhs = probability(q, union_of_blocks(blocks))
    rhs = mobius_block_probability(st, blocks)
    print("Theorem C.19 on the p=2 zig-zag block:")
    print(f"   direct Pr(Q)          = {lhs}")
    print(f"   Moebius block product = {rhs}")
    assert lhs == rhs
    print("   exact match.\n")


def reduction_section() -> None:
    left, right = ["a1", "a2"], ["b1", "b2"]
    mu_l = {"a1": -1, "a2": 1}
    mu_r = {"b1": -1, "b2": 2}
    pairs = ([(a, b) for a in left for b in right]
             + [(a, TOP_COLOR) for a in left]
             + [(TOP_COLOR, b) for b in right])
    coeffs = {pair: (F(i + 1), F(1, i + 2))
              for i, pair in enumerate(pairs)}
    l1, l2 = F(1, 2), F(1, 3)
    assert conditions_68_70(coeffs, l1, l2)
    reduction = Type2Reduction(
        left, right, mu_l, mu_r, exponential_y_provider(coeffs, l1, l2))

    phi = PP2CNF(1, 1, ((0, 0),))
    print("Counting half of Theorem C.4 on Phi = (X0 v Y0):")
    counts = reduction.run(phi)
    print(f"   recovered {len(counts)} coloring signatures")
    got = reduction.count_pp2cnf(phi, "a1", "a2", "b1", "b2")
    print(f"   #PP2CNF from the reduction: {got}")
    print(f"   #PP2CNF by brute force:     {phi.count_satisfying()}")
    assert got == phi.count_satisfying()


def main() -> None:
    lattice_section()
    mobius_section()
    reduction_section()


if __name__ == "__main__":
    main()
