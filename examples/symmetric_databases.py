"""Symmetric databases: the tractable restriction of Section 1.1.

The paper's negative result says restricting probability VALUES to
{0, 1/2, 1} keeps unsafe queries #P-hard.  The introduction contrasts
this with a known positive result: restricting the DATABASE to be
symmetric (every relation a single probability) makes evaluation
polynomial-time — Van den Broeck et al.'s symmetric WFOMC.  This script
shows both phenomena side by side on H0.

Run:  python examples/symmetric_databases.py
"""

import time
from fractions import Fraction

from repro.core.catalog import h0, rst_query
from repro.tid.symmetric import SymmetricTID, symmetric_probability
from repro.tid.wmc import probability

F = Fraction


def main() -> None:
    q = h0()
    print("Query: H0 =", q, "(#P-hard on general GFOMC databases)")

    print(f"\n{'domain n':>9s} {'symmetric (s)':>14s} "
          f"{'general WMC (s)':>16s} {'Pr(H0)':>24s}")
    for n in (2, 3, 4, 6, 10, 20, 40):
        s = SymmetricTID(n, n, F(1, 2), F(1, 2), {"S": F(1, 2)})
        t0 = time.perf_counter()
        value = symmetric_probability(q, s)
        t_sym = time.perf_counter() - t0
        if n <= 4:
            t0 = time.perf_counter()
            exact = probability(q, s.materialize())
            t_wmc = time.perf_counter() - t0
            assert exact == value
            wmc_str = f"{t_wmc:16.4f}"
        else:
            wmc_str = f"{'(skipped)':>16s}"
        approx = float(value)
        print(f"{n:9d} {t_sym:14.4f} {wmc_str} {approx:24.6e}")

    print("\nThe same contrast for the RST path query:")
    q = rst_query()
    s = SymmetricTID(12, 12, F(1, 2), F(1, 2),
                     {"S1": F(1, 2), "S2": F(1, 2)})
    t0 = time.perf_counter()
    value = symmetric_probability(q, s)
    print(f"   n = 12: Pr = {float(value):.6e} "
          f"in {time.perf_counter() - t0:.4f}s (symmetric fast path)")

    print("\nTakeaway: restricting the database helps; restricting the "
          "probability\nvalues to {0, 1/2, 1} does not (Theorem 2.2).")


if __name__ == "__main__":
    main()
