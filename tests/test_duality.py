"""UCQ / forall-CNF duality (Section 1.3)."""

import random
from fractions import Fraction
from itertools import product

from repro.core import catalog
from repro.core.duality import (
    DualUCQ,
    complement_tid,
    dual_model_counting_values,
)
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.lineage import lineage
from repro.tid.wmc import probability

F = Fraction


def random_tid(query, U, V, seed, values):
    rng = random.Random(seed)
    probs = {}
    for u in U:
        probs[r_tuple(u)] = rng.choice(values)
    for v in V:
        probs[t_tuple(v)] = rng.choice(values)
    for s in sorted(query.binary_symbols):
        for u in U:
            for v in V:
                probs[s_tuple(s, u, v)] = rng.choice(values)
    return TID(U, V, probs, default=F(1))


class TestComplement:
    def test_complement_probabilities(self):
        tid = TID(["u"], ["v"], {r_tuple("u"): F(1, 3)})
        comp = complement_tid(tid)
        assert comp.probability(r_tuple("u")) == F(2, 3)
        assert comp.default == 0

    def test_involution(self):
        tid = TID(["u"], ["v"], {r_tuple("u"): F(1, 3),
                                 t_tuple("v"): F(1)})
        assert complement_tid(complement_tid(tid)) == tid

    def test_gfomc_values_closed(self):
        values = {F(0), F(1, 2), F(1)}
        assert dual_model_counting_values(values) == values

    def test_model_counting_values_not_closed(self):
        """Section 1.2: {0, 1/2} complements to {1/2, 1} — model
        counting is not closed under duals."""
        values = {F(0), F(1, 2)}
        assert dual_model_counting_values(values) == {F(1), F(1, 2)}


class TestDualUCQSemantics:
    def brute_ucq_probability(self, query, tid):
        """Direct semantics: the UCQ holds in world W iff some clause
        of the forall-CNF is fully violated... no — iff the dual
        existential sentence holds: some clause of Q, under some
        grounding, has ALL its atoms in W."""
        formula = lineage(query, tid)
        # The UCQ dual holds in W  iff  the forall-CNF fails in the
        # complement world (all tuples swapped).  Enumerate worlds of
        # the complemented TID directly.
        comp = complement_tid(tid)
        variables = sorted(
            set(comp.probs) |
            {v for v in formula.variables()}, key=repr)
        total = F(0)
        comp_formula = lineage(query, comp)
        comp_vars = sorted(comp_formula.variables(), key=repr)
        for bits in product((0, 1), repeat=len(comp_vars)):
            weight = F(1)
            world = set()
            for var, bit in zip(comp_vars, bits):
                p = comp.probability(var)
                weight *= p if bit else 1 - p
                if bit:
                    world.add(var)
            if weight and not comp_formula.evaluate(world):
                total += weight
        return total

    def test_rst_duality(self):
        q = catalog.rst_query()
        for seed in range(4):
            tid = random_tid(q, ["u1"], ["v1"],
                             seed, [F(0), F(1, 3), F(1, 2), F(1)])
            dual = DualUCQ(q)
            assert dual.probability(tid) == self.brute_ucq_probability(
                q, tid)

    def test_h0_duality(self):
        q = catalog.h0()
        tid = random_tid(q, ["u1", "u2"], ["v1"], 7,
                         [F(1, 4), F(1, 2)])
        dual = DualUCQ(q)
        assert dual.probability(tid) == self.brute_ucq_probability(q, tid)

    def test_complement_identity(self):
        """Pr(UCQ) + Pr'(forall-CNF) = 1."""
        q = catalog.path_query(2)
        tid = random_tid(q, ["u1"], ["v1", "v2"], 3,
                         [F(0), F(1, 2), F(1)])
        dual = DualUCQ(q)
        assert dual.probability(tid) + \
            probability(q, complement_tid(tid)) == 1

    def test_repr(self):
        assert "UCQ[" in repr(DualUCQ(catalog.rst_query()))
