"""Example C.14: the shattering reduction, executed.

Example C.9's query Q is final but not forbidden; Example C.14 shows
how to *shatter* it: the Type-II disjunct forall-y S2(x, y) is traded
for a unary symbol R by adding one fresh right constant b1 where S2 is
the only uncertain symbol.  The constructed database satisfies
Pr_Delta(Q) = Pr_Delta'(Q'), giving GFOMC_bi(Q') <= GFOMC_bi(Q) with Q'
of Type I-II.  We execute the construction and verify the probability
equality exactly.
"""

import random
from fractions import Fraction

import pytest

from repro.core.catalog import example_c9
from repro.core.clauses import Clause
from repro.core.queries import Query
from repro.core.safety import is_unsafe, query_type
from repro.tid.database import TID, r_tuple, s_tuple
from repro.tid.wmc import probability

F = Fraction
GFOMC_VALUES = [F(0), F(1, 2), F(1)]


def q_prime() -> Query:
    """Q' = forall x,y (R(x) v S1) & (S1 v S3) & forall y (Ax.S3 v Ax.S4)."""
    return Query([
        Clause.left_type1("S1"),
        Clause.middle("S1", "S3"),
        Clause.right_type2(["S3"], ["S4"]),
    ])


def shatter_database(delta_prime: TID) -> TID:
    """The Example C.14 mapping: Delta for Q from Delta' for Q'."""
    b1 = "b1_fresh"
    left = list(delta_prime.left_domain)
    right = list(delta_prime.right_domain) + [b1]
    probs = {}
    for a in left:
        # S2(a, b1) carries the R(a) probability; S2 certain elsewhere.
        probs[s_tuple("S2", a, b1)] = delta_prime.probability(r_tuple(a))
        for b in delta_prime.right_domain:
            probs[s_tuple("S2", a, b)] = F(1)
        # S1, S3, S4 are certain at b1 and carried over elsewhere.
        for symbol in ("S1", "S3", "S4"):
            probs[s_tuple(symbol, a, b1)] = F(1)
            for b in delta_prime.right_domain:
                probs[s_tuple(symbol, a, b)] = delta_prime.probability(
                    s_tuple(symbol, a, b))
    return TID(left, right, probs, default=F(1))


def random_delta_prime(seed, n_left=2, n_right=2):
    rng = random.Random(seed)
    U = [f"a{i}" for i in range(n_left)]
    V = [f"b{j}" for j in range(n_right)]
    probs = {}
    for u in U:
        probs[r_tuple(u)] = rng.choice(GFOMC_VALUES)
    for symbol in ("S1", "S3", "S4"):
        for u in U:
            for v in V:
                probs[s_tuple(symbol, u, v)] = rng.choice(GFOMC_VALUES)
    return TID(U, V, probs, default=F(1))


class TestExampleC14:
    def test_q_prime_classification(self):
        qp = q_prime()
        assert is_unsafe(qp)
        assert query_type(qp) == ("I", "II")

    @pytest.mark.parametrize("seed", range(6))
    def test_probability_equality(self, seed):
        delta_prime = random_delta_prime(seed)
        delta = shatter_database(delta_prime)
        lhs = probability(example_c9(), delta)
        rhs = probability(q_prime(), delta_prime)
        assert lhs == rhs

    def test_asymmetric_domain(self):
        delta_prime = random_delta_prime(99, n_left=1, n_right=3)
        delta = shatter_database(delta_prime)
        assert probability(example_c9(), delta) == \
            probability(q_prime(), delta_prime)

    def test_probability_values_preserved(self):
        """The mapping keeps probabilities inside {0, 1/2, 1}: it is a
        GFOMC-to-GFOMC reduction."""
        delta_prime = random_delta_prime(3)
        delta = shatter_database(delta_prime)
        assert delta.probability_values() <= {F(0), F(1, 2), F(1)}
