"""Lineage construction (footnote 4) — repro.tid.lineage."""

from fractions import Fraction

from repro.booleans.cnf import CNF
from repro.core.catalog import h0, rst_query
from repro.core.clauses import Clause
from repro.core.queries import Query, query
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.lineage import lineage

F = Fraction
HALF = F(1, 2)


def uniform_tid(symbols, U, V, p=HALF):
    probs = {}
    for u in U:
        probs[r_tuple(u)] = p
    for v in V:
        probs[t_tuple(v)] = p
    for s in symbols:
        for u in U:
            for v in V:
                probs[s_tuple(s, u, v)] = p
    return TID(U, V, probs)


class TestMiddleClauses:
    def test_single_pair(self):
        q = query(Clause.middle("S1", "S2"))
        tid = uniform_tid(["S1", "S2"], ["u"], ["v"])
        assert lineage(q, tid) == CNF([
            [s_tuple("S1", "u", "v"), s_tuple("S2", "u", "v")]])

    def test_grid(self):
        q = query(Clause.middle("S1"))
        tid = uniform_tid(["S1"], ["u1", "u2"], ["v1", "v2"])
        assert len(lineage(q, tid).clauses) == 4

    def test_certain_tuple_satisfies_clause(self):
        q = query(Clause.middle("S1", "S2"))
        tid = uniform_tid(["S1", "S2"], ["u"], ["v"]).with_probability(
            s_tuple("S1", "u", "v"), F(1))
        assert lineage(q, tid).is_true()

    def test_absent_tuple_dropped(self):
        q = query(Clause.middle("S1", "S2"))
        tid = uniform_tid(["S1", "S2"], ["u"], ["v"]).with_probability(
            s_tuple("S1", "u", "v"), F(0))
        assert lineage(q, tid) == CNF([[s_tuple("S2", "u", "v")]])

    def test_all_absent_is_false(self):
        q = query(Clause.middle("S1"))
        tid = uniform_tid(["S1"], ["u"], ["v"]).with_probability(
            s_tuple("S1", "u", "v"), F(0))
        assert lineage(q, tid).is_false()


class TestTypeIClauses:
    def test_rst_single_link(self):
        q = rst_query()
        tid = uniform_tid(["S1"], ["u"], ["v"])
        got = lineage(q, tid)
        assert got == CNF([
            [r_tuple("u"), s_tuple("S1", "u", "v")],
            [s_tuple("S1", "u", "v"), t_tuple("v")]])

    def test_h0(self):
        tid = uniform_tid(["S"], ["u"], ["v"])
        assert lineage(h0(), tid) == CNF([
            [r_tuple("u"), s_tuple("S", "u", "v"), t_tuple("v")]])

    def test_certain_unary_drops_clause(self):
        q = rst_query()
        tid = uniform_tid(["S1"], ["u"], ["v"]).with_probability(
            r_tuple("u"), F(1))
        got = lineage(q, tid)
        assert got == CNF([[s_tuple("S1", "u", "v"), t_tuple("v")]])


class TestTypeIIClauses:
    def test_left_type2_distribution(self):
        q = query(Clause.left_type2(["S1"], ["S2"]))
        tid = uniform_tid(["S1", "S2"], ["u"], ["v1", "v2"])
        got = lineage(q, tid)
        # (AND_v S1(u,v)) v (AND_v S2(u,v)) -> 4 distributed clauses.
        expected = CNF.disjunction([
            CNF([[s_tuple("S1", "u", "v1")], [s_tuple("S1", "u", "v2")]]),
            CNF([[s_tuple("S2", "u", "v1")], [s_tuple("S2", "u", "v2")]]),
        ])
        assert got == expected

    def test_right_type2_distribution(self):
        q = query(Clause.right_type2(["S1"], ["S2"]))
        tid = uniform_tid(["S1", "S2"], ["u1", "u2"], ["v"])
        got = lineage(q, tid)
        assert len(got.clauses) == 4

    def test_false_query(self):
        assert lineage(Query.FALSE, uniform_tid([], ["u"], ["v"])).is_false()

    def test_true_query(self):
        assert lineage(Query.TRUE, uniform_tid([], ["u"], ["v"])).is_true()


class TestLineageSemantics:
    def test_possible_world_check(self):
        """The lineage holds in a world iff the query does (checked by
        direct evaluation of the grounded sentence)."""
        q = rst_query()
        U, V = ["u1", "u2"], ["v1"]
        tid = uniform_tid(["S1"], U, V)
        formula = lineage(q, tid)
        import itertools
        tuples = sorted(formula.variables(), key=repr)
        for bits in itertools.product((0, 1), repeat=len(tuples)):
            world = {t for t, b in zip(tuples, bits) if b}

            def holds(u, v):
                clause1 = r_tuple(u) in world or \
                    s_tuple("S1", u, v) in world
                clause2 = s_tuple("S1", u, v) in world or \
                    t_tuple(v) in world
                return clause1 and clause2

            direct = all(holds(u, v) for u in U for v in V)
            assert formula.evaluate(world) == direct
