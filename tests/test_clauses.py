"""Clause construction, canonicalization and rewriting (Definition 2.3,
Lemma 2.7 building blocks)."""

import pytest

from repro.core.clauses import Clause


class TestConstruction:
    def test_left_type1(self):
        c = Clause.left_type1("S1", "S2")
        assert c.side == "left"
        assert c.unaries == {"R"}
        assert c.subclauses == (frozenset({"S1", "S2"}),)
        assert not c.is_type2

    def test_left_type2(self):
        c = Clause.left_type2(["S1"], ["S2"])
        assert c.side == "left"
        assert not c.unaries
        assert c.is_type2

    def test_middle(self):
        c = Clause.middle("S1")
        assert c.side == "middle"

    def test_right_type1(self):
        c = Clause.right_type1("S1")
        assert c.unaries == {"T"}
        assert c.side == "right"

    def test_full(self):
        c = Clause.full("S")
        assert c.side == "full"
        assert c.unaries == {"R", "T"}

    def test_unary_only(self):
        c = Clause.unary_only("R")
        assert c.side == "left"
        assert c.subclauses == ()

    def test_empty_clause_raises(self):
        with pytest.raises(ValueError):
            Clause("middle", (), [])

    def test_empty_subclause_raises(self):
        with pytest.raises(ValueError):
            Clause("middle", (), [[]])

    def test_type2_requires_side(self):
        with pytest.raises(ValueError):
            Clause("middle", (), [["S1"], ["S2"]])

    def test_single_subclause_no_unary_is_middle(self):
        c = Clause("left", (), [["S1"]])
        assert c.side == "middle"

    def test_bad_unary_raises(self):
        with pytest.raises(ValueError):
            Clause("middle", {"X"}, [["S1"]])


class TestSubclauseAbsorption:
    def test_subset_absorbed(self):
        """Ay.S1 v Ay.(S1 v S2) == Ay.(S1 v S2): the subset disjunct is
        absorbed (it implies the superset one)."""
        c = Clause("left", (), [["S1"], ["S1", "S2"]])
        assert c.subclauses == (frozenset({"S1", "S2"}),)
        assert c.side == "middle"  # collapsed to a single subclause

    def test_duplicates_merge(self):
        c = Clause("left", (), [["S1", "S2"], ["S2", "S1"], ["S3"]])
        assert len(c.subclauses) == 2

    def test_incomparable_kept(self):
        c = Clause.left_type2(["S1", "S2"], ["S2", "S3"])
        assert len(c.subclauses) == 2


class TestSetSymbol:
    def test_binary_to_true_drops_clause(self):
        c = Clause.middle("S1", "S2")
        assert c.set_symbol("S1", True) is True

    def test_binary_to_false_shrinks(self):
        c = Clause.middle("S1", "S2")
        assert c.set_symbol("S1", False) == Clause.middle("S2")

    def test_binary_to_false_kills_clause(self):
        c = Clause.middle("S1")
        assert c.set_symbol("S1", False) is False

    def test_left_clause_falls_back_to_unary(self):
        c = Clause.left_type1("S1")
        result = c.set_symbol("S1", False)
        assert result == Clause.unary_only("R")

    def test_type2_loses_subclause(self):
        c = Clause.left_type2(["S1"], ["S2"])
        result = c.set_symbol("S1", False)
        assert result == Clause.middle("S2")

    def test_type2_true_drops_whole_clause(self):
        c = Clause.left_type2(["S1"], ["S2"])
        assert c.set_symbol("S1", True) is True

    def test_unary_true_drops_clause(self):
        c = Clause.left_type1("S1")
        assert c.set_symbol("R", True) is True

    def test_unary_false_removes_unary(self):
        c = Clause.left_type1("S1")
        assert c.set_symbol("R", False) == Clause.middle("S1")

    def test_unary_only_false_is_false(self):
        c = Clause.unary_only("R")
        assert c.set_symbol("R", False) is False

    def test_absent_symbol_noop(self):
        c = Clause.middle("S1")
        assert c.set_symbol("S9", True) is c

    def test_full_clause_rewrites(self):
        c = Clause.full("S")
        assert c.set_symbol("R", True) is True
        assert c.set_symbol("R", False) == Clause.right_type1("S")
        after = c.set_symbol("S", False)
        assert after.side == "full"
        assert after.subclauses == ()


class TestEqualityHash:
    def test_structural_equality(self):
        assert Clause.middle("S1", "S2") == Clause.middle("S2", "S1")

    def test_hashable(self):
        assert len({Clause.middle("S1"), Clause.middle("S1")}) == 1

    def test_side_distinguishes(self):
        left = Clause.left_type2(["S1"], ["S2"])
        right = Clause.right_type2(["S1"], ["S2"])
        assert left != right

    def test_symbols(self):
        c = Clause.left_type1("S1", "S2")
        assert c.symbols == {"R", "S1", "S2"}
        assert c.binary_symbols == {"S1", "S2"}
