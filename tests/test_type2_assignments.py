"""Consistent assignments over Type-II blocks (Section C.7)."""

from fractions import Fraction

from repro.core.catalog import example_c15, example_c18, example_c9
from repro.reduction.type2_assignments import (
    assignment_keeps_connectivity,
    find_theta0,
    is_consistent,
    zigzag_equivalence_classes,
)
from repro.reduction.type2_blocks import type2_block
from repro.reduction.type2_lattice import TypeIIStructure

F = Fraction


class TestEquivalenceClasses:
    def test_odd_even_classes(self):
        q = example_c9()
        classes = zigzag_equivalence_classes(q, p=2)
        odd = classes[("S1", "odd")]
        even = classes[("S1", "even")]
        assert len(odd) == 3   # S1(r0,t0), S1(r1,t1), S1(r2,t2)
        assert len(even) == 2  # S1(r1,t0), S1(r2,t1)

    def test_no_dead_classes_without_wide_clauses(self):
        q = example_c9()  # max subclause count 2 -> no dead ends
        classes = zigzag_equivalence_classes(q, p=1)
        assert not [k for k in classes if k[1].startswith("dead")]

    def test_dead_classes_for_c18(self):
        q = example_c18()  # a 3-subclause left clause -> 1 dead end
        classes = zigzag_equivalence_classes(q, p=1)
        dead_left = [k for k in classes if k[1] == "dead-left"]
        assert len(dead_left) == len(q.binary_symbols)

    def test_classes_cover_block_tuples(self):
        q = example_c9()
        block = type2_block(q, p=1)
        classes = zigzag_equivalence_classes(q, p=1)
        class_tuples = {t for ts in classes.values() for t in ts}
        assert class_tuples == set(block.probs)

    def test_prefix_suffix_classes(self):
        q = example_c9()
        classes = zigzag_equivalence_classes(q, p=1, branches=2)
        assert ("S1", "prefix", 1) in classes
        assert len(classes[("S1", "suffix", 0)]) == 2


class TestConsistency:
    def test_consistent(self):
        q = example_c9()
        classes = zigzag_equivalence_classes(q, p=1)
        odd = classes[("S1", "odd")]
        assignment = {t: F(1) for t in odd}
        assert is_consistent(assignment, classes)

    def test_inconsistent(self):
        q = example_c9()
        classes = zigzag_equivalence_classes(q, p=1)
        odd = classes[("S1", "odd")]
        assignment = {odd[0]: F(1), odd[1]: F(0)}
        assert not is_consistent(assignment, classes)


class TestTheta0:
    def test_c15_needs_no_pinning(self):
        """C.15 has no dead ends: theta_0 is empty and all-1/2 keeps
        every Y_alpha_beta connected (Definition C.27's first half)."""
        theta0 = find_theta0(example_c15(), p=1)
        assert theta0 == {}

    def test_c18_pins_dead_ends(self):
        theta0 = find_theta0(example_c18(), p=1)
        assert theta0
        assert set(theta0.values()) <= {F(0), F(1)}

    def test_c18_theta0_keeps_connectivity(self):
        q = example_c18()
        structure = TypeIIStructure(q)
        block = type2_block(q, p=1)
        theta0 = find_theta0(q, p=1)
        assert assignment_keeps_connectivity(structure, block, theta0,
                                             p=1)

    def test_theta0_is_consistent(self):
        q = example_c18()
        theta0 = find_theta0(q, p=1)
        classes = zigzag_equivalence_classes(q, p=1)
        assert is_consistent(theta0, classes)

    def test_all_half_keeps_connectivity_c15(self):
        """Forbidden queries (Lemma C.23): connectivity holds at 1/2."""
        q = example_c15()
        structure = TypeIIStructure(q)
        block = type2_block(q, p=1)
        assert assignment_keeps_connectivity(structure, block, {}, p=1)

    def test_destructive_assignment_rejected(self):
        """Pinning a whole odd equivalence class to 0 can falsify or
        disconnect the lineage; the connectivity guard must refuse."""
        q = example_c15()
        structure = TypeIIStructure(q)
        block = type2_block(q, p=1)
        classes = zigzag_equivalence_classes(q, p=1)
        killer = {}
        for symbol in sorted(q.binary_symbols):
            killer.update({t: F(0) for t in classes[(symbol, "odd")]})
        assert not assignment_keeps_connectivity(structure, block,
                                                 killer, p=1)
