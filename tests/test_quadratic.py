"""Exact arithmetic in Q(sqrt(d)) — repro.algebra.quadratic."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.quadratic import QuadraticNumber

F = Fraction


def q(a, b=0, d=2):
    return QuadraticNumber(F(a), F(b), F(d))


class TestBasics:
    def test_rational_folding(self):
        """sqrt(4) folds into the rational part."""
        n = QuadraticNumber(1, 1, 4)
        assert n.is_rational()
        assert n.to_fraction() == 3

    def test_sqrt_constructor(self):
        r = QuadraticNumber.sqrt(2)
        assert r * r == QuadraticNumber(2)

    def test_negative_radicand_raises(self):
        with pytest.raises(ValueError):
            QuadraticNumber(0, 1, -1)

    def test_float_conversion(self):
        assert abs(float(q(1, 1)) - (1 + 2 ** 0.5)) < 1e-12

    def test_irrational_to_fraction_raises(self):
        with pytest.raises(ValueError):
            q(0, 1).to_fraction()

    def test_conjugate(self):
        n = q(3, 2)
        assert n + n.conjugate() == QuadraticNumber(6)
        assert n * n.conjugate() == QuadraticNumber(9 - 4 * 2)


class TestArithmetic:
    def test_add(self):
        assert q(1, 1) + q(2, 3) == q(3, 4)

    def test_mul(self):
        # (1 + sqrt2)(1 - sqrt2) = -1
        assert q(1, 1) * q(1, -1) == QuadraticNumber(-1)

    def test_div(self):
        n = q(3, 5)
        assert n / n == QuadraticNumber(1)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            q(1, 1) / QuadraticNumber(0)

    def test_pow(self):
        golden_like = q(1, 1)
        assert golden_like ** 2 == q(3, 2)
        assert golden_like ** 0 == QuadraticNumber(1)

    def test_negative_pow(self):
        n = q(1, 1)
        assert n ** -1 * n == QuadraticNumber(1)

    def test_mixed_with_fraction(self):
        assert q(1, 1) + F(1, 2) == q(F(3, 2), 1)
        assert 2 * q(1, 1) == q(2, 2)

    def test_incompatible_radicands(self):
        with pytest.raises(ValueError):
            q(1, 1, 2) + q(1, 1, 3)


class TestComparisons:
    def test_sign_mixed(self):
        # 3 - 2*sqrt(2) = 0.17... > 0 ; 2 - 2*sqrt(2) < 0
        assert q(3, -2).sign() == 1
        assert q(2, -2).sign() == -1

    def test_sign_zero(self):
        assert (q(1, 1) - q(1, 1)).sign() == 0

    def test_ordering(self):
        assert q(0, 1) > 1         # sqrt 2 > 1
        assert q(0, 1) < F(3, 2)   # sqrt 2 < 1.5
        assert q(0, 1) >= q(0, 1)

    def test_eq_against_rational(self):
        assert QuadraticNumber(3) == 3
        assert q(0, 1) != 1


class TestProperties:
    values = st.tuples(st.integers(-5, 5), st.integers(-5, 5)).map(
        lambda t: q(t[0], t[1]))

    @given(values, values)
    @settings(max_examples=60, deadline=None)
    def test_mul_commutes(self, a, b):
        assert a * b == b * a

    @given(values, values, values)
    @settings(max_examples=60, deadline=None)
    def test_distributive(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(values)
    @settings(max_examples=60, deadline=None)
    def test_sign_matches_float(self, a):
        f = float(a)
        if abs(f) > 1e-9:
            assert a.sign() == (1 if f > 0 else -1)

    @given(values, values)
    @settings(max_examples=60, deadline=None)
    def test_division_roundtrip(self, a, b):
        if b.sign() == 0:
            return
        assert (a / b) * b == a
