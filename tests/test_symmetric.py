"""Symmetric databases (Section 1.1's tractable restriction)."""

from fractions import Fraction

import pytest

from repro.core import catalog
from repro.core.clauses import Clause
from repro.core.queries import query
from repro.tid.symmetric import SymmetricTID, symmetric_probability
from repro.tid.wmc import probability

F = Fraction


def stid(n, m, p_r=F(1, 2), p_t=F(1, 2), **binary):
    return SymmetricTID(n, m, p_r, p_t,
                        {k: F(v) for k, v in binary.items()})


class TestPointwiseQueries:
    @pytest.mark.parametrize("n,m", [(1, 1), (2, 2), (3, 2)])
    def test_h0_matches_wmc(self, n, m):
        """H0 — #P-hard in general — is PTIME on symmetric TIDs."""
        s = stid(n, m, S=F(1, 2))
        assert symmetric_probability(catalog.h0(), s) == \
            probability(catalog.h0(), s.materialize())

    @pytest.mark.parametrize("n,m", [(2, 2), (3, 1)])
    def test_rst_matches_wmc(self, n, m):
        s = stid(n, m, S1=F(1, 3), S2=F(2, 3))
        q = catalog.rst_query()
        assert symmetric_probability(q, s) == \
            probability(q, s.materialize())

    def test_path2_matches_wmc(self):
        s = stid(2, 2, S1=F(1, 2), S2=F(1, 2))
        q = catalog.path_query(2)
        assert symmetric_probability(q, s) == \
            probability(q, s.materialize())

    def test_extreme_probabilities(self):
        s = stid(2, 2, p_r=F(0), p_t=F(1), S1=F(1, 2), S2=F(0))
        q = catalog.rst_query()
        assert symmetric_probability(q, s) == \
            probability(q, s.materialize())

    def test_safe_query(self):
        s = stid(2, 2, S1=F(1, 2), S2=F(1, 4), S3=F(3, 4))
        q = catalog.safe_left_only()
        assert symmetric_probability(q, s) == \
            probability(q, s.materialize())


class TestTypeIIQueries:
    def test_left_type2(self):
        q = query(Clause.left_type2(["S1"], ["S2"]),
                  Clause.middle("S1", "S3"),
                  Clause.right_type1("S3"))
        s = stid(2, 2, S1=F(1, 2), S2=F(1, 3), S3=F(2, 3))
        assert symmetric_probability(q, s) == \
            probability(q, s.materialize())

    def test_right_type2_via_mirror(self):
        q = catalog.unsafe_type1_type2()
        s = stid(2, 2, S1=F(1, 2), S2=F(1, 2), S3=F(1, 2))
        assert symmetric_probability(q, s) == \
            probability(q, s.materialize())

    def test_both_type2_rejected(self):
        with pytest.raises(ValueError):
            symmetric_probability(catalog.example_c9(), stid(2, 2))

    def test_left_type2_with_unary_clause(self):
        q = query(Clause.left_type1("S1"),
                  Clause.left_type2(["S1"], ["S2"]),
                  Clause.middle("S1", "S2"),
                  Clause.right_type1("S2"))
        s = stid(2, 1, S1=F(1, 2), S2=F(1, 2))
        assert symmetric_probability(q, s) == \
            probability(q, s.materialize())


class TestScaling:
    def test_h0_scales_to_large_domains(self):
        """n = m = 25: far beyond what exact WMC could touch."""
        s = stid(25, 25, S=F(1, 2))
        value = symmetric_probability(catalog.h0(), s)
        assert 0 < value < 1

    def test_constant_queries(self):
        from repro.core.queries import Query
        s = stid(2, 2)
        assert symmetric_probability(Query.TRUE, s) == 1
        assert symmetric_probability(Query.FALSE, s) == 0

    def test_monotone_in_binary_probability(self):
        q = catalog.rst_query()
        low = symmetric_probability(q, stid(3, 3, S1=F(1, 4), S2=F(1, 4)))
        high = symmetric_probability(q, stid(3, 3, S1=F(3, 4), S2=F(3, 4)))
        assert low <= high


class TestMaterialize:
    def test_materialized_shape(self):
        s = stid(2, 3, S1=F(1, 2))
        tid = s.materialize()
        assert len(tid.left_domain) == 2
        assert len(tid.right_domain) == 3
        assert tid.probability(("S1", "u0", "v2")) == F(1, 2)


class TestRandomizedAgainstWMC:
    """Randomized sweep: symmetric fast path == exact WMC on random
    pointwise queries and random symmetric parameters."""

    def test_random_pointwise_queries(self):
        import random
        from repro.core.generate import GeneratorConfig, random_query
        rng = random.Random(7)
        values = [F(0), F(1, 3), F(1, 2), F(1)]
        config = GeneratorConfig(n_symbols=3, max_clauses=3,
                                 allow_type2=False)
        checked = 0
        for seed in range(40):
            q = random_query(seed, config)
            s = SymmetricTID(
                2, 2, rng.choice(values), rng.choice(values),
                {sym: rng.choice(values)
                 for sym in sorted(q.binary_symbols)})
            assert symmetric_probability(q, s) == \
                probability(q, s.materialize()), seed
            checked += 1
        assert checked == 40

    def test_random_left_type2_queries(self):
        import random
        from repro.core.clauses import Clause
        from repro.core.queries import Query
        rng = random.Random(3)
        values = [F(1, 4), F(1, 2), F(3, 4)]
        for seed in range(10):
            rng2 = random.Random(seed)
            q = Query([
                Clause.left_type2(
                    [rng2.choice(["S1", "S2"])],
                    ["S2", rng2.choice(["S3", "S1"])]),
                Clause.middle("S1", "S3"),
                Clause.right_type1(rng2.choice(["S1", "S3"])),
            ])
            s = SymmetricTID(2, 2, rng.choice(values),
                             rng.choice(values),
                             {sym: rng.choice(values)
                              for sym in ("S1", "S2", "S3")})
            assert symmetric_probability(q, s) == \
                probability(q, s.materialize()), seed
