"""The dichotomy-aware evaluation router — repro.evaluation."""

from fractions import Fraction

import pytest

from repro.core.catalog import rst_query, safe_left_only
from repro.evaluation import EvaluationResult, evaluate
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple

F = Fraction


def small_tid(query):
    probs = {r_tuple("u"): F(1, 2), t_tuple("v"): F(1, 2)}
    for s in sorted(query.binary_symbols):
        probs[s_tuple(s, "u", "v")] = F(1, 2)
    return TID(["u"], ["v"], probs)


class TestRouting:
    def test_safe_routes_to_lifted(self):
        q = safe_left_only()
        result = evaluate(q, small_tid(q))
        assert result.method == "lifted"
        assert result.safe

    def test_unsafe_routes_to_wmc(self):
        q = rst_query()
        result = evaluate(q, small_tid(q))
        assert result.method == "wmc"
        assert not result.safe

    def test_forced_methods_agree(self):
        q = safe_left_only()
        tid = small_tid(q)
        values = {m: evaluate(q, tid, method=m).value
                  for m in ("lifted", "wmc", "brute")}
        assert len(set(values.values())) == 1

    def test_cross_check(self):
        q = rst_query()
        result = evaluate(q, small_tid(q), method="cross-check")
        assert result.method == "cross-check"

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            evaluate(rst_query(), small_tid(rst_query()), method="magic")

    def test_result_compares_to_fraction(self):
        q = rst_query()
        result = evaluate(q, small_tid(q))
        assert result == result.value
        assert (result == EvaluationResult(result.value, "wmc", False))
