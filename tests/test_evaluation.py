"""The dichotomy-aware evaluation router — repro.evaluation."""

from fractions import Fraction

import pytest

from repro.core.catalog import rst_query, safe_left_only
from repro.evaluation import EvaluationResult, evaluate
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple

F = Fraction


def small_tid(query):
    probs = {r_tuple("u"): F(1, 2), t_tuple("v"): F(1, 2)}
    for s in sorted(query.binary_symbols):
        probs[s_tuple(s, "u", "v")] = F(1, 2)
    return TID(["u"], ["v"], probs)


class TestRouting:
    def test_safe_routes_to_lifted(self):
        q = safe_left_only()
        result = evaluate(q, small_tid(q))
        assert result.method == "lifted"
        assert result.safe

    def test_unsafe_routes_to_wmc(self):
        q = rst_query()
        result = evaluate(q, small_tid(q))
        assert result.method == "wmc"
        assert not result.safe

    def test_forced_methods_agree(self):
        q = safe_left_only()
        tid = small_tid(q)
        values = {m: evaluate(q, tid, method=m).value
                  for m in ("lifted", "wmc", "brute")}
        assert len(set(values.values())) == 1

    def test_cross_check(self):
        q = rst_query()
        result = evaluate(q, small_tid(q), method="cross-check")
        assert result.method == "cross-check"

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            evaluate(rst_query(), small_tid(rst_query()), method="magic")

    def test_result_compares_to_fraction(self):
        q = rst_query()
        result = evaluate(q, small_tid(q))
        assert result == result.value
        assert (result == EvaluationResult(result.value, "wmc", False))


class TestResultEquality:
    """EvaluationResult.__eq__ must delegate unknown types so the
    reflected comparison runs (returning NotImplemented, not False)."""

    def test_foreign_type_gets_notimplemented(self):
        result = EvaluationResult(F(1, 2), "wmc", False)
        assert result.__eq__("1/2") is NotImplemented
        assert result.__eq__(object()) is NotImplemented

    def test_reflected_comparison_wins(self):
        class Half:
            """A type whose reflected __eq__ recognizes results."""

            def __eq__(self, other):
                return isinstance(other, EvaluationResult) and \
                    other.value == F(1, 2)

        result = EvaluationResult(F(1, 2), "wmc", False)
        # result.__eq__(Half()) is NotImplemented, so Python falls back
        # to Half().__eq__(result); before the fix this was plain False.
        assert result == Half()
        assert Half() == result

    def test_numeric_comparisons_still_work(self):
        result = EvaluationResult(F(1, 2), "wmc", False)
        assert result == F(1, 2)
        assert result == 0.5
        assert result != F(1, 3)
        assert EvaluationResult(F(1), "wmc", False) == 1

    def test_hash_consistent_with_fraction(self):
        result = EvaluationResult(F(1, 2), "wmc", False)
        assert hash(result) == hash(F(1, 2))
