"""The service wire protocol: framing, validation, codecs."""

import json

from fractions import Fraction

import pytest

from repro.service.protocol import (
    ERROR_CODES,
    MAX_REQUEST_BYTES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    check_fields,
    decode_fraction,
    decode_world,
    dump_line,
    encode_fraction,
    encode_request,
    encode_world,
    error_response,
    ok_response,
    parse_request,
    take_fraction,
    take_int,
    take_int_list,
    take_str,
)

F = Fraction


def round_trip(obj: dict) -> dict:
    """Through the actual framing: dump to a wire line, parse back."""
    line = dump_line(obj)
    assert line.endswith(b"\n") and line.count(b"\n") == 1
    return json.loads(line)


class TestParseRequest:
    def test_minimal(self):
        rid, op, params, auth, trace = parse_request(
            dump_line({"v": PROTOCOL_VERSION, "op": "ping"}))
        assert rid is None and op == "ping" and params == {}
        assert auth is None and trace is None

    @pytest.mark.parametrize("op", OPS)
    def test_every_op_round_trips(self, op):
        request = encode_request(op, {"query": "(R|S1)(S1|T)"},
                                 request_id=17)
        rid, parsed_op, params, auth, trace = parse_request(
            dump_line(request))
        assert (rid, parsed_op) == (17, op)
        assert params == {"query": "(R|S1)(S1|T)"}
        assert auth is None and trace is None

    def test_auth_token_round_trips(self):
        request = encode_request("ping", request_id=3, auth="s3cret")
        rid, op, params, auth, trace = parse_request(
            dump_line(request))
        assert (rid, op, params, auth) == (3, "ping", {}, "s3cret")
        assert trace is None

    def test_trace_id_round_trips(self):
        request = encode_request("ping", request_id=4,
                                 trace="client-trace-1")
        rid, op, params, auth, trace = parse_request(
            dump_line(request))
        assert (rid, op, trace) == (4, "ping", "client-trace-1")

    @pytest.mark.parametrize("bad", [7, "", "x" * 129, True])
    def test_bad_trace_id_rejected(self, bad):
        with pytest.raises(ProtocolError) as info:
            parse_request(dump_line(
                {"v": PROTOCOL_VERSION, "op": "ping", "trace": bad}))
        assert info.value.code == "bad-request"
        assert "trace" in info.value.message

    def test_auth_must_be_a_string(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(dump_line(
                {"v": PROTOCOL_VERSION, "op": "ping", "auth": 99}))
        assert info.value.code == "bad-request"
        assert "auth" in info.value.message

    def test_string_ids_supported(self):
        request = encode_request("ping", request_id="req-abc")
        assert parse_request(dump_line(request))[0] == "req-abc"

    def test_not_json(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b"{nope")
        assert info.value.code == "parse-error"

    def test_not_utf8(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b"\xff\xfe{}")
        assert info.value.code == "parse-error"

    def test_not_an_object(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b"[1, 2]")
        assert info.value.code == "bad-request"

    def test_wrong_version(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(dump_line({"v": 99, "op": "ping", "id": 3}))
        assert info.value.code == "unsupported-version"
        # The id was readable, so the error can still be correlated.
        assert info.value.request_id == 3

    def test_missing_version(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(dump_line({"op": "ping"}))
        assert info.value.code == "unsupported-version"

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(dump_line({"v": PROTOCOL_VERSION}))
        assert info.value.code == "bad-request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(dump_line(
                {"v": PROTOCOL_VERSION, "op": "drop-tables"}))
        assert info.value.code == "unknown-op"

    def test_params_must_be_object(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(dump_line(
                {"v": PROTOCOL_VERSION, "op": "ping", "params": [1]}))
        assert info.value.code == "bad-request"

    def test_bool_id_rejected(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(dump_line(
                {"v": PROTOCOL_VERSION, "op": "ping", "id": True}))
        assert info.value.code == "bad-request"

    def test_stray_top_level_fields_rejected(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(dump_line(
                {"v": PROTOCOL_VERSION, "op": "ping", "extra": 1}))
        assert info.value.code == "bad-request"
        assert "extra" in info.value.message


class TestResponses:
    def test_ok_shape(self):
        response = round_trip(ok_response(5, "stats", {"cache": {}}))
        assert response == {"v": PROTOCOL_VERSION, "id": 5, "ok": True,
                            "op": "stats", "result": {"cache": {}}}

    def test_error_shape(self):
        response = round_trip(
            error_response(None, "bad-query", "no clauses"))
        assert response["ok"] is False
        assert response["error"] == {"code": "bad-query",
                                     "message": "no clauses"}

    def test_error_codes_are_closed(self):
        with pytest.raises(ValueError):
            ProtocolError("made-up-code", "boom")
        for code in ERROR_CODES:
            assert ProtocolError(code, "x").code == code


class TestFractionCodec:
    @pytest.mark.parametrize("value", [
        F(0), F(1), F(1, 3), F(-7, 2), F(4181, 131072)])
    def test_round_trip(self, value):
        assert decode_fraction(encode_fraction(value)) == value

    def test_int_accepted(self):
        assert decode_fraction(3) == F(3)

    def test_float_means_its_decimal(self):
        # The JSON number 0.05 means 1/20 — what the human typed — not
        # the nearest binary double.
        assert decode_fraction(0.05) == F(1, 20)

    @pytest.mark.parametrize("bad", [True, [1], {"n": 1}, "abc", "1/0"])
    def test_rejects(self, bad):
        with pytest.raises(ProtocolError) as info:
            decode_fraction(bad, "epsilon")
        assert info.value.code == "bad-request"
        assert "epsilon" in info.value.message


class TestWorldCodec:
    def test_round_trip_tuple_tokens(self):
        world = {("R", "u"): True, ("S1", "u", "v"): False,
                 ("T", "v"): True}
        decoded = decode_world(json.loads(
            json.dumps(encode_world(world))))
        assert decoded == world
        # Tuple tokens come back as tuples, never list lookalikes.
        assert all(isinstance(var, tuple) for var in decoded)

    def test_deterministic_order(self):
        world = {("S1", "u", "v"): True, ("R", "u"): False}
        assert encode_world(world) == encode_world(dict(
            reversed(list(world.items()))))

    def test_decode_rejects_non_list(self):
        with pytest.raises(ProtocolError):
            decode_world({"not": "a list"})


class TestValidators:
    def test_take_str_required_missing(self):
        with pytest.raises(ProtocolError) as info:
            take_str({}, "query")
        assert info.value.code == "bad-request"
        assert "query" in info.value.message

    def test_take_str_choices(self):
        assert take_str({"m": "auto"}, "m", choices=("auto",)) == "auto"
        with pytest.raises(ProtocolError):
            take_str({"m": "nope"}, "m", choices=("auto",))

    def test_take_str_type(self):
        with pytest.raises(ProtocolError):
            take_str({"query": 7}, "query")

    def test_take_int_defaults_and_bounds(self):
        assert take_int({}, "p", default=4) == 4
        assert take_int({"p": 6}, "p", default=4, minimum=1,
                        maximum=64) == 6
        with pytest.raises(ProtocolError):
            take_int({"p": 0}, "p", default=4, minimum=1)
        with pytest.raises(ProtocolError):
            take_int({"p": 65}, "p", default=4, maximum=64)

    def test_take_int_rejects_bool_and_float(self):
        with pytest.raises(ProtocolError):
            take_int({"p": True}, "p", default=4)
        with pytest.raises(ProtocolError):
            take_int({"p": 4.0}, "p", default=4)

    def test_take_fraction_default(self):
        assert take_fraction({}, "epsilon", default=F(1, 20)) == F(1, 20)
        assert take_fraction({"epsilon": "1/8"}, "epsilon",
                             default=F(1, 20)) == F(1, 8)

    def test_take_int_list(self):
        assert take_int_list({"ps": [2, 3, 4]}, "ps",
                             minimum=1) == [2, 3, 4]
        for bad in ([], "2,3", [2, "3"], [0], [True]):
            with pytest.raises(ProtocolError):
                take_int_list({"ps": bad}, "ps", minimum=1)

    def test_take_int_list_cap(self):
        with pytest.raises(ProtocolError):
            take_int_list({"ps": list(range(1, 12))}, "ps",
                          max_items=10)

    def test_check_fields(self):
        check_fields({"query": "q", "p": 4}, ("query", "p", "grid"))
        with pytest.raises(ProtocolError) as info:
            check_fields({"query": "q", "tpyo": 1}, ("query", "p"))
        assert "tpyo" in info.value.message

    def test_request_size_cap_is_sane(self):
        assert MAX_REQUEST_BYTES >= 65536


class TestEstimateCodec:
    """``ProbabilityEstimate.as_dict`` -> ``decode_estimate`` must be
    the identity on the wire shape, with the adaptive tier's new
    fields (``relative_error``/``samples_used``/``center``) preserved
    as exact Fractions — the PR 4 codec only type-tagged the original
    fields and had no decoder at all."""

    def examples(self):
        from repro.booleans.approximate import ProbabilityEstimate

        hoeffding = ProbabilityEstimate(
            F(369, 738), F(1, 20), F(1, 20), 738, 369)
        bernstein = ProbabilityEstimate(
            F(4093, 4096), F(133, 19166), F(1, 20), 4096, 4093,
            method="bernstein", relative_error=F(133, 19033),
            samples_used=4096)
        importance = ProbabilityEstimate(
            F(1, 64), F(7, 1536), F(1, 10), 2048, 31,
            method="importance", relative_error=F(7, 17),
            samples_used=2048, center=F(33, 2048))
        return hoeffding, bernstein, importance

    def test_round_trip_is_identity_on_the_wire(self):
        from repro.service.protocol import decode_estimate

        for estimate in self.examples():
            wire = json.loads(dump_line(estimate.as_dict()))
            decoded = decode_estimate(wire)
            assert decoded == estimate
            assert decoded.as_dict() == estimate.as_dict()

    def test_new_fields_stay_exact_fractions(self):
        from repro.service.protocol import decode_estimate

        _, bernstein, importance = self.examples()
        decoded = decode_estimate(bernstein.as_dict())
        assert type(decoded.relative_error) is F
        assert decoded.relative_error == F(133, 19033)
        assert decoded.samples_used == 4096
        decoded = decode_estimate(importance.as_dict())
        assert type(decoded.center) is F
        assert decoded.center == F(33, 2048)
        # low/high derive from the *center* for self-normalized
        # estimates; the decode must reproduce that too.
        assert decoded.low == importance.low
        assert decoded.high == importance.high

    def test_legacy_wire_shape_still_decodes(self):
        """A PR 3/4-era estimate dict (no method/relative_error/
        samples_used keys) decodes with the defaults."""
        from repro.service.protocol import decode_estimate

        wire = {"estimate": "1/2", "epsilon": "1/20", "delta": "1/20",
                "samples": 738, "successes": 369}
        decoded = decode_estimate(wire)
        assert decoded.method == "hoeffding"
        assert decoded.relative_error is None
        assert decoded.samples_used is None
        assert decoded.center is None

    def test_malformed_estimates_rejected(self):
        from repro.service.protocol import decode_estimate

        with pytest.raises(ProtocolError, match="object"):
            decode_estimate([1, 2, 3])
        with pytest.raises(ProtocolError, match="missing"):
            decode_estimate({"estimate": "1/2"})
        good = self.examples()[0].as_dict()
        for field in ("samples", "successes", "samples_used"):
            bad = dict(good)
            bad[field] = True
            with pytest.raises(ProtocolError, match="integer"):
                decode_estimate(bad)
        # Only samples_used is optional; null for the required counts
        # must be rejected, not smuggled into arithmetic downstream.
        for field in ("samples", "successes"):
            bad = dict(good)
            bad[field] = None
            with pytest.raises(ProtocolError, match="integer"):
                decode_estimate(bad)
        bad = dict(good)
        bad["relative_error"] = "not-a-fraction"
        with pytest.raises(ProtocolError, match="relative_error"):
            decode_estimate(bad)
