"""Budgeted approximate WMC — repro.booleans.approximate, the budgeted
compiler, circuit sampling/top-k, and the ``auto`` threading."""

import itertools
import random

from fractions import Fraction

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans.approximate import (
    ProbabilityEstimate,
    estimate_probability,
    hoeffding_sample_count,
)
from repro.booleans.circuit import CompilationBudgetExceeded, compile_cnf
from repro.booleans.cnf import CNF
from repro.core.catalog import rst_query
from repro.evaluation import evaluate, probability_sweep
from repro.reduction.block_matrix import z_matrix_direct
from repro.reduction.blocks import path_block
from repro.reduction.type2_lattice import TypeIIStructure
from repro.tid import wmc
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.lineage import lineage

F = Fraction


def random_cnf(seed: int, max_vars: int = 5, max_clauses: int = 4) -> CNF:
    """A small random monotone CNF (never CNF.FALSE)."""
    rng = random.Random(seed)
    n = rng.randint(1, max_vars)
    variables = [f"v{i}" for i in range(n)]
    clauses = [rng.sample(variables, rng.randint(1, n))
               for _ in range(rng.randint(1, max_clauses))]
    return CNF(clauses)


def random_weights(formula: CNF, seed: int,
                   interior_only: bool = False) -> dict:
    rng = random.Random(seed)
    values = ([F(1, 4), F(1, 2), F(3, 4)] if interior_only
              else [F(0), F(1, 4), F(1, 2), F(3, 4), F(1)])
    return {v: rng.choice(values)
            for v in sorted(formula.variables(), key=repr)}


def world_probability(world: dict, weights: dict) -> Fraction:
    prob = F(1)
    for var, value in world.items():
        prob *= weights[var] if value else 1 - weights[var]
    return prob


def satisfies(world: dict, formula: CNF) -> bool:
    return all(any(world.get(v, False) for v in clause)
               for clause in formula.clauses)


class TestBudgetedCompilation:
    def test_tiny_budget_raises(self):
        formula = random_cnf(1, max_vars=5, max_clauses=4)
        with pytest.raises(CompilationBudgetExceeded) as excinfo:
            compile_cnf(formula, budget_nodes=2)
        assert excinfo.value.budget_nodes == 2

    def test_generous_budget_is_identical(self):
        formula = random_cnf(2)
        exact = compile_cnf(formula)
        budgeted = compile_cnf(formula, budget_nodes=10 ** 6)
        assert exact.to_bytes() == budgeted.to_bytes()

    def test_budget_below_constants_rejected(self):
        with pytest.raises(ValueError):
            compile_cnf(CNF([["x"]]), budget_nodes=1)

    def test_cached_circuit_ignores_budget(self):
        """A circuit already paid for is returned even over-budget."""
        formula = CNF([["a", "b"], ["b", "c"], ["a", "c"]])
        wmc.clear_circuit_cache()
        circuit = wmc.compiled(formula)
        assert circuit.size > 2
        again = wmc.compiled(formula, budget_nodes=2)
        assert again is circuit

    def test_budget_aborts_counted(self):
        formula = CNF([["a", "b"], ["b", "c"], ["a", "c"]])
        wmc.clear_circuit_cache()
        with pytest.raises(CompilationBudgetExceeded):
            wmc.compiled(formula, budget_nodes=2)
        info = wmc.cache_info()
        assert info["budget_aborts"] == 1
        assert info["compiles"] == 0

    def test_budget_failures_negatively_cached(self):
        """A blown budget is memoized: repeats at or below it abort
        without redoing the search, while a larger budget retries."""
        formula = CNF([["a", "b"], ["b", "c"], ["a", "c"]])
        wmc.clear_circuit_cache()
        with pytest.raises(CompilationBudgetExceeded):
            wmc.compiled(formula, budget_nodes=3)
        with pytest.raises(CompilationBudgetExceeded):
            wmc.compiled(formula, budget_nodes=2)  # memoized abort
        assert wmc.cache_info()["budget_aborts"] == 2
        circuit = wmc.compiled(formula, budget_nodes=10 ** 6)  # retry
        assert wmc.cache_info()["compiles"] == 1
        # Success clears the negative entry: the circuit is cached, so
        # even a tiny budget now returns it.
        assert wmc.compiled(formula, budget_nodes=2) is circuit


class TestHoeffding:
    def test_sample_count_formula(self):
        # ln(2/0.05) / (2 * 0.05^2) = 737.8 -> 738
        assert hoeffding_sample_count(F(1, 20), F(1, 20)) == 738
        assert hoeffding_sample_count(F(1, 10), F(1, 2)) == 70

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            hoeffding_sample_count(0, F(1, 2))
        with pytest.raises(ValueError):
            hoeffding_sample_count(F(1, 2), 1)

    def test_interval_clamps_to_unit(self):
        estimate = ProbabilityEstimate(F(1, 100), F(1, 10), F(1, 20),
                                       100, 1)
        assert estimate.low == 0
        assert estimate.high == F(1, 100) + F(1, 10)
        top = ProbabilityEstimate(F(99, 100), F(1, 10), F(1, 20),
                                  100, 99)
        assert top.high == 1


class TestEstimateProbability:
    def test_deterministic_given_seed(self):
        formula = random_cnf(3)
        weights = random_weights(formula, 3)
        a = estimate_probability(formula, weights, rng=7)
        b = estimate_probability(formula, weights, rng=7)
        assert a == b

    def test_seed_changes_samples(self):
        formula = random_cnf(4)
        draws = {estimate_probability(formula, None, rng=s).estimate
                 for s in range(8)}
        assert len(draws) > 1

    def test_constants_are_exact(self):
        true_est = estimate_probability(CNF.TRUE, None, rng=0)
        assert true_est.estimate == 1
        false_est = estimate_probability(CNF.FALSE, None, rng=0)
        assert false_est.estimate == 0

    def test_estimate_is_success_ratio(self):
        formula = random_cnf(5)
        estimate = estimate_probability(formula, None, rng=1)
        assert estimate.estimate == \
            F(estimate.successes, estimate.samples)
        assert estimate.samples == hoeffding_sample_count(
            estimate.epsilon, estimate.delta)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_interval_contains_exact_with_promised_frequency(self, seed):
        """Across independent sampling runs, the (epsilon, delta)
        interval must cover the exact probability at least (1 - delta)
        of the time.  delta = 1/5 promises 80%; Hoeffding is
        conservative, so demanding the promised rate exactly (20 of 25
        runs) leaves real slack while still catching a broken bound."""
        formula = random_cnf(seed)
        weights = random_weights(formula, seed + 1)
        exact = compile_cnf(formula).probability(weights)
        epsilon, delta, runs = F(3, 20), F(1, 5), 25
        hits = sum(
            estimate_probability(formula, weights, epsilon, delta,
                                 rng=1000 * seed + run).contains(exact)
            for run in range(runs))
        assert hits >= (1 - delta) * runs

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_estimate_matches_exhaustive_sampling_support(self, seed):
        """Estimates of 0/1-weighted formulas collapse correctly: with
        every variable pinned, sampling is deterministic and the
        estimate equals the exact 0/1 probability."""
        formula = random_cnf(seed)
        rng = random.Random(seed + 2)
        weights = {v: F(rng.randint(0, 1))
                   for v in sorted(formula.variables(), key=repr)}
        exact = compile_cnf(formula).probability(weights)
        estimate = estimate_probability(formula, weights, rng=seed)
        assert estimate.estimate == exact


class TestCircuitSample:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_samples_satisfy_and_cover_scope(self, seed):
        formula = random_cnf(seed)
        weights = random_weights(formula, seed + 1, interior_only=True)
        circuit = compile_cnf(formula)
        for world in circuit.sample(weights, k=10, rng=seed):
            assert set(world) == set(circuit.variables())
            assert satisfies(world, formula)

    def test_deterministic_given_seed(self):
        formula = random_cnf(9)
        weights = random_weights(formula, 9, interior_only=True)
        circuit = compile_cnf(formula)
        assert circuit.sample(weights, 5, rng=3) == \
            circuit.sample(weights, 5, rng=3)

    def test_zero_probability_rejected(self):
        circuit = compile_cnf(CNF([["x"]]))
        with pytest.raises(ValueError, match="probability 0"):
            circuit.sample({"x": F(0)}, k=1)

    def test_frequencies_converge_to_marginals(self):
        """Empirical P(v = 1) over many samples approaches the exact
        conditional marginal p_v * Pr(F[v:=1]) / Pr(F)."""
        formula = CNF([["a", "b"], ["b", "c"], ["a", "c"]])
        weights = {"a": F(1, 3), "b": F(1, 2), "c": F(3, 4)}
        circuit = compile_cnf(formula)
        total = circuit.probability(weights)
        n = 3000
        samples = circuit.sample(weights, n, rng=42)
        for var in weights:
            pinned = dict(weights)
            pinned[var] = F(1)
            conditional = \
                weights[var] * circuit.probability(pinned) / total
            freq = sum(world[var] for world in samples) / n
            assert abs(freq - float(conditional)) < 0.04


class TestTopKWorlds:
    @given(st.integers(0, 10_000), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, seed, k):
        formula = random_cnf(seed)
        weights = random_weights(formula, seed + 1)
        circuit = compile_cnf(formula)
        scope = sorted(circuit.variables(), key=repr)
        brute = []
        for bits in itertools.product([False, True], repeat=len(scope)):
            world = dict(zip(scope, bits))
            if satisfies(world, formula):
                prob = world_probability(world, weights)
                if prob:
                    brute.append((prob, world))
        brute.sort(key=lambda t: (-t[0], sorted(
            (repr(v), b) for v, b in t[1].items())))
        got = circuit.top_k_worlds(weights, k)
        assert [p for p, _ in got] == [p for p, _ in brute[:k]]
        for prob, world in got:
            assert satisfies(world, formula)
            assert world_probability(world, weights) == prob

    def test_worlds_are_distinct(self):
        formula = random_cnf(11)
        circuit = compile_cnf(formula)
        worlds = circuit.top_k_worlds(None, 32)
        keys = [tuple(sorted(w.items(), key=repr)) for _, w in worlds]
        assert len(keys) == len(set(keys))

    def test_k_zero_empty(self):
        assert compile_cnf(CNF([["x"]])).top_k_worlds(None, 0) == []


def small_tid(query):
    probs = {r_tuple("u"): F(1, 2), t_tuple("v"): F(1, 2)}
    for s in sorted(query.binary_symbols):
        probs[s_tuple(s, "u", "v")] = F(1, 2)
    return TID(["u"], ["v"], probs)


class TestAutoThreading:
    def test_evaluate_auto_stays_exact_under_budget(self):
        query = rst_query()
        result = evaluate(query, small_tid(query))
        assert result.method == "wmc"
        assert result.estimate is None

    def test_evaluate_auto_degrades_past_budget(self):
        query = rst_query()
        tid = small_tid(query)
        exact = evaluate(query, tid, method="wmc").value
        wmc.clear_circuit_cache()
        result = evaluate(query, tid, budget_nodes=2, rng=0)
        assert result.method == "estimate"
        assert result.estimate is not None
        assert result.estimate.contains(exact)
        assert result.value == result.estimate.estimate
        assert wmc.cache_info()["budget_aborts"] == 1

    def test_evaluate_estimate_method_forced(self):
        query = rst_query()
        tid = small_tid(query)
        exact = evaluate(query, tid, method="wmc").value
        result = evaluate(query, tid, method="estimate", rng=5)
        assert result.method == "estimate"
        assert result.estimate.contains(exact)

    def test_probability_sweep_budget_degrades(self):
        formula = lineage(rst_query(), path_block(rst_query(), 3))
        weight_maps = [None, {v: F(1, 4) for v in formula.variables()}]
        exact = probability_sweep(formula, weight_maps)
        wmc.clear_circuit_cache()
        approx = probability_sweep(formula, weight_maps,
                                   budget_nodes=2, rng=0)
        assert wmc.cache_info()["budget_aborts"] == 1
        epsilon = F(1, 20)
        for a, e in zip(approx, exact):
            assert abs(a - e) <= epsilon

    def test_probability_sweep_budget_exact_when_under(self):
        formula = lineage(rst_query(), path_block(rst_query(), 3))
        weight_maps = [None, {v: F(1, 4) for v in formula.variables()}]
        exact = probability_sweep(formula, weight_maps)
        assert probability_sweep(formula, weight_maps,
                                 budget_nodes=10 ** 6) == exact

    def test_probability_sweep_float_mode_survives_degrade(self):
        """numeric="float" keeps its documented value type on both
        engines."""
        formula = lineage(rst_query(), path_block(rst_query(), 3))
        weight_maps = [None, None]
        wmc.clear_circuit_cache()
        degraded = probability_sweep(formula, weight_maps,
                                     numeric="float",
                                     budget_nodes=2, rng=0)
        assert all(isinstance(v, float) for v in degraded)

    def test_evaluate_estimate_false_query_has_estimate(self):
        from repro.core.queries import Query

        false_query = Query.FALSE
        assert false_query.is_false()
        result = evaluate(false_query, small_tid(rst_query()),
                          method="estimate")
        assert result.method == "estimate"
        assert result.value == 0
        assert result.estimate is not None
        assert result.estimate.contains(0)
        assert result.estimate.samples == 0

    def test_z_matrix_auto_matches_exact_under_budget(self):
        query = rst_query()
        assert z_matrix_direct(query, 3, method="auto") == \
            z_matrix_direct(query, 3)

    def test_z_matrix_auto_estimates_past_budget(self):
        query = rst_query()
        exact = z_matrix_direct(query, 3)
        wmc.clear_circuit_cache()
        approx = z_matrix_direct(query, 3, method="auto",
                                 budget_nodes=2, rng=0)
        epsilon = F(1, 20)
        for i in range(2):
            for j in range(2):
                assert abs(approx[i, j] - exact[i, j]) <= epsilon

    def test_z_matrix_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            z_matrix_direct(rst_query(), 2, method="magic")

    def test_y_sweep_auto_matches_exact_under_budget(self):
        from repro.core.catalog import example_c15

        query = example_c15()
        structure = TypeIIStructure(query)
        from repro.reduction.type2_blocks import type2_block

        block = type2_block(query, p=1)
        alpha = frozenset([0])
        beta = frozenset([0])
        overlays = [{}, {s_tuple(sorted(query.binary_symbols)[0],
                                 "r0", "t0"): F(1, 4)}]
        exact = structure.y_probability_sweep(
            block, "r0", "t1", alpha, beta, overlays)
        assert structure.y_probability_sweep(
            block, "r0", "t1", alpha, beta, overlays,
            method="auto") == exact


class TestCacheObservability:
    def test_cache_info_reports_store_tier(self, tmp_path):
        formula = CNF([["a", "b"], ["b", "c"]])
        wmc.clear_circuit_cache()
        wmc.set_circuit_store(str(tmp_path))
        try:
            assert wmc.cache_info()["store_attached"]
            wmc.compiled(formula)  # miss both tiers, compile
            info = wmc.cache_info()
            assert info["store_misses"] == 1
            assert info["store_hits"] == 0
            wmc.clear_circuit_cache()  # cold memory, warm disk
            wmc.compiled(formula)
            info = wmc.cache_info()
            assert info["store_hits"] == 1
            assert info["store_misses"] == 0
            assert info["compiles"] == 0
        finally:
            wmc.set_circuit_store(None)
            wmc.clear_circuit_cache()

    def test_no_store_counts_no_misses(self):
        wmc.clear_circuit_cache()
        wmc.set_circuit_store(None)
        wmc.compiled(CNF([["x", "y"]]))
        info = wmc.cache_info()
        assert not info["store_attached"]
        assert info["store_misses"] == 0
