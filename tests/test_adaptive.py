"""Property harness for the adaptive estimation engine.

Every confidence interval the system emits is machine-checked here:

* **Coverage** — on random small CNFs the empirical-Bernstein and
  importance-sampling intervals contain the *brute-force* exact
  probability at the stated rate, over seeded independent trials, with
  exact-``Fraction`` arithmetic asserted end to end.  The two coverage
  properties run 220 hypothesis examples between them (120 + 100),
  satisfying the 200+ gate.
* **Never wider than epsilon** — early stopping may only *narrow* the
  returned interval: the achieved half-width is asserted ``<= epsilon``
  on every run, for every sampler, at every parameter combination the
  strategies generate.
* The supporting machinery — rational sqrt/log upper bounds, the
  Bernstein radius, the tilted proposal, the budget planner, and the
  policy threading through ``evaluate``/sweeps — is covered alongside.
"""

import itertools
import math
import random

from fractions import Fraction

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans.adaptive import (
    BudgetPlanner,
    adaptive_estimate_probability,
    bernstein_radius,
    estimate_batch_with,
    estimate_with,
    importance_estimate_probability,
    log_upper,
    resolve_sweep_method,
    sqrt_upper,
    tilted_proposal,
)
from repro.booleans.approximate import hoeffding_sample_count
from repro.booleans.cnf import CNF
from repro.core.catalog import rst_query
from repro.evaluation import evaluate, probability_sweep
from repro.reduction.block_matrix import z_matrix_direct
from repro.reduction.blocks import path_block
from repro.tid import wmc
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.lineage import lineage

F = Fraction


def random_cnf(seed: int, max_vars: int = 5, max_clauses: int = 4) -> CNF:
    """A small random monotone CNF (never CNF.FALSE)."""
    rng = random.Random(seed)
    n = rng.randint(1, max_vars)
    variables = [f"v{i}" for i in range(n)]
    clauses = [rng.sample(variables, rng.randint(1, n))
               for _ in range(rng.randint(1, max_clauses))]
    return CNF(clauses)


def random_weights(formula: CNF, seed: int) -> dict:
    rng = random.Random(seed)
    values = [F(1, 10), F(1, 4), F(1, 2), F(3, 4), F(9, 10)]
    return {v: rng.choice(values)
            for v in sorted(formula.variables(), key=repr)}


def brute_force_probability(formula: CNF, weights: dict) -> Fraction:
    """Exhaustive exact Pr(F) — independent of every engine under
    test, so a broken circuit cannot mask a broken interval."""
    scope = sorted(formula.variables(), key=repr)
    total = F(0)
    for bits in itertools.product([False, True], repeat=len(scope)):
        world = dict(zip(scope, bits))
        if all(any(world[v] for v in clause)
               for clause in formula.clauses):
            prob = F(1)
            for var, bit in world.items():
                prob *= weights[var] if bit else 1 - weights[var]
            total += prob
    return total


def assert_exact_fractions(estimate) -> None:
    """The exact-rational contract, end to end: every statistical
    field of the returned estimate is a true Fraction (or None), never
    a float smuggled through the bound arithmetic."""
    for name in ("estimate", "epsilon", "delta", "low", "high"):
        assert type(getattr(estimate, name)) is Fraction, name
    for name in ("relative_error", "center"):
        value = getattr(estimate, name)
        assert value is None or type(value) is Fraction, name
    assert isinstance(estimate.samples, int)
    assert isinstance(estimate.successes, int)
    assert estimate.samples_used == estimate.samples


class TestRationalBounds:
    @given(st.fractions(min_value=0, max_value=1000))
    @settings(max_examples=60)
    def test_sqrt_upper_is_an_upper_bound(self, value):
        upper = sqrt_upper(value)
        assert type(upper) is Fraction
        assert upper * upper >= value
        # ... and tight to within one integer step of the scaled root.
        if value > 0:
            step = F(1, value.denominator)
            assert (upper - step) ** 2 < value

    def test_sqrt_upper_rejects_negative(self):
        with pytest.raises(ValueError):
            sqrt_upper(F(-1, 2))

    @given(st.fractions(min_value=1, max_value=10 ** 9))
    @settings(max_examples=60)
    def test_log_upper_is_an_upper_bound(self, value):
        upper = log_upper(value)
        assert type(upper) is Fraction
        # math.log is correctly rounded to < 1 ulp; stepping the float
        # value up once dominates that error, so the comparison is a
        # sound check of the rational bound.
        assert float(upper) >= math.log(float(value)) or \
            upper >= F(math.nextafter(math.log(float(value)),
                                      math.inf))

    def test_log_upper_rejects_below_one(self):
        with pytest.raises(ValueError):
            log_upper(F(1, 2))

    def test_bernstein_radius_shrinks_with_samples(self):
        delta = F(1, 20)
        radii = [bernstein_radius(n, F(1, 2), F(1, 4), delta)
                 for n in (10, 100, 1000, 10_000)]
        assert radii == sorted(radii, reverse=True)

    def test_bernstein_radius_scales_with_range(self):
        tiny = bernstein_radius(100, F(1, 2), F(1, 4), F(1, 20))
        wide = bernstein_radius(100, F(1, 2), F(1, 4), F(1, 20),
                                range_high=F(4))
        assert wide > tiny

    def test_bernstein_radius_degenerate_sample_counts(self):
        assert bernstein_radius(1, F(1), F(0), F(1, 20)) == 1
        assert bernstein_radius(0, F(0), F(0), F(1, 20),
                                range_high=F(4)) == 4


#: Coverage-property parameters: loose enough that each trial is a few
#: dozen draws, tight enough that a broken bound fails loudly.  The
#: per-trial failure probability is bounded by delta = 1/4; demanding
#: the promised rate exactly (6 of 8 trials) leaves real slack because
#: the Bernstein/Hoeffding bounds are conservative in practice.
COVERAGE_EPSILON = F(1, 4)
COVERAGE_DELTA = F(1, 4)
COVERAGE_TRIALS = 8


class TestIntervalCoverage:
    """The 200+-example coverage gate: 120 examples (empirical
    Bernstein) + 100 examples (importance sampling) = 220."""

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=120, deadline=None)
    def test_bernstein_interval_covers_brute_force_exact(self, seed):
        formula = random_cnf(seed)
        weights = random_weights(formula, seed + 1)
        exact = brute_force_probability(formula, weights)
        hits = 0
        for trial in range(COVERAGE_TRIALS):
            estimate = adaptive_estimate_probability(
                formula, weights, COVERAGE_EPSILON, COVERAGE_DELTA,
                rng=1_000_003 * seed + trial)
            assert_exact_fractions(estimate)
            assert estimate.method == "bernstein"
            # Early stopping never widens the interval beyond epsilon.
            assert estimate.epsilon <= COVERAGE_EPSILON
            assert estimate.samples <= hoeffding_sample_count(
                COVERAGE_EPSILON, COVERAGE_DELTA / 2)
            hits += estimate.contains(exact)
        assert hits >= (1 - COVERAGE_DELTA) * COVERAGE_TRIALS

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=100, deadline=None)
    def test_importance_interval_covers_brute_force_exact(self, seed):
        formula = random_cnf(seed)
        weights = random_weights(formula, seed + 1)
        exact = brute_force_probability(formula, weights)
        hits = 0
        for trial in range(COVERAGE_TRIALS):
            estimate = importance_estimate_probability(
                formula, weights, COVERAGE_EPSILON, COVERAGE_DELTA,
                rng=1_000_003 * seed + trial)
            assert_exact_fractions(estimate)
            assert estimate.method == "importance"
            assert estimate.epsilon <= COVERAGE_EPSILON
            # The self-normalized point estimate always sits inside
            # its own interval.
            assert estimate.low <= estimate.estimate <= estimate.high
            hits += estimate.contains(exact)
        assert hits >= (1 - COVERAGE_DELTA) * COVERAGE_TRIALS


class TestEarlyStopping:
    def test_low_variance_stops_early(self):
        """A near-one probability has tiny variance; the sequential
        estimator must finish well under the Hoeffding worst case."""
        formula = CNF([["a", "b", "c"]])
        weights = {v: F(9, 10) for v in "abc"}
        epsilon, delta = F(1, 100), F(1, 20)
        estimate = adaptive_estimate_probability(
            formula, weights, epsilon, delta, rng=0)
        worst = hoeffding_sample_count(epsilon, delta)
        assert estimate.samples * 3 <= worst
        assert estimate.epsilon <= epsilon
        assert estimate.contains(F(999, 1000))

    @given(st.integers(0, 10 ** 6),
           st.sampled_from([F(1, 4), F(1, 10), F(3, 20)]))
    @settings(max_examples=40, deadline=None)
    def test_achieved_width_never_exceeds_epsilon(self, seed, epsilon):
        formula = random_cnf(seed)
        weights = random_weights(formula, seed + 1)
        estimate = adaptive_estimate_probability(
            formula, weights, epsilon, F(1, 5), rng=seed)
        assert estimate.epsilon <= epsilon
        assert estimate.high - estimate.low <= 2 * epsilon

    def test_deterministic_given_seed_and_seed_sensitivity(self):
        formula = random_cnf(11)
        weights = random_weights(formula, 12)
        a = adaptive_estimate_probability(formula, weights, rng=3)
        b = adaptive_estimate_probability(formula, weights, rng=3)
        assert a == b
        draws = {adaptive_estimate_probability(formula, weights,
                                               rng=s).estimate
                 for s in range(6)}
        assert len(draws) > 1

    def test_relative_error_claim_is_consistent(self):
        """When a relative target is met, the reported relative error
        is radius/low — i.e. the claim |est - p| <= rel * p follows
        from p >= low."""
        formula = CNF([["a", "b"], ["b", "c"]])
        weights = {v: F(3, 4) for v in "abc"}
        estimate = adaptive_estimate_probability(
            formula, weights, F(1, 20), F(1, 10), rng=0,
            relative_error=F(1, 2))
        assert estimate.relative_error is not None
        assert estimate.relative_error <= F(1, 2)
        low = estimate.estimate - estimate.epsilon
        assert estimate.relative_error == estimate.epsilon / low

    def test_relative_error_requires_positive_target(self):
        with pytest.raises(ValueError, match="relative_error"):
            adaptive_estimate_probability(
                CNF([["x"]]), None, relative_error=F(0))
        with pytest.raises(ValueError, match="relative_error"):
            importance_estimate_probability(
                CNF([["x"]]), None, relative_error=F(-1, 2))


class TestTiltedProposal:
    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=60)
    def test_tilts_up_within_cap(self, seed):
        rng = random.Random(seed)
        marginals = [F(rng.randint(0, 8), 8) for _ in range(6)]
        cap = F(rng.choice([2, 4, 8]))
        proposal = tilted_proposal(marginals, cap)
        ratio_product = F(1)
        for p, q in zip(marginals, proposal):
            assert q >= p  # tilted toward satisfying assignments
            if p in (F(0), F(1)):
                assert q == p  # pinned marginals stay pinned
            else:
                assert q < 1
                ratio_product *= (1 - p) / (1 - q)
        # The product of worst-case per-variable likelihood ratios is
        # exactly the bound the Bernstein range uses.
        assert ratio_product <= cap

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="weight_cap"):
            tilted_proposal([F(1, 2)], weight_cap=F(1, 2))
        with pytest.raises(ValueError, match="tilt"):
            tilted_proposal([F(1, 2)], tilt=F(1))

    def test_importance_weighted_mean_is_unbiased_in_expectation(self):
        """Exhaustively over all worlds: the proposal-weighted
        likelihood ratio of the satisfying indicator sums to the exact
        Pr(F) — the identity the estimator's validity rests on."""
        formula = CNF([["a", "b"], ["c"]])
        weights = {"a": F(1, 4), "b": F(1, 8), "c": F(1, 3)}
        scope = sorted(formula.variables())
        marginals = [weights[v] for v in scope]
        proposal = tilted_proposal(marginals)
        total = F(0)
        for bits in itertools.product([False, True], repeat=3):
            world = dict(zip(scope, bits))
            if not all(any(world[v] for v in clause)
                       for clause in formula.clauses):
                continue
            q_prob = F(1)
            ratio = F(1)
            for _var, bit, p, q in zip(scope, bits, marginals, proposal):
                q_prob *= q if bit else 1 - q
                ratio *= (p / q) if bit else (1 - p) / (1 - q)
            total += q_prob * ratio
        assert total == brute_force_probability(formula, weights)

    def test_max_samples_caps_the_run(self):
        formula = random_cnf(5)
        weights = random_weights(formula, 6)
        estimate = importance_estimate_probability(
            formula, weights, F(1, 100), F(1, 20), rng=0,
            max_samples=256)
        assert estimate.samples <= 256

    def test_pinned_marginals_sample_correctly(self):
        """Variables at 0/1 cannot be tilted; the sampler must still
        cover the exact probability of the residual formula."""
        formula = CNF([["a", "b"], ["b", "c"], ["d"]])
        weights = {"a": F(0), "b": F(1, 3), "c": F(1, 2), "d": F(1)}
        exact = brute_force_probability(formula, weights)
        estimate = importance_estimate_probability(
            formula, weights, F(1, 10), F(1, 10), rng=4)
        assert_exact_fractions(estimate)
        assert estimate.contains(exact)


class TestEstimatorRegistry:
    def test_dispatch(self):
        formula = random_cnf(3)
        weights = random_weights(formula, 4)
        assert estimate_with("hoeffding", formula, weights,
                             rng=1).method == "hoeffding"
        assert estimate_with("adaptive", formula, weights,
                             rng=1).method == "bernstein"
        assert estimate_with("importance", formula, weights,
                             rng=1).method == "importance"

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            estimate_with("magic", CNF([["x"]]))

    def test_hoeffding_has_no_relative_mode(self):
        with pytest.raises(ValueError, match="relative-error"):
            estimate_with("hoeffding", CNF([["x"]]),
                          relative_error=F(1, 2))

    def test_batch_shares_one_rng(self):
        formula = random_cnf(7)
        specs = [random_weights(formula, s) for s in (1, 2)]
        batch = estimate_batch_with("adaptive", formula, specs, rng=5)
        assert len(batch) == 2
        # Reproducible as a whole, not per entry: the second entry
        # continues the first's stream.
        again = estimate_batch_with("adaptive", formula, specs, rng=5)
        assert batch == again

    def test_resolve_sweep_method(self):
        assert resolve_sweep_method("exact", "hoeffding") == \
            ("exact", "hoeffding")
        assert resolve_sweep_method("adaptive", "hoeffding") == \
            ("auto", "adaptive")
        assert resolve_sweep_method("adaptive", "importance") == \
            ("auto", "importance")
        with pytest.raises(ValueError, match="method"):
            resolve_sweep_method("magic", "hoeffding")


class TestBudgetPlanner:
    def test_fit_extrapolates_exponential_growth(self):
        planner = BudgetPlanner(margin=1, floor=2, cap=10 ** 12)
        for clauses, nodes in ((10, 100), (20, 1000), (30, 10_000)):
            planner.observe(clauses, nodes)
        predicted = planner.predict_nodes(40)
        assert 50_000 <= predicted <= 200_000  # ~100k on the true line

    def test_no_trajectory_returns_fallback(self):
        planner = BudgetPlanner()
        formula = CNF([["x", "y"]])
        assert planner.budget_for(formula) is None
        assert planner.budget_for(formula, fallback=777) == 777
        planner.observe(5, 50)
        planner.observe(5, 60)  # same clause count: still no slope
        assert planner.budget_for(formula, fallback=777) == 777

    def test_budget_clamped_to_floor_and_cap(self):
        planner = BudgetPlanner(margin=2, floor=500, cap=2_000)
        planner.observe(10, 100)
        planner.observe(20, 1000)
        tiny = CNF([["x"]])
        assert planner.budget_for(tiny) == 500  # floor
        big = CNF([[f"a{i}", f"b{i}"] for i in range(40)])
        assert planner.budget_for(big) == 2_000  # cap

    def test_overflow_guard(self):
        planner = BudgetPlanner(margin=1, floor=2, cap=10 ** 9)
        planner.observe(10, 10)
        planner.observe(20, 10_000)
        huge = planner.predict_nodes(10_000)
        assert huge == 1 << 62

    def test_from_growth_records_and_stats(self):
        records = [{"n": 16, "clauses": 64, "circuit_nodes": 900},
                   {"n": 24, "clauses": 96, "circuit_nodes": 9000}]
        planner = BudgetPlanner.from_growth_records(
            records, margin=4, floor=256, cap=100_000)
        assert planner.observations == 2
        formula = CNF([[f"x{i}", f"y{i}"] for i in range(64)])
        assert planner.budget_for(formula) >= 900
        stats = planner.stats()
        assert stats["observations"] == 2
        assert stats["planned_budgets"] == 1

    def test_parameter_and_observation_validation(self):
        with pytest.raises(ValueError, match="margin"):
            BudgetPlanner(margin=0)
        with pytest.raises(ValueError, match="floor"):
            BudgetPlanner(floor=1)
        with pytest.raises(ValueError, match="cap"):
            BudgetPlanner(floor=100, cap=50)
        with pytest.raises(ValueError, match="observation"):
            BudgetPlanner().observe(0, 10)

    def test_duplicate_observations_collapse(self):
        planner = BudgetPlanner()
        planner.observe(10, 100)
        planner.observe(10, 100)
        assert planner.observations == 1


def small_tid(query):
    probs = {r_tuple("u"): F(1, 2), t_tuple("v"): F(1, 2)}
    for s in sorted(query.binary_symbols):
        probs[s_tuple(s, "u", "v")] = F(1, 2)
    return TID(["u"], ["v"], probs)


class TestPolicyThreading:
    def test_evaluate_adaptive_method(self):
        query = rst_query()
        tid = small_tid(query)
        exact = evaluate(query, tid, method="wmc").value
        result = evaluate(query, tid, method="adaptive", rng=5)
        assert result.method == "adaptive"
        assert result.engine == "adaptive"
        assert result.estimate is not None
        assert result.estimate.method == "bernstein"
        assert result.estimate.contains(exact)

    def test_evaluate_importance_method(self):
        query = rst_query()
        tid = small_tid(query)
        exact = evaluate(query, tid, method="wmc").value
        result = evaluate(query, tid, method="importance", rng=5)
        assert result.method == "importance"
        assert result.engine == "importance"
        assert result.estimate.method == "importance"
        assert result.estimate.contains(exact)

    def test_evaluate_auto_degrades_to_chosen_estimator(self):
        query = rst_query()
        tid = small_tid(query)
        wmc.clear_circuit_cache()
        result = evaluate(query, tid, budget_nodes=2, rng=0,
                          estimator="adaptive")
        assert result.method == "adaptive"
        assert result.estimate.samples_used == result.estimate.samples

    def test_false_query_estimate_methods_degenerate(self):
        from repro.core.queries import Query

        result = evaluate(Query.FALSE, small_tid(rst_query()),
                          method="adaptive")
        assert result.method == "adaptive"
        assert result.value == 0
        assert result.estimate.samples_used == 0

    def test_probability_sweep_adaptive_estimator(self):
        formula = lineage(rst_query(), path_block(rst_query(), 3))
        weight_maps = [None, {v: F(1, 4) for v in formula.variables()}]
        exact = probability_sweep(formula, weight_maps)
        wmc.clear_circuit_cache()
        approx = probability_sweep(formula, weight_maps,
                                   budget_nodes=2, rng=0,
                                   estimator="adaptive")
        for a, e in zip(approx, exact):
            assert abs(a - e) <= F(1, 20)

    def test_probability_batch_auto_records_estimator_engine(self):
        formula = lineage(rst_query(), path_block(rst_query(), 3))
        wmc.clear_circuit_cache()
        sweep = wmc.probability_batch_auto(
            formula, [None], budget_nodes=2, rng=0,
            estimator="adaptive")
        assert sweep.engine == "adaptive"
        assert sweep.estimates[0].method == "bernstein"

    def test_z_matrix_adaptive_matches_exact_within_epsilon(self):
        query = rst_query()
        exact = z_matrix_direct(query, 3)
        wmc.clear_circuit_cache()
        approx = z_matrix_direct(query, 3, method="adaptive",
                                 budget_nodes=2, rng=0)
        for i in range(2):
            for j in range(2):
                assert abs(approx[i, j] - exact[i, j]) <= F(1, 20)

    def test_planner_learns_through_the_auto_tier(self):
        """A planned sweep that compiles exactly feeds the planner's
        trajectory; the planner's budget then governs the next call."""
        planner = BudgetPlanner(margin=2, floor=4, cap=10)
        formula = lineage(rst_query(), path_block(rst_query(), 3))
        wmc.clear_circuit_cache()
        answer = wmc.cnf_probability_auto(
            formula, None, budget_nodes=None, planner=planner)
        assert answer.engine == "exact"
        assert planner.observations == 1
        other = lineage(rst_query(), path_block(rst_query(), 4))
        wmc.clear_circuit_cache()
        answer = wmc.cnf_probability_auto(
            other, None, budget_nodes=None, planner=planner)
        assert answer.engine == "exact"
        assert planner.observations == 2
        # Two distinct clause counts -> a trajectory; the tiny cap now
        # aborts a third, larger formula straight to the estimator.
        third = lineage(rst_query(), path_block(rst_query(), 5))
        wmc.clear_circuit_cache()
        answer = wmc.cnf_probability_auto(
            third, None, budget_nodes=None, planner=planner,
            estimator="adaptive", rng=0)
        assert answer.engine == "adaptive"
        assert wmc.cache_info()["budget_aborts"] == 1

    def test_probability_sweep_feeds_planner_without_budget(self):
        """A planner passed to probability_sweep learns from the exact
        compile even while it has no trajectory (and hence no budget)
        to plan with yet."""
        planner = BudgetPlanner()
        formula = lineage(rst_query(), path_block(rst_query(), 3))
        wmc.clear_circuit_cache()
        probability_sweep(formula, [None], planner=planner)
        assert planner.observations == 1

    def test_y_sweep_adaptive_method_accepted(self):
        from repro.core.catalog import example_c15
        from repro.reduction.type2_blocks import type2_block
        from repro.reduction.type2_lattice import TypeIIStructure

        query = example_c15()
        structure = TypeIIStructure(query)
        block = type2_block(query, p=1)
        alpha = beta = frozenset([0])
        overlays = [{}]
        exact = structure.y_probability_sweep(
            block, "r0", "t1", alpha, beta, overlays)
        adaptive = structure.y_probability_sweep(
            block, "r0", "t1", alpha, beta, overlays,
            method="adaptive")
        assert adaptive == exact  # under budget: still exact