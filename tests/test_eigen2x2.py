"""Exact 2x2 spectral analysis — repro.algebra.eigen2x2."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.eigen2x2 import (
    check_condition_22,
    check_condition_23,
    check_condition_24,
    spectral_decomposition_2x2,
)
from repro.algebra.matrices import Matrix
from repro.algebra.quadratic import QuadraticNumber

F = Fraction


def mat(rows):
    return Matrix([[F(e) for e in row] for row in rows])


class TestDecomposition:
    def test_diagonal(self):
        dec = spectral_decomposition_2x2(mat([[2, 0], [0, 3]]))
        assert {dec.lambda1, dec.lambda2} == {QuadraticNumber(2),
                                              QuadraticNumber(3)}

    def test_power_reconstruction_rational(self):
        m = mat([[2, 1], [1, 1]])
        dec = spectral_decomposition_2x2(m)
        for p in range(5):
            expected = m ** p
            got = dec.power(p)
            for i in range(2):
                for j in range(2):
                    assert got[i, j] == QuadraticNumber(expected[i, j])

    def test_entry_at_power(self):
        m = mat([[F(1, 4), F(3, 8)], [F(3, 8), F(5, 8)]])
        dec = spectral_decomposition_2x2(m)
        m3 = m ** 3
        assert dec.entry_at_power(0, 1, 3) == QuadraticNumber(m3[0, 1])

    def test_repeated_eigenvalue_raises(self):
        with pytest.raises(ValueError):
            spectral_decomposition_2x2(mat([[1, 0], [0, 1]]))

    def test_non_2x2_raises(self):
        with pytest.raises(ValueError):
            spectral_decomposition_2x2(Matrix.identity(3))

    def test_trace_and_det(self):
        m = mat([[2, 1], [1, 1]])
        dec = spectral_decomposition_2x2(m)
        assert dec.lambda1 + dec.lambda2 == QuadraticNumber(3)
        assert dec.lambda1 * dec.lambda2 == QuadraticNumber(1)


class TestConditions:
    def test_condition_22_good(self):
        dec = spectral_decomposition_2x2(mat([[2, 1], [1, 1]]))
        assert check_condition_22(dec)

    def test_condition_22_singular(self):
        dec = spectral_decomposition_2x2(mat([[1, 1], [1, 1]]))
        assert not check_condition_22(dec)  # lambda2 = 0

    def test_condition_22_opposite(self):
        dec = spectral_decomposition_2x2(mat([[0, 1], [1, 0]]))
        assert not check_condition_22(dec)  # lambda1 = -lambda2

    def test_condition_23_diagonal_fails(self):
        # For diagonal matrices one of the b-coefficients vanishes.
        dec = spectral_decomposition_2x2(mat([[2, 0], [0, 3]]))
        assert not check_condition_23(dec)

    def test_conditions_hold_generic(self):
        dec = spectral_decomposition_2x2(mat([[F(1, 4), F(3, 8)],
                                              [F(3, 8), F(5, 8)]]))
        assert check_condition_22(dec)
        assert check_condition_23(dec)
        assert check_condition_24(dec)


class TestPropertyReconstruction:
    entries = st.integers(-4, 4)

    @given(entries, entries, entries, entries)
    @settings(max_examples=60, deadline=None)
    def test_random_matrices(self, a, b, c, d):
        m = mat([[a, b], [c, d]])
        trace = a + d
        det = a * d - b * c
        disc = trace * trace - 4 * det
        if disc < 0:
            return  # complex eigenvalues unsupported (never arises here)
        try:
            dec = spectral_decomposition_2x2(m)
        except ValueError:
            return  # repeated eigenvalue
        m4 = m ** 4
        got = dec.power(4)
        for i in range(2):
            for j in range(2):
                assert got[i, j] == QuadraticNumber(m4[i, j])
