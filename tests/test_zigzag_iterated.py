"""Iterated zig-zag chains (the proof of Theorem 2.2 applies Lemma 2.6
up to three times to reach type A-A queries of length >= 8)."""

import pytest

from repro.core import catalog
from repro.core.final import find_final, is_final
from repro.core.safety import is_unsafe, query_length, query_type
from repro.counting.p2cnf import P2CNF
from repro.reduction.type1 import Type1Reduction
from repro.reduction.zigzag import zigzag_query


class TestIteratedZigzag:
    def test_double_zigzag_doubles_twice(self):
        q = catalog.rst_query()
        k = query_length(q)
        z1 = zigzag_query(q)
        assert query_length(z1) >= 2 * k
        z2 = zigzag_query(z1)
        assert query_length(z2) >= 2 * query_length(z1)
        assert is_unsafe(z2)
        assert query_type(z2) == ("I", "I")

    def test_length_8_reachable_for_type2(self):
        """The Theorem 2.9(2) prerequisite: three zg applications give
        type II-II length >= 8 (here two suffice from length 2)."""
        q = catalog.example_c9()
        z1 = zigzag_query(q)
        assert query_length(z1) >= 4
        z2 = zigzag_query(z1)
        assert query_length(z2) >= 8
        assert query_type(z2) == ("II", "II")

    def test_symbol_growth_is_linear_per_level(self):
        q = catalog.rst_query()
        z1 = zigzag_query(q)
        # n = 2 branches: every binary symbol splits in two, T folds in.
        assert len(z1.binary_symbols) <= 2 * len(q.binary_symbols) + 1


class TestZigzagFeedsReduction:
    def test_finalized_zigzag_query_counts(self):
        """zg output re-finalizes to a working Type-I reduction query:
        the full Theorem 2.2 chain stays executable."""
        z1 = zigzag_query(catalog.rst_query())
        assert query_type(z1) == ("I", "I")
        final, trace = find_final(z1)
        assert is_final(final)
        if query_type(final) != ("I", "I"):
            pytest.skip("rewrites left the I-I fragment")
        phi = P2CNF(2, ((0, 1),))
        result = Type1Reduction(final).run(phi)
        assert result.model_count == 3

    def test_zigzag_of_path2(self):
        z1 = zigzag_query(catalog.path_query(2))
        final, _ = find_final(z1)
        assert is_final(final)
        if query_type(final) == ("I", "I"):
            phi = P2CNF.path(3)
            assert Type1Reduction(final).run(phi).model_count == 5
