"""The big matrix of Theorem 3.6 (experiment E7)."""

from fractions import Fraction

import pytest

from repro.reduction.big_matrix import (
    big_matrix,
    conditions_11_13,
    exponent_vectors,
    parameter_vectors,
    theorem36_matrix,
)

F = Fraction

#: A coefficient family satisfying conditions (11)-(13).
GOOD = {
    "lambda1": F(1, 2),
    "lambda2": F(1, 5),
    "coeffs": [(F(1), F(1)), (F(2), F(1, 3)), (F(-1), F(1, 7))],
}


class TestIndexSets:
    def test_exponent_vectors(self):
        assert len(exponent_vectors(2, 2)) == 9

    def test_parameter_vectors(self):
        assert parameter_vectors(1, 1) == [(1,), (2,)]


class TestConditions:
    def test_good(self):
        assert conditions_11_13(GOOD["lambda1"], GOOD["lambda2"],
                                GOOD["coeffs"])

    def test_zero_lambda(self):
        assert not conditions_11_13(F(0), F(1), GOOD["coeffs"])

    def test_equal_lambdas(self):
        assert not conditions_11_13(F(1, 2), F(1, 2), GOOD["coeffs"])

    def test_opposite_lambdas(self):
        assert not conditions_11_13(F(1, 2), F(-1, 2), GOOD["coeffs"])

    def test_zero_b(self):
        assert not conditions_11_13(F(1, 2), F(1, 5),
                                    [(F(1), F(0)), (F(2), F(1))])

    def test_proportional_pairs(self):
        assert not conditions_11_13(F(1, 2), F(1, 5),
                                    [(F(1), F(1)), (F(2), F(2))])


class TestTheorem36H1:
    """h = 1: rows are distinct parameter values, always non-singular
    under the conditions."""

    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_nonsingular(self, m):
        matrix = theorem36_matrix(
            m, 1, GOOD["lambda1"], GOOD["lambda2"], GOOD["coeffs"][:2])
        assert not matrix.is_singular()

    def test_violated_conditions_singular(self):
        """With proportional coefficient pairs the matrix collapses."""
        coeffs = [(F(1), F(1)), (F(2), F(2))]  # violates (13)
        matrix = theorem36_matrix(2, 1, GOOD["lambda1"], GOOD["lambda2"],
                                  coeffs)
        assert matrix.is_singular()


class TestTheorem36H2:
    """h = 2: the naive grid {1..m+1}^2 contains symmetric duplicate
    rows (y is symmetric under swapping p1, p2) — the reduction
    therefore selects rows by rank; restricted to distinct multisets
    the system used in Section 3.2 has full rank."""

    def test_grid_rows_duplicate(self):
        m = 1
        matrix = theorem36_matrix(
            m, 2, GOOD["lambda1"], GOOD["lambda2"], GOOD["coeffs"])
        rows = matrix.rows
        params = parameter_vectors(m, 2)
        i12 = params.index((1, 2))
        i21 = params.index((2, 1))
        assert rows[i12] == rows[i21]
        assert matrix.is_singular()

    @pytest.mark.parametrize("m", [1, 2])
    def test_full_rank_over_multisets(self, m):
        """Restricting columns to realizable exponents (k1 + k2 <= m)
        and rows to parameter multisets gives a non-singular system —
        the form the Type-I reduction solves."""
        from repro.algebra.matrices import Matrix

        def y(i, p):
            a, b = GOOD["coeffs"][i]
            value = F(1)
            for pj in p:
                value *= (a * GOOD["lambda1"] ** pj
                          + b * GOOD["lambda2"] ** pj)
            return value

        columns = [(k1, k2) for k1 in range(m + 1)
                   for k2 in range(m + 1 - k1)]
        multisets = [(p1, p2) for p2 in range(1, 3 * m + 2)
                     for p1 in range(1, p2 + 1)]
        rows = []
        for params in multisets:
            row = [y(0, params) ** (m - k1 - k2)
                   * y(1, params) ** k1 * y(2, params) ** k2
                   for (k1, k2) in columns]
            rows.append(row)
        # Greedy row selection must reach full rank.
        selected: list[list[F]] = []
        for row in rows:
            candidate = Matrix(selected + [row])
            if candidate.rank() == len(selected) + 1:
                selected.append(row)
            if len(selected) == len(columns):
                break
        assert len(selected) == len(columns)
        assert not Matrix(selected).is_singular()

    def test_big_matrix_y0_zero_raises(self):
        with pytest.raises(ValueError):
            big_matrix(1, 1, lambda i, p: F(0))
