"""The query service end to end: a real server on an ephemeral port,
real sockets, the client library and the CLI verbs against it."""

import json
import socket
import subprocess
import sys
import threading

from fractions import Fraction

import pytest

from repro.cli import main, parse_query
from repro.evaluation import evaluate, probability_sweep
from repro.reduction.blocks import path_block
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    decode_world,
    dump_line,
)
from repro.service.scheduler import CompilePool, SweepCoalescer
from repro.service.server import ReproServer
from repro.tid import wmc
from repro.tid.lineage import lineage

F = Fraction
QUERY = "(R|S1)(S1|T)"


def workload(text=QUERY, p=4):
    query = parse_query(text)
    tid = path_block(query, p)
    return query, tid, lineage(query, tid)


@pytest.fixture(autouse=True)
def isolated_cache():
    wmc.clear_circuit_cache()
    wmc.set_circuit_store(None)
    yield
    wmc.set_circuit_store(None)
    wmc.clear_circuit_cache()


@pytest.fixture()
def server():
    with ReproServer(port=0, window=0.02) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServiceClient(*server.address) as c:
        yield c


class TestBasicOps:
    def test_ping(self, client):
        assert client.ping() == {"pong": True}

    def test_evaluate_matches_library(self, client):
        query, tid, _ = workload()
        expected = evaluate(query, tid)
        result = client.evaluate(QUERY, p=4)
        assert result["value"] == str(expected.value)
        assert result["method"] == expected.method
        assert result["engine"] == "exact"
        assert result["safe"] == expected.safe
        assert result["float"] == pytest.approx(float(expected.value))

    def test_evaluate_safe_query_goes_lifted(self, client):
        result = client.evaluate("(R|S1)", p=3)
        assert result["method"] == "lifted"
        assert result["engine"] == "exact"
        assert result["safe"] is True

    def test_forced_methods(self, client):
        exact = client.evaluate(QUERY, p=3, method="shannon")
        assert exact["method"] == "shannon"
        est = client.evaluate(QUERY, p=3, method="estimate", seed=7)
        assert est["method"] == "estimate"
        assert est["estimate"]["samples"] > 0
        # The estimator's interval must contain the exact value.
        low, high = F(est["estimate"]["low"]), F(est["estimate"]["high"])
        assert low <= F(exact["value"]) <= high

    def test_per_request_budget_degrades_gracefully(self, client):
        degraded = client.evaluate(QUERY, p=6, budget_nodes=2, seed=1)
        assert degraded["engine"] == "estimate"
        assert degraded["method"] == "estimate"
        assert degraded["estimate"]["samples"] > 0
        # The degradation is per-request: the same query still answers
        # exactly once the budget allows it.
        exact = client.evaluate(QUERY, p=6)
        assert exact["engine"] == "exact"

    def test_compile_then_memory_cache(self, client):
        first = client.compile(QUERY, p=4)
        assert first["source"] == "compiled"
        assert first["circuit"]["size"] > 0
        assert len(first["fingerprint"]) == 64
        again = client.compile(QUERY, p=4)
        assert again["source"] == "memory cache"
        assert again["circuit"] == first["circuit"]

    def test_compile_budget_exceeded_is_structured(self, client):
        with pytest.raises(ServiceError) as info:
            client.compile(QUERY, p=6, budget_nodes=2)
        assert info.value.code == "budget-exceeded"

    def test_sweep_matches_library(self, client):
        from repro.evaluation import endpoint_weight_grid

        _, tid, formula = workload()
        expected = probability_sweep(
            formula, endpoint_weight_grid(formula, tid, 5))
        result = client.sweep(QUERY, p=4, grid=5)
        assert result["engine"] == "exact"
        assert result["values"] == [str(v) for v in expected]
        assert len(result["grid"]) == 5

    def test_sweep_float_numeric(self, client):
        result = client.sweep(QUERY, p=4, grid=4, numeric="float")
        assert result["engine"] == "exact"
        assert all(isinstance(v, float) for v in result["values"])

    def test_sweep_budget_degrades_with_estimates(self, client):
        result = client.sweep(QUERY, p=6, grid=3, budget_nodes=2,
                              seed=3)
        assert result["engine"] == "estimate"
        assert len(result["estimates"]) == 3
        assert all(e["samples"] > 0 for e in result["estimates"])

    def test_evaluate_batch(self, client):
        result = client.evaluate_batch(QUERY, ps=[2, 3, 4])
        assert result["count"] == 3
        for p, entry in zip([2, 3, 4], result["results"]):
            query, tid, _ = workload(p=p)
            assert entry["value"] == str(evaluate(query, tid).value)
            assert entry["p"] == p

    def test_estimate(self, client):
        result = client.estimate(QUERY, p=4, epsilon="1/10", seed=2)
        assert result["engine"] == "estimate"
        assert result["estimate"]["epsilon"] == "1/10"
        query, tid, _ = workload()
        exact = evaluate(query, tid).value
        assert (F(result["estimate"]["low"]) <= exact
                <= F(result["estimate"]["high"]))

    def test_sample_worlds_satisfy_the_lineage(self, client):
        result = client.sample(QUERY, p=4, k=5, seed=11)
        _, _, formula = workload()
        assert len(result["worlds"]) == 5
        for encoded in result["worlds"]:
            world = decode_world(encoded)
            assert set(world) == formula.variables()
            true_vars = {var for var, val in world.items() if val}
            assert formula.evaluate(true_vars)

    def test_sample_is_seed_deterministic(self, client):
        a = client.sample(QUERY, p=4, k=3, seed=9)
        b = client.sample(QUERY, p=4, k=3, seed=9)
        assert a["worlds"] == b["worlds"]

    def test_top_k_matches_circuit(self, client):
        _, tid, formula = workload()
        expected = wmc.compiled(formula).top_k_worlds(
            tid.probability, 4)
        result = client.top_k(QUERY, p=4, k=4)
        assert [w["probability"] for w in result["worlds"]] == \
            [str(prob) for prob, _ in expected]
        assert [decode_world(w["world"]) for w in result["worlds"]] == \
            [world for _, world in expected]

    def test_stats_shape(self, client):
        client.evaluate(QUERY, p=4)
        stats = client.stats()
        for key in ("hits", "compiles", "store_misses",
                    "budget_aborts", "store_attached"):
            assert key in stats["cache"]
        for key in ("requests", "errors", "ops", "coalesced_batches",
                    "batch_passes", "compile_jobs", "compile_joins",
                    "workers", "window_s", "uptime_s"):
            assert key in stats["service"]
        assert stats["service"]["ops"]["evaluate"] == 1


class TestErrors:
    def test_bad_query_text(self, client):
        with pytest.raises(ServiceError) as info:
            client.evaluate("no parens here")
        assert info.value.code == "bad-query"

    def test_stray_param_rejected(self, client):
        with pytest.raises(ServiceError) as info:
            client.call("evaluate", query=QUERY, tpyo=1)
        assert info.value.code == "bad-request"
        assert "tpyo" in info.value.message

    def test_bad_method_rejected(self, client):
        with pytest.raises(ServiceError) as info:
            client.evaluate(QUERY, method="magic")
        assert info.value.code == "bad-request"

    def test_sweep_without_endpoints_rejected(self, client):
        with pytest.raises(ServiceError) as info:
            client.sweep("(S1|S2)", p=3)
        assert info.value.code == "bad-query"

    def test_connection_survives_malformed_lines(self, server):
        with socket.create_connection(server.address,
                                      timeout=30) as sock:
            handle = sock.makefile("rwb")
            for garbage in (b"{not json\n", b"[1,2]\n",
                            b'{"v":99,"op":"ping"}\n',
                            b'{"v":%d,"op":"nope"}\n'
                            % PROTOCOL_VERSION):
                handle.write(garbage)
                handle.flush()
                response = json.loads(handle.readline())
                assert response["ok"] is False
                assert response["error"]["code"] in (
                    "parse-error", "bad-request",
                    "unsupported-version", "unknown-op")
            # After four rejected requests the connection still works.
            handle.write(dump_line(
                {"v": PROTOCOL_VERSION, "id": 1, "op": "ping"}))
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is True
            assert response["result"] == {"pong": True}

    def test_internal_errors_do_not_kill_the_connection(self, client):
        # Probability-zero sampling is a domain error, reported
        # structurally, and the session continues.
        with pytest.raises(ServiceError) as info:
            client.call("sample", query=QUERY, p=4, k="three")
        assert info.value.code == "bad-request"
        assert client.ping() == {"pong": True}


class TestClientConnectionClosed:
    """Regression: a ``call`` after the connection was torn down (a
    per-call timeout, an explicit ``close``, a dead server) surfaced
    as a raw ``OSError``/``ValueError`` from the dead file object
    instead of a structured ``ServiceError``."""

    def test_call_after_close_is_structured(self, server):
        client = ServiceClient(*server.address)
        assert client.ping() == {"pong": True}
        client.close()
        with pytest.raises(ServiceError) as info:
            client.ping()
        assert info.value.code == "connection-closed"
        assert "reconnect=True" in info.value.message

    def test_call_after_timeout_is_structured(self):
        # A listener that accepts but never answers forces the
        # per-call deadline deterministically.
        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        try:
            client = ServiceClient("127.0.0.1",
                                   silent.getsockname()[1])
            with pytest.raises(ServiceError) as info:
                client.call("ping", timeout=0.05)
            assert info.value.code == "timeout"
            with pytest.raises(ServiceError) as info:
                client.ping()
            assert info.value.code == "connection-closed"
            client.close()
        finally:
            silent.close()

    def test_reconnect_redials_after_close(self, server):
        with ServiceClient(*server.address, reconnect=True) as client:
            assert client.ping() == {"pong": True}
            client.close()
            # The redial runs the same bounded connect-retry path the
            # constructor uses; the session then continues as if
            # nothing happened.
            assert client.ping() == {"pong": True}
            assert client.evaluate(QUERY, p=3)["engine"] == "exact"

    def test_reconnect_failure_is_structured(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.listen(1)
        client = ServiceClient("127.0.0.1", port, reconnect=True,
                               connect_retries=0)
        client.close()
        probe.close()  # nobody listens on that port any more
        with pytest.raises(ServiceError) as info:
            client.ping()
        assert info.value.code == "connection-closed"
        assert "reconnect" in info.value.message

    def test_peer_death_mid_session_is_structured(self):
        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        try:
            client = ServiceClient("127.0.0.1",
                                   silent.getsockname()[1])
            conn, _ = silent.accept()
            conn.close()  # the peer dies mid-session
            # The next exchange must not surface a raw socket error.
            with pytest.raises(ServiceError) as info:
                client.ping()
            assert info.value.code == "connection-closed"
            client.close()
        finally:
            silent.close()


class TestCoalescing:
    def test_concurrent_sweeps_one_compile_one_pass(self):
        """The acceptance criterion: N concurrent same-fingerprint
        sweep requests trigger exactly one compilation and coalesce
        into one batched pass, observable via the stats endpoint."""
        n = 5
        with ReproServer(port=0, window=0.5) as server:
            results = [None] * n
            barrier = threading.Barrier(n)

            def worker(i):
                with ServiceClient(*server.address) as c:
                    barrier.wait()
                    results[i] = c.sweep(QUERY, p=6, grid=8)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServiceClient(*server.address) as c:
                stats = c.stats()

        assert all(r is not None for r in results)
        assert all(r["engine"] == "exact" for r in results)
        # Every client got the same (correct) values...
        from repro.evaluation import endpoint_weight_grid

        _, tid, formula = workload(p=6)
        expected = [str(v) for v in probability_sweep(
            formula, endpoint_weight_grid(formula, tid, 8))]
        assert all(r["values"] == expected for r in results)
        # ...from exactly one compilation and one batched pass.
        assert stats["cache"]["compiles"] == 1
        assert stats["service"]["batch_passes"] == 1
        assert stats["service"]["coalesced_batches"] == 1
        assert stats["service"]["coalesced_requests"] == n - 1

    def test_budget_blocked_concurrent_sweeps_stay_seed_reproducible(
            self):
        """Estimator-path sweeps never share a coalesced rng stream: a
        request's seeded estimates are identical whether it ran alone
        or raced N identical requests."""
        n = 3
        kwargs = dict(p=6, grid=3, budget_nodes=2, seed=5)
        with ReproServer(port=0, window=0.3) as server:
            results = [None] * n
            barrier = threading.Barrier(n)

            def worker(i):
                with ServiceClient(*server.address) as c:
                    barrier.wait()
                    results[i] = c.sweep(QUERY, **kwargs)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServiceClient(*server.address) as c:
                solo = c.sweep(QUERY, **kwargs)
        assert all(r["engine"] == "estimate" for r in results)
        assert all(r["values"] == solo["values"] for r in results)
        assert all(r["estimates"] == solo["estimates"]
                   for r in results)

    def test_compile_pool_dedupes_inflight(self):
        calls = []
        pool = CompilePool(workers=2)
        gate = threading.Event()

        def build():
            calls.append(1)
            gate.wait(timeout=10)
            return "circuit"

        outcomes = []
        threads = [threading.Thread(
            target=lambda: outcomes.append(pool.run("key", build)))
            for _ in range(4)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        pool.shutdown()
        assert outcomes == ["circuit"] * 4
        assert len(calls) == 1
        assert pool.stats()["compile_joins"] == 3

    def test_compile_pool_propagates_errors_to_joiners(self):
        pool = CompilePool(workers=1)

        def boom():
            raise RuntimeError("nope")

        for _ in range(2):
            with pytest.raises(RuntimeError):
                pool.run("key", boom)
        pool.shutdown()

    def test_coalescer_slices_per_request(self):
        coalescer = SweepCoalescer(window=0.2)

        class FakeSweep:
            def __init__(self, values):
                self.values = values
                self.engine = "exact"
                self.estimates = None

        def runner(vectors):
            return FakeSweep([v * 10 for v in vectors])

        outcomes = {}
        barrier = threading.Barrier(3)

        def worker(name, vectors):
            barrier.wait()
            outcomes[name] = coalescer.submit("key", vectors, runner)

        threads = [
            threading.Thread(target=worker, args=("a", [1, 2])),
            threading.Thread(target=worker, args=("b", [3])),
            threading.Thread(target=worker, args=("c", [4, 5, 6]))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes["a"][0] == [10, 20]
        assert outcomes["b"][0] == [30]
        assert outcomes["c"][0] == [40, 50, 60]
        assert coalescer.stats()["coalesced_batches"] == 1


class TestStoreIntegration:
    def test_disk_store_serves_cold_memory(self, tmp_path):
        with ReproServer(port=0, store=str(tmp_path)) as server:
            with ServiceClient(*server.address) as c:
                first = c.compile(QUERY, p=4)
                assert first["source"] == "compiled"
                assert c.stats()["cache"]["store_attached"] is True
                # A cold tier-1 cache (fresh process in real life)
                # hits the disk store instead of recompiling.
                wmc.clear_circuit_cache()
                again = c.compile(QUERY, p=4)
                assert again["source"] == "disk store"
                assert c.stats()["cache"]["compiles"] == 0


class TestTapeService:
    def test_stats_expose_tape_counters(self, client):
        stats = client.stats()
        for key in ("tape_hits", "tape_flattens", "tape_bytes"):
            assert key in stats["cache"]

    def test_float_sweep_flattens_once(self, client):
        client.sweep(QUERY, p=4, grid=6, numeric="float")
        first = client.stats()["cache"]
        assert first["tape_flattens"] == 1
        assert first["tape_bytes"] > 0
        client.sweep(QUERY, p=4, grid=6, numeric="float")
        second = client.stats()["cache"]
        assert second["tape_flattens"] == 1  # no re-flatten
        assert second["tape_hits"] > first["tape_hits"]

    def test_exact_sweep_does_not_flatten(self, client):
        client.sweep(QUERY, p=4, grid=4)
        assert client.stats()["cache"]["tape_flattens"] == 0

    def test_warm_store_sweep_never_reflattens(self, tmp_path):
        """The acceptance contract: a float sweep against a warm
        store (cold memory cache — a restarted process in real life)
        adopts the persisted tape, proving zero re-flattens through
        the live stats counters."""
        with ReproServer(port=0, store=str(tmp_path)) as server:
            with ServiceClient(*server.address) as c:
                first = c.sweep(QUERY, p=4, grid=6, numeric="float")
                assert c.stats()["cache"]["tape_flattens"] == 1

                wmc.clear_circuit_cache()  # simulate a restart
                again = c.sweep(QUERY, p=4, grid=6, numeric="float")
                stats = c.stats()["cache"]
                assert stats["compiles"] == 0
                assert stats["tape_flattens"] == 0
                assert stats["tape_bytes"] > 0
                assert again["values"] == first["values"]


class TestStoreGC:
    def test_store_gc_prunes_to_budget(self, tmp_path):
        with ReproServer(port=0, store=str(tmp_path)) as server:
            with ServiceClient(*server.address) as c:
                c.compile(QUERY, p=4)
                c.sweep(QUERY, p=4, grid=4, numeric="float")
                report = c.store_gc(max_bytes=0)
                assert report["bytes_after"] == 0
                assert report["removed"] >= 2  # circuit + tape
                assert report["store"] == str(tmp_path)
                # The store is empty but the service keeps working.
                assert c.compile(QUERY, p=4)["source"] in (
                    "compiled", "memory cache")

    def test_store_gc_without_store_is_bad_request(self, client):
        with pytest.raises(ServiceError) as info:
            client.store_gc(max_bytes=0)
        assert info.value.code == "bad-request"
        assert "store" in info.value.message

    def test_store_gc_validates_max_bytes(self, tmp_path):
        with ReproServer(port=0, store=str(tmp_path)) as server:
            with ServiceClient(*server.address) as c:
                with pytest.raises(ServiceError) as info:
                    c.call("store_gc")  # missing required param
                assert info.value.code == "bad-request"
                with pytest.raises(ServiceError) as info:
                    c.store_gc(max_bytes=-5)
                assert info.value.code == "bad-request"


class TestCLI:
    def test_query_verb_against_live_server(self, server, capsys):
        host, port = server.address
        code = main(["query", "evaluate", QUERY, "--p", "4",
                     "--host", host, "--port", str(port)])
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        assert result["engine"] == "exact"
        query, tid, _ = workload()
        assert result["value"] == str(evaluate(query, tid).value)

    def test_query_verb_stats(self, server, capsys):
        host, port = server.address
        assert main(["query", "stats", "--host", host,
                     "--port", str(port)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert "cache" in stats and "service" in stats

    def test_query_verb_needs_query_text(self, server):
        host, port = server.address
        with pytest.raises(SystemExit, match="needs a query"):
            main(["query", "evaluate", "--host", host,
                  "--port", str(port)])

    def test_query_verb_connection_refused_is_friendly(self):
        # Grab a port that is definitely closed.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(SystemExit, match="cannot connect"):
            main(["query", "stats", "--port", str(port)])

    def test_ctl_store_gc_local(self, tmp_path, capsys):
        wmc.set_circuit_store(str(tmp_path))
        _, _, formula = workload()
        circuit = wmc.compiled(formula)
        wmc.ensure_tape(formula, circuit)
        assert main(["ctl", "store-gc", "--max-bytes", "0",
                     "--store", str(tmp_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["bytes_after"] == 0
        assert report["removed"] >= 2
        assert report["store"] == str(tmp_path)

    def test_ctl_store_gc_remote(self, tmp_path, capsys):
        with ReproServer(port=0, store=str(tmp_path)) as server:
            host, port = server.address
            with ServiceClient(host, port) as c:
                c.compile(QUERY, p=4)
            assert main(["ctl", "store-gc", "--max-bytes", "0",
                         "--host", host, "--port", str(port)]) == 0
            report = json.loads(capsys.readouterr().out)
            assert report["bytes_after"] == 0
            assert report["removed"] >= 1

    def test_query_verb_refuses_store_gc(self, server):
        host, port = server.address
        with pytest.raises(SystemExit, match="ctl store-gc"):
            main(["query", "store_gc", "--host", host,
                  "--port", str(port)])

    def test_serve_flag_validation(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["serve", "--workers", "-1"])
        with pytest.raises(SystemExit, match="--compile-threads"):
            main(["serve", "--compile-threads", "0"])
        with pytest.raises(SystemExit, match="--window"):
            main(["serve", "--window", "-1"])

    def test_serve_verb_in_process(self, capsys):
        """The serve verb end to end without a subprocess: banner,
        live queries, shutdown-over-the-wire unblocking
        serve_forever."""
        import time as _time

        outcome = {}

        def run():
            outcome["code"] = main(["serve", "--port", "0",
                                    "--window", "0", "--budget",
                                    "100000"])

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        banner = ""
        deadline = _time.monotonic() + 10
        while "listening on" not in banner:
            assert _time.monotonic() < deadline, "no listen banner"
            banner += capsys.readouterr().out
            _time.sleep(0.02)
        port = int(banner.strip().rsplit(":", 1)[1])
        with ServiceClient(port=port) as c:
            assert c.ping() == {"pong": True}
            assert c.evaluate(QUERY, p=3)["engine"] == "exact"
            c.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert outcome["code"] == 0

    def test_serve_subprocess_banner_and_shutdown(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("repro service listening on")
            port = int(banner.rsplit(":", 1)[1])
            with ServiceClient(port=port, timeout=60) as c:
                assert c.ping() == {"pong": True}
                c.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestAdaptiveService:
    """The adaptive estimation tier over live sockets: per-request
    estimator overrides, recorded engines, the new stats counters, and
    coalescing independence."""

    def test_estimator_override_honored_and_recorded(self, client):
        result = client.evaluate(QUERY, p=6, budget_nodes=2, seed=1,
                                 estimator="adaptive")
        assert result["engine"] == "adaptive"
        assert result["method"] == "adaptive"
        assert result["estimate"]["method"] == "bernstein"
        assert result["estimate"]["samples_used"] == \
            result["estimate"]["samples"] > 0
        # The same request without the override still answers with the
        # fixed-n estimator — the override is strictly per-request.
        plain = client.evaluate(QUERY, p=6, budget_nodes=2, seed=1)
        assert plain["engine"] == "estimate"
        assert plain["estimate"]["method"] == "hoeffding"

    def test_forced_adaptive_method_no_budget_needed(self, client):
        exact = client.evaluate(QUERY, p=3, method="shannon")
        result = client.evaluate(QUERY, p=3, method="adaptive", seed=7)
        assert result["engine"] == "adaptive"
        low, high = (F(result["estimate"]["low"]),
                     F(result["estimate"]["high"]))
        assert low <= F(exact["value"]) <= high

    def test_relative_error_implies_sequential_sampler(self, client):
        result = client.estimate(QUERY, p=3, epsilon="1/100",
                                 relative_error="1/2", seed=2)
        assert result["engine"] == "adaptive"
        assert result["estimate"]["relative_error"] is not None
        assert F(result["estimate"]["relative_error"]) <= F(1, 2)

    def test_adaptive_stats_counters_increment(self, client):
        before = client.stats()["service"]
        # Forced-adaptive at a tight epsilon on a low-variance lineage
        # (Pr(B_7) ~ 0.0025, so p(1-p) is tiny) stops well before the
        # fixed-n worst case -> an early stop with samples saved.
        result = client.evaluate(QUERY, p=7, method="adaptive",
                                 epsilon="1/100", seed=3)
        worst = 18445  # hoeffding_sample_count(1/100, 1/20)
        assert result["estimate"]["samples"] < worst
        after = client.stats()["service"]
        assert after["adaptive_requests"] == \
            before["adaptive_requests"] + 1
        assert after["early_stops"] == before["early_stops"] + 1
        assert after["mean_samples_saved"] > 0
        # The fixed-n estimator never moves the adaptive counters.
        client.evaluate(QUERY, p=2, method="estimate", seed=3)
        final = client.stats()["service"]
        assert final["adaptive_requests"] == after["adaptive_requests"]

    def test_sweep_estimator_override_with_estimates(self, client):
        result = client.sweep(QUERY, p=6, grid=3, budget_nodes=2,
                              seed=3, estimator="adaptive")
        assert result["engine"] == "adaptive"
        assert len(result["estimates"]) == 3
        assert all(e["method"] == "bernstein"
                   for e in result["estimates"])
        assert all(e["samples_used"] == e["samples"] > 0
                   for e in result["estimates"])

    def test_adaptive_sweeps_independent_of_coalescing_peers(self):
        """Adaptive results never depend on which concurrent requests
        they were batched with: a seeded adaptive sweep is identical
        whether it raced N copies of itself through the coalescer or
        ran alone on a quiet server."""
        n = 3
        kwargs = dict(p=6, grid=3, budget_nodes=2, seed=5,
                      estimator="adaptive")
        results = []
        with ReproServer(port=0, window=0.05) as server:
            barrier = threading.Barrier(n)

            def hit():
                with ServiceClient(*server.address) as c:
                    barrier.wait()
                    results.append(c.sweep(QUERY, **kwargs))

            threads = [threading.Thread(target=hit) for _ in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServiceClient(*server.address) as c:
                solo = c.sweep(QUERY, **kwargs)
        assert len(results) == n
        assert all(r["engine"] == "adaptive" for r in results)
        assert all(r["values"] == solo["values"] for r in results)
        assert all(r["estimates"] == solo["estimates"]
                   for r in results)

    def test_estimate_round_trips_through_the_codec(self, client):
        """What the server sends is exactly what a decoded estimate
        re-serializes to — exact Fractions preserved for the new
        fields (the PR 4 codec had no decoder at all)."""
        from repro.service.protocol import decode_estimate

        result = client.evaluate(QUERY, p=6, budget_nodes=2, seed=1,
                                 estimator="importance")
        wire = result["estimate"]
        decoded = decode_estimate(wire)
        assert decoded.as_dict() == wire
        assert type(decoded.estimate) is F
        assert decoded.center is None or type(decoded.center) is F

    def test_bad_estimator_rejected(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.evaluate(QUERY, p=4, estimator="magic")
        assert excinfo.value.code == "bad-request"
        with pytest.raises(ServiceError) as excinfo:
            client.estimate(QUERY, p=4, relative_error="0")
        assert excinfo.value.code == "bad-request"


class TestAuthE2E:
    """Token authentication over a real socket: refused before any
    work, attributed per tenant when it passes."""

    TOKENS = {"tok-alice": "alice", "tok-bob": "bob"}

    @pytest.fixture()
    def auth_server(self):
        with ReproServer(port=0, window=0.02,
                         auth_tokens=dict(self.TOKENS)) as srv:
            yield srv

    def test_missing_token_is_unauthorized(self, auth_server):
        with ServiceClient(*auth_server.address) as c:
            with pytest.raises(ServiceError) as excinfo:
                c.ping()
        assert excinfo.value.code == "unauthorized"

    def test_unknown_token_is_unauthorized(self, auth_server):
        with ServiceClient(*auth_server.address,
                           auth="tok-wrong") as c:
            with pytest.raises(ServiceError) as excinfo:
                c.evaluate(QUERY, p=4)
        assert excinfo.value.code == "unauthorized"
        # Near-miss secrets must not be echoed back.
        assert "tok-wrong" not in str(excinfo.value)

    def test_good_token_is_served_and_attributed(self, auth_server):
        with ServiceClient(*auth_server.address,
                           auth="tok-alice") as c:
            result = c.evaluate(QUERY, p=4)
            assert result["engine"] == "exact"
            stats = c.stats()
        assert stats["service"]["auth_enabled"] is True
        alice = stats["tenants"]["alice"]
        assert alice["requests"] >= 2
        assert alice["compiles"] == 1
        assert alice["nodes_spent"] > 0

    def test_tenants_are_accounted_separately(self, auth_server):
        with ServiceClient(*auth_server.address,
                           auth="tok-alice") as alice:
            alice.evaluate(QUERY, p=4)
        with ServiceClient(*auth_server.address,
                           auth="tok-bob") as bob:
            # Bob rides Alice's warm circuit: no compile charged.
            bob.evaluate(QUERY, p=4)
            stats = bob.stats()
        assert stats["tenants"]["alice"]["compiles"] == 1
        assert stats["tenants"]["bob"]["compiles"] == 0
        assert stats["tenants"]["bob"]["requests"] >= 1

    def test_refused_requests_still_count(self, auth_server):
        with ServiceClient(*auth_server.address) as nobody:
            with pytest.raises(ServiceError):
                nobody.ping()
        with ServiceClient(*auth_server.address,
                           auth="tok-alice") as c:
            stats = c.stats()
        # The refusal happened before tenant resolution, so it shows
        # up in the error counter, not under any tenant.
        assert stats["service"]["errors"] >= 1

    def test_metrics_text_labels_the_tenant(self, auth_server):
        with ServiceClient(*auth_server.address,
                           auth="tok-alice") as c:
            c.ping()
            metrics = c.metrics()
        assert metrics["content_type"].startswith("text/plain")
        assert 'repro_tenant_requests_total{tenant="alice"}' \
            in metrics["text"]


class TestQuotaE2E:
    """Quota refusals over a real socket, with the structured
    ``quota-exceeded`` code."""

    def test_rate_window_trips(self):
        from repro.service.tenants import TenantQuota

        quota = TenantQuota(rate=5, window=3600.0)
        with ReproServer(port=0, auth_tokens={"t": "alice"},
                         quota=quota) as server:
            with ServiceClient(*server.address, auth="t") as c:
                for _ in range(5):
                    c.ping()
                with pytest.raises(ServiceError) as excinfo:
                    c.ping()
                assert excinfo.value.code == "quota-exceeded"
                assert "retry" in str(excinfo.value)

    def test_compile_budget_exhausts_mid_batch(self):
        """p=4 compiles under the budget; the p=5 circuit crosses it
        mid-``evaluate_batch`` — the request is refused but the paid
        circuits stay cached for everyone."""
        from repro.service.tenants import TenantQuota

        _, _, formula = workload(p=4)
        p4_nodes = wmc.compiled(formula).size
        wmc.clear_circuit_cache()
        quota = TenantQuota(compile_nodes=p4_nodes + 1)
        with ReproServer(port=0, auth_tokens={"t": "alice"},
                         quota=quota) as server:
            with ServiceClient(*server.address, auth="t") as c:
                with pytest.raises(ServiceError) as excinfo:
                    c.evaluate_batch(QUERY, ps=[4, 5])
                assert excinfo.value.code == "quota-exceeded"
                # The tenant is exhausted, but the p=4 circuit they
                # paid for is warm — and warm circuits are free.
                result = c.evaluate(QUERY, p=4)
                assert result["engine"] == "exact"
                # Fresh compilation is refused fast...
                with pytest.raises(ServiceError) as excinfo:
                    c.evaluate(QUERY, p=6)
                assert excinfo.value.code == "quota-exceeded"
                # ...while the estimate-only path stays available.
                estimate = c.estimate(QUERY, p=6, epsilon="1/4",
                                      delta="1/4", seed=7)
                assert estimate["estimate"]["samples"] > 0
                stats = c.stats()
        spent = stats["tenants"]["alice"]["nodes_spent"]
        assert spent > p4_nodes + 1  # the crossing compile was paid

    def test_anonymous_tenant_is_quota_bound_too(self):
        from repro.service.tenants import TenantQuota

        quota = TenantQuota(rate=3, window=3600.0)
        with ReproServer(port=0, quota=quota) as server:
            with ServiceClient(*server.address) as c:
                for _ in range(3):
                    c.ping()
                with pytest.raises(ServiceError) as excinfo:
                    c.ping()
                assert excinfo.value.code == "quota-exceeded"


class TestMetricsOp:
    def test_metrics_projects_the_stats_payload(self, client):
        client.evaluate(QUERY, p=4)
        metrics = client.metrics()
        assert metrics["content_type"] == (
            "text/plain; version=0.0.4; charset=utf-8")
        text = metrics["text"]
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_op_requests_total{op="evaluate"} 1' in text
        assert "repro_cache_compiles_total 1" in text
        assert 'repro_tenant_requests_total{tenant="anonymous"}' \
            in text

    def test_metrics_rejects_params(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.call("metrics", verbose=True)
        assert excinfo.value.code == "bad-request"

    def test_ctl_metrics_cli(self, server, capsys):
        host, port = server.address
        assert main(["ctl", "metrics", "--host", host,
                     "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_requests_total counter" in out
        assert out.endswith("\n")


class TestAutoEviction:
    def test_fresh_compiles_prune_the_store_to_the_cap(self, tmp_path):
        with ReproServer(port=0, store=str(tmp_path),
                         store_max_bytes=0) as server:
            with ServiceClient(*server.address) as c:
                c.compile(QUERY, p=4)
                stats = c.stats()
        service = stats["service"]
        assert service["store_max_bytes"] == 0
        assert service["auto_prunes"] >= 1
        assert service["auto_evicted"] >= 1
        assert service["auto_reclaimed_bytes"] > 0

    def test_uncapped_server_never_auto_prunes(self, tmp_path):
        with ReproServer(port=0, store=str(tmp_path)) as server:
            with ServiceClient(*server.address) as c:
                c.compile(QUERY, p=4)
                stats = c.stats()
        assert stats["service"]["store_max_bytes"] is None
        assert stats["service"]["auto_prunes"] == 0

    def test_generous_cap_keeps_the_hot_circuit(self, tmp_path):
        with ReproServer(port=0, store=str(tmp_path),
                         store_max_bytes=10_000_000) as server:
            with ServiceClient(*server.address) as c:
                c.compile(QUERY, p=4)
                stats = c.stats()
        # The prune ran but evicted nothing: the store fits the cap.
        assert stats["service"]["auto_prunes"] >= 1
        assert stats["service"]["auto_evicted"] == 0

    def test_serve_flag_validates_store_max_bytes(self):
        with pytest.raises(SystemExit, match="store-max-bytes"):
            main(["serve", "--store-max-bytes", "-1"])


class TestServeHardeningFlags:
    """The `repro serve` hardening flags fail friendly, not with a
    traceback — nothing here boots a server."""

    def test_auth_tokens_malformed_piece(self):
        with pytest.raises(SystemExit, match="TENANT=TOKEN"):
            main(["serve", "--auth-tokens", "alice"])

    def test_auth_tokens_duplicate_token(self):
        with pytest.raises(SystemExit, match="unique"):
            main(["serve", "--auth-tokens", "alice=T1,bob=T1"])

    def test_auth_tokens_empty(self):
        with pytest.raises(SystemExit, match="no tenants"):
            main(["serve", "--auth-tokens", ", ,"])

    def test_quota_spec_rejected_with_flag_named(self):
        with pytest.raises(SystemExit, match="--quota.*bogus"):
            main(["serve", "--quota", "bogus=1"])
        with pytest.raises(SystemExit, match="--quota.*rate"):
            main(["serve", "--quota", "rate=abc"])

    def test_tenant_quota_needs_tenant_prefix(self):
        with pytest.raises(SystemExit, match="TENANT:rate"):
            main(["serve", "--tenant-quota", "rate=5"])

    def test_tenant_quota_spec_errors_name_the_flag(self):
        with pytest.raises(SystemExit, match="--tenant-quota"):
            main(["serve", "--tenant-quota", "alice:rate=0"])

    def test_store_max_bytes_needs_a_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_CIRCUIT_STORE", raising=False)
        with pytest.raises(SystemExit, match="needs a store"):
            main(["serve", "--store-max-bytes", "1000"])
