"""Exact linear algebra tests for repro.algebra.matrices."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.matrices import Matrix

F = Fraction


def mat(rows):
    return Matrix([[F(e) for e in row] for row in rows])


class TestBasics:
    def test_identity(self):
        assert Matrix.identity(2) == mat([[1, 0], [0, 1]])

    def test_ragged_raises(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2], [3]])

    def test_transpose(self):
        assert mat([[1, 2], [3, 4]]).transpose() == mat([[1, 3], [2, 4]])

    def test_mul(self):
        a = mat([[1, 2], [3, 4]])
        b = mat([[0, 1], [1, 0]])
        assert a * b == mat([[2, 1], [4, 3]])

    def test_add_sub(self):
        a = mat([[1, 2], [3, 4]])
        assert a + a - a == a

    def test_power(self):
        a = mat([[1, 1], [0, 1]])
        assert (a ** 5)[0, 1] == 5
        assert a ** 0 == Matrix.identity(2)

    def test_apply(self):
        assert mat([[1, 2], [3, 4]]).apply([F(1), F(1)]) == [F(3), F(7)]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mat([[1, 2]]) * mat([[1, 2]])


class TestDeterminantSolve:
    def test_det_2x2(self):
        assert mat([[1, 2], [3, 4]]).determinant() == -2

    def test_det_singular(self):
        assert mat([[1, 2], [2, 4]]).determinant() == 0
        assert mat([[1, 2], [2, 4]]).is_singular()

    def test_det_permutation_sign(self):
        assert mat([[0, 1], [1, 0]]).determinant() == -1

    def test_det_3x3(self):
        m = mat([[2, 0, 1], [1, 1, 0], [0, 3, 1]])
        assert m.determinant() == 5

    def test_solve(self):
        m = mat([[2, 1], [1, 3]])
        rhs = [F(5), F(10)]
        x = m.solve(rhs)
        assert m.apply(x) == rhs

    def test_solve_singular_raises(self):
        with pytest.raises(ValueError):
            mat([[1, 1], [1, 1]]).solve([F(1), F(2)])

    def test_inverse(self):
        m = mat([[2, 1], [1, 1]])
        assert m * m.inverse() == Matrix.identity(2)

    def test_rank(self):
        assert mat([[1, 2], [2, 4]]).rank() == 1
        assert mat([[1, 2], [3, 4]]).rank() == 2
        assert mat([[0, 0], [0, 0]]).rank() == 0
        assert mat([[1, 2, 3], [4, 5, 6]]).rank() == 2


class TestKronecker:
    def test_kronecker_shape(self):
        a = mat([[1, 2], [3, 4]])
        b = mat([[0, 1], [1, 0]])
        k = a.kronecker(b)
        assert (k.nrows, k.ncols) == (4, 4)

    def test_kronecker_det(self):
        """det(A (x) B) = det(A)^n det(B)^m."""
        a = mat([[1, 2], [3, 4]])
        b = mat([[2, 1], [1, 1]])
        k = a.kronecker(b)
        assert k.determinant() == a.determinant() ** 2 * b.determinant() ** 2


@st.composite
def square_matrices(draw, n=3):
    rows = [[F(draw(st.integers(-4, 4))) for _ in range(n)]
            for _ in range(n)]
    return Matrix(rows)


class TestProperties:
    @given(square_matrices(), square_matrices())
    @settings(max_examples=40, deadline=None)
    def test_det_multiplicative(self, a, b):
        assert (a * b).determinant() == a.determinant() * b.determinant()

    @given(square_matrices())
    @settings(max_examples=40, deadline=None)
    def test_solve_roundtrip(self, m):
        rhs = [F(1), F(2), F(3)]
        if m.determinant() == 0:
            return
        assert m.apply(m.solve(rhs)) == rhs

    @given(square_matrices())
    @settings(max_examples=40, deadline=None)
    def test_rank_full_iff_nonsingular(self, m):
        assert (m.rank() == 3) == (m.determinant() != 0)
