"""The command-line interface — repro.cli."""

import pytest

from repro.cli import main, parse_edges, parse_query
from repro.core.catalog import rst_query
from repro.core.clauses import Clause


class TestParseQuery:
    def test_rst(self):
        assert parse_query("(R|S1)(S1|T)") == rst_query()

    def test_middle(self):
        q = parse_query("(S1|S2)")
        assert q.clauses == (Clause.middle("S1", "S2"),)

    def test_full(self):
        q = parse_query("(R|S|T)")
        assert q.clauses[0].side == "full"

    def test_type2(self):
        q = parse_query("(L: S1 ; S2)(S1|S3)(R: S3 ; S4)")
        assert q.clauses
        sides = {c.side for c in q.clauses}
        assert sides == {"left", "middle", "right"}

    def test_no_clauses_exits_friendly(self):
        with pytest.raises(SystemExit, match="no clauses found"):
            parse_query("S1")

    def test_empty_clause_exits_friendly(self):
        with pytest.raises(SystemExit, match="bad clause"):
            parse_query("()")


class TestParseEdges:
    def test_basic(self):
        assert parse_edges("0-1,1-2") == [(0, 1), (1, 2)]

    def test_empty_parts_skipped(self):
        assert parse_edges("0-1,") == [(0, 1)]

    def test_dangling_edge_exits_friendly(self):
        with pytest.raises(SystemExit, match="bad edge '0-'"):
            parse_edges("0-")

    def test_missing_dash_exits_friendly(self):
        with pytest.raises(SystemExit, match="bad edge '3'"):
            parse_edges("3")

    def test_non_integer_exits_friendly(self):
        with pytest.raises(SystemExit, match="integers"):
            parse_edges("a-b")


class TestCommands:
    def test_classify(self, capsys):
        assert main(["classify", "(R|S1)(S1|T)"]) == 0
        out = capsys.readouterr().out
        assert "safe:    False" in out
        assert "final:   True" in out

    def test_classify_safe(self, capsys):
        assert main(["classify", "(R|S1)(S1|S2)"]) == 0
        assert "safe:    True" in capsys.readouterr().out

    def test_census(self, capsys):
        assert main(["census"]) == 0
        out = capsys.readouterr().out
        assert "H0" in out
        assert "unsafe" in out and "safe" in out

    def test_reduce(self, capsys):
        assert main(["reduce", "--edges", "0-1", "--vars", "2",
                     "--check"]) == 0
        out = capsys.readouterr().out
        assert "#Phi = 3" in out
        assert "match" in out

    def test_h0(self, capsys):
        assert main(["h0", "--left", "1", "--right", "1",
                     "--edges", "0-0", "--check"]) == 0
        out = capsys.readouterr().out
        assert "#PP2CNF = 3" in out

    def test_compile(self, capsys):
        assert main(["compile", "(R|S1)(S1|T)", "--p", "2"]) == 0
        out = capsys.readouterr().out
        assert "circuit size" in out
        assert "Pr(Q) at block weights" in out

    def test_compile_save_load_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "circuit.ddnnf")
        assert main(["compile", "(R|S1)(S1|T)", "--p", "2",
                     "--save", path]) == 0
        saved = capsys.readouterr().out
        assert main(["compile", "(R|S1)(S1|T)", "--p", "2",
                     "--load", path]) == 0
        loaded = capsys.readouterr().out
        assert f"loaded from {path}" in loaded
        # Bit-identical report modulo provenance lines.
        strip = [l for l in saved.splitlines()
                 if not l.startswith(("circuit:", "saved:"))]
        strip_loaded = [l for l in loaded.splitlines()
                        if not l.startswith("circuit:")]
        assert strip == strip_loaded

    def test_compile_load_wrong_lineage_exits(self, tmp_path):
        path = str(tmp_path / "circuit.ddnnf")
        assert main(["compile", "(R|S1)(S1|T)", "--p", "2",
                     "--save", path]) == 0
        with pytest.raises(SystemExit, match="different lineage"):
            main(["compile", "(R|S2)(S2|T)", "--p", "2",
                  "--load", path])

    def test_compile_load_subset_lineage_exits(self, tmp_path):
        """A circuit whose variables are a proper *subset* of the
        target lineage's must be rejected too (set equality, not just
        no-extras) — it would silently compute the wrong query."""
        path = str(tmp_path / "circuit.ddnnf")
        assert main(["compile", "(R|S1)(S1|T)", "--p", "2",
                     "--save", path]) == 0
        with pytest.raises(SystemExit, match="absent"):
            main(["compile", "(R|S1)(S1|S2)(S2|T)", "--p", "2",
                  "--load", path])

    def test_compile_load_corrupt_exits(self, tmp_path):
        path = tmp_path / "bad.ddnnf"
        path.write_bytes(b"not a circuit")
        with pytest.raises(SystemExit, match="not a serialized"):
            main(["compile", "(R|S1)(S1|T)", "--p", "2",
                  "--load", str(path)])

    def test_sweep(self, capsys):
        assert main(["sweep", "(R|S1)(S1|T)", "--p", "2",
                     "--grid", "4"]) == 0
        out = capsys.readouterr().out
        assert "4-vector endpoint sweep" in out
        assert "compilations:" in out

    def test_sweep_without_endpoints_exits_friendly(self):
        """A query with no R/T atoms has nothing for the endpoint
        sweep to vary — refuse rather than print a constant grid."""
        with pytest.raises(SystemExit, match="neither endpoint"):
            main(["sweep", "(S1|S2)", "--p", "2", "--grid", "3"])

    def test_sweep_with_store_skips_recompilation(self, capsys,
                                                  tmp_path):
        from repro.tid import wmc

        store_dir = str(tmp_path / "store")
        try:
            wmc.clear_circuit_cache()  # cold start: populate the store
            assert main(["sweep", "(R|S1)(S1|T)", "--p", "2",
                         "--grid", "4", "--store", store_dir]) == 0
            capsys.readouterr()
            wmc.clear_circuit_cache()  # cold memory, warm disk
            assert main(["sweep", "(R|S1)(S1|T)", "--p", "2",
                         "--grid", "4", "--store", store_dir]) == 0
            out = capsys.readouterr().out
            assert "compilations: 0" in out
            assert "disk hits: 1" in out
        finally:
            wmc.set_circuit_store(None)
            wmc.clear_circuit_cache()

    def test_estimate(self, capsys):
        assert main(["estimate", "(R|S1)(S1|T)", "--p", "2",
                     "--check"]) == 0
        out = capsys.readouterr().out
        assert "engine:     estimate" in out
        assert "interval:" in out
        assert "inside the interval" in out

    def test_estimate_deterministic_given_seed(self, capsys):
        assert main(["estimate", "(R|S1)(S1|T)", "--p", "2",
                     "--seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["estimate", "(R|S1)(S1|T)", "--p", "2",
                     "--seed", "9"]) == 0
        assert capsys.readouterr().out == first

    def test_estimate_adaptive_engine(self, capsys):
        # B_7's probability is ~0.0025, so the Bernoulli variance is
        # tiny and the sequential estimator stops well short of the
        # 18445-draw Hoeffding worst case.
        assert main(["estimate", "(R|S1)(S1|T)", "--p", "7",
                     "--engine", "adaptive", "--epsilon", "1/100",
                     "--check"]) == 0
        out = capsys.readouterr().out
        assert "engine:     adaptive" in out
        assert "early stop saved" in out
        assert "inside the interval" in out

    def test_estimate_relative_error_implies_adaptive(self, capsys):
        assert main(["estimate", "(R|S1)(S1|T)", "--p", "2",
                     "--epsilon", "1/50",
                     "--relative-error", "1/2"]) == 0
        out = capsys.readouterr().out
        assert "engine:     adaptive" in out
        assert "relative:" in out

    def test_estimate_relative_error_must_be_positive(self):
        with pytest.raises(SystemExit, match="relative-error"):
            main(["estimate", "(R|S1)(S1|T)", "--p", "2",
                  "--relative-error=-1/2"])

    def test_compile_budget_degrades_to_estimate(self, capsys):
        from repro.tid import wmc

        wmc.clear_circuit_cache()
        assert main(["compile", "(R|S1)(S1|T)", "--p", "2",
                     "--budget", "2"]) == 0
        out = capsys.readouterr().out
        assert "exceeded 2 nodes" in out
        assert "samples:" in out

    def test_sweep_budget_degrades_to_estimate(self, capsys):
        from repro.tid import wmc

        wmc.clear_circuit_cache()
        assert main(["sweep", "(R|S1)(S1|T)", "--p", "2",
                     "--grid", "3", "--budget", "2",
                     "--epsilon", "1/10"]) == 0
        out = capsys.readouterr().out
        assert "engine:  estimate" in out
        assert "budget aborts: 1" in out

    def test_sweep_budget_adaptive_engine(self, capsys):
        from repro.tid import wmc

        wmc.clear_circuit_cache()
        assert main(["sweep", "(R|S1)(S1|T)", "--p", "2",
                     "--grid", "3", "--budget", "2",
                     "--engine", "adaptive",
                     "--epsilon", "1/10"]) == 0
        out = capsys.readouterr().out
        assert "engine:  adaptive" in out
        assert "samples per vector" in out

    def test_sweep_budget_exact_when_under(self, capsys):
        assert main(["sweep", "(R|S1)(S1|T)", "--p", "2",
                     "--grid", "3", "--budget", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "engine:  exact" in out

    def test_compile_budget_save_fails_loudly(self, capsys, tmp_path):
        """--save with a blown budget must exit non-zero: the
        requested artifact was never produced."""
        from repro.tid import wmc

        wmc.clear_circuit_cache()
        path = str(tmp_path / "never.ddnnf")
        assert main(["compile", "(R|S1)(S1|T)", "--p", "2",
                     "--budget", "2", "--save", path]) == 1
        err = capsys.readouterr().err
        assert "--save" in err and "skipped" in err
        import os
        assert not os.path.exists(path)
