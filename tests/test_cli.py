"""The command-line interface — repro.cli."""

import pytest

from repro.cli import main, parse_edges, parse_query
from repro.core.catalog import rst_query
from repro.core.clauses import Clause


class TestParseQuery:
    def test_rst(self):
        assert parse_query("(R|S1)(S1|T)") == rst_query()

    def test_middle(self):
        q = parse_query("(S1|S2)")
        assert q.clauses == (Clause.middle("S1", "S2"),)

    def test_full(self):
        q = parse_query("(R|S|T)")
        assert q.clauses[0].side == "full"

    def test_type2(self):
        q = parse_query("(L: S1 ; S2)(S1|S3)(R: S3 ; S4)")
        assert q.clauses
        sides = {c.side for c in q.clauses}
        assert sides == {"left", "middle", "right"}

    def test_no_clauses_raises(self):
        with pytest.raises(ValueError):
            parse_query("S1")


class TestParseEdges:
    def test_basic(self):
        assert parse_edges("0-1,1-2") == [(0, 1), (1, 2)]

    def test_empty_parts_skipped(self):
        assert parse_edges("0-1,") == [(0, 1)]


class TestCommands:
    def test_classify(self, capsys):
        assert main(["classify", "(R|S1)(S1|T)"]) == 0
        out = capsys.readouterr().out
        assert "safe:    False" in out
        assert "final:   True" in out

    def test_classify_safe(self, capsys):
        assert main(["classify", "(R|S1)(S1|S2)"]) == 0
        assert "safe:    True" in capsys.readouterr().out

    def test_census(self, capsys):
        assert main(["census"]) == 0
        out = capsys.readouterr().out
        assert "H0" in out
        assert "unsafe" in out and "safe" in out

    def test_reduce(self, capsys):
        assert main(["reduce", "--edges", "0-1", "--vars", "2",
                     "--check"]) == 0
        out = capsys.readouterr().out
        assert "#Phi = 3" in out
        assert "match" in out

    def test_h0(self, capsys):
        assert main(["h0", "--left", "1", "--right", "1",
                     "--edges", "0-0", "--check"]) == 0
        out = capsys.readouterr().out
        assert "#PP2CNF = 3" in out
