"""The small matrix and the logic-algebra bridge: Lemma 1.2,
Lemma 3.15, Theorem 3.16, Corollary 3.18 (experiments E2, E3)."""

import random
from fractions import Fraction

from repro.core import catalog
from repro.core.clauses import Clause
from repro.core.queries import query
from repro.reduction.small_matrix import (
    determinant_constant,
    lemma12_check,
    link_lineage,
    small_matrix_determinant,
    small_matrix_polynomials,
)

F = Fraction


class TestLemma12:
    """det(y) == 0 iff the link lineage disconnects R(u), R(v)."""

    def test_connected_queries(self):
        for q in (catalog.rst_query(), catalog.path_query(2),
                  catalog.path_query(3), catalog.wide_final_query(),
                  catalog.path_query(2, fanout=2)):
            det_zero, disconnected = lemma12_check(q)
            assert not det_zero
            assert not disconnected

    def test_disconnected_query(self):
        """A query whose link lineage splits: left part and right part
        over disjoint symbols (still one TID)."""
        q = catalog.safe_disconnected()
        det_zero, disconnected = lemma12_check(q)
        assert det_zero
        assert disconnected

    def test_equivalence_over_catalog(self):
        for name, ctor, _ in catalog.CENSUS:
            q = ctor()
            if q.full_clauses or len(q.binary_symbols) > 4:
                continue
            det_zero, disconnected = lemma12_check(q)
            assert det_zero == disconnected, name


class TestTheorem316:
    """For final Type-I queries the determinant is c * prod u(1-u)."""

    def test_rst_constant(self):
        assert determinant_constant(catalog.rst_query()) != 0

    def test_path2_constant(self):
        assert determinant_constant(catalog.path_query(2)) != 0

    def test_wide_constant(self):
        assert determinant_constant(catalog.wide_final_query()) != 0

    def test_nonzero_on_random_interior_points(self):
        rng = random.Random(0)
        det = small_matrix_determinant(catalog.rst_query())
        for _ in range(20):
            point = {v: F(rng.randint(1, 9), 10) for v in det.variables()}
            assert det.evaluate(point) != 0

    def test_zero_on_boundary(self):
        """Corollary 3.18: the determinant vanishes whenever any
        internal tuple probability is 0 or 1."""
        det = small_matrix_determinant(catalog.rst_query())
        variables = sorted(det.variables())
        for var in variables:
            for value in (F(0), F(1)):
                point = {v: F(1, 2) for v in variables}
                point[var] = value
                assert det.evaluate(point) == 0

    def test_non_final_shape_fails(self):
        """A non-final unsafe query need not factor as c*prod u(1-u)."""
        q = catalog.intro_example()
        det = small_matrix_determinant(q)
        assert not det.is_zero()
        # (R v S1 v S2)(S2 v T): interior point where det vanishes may
        # exist; the shape test is what distinguishes finality here.
        try:
            c = determinant_constant(q)
            shaped = True
        except ValueError:
            shaped = False
        # Either behaviour is consistent with non-finality, but the
        # call must not crash; record the reachable branch.
        assert shaped in (True, False)


class TestSmallMatrixPolynomials:
    def test_y11_at_certain_endpoints(self):
        """With R(u) = R(v) = 1 the RST link lineage is satisfied by the
        left clauses, leaving (S v T) constraints."""
        y = small_matrix_polynomials(catalog.rst_query())
        half = {v: F(1, 2) for v in y[(1, 1)].variables()}
        # Y11 = (S_u v T)(S_v v T): Pr = ... computed independently:
        # Pr = t + (1-t) s_u s_v at 1/2 = 1/2 + 1/2 * 1/4 = 5/8.
        assert y[(1, 1)].evaluate(half) == F(5, 8)

    def test_y00_smaller_than_y11(self):
        """Monotonicity (Proposition 3.20) at the polynomial level."""
        y = small_matrix_polynomials(catalog.rst_query())
        half = {v: F(1, 2)
                for ab in y for v in y[ab].variables()}
        values = {ab: y[ab].evaluate(
            {v: F(1, 2) for v in y[ab].variables()}) for ab in y}
        assert values[(0, 0)] < values[(0, 1)] == values[(1, 0)] \
            < values[(1, 1)]

    def test_link_lineage_variables(self):
        f = link_lineage(catalog.rst_query())
        names = {t[0] for t in f.variables()}
        assert names == {"R", "S1", "T"}


class TestMultiSymbolQueries:
    def test_fanout_two(self):
        q = catalog.path_query(1, fanout=2)
        det_zero, disconnected = lemma12_check(q)
        assert det_zero == disconnected

    def test_two_middle_symbols(self):
        q = query(Clause.left_type1("S1"),
                  Clause.middle("S1", "S2"),
                  Clause.middle("S2", "S3"),
                  Clause.right_type1("S3"))
        det_zero, disconnected = lemma12_check(q)
        assert not det_zero and not disconnected
