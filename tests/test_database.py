"""Bipartite TIDs — repro.tid.database."""

from fractions import Fraction

import pytest

from repro.counting.problems import FOMC_VALUES, GFOMC_VALUES
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple

F = Fraction


class TestConstruction:
    def test_basic(self):
        tid = TID(["u"], ["v"], {s_tuple("S", "u", "v"): F(1, 2)})
        assert tid.probability(s_tuple("S", "u", "v")) == F(1, 2)
        assert tid.probability(s_tuple("S2", "u", "v")) == 1

    def test_default(self):
        tid = TID(["u"], ["v"], {}, default=F(0))
        assert tid.probability(r_tuple("u")) == 0

    def test_default_value_not_stored(self):
        tid = TID(["u"], ["v"], {r_tuple("u"): F(1)})
        assert not tid.probs

    def test_overlapping_domains_raise(self):
        with pytest.raises(ValueError):
            TID(["a"], ["a"])

    def test_off_domain_tuple_raises(self):
        with pytest.raises(ValueError):
            TID(["u"], ["v"], {s_tuple("S", "u", "w"): F(1, 2)})

    def test_r_on_right_raises(self):
        with pytest.raises(ValueError):
            TID(["u"], ["v"], {r_tuple("v"): F(1, 2)})

    def test_t_on_left_raises(self):
        with pytest.raises(ValueError):
            TID(["u"], ["v"], {t_tuple("u"): F(1, 2)})

    def test_binary_with_unary_symbol_raises(self):
        with pytest.raises(ValueError):
            TID(["u"], ["v"], {("R", "u", "v"): F(1, 2)})

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError):
            TID(["u"], ["v"], {r_tuple("u"): F(3, 2)})

    def test_malformed_tuple(self):
        with pytest.raises(ValueError):
            TID(["u"], ["v"], {("S",): F(1, 2)})


class TestOperations:
    def test_with_probability(self):
        tid = TID(["u"], ["v"])
        tid2 = tid.with_probability(r_tuple("u"), F(1, 2))
        assert tid.probability(r_tuple("u")) == 1
        assert tid2.probability(r_tuple("u")) == F(1, 2)

    def test_union_disjoint(self):
        a = TID(["u"], ["v"], {s_tuple("S", "u", "v"): F(1, 2)})
        b = TID(["w"], ["z"], {s_tuple("S", "w", "z"): F(0)})
        u = a.union(b)
        assert set(u.left_domain) == {"u", "w"}
        assert u.probability(s_tuple("S", "u", "v")) == F(1, 2)
        assert u.probability(s_tuple("S", "w", "z")) == 0

    def test_union_shared_endpoint(self):
        a = TID(["u"], ["v1"], {r_tuple("u"): F(1, 2)})
        b = TID(["u"], ["v2"], {r_tuple("u"): F(1, 2)})
        u = a.union(b)
        assert u.left_domain == ("u",)

    def test_union_conflict_raises(self):
        a = TID(["u"], ["v"], {r_tuple("u"): F(1, 2)})
        b = TID(["u"], ["v"], {r_tuple("u"): F(1, 3)})
        with pytest.raises(ValueError):
            a.union(b)

    def test_uncertain_tuples(self):
        tid = TID(["u"], ["v"], {r_tuple("u"): F(1, 2),
                                 t_tuple("v"): F(0),
                                 s_tuple("S", "u", "v"): F(1)})
        assert tid.uncertain_tuples() == [r_tuple("u")]

    def test_restrict_checks(self):
        gfomc = TID(["u"], ["v"], {r_tuple("u"): F(1, 2),
                                   t_tuple("v"): F(0)})
        assert gfomc.restrict_check(GFOMC_VALUES)
        assert not gfomc.restrict_check(FOMC_VALUES)
        fomc = TID(["u"], ["v"], {r_tuple("u"): F(1, 2)})
        assert fomc.restrict_check(FOMC_VALUES)

    def test_equality_and_hash(self):
        a = TID(["u"], ["v"], {r_tuple("u"): F(1, 2)})
        b = TID(["u"], ["v"], {r_tuple("u"): F(1, 2)})
        assert a == b
        assert hash(a) == hash(b)
