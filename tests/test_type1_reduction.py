"""The end-to-end Cook reduction #P2CNF -> FOMC_bi(Q), Theorem 3.1
(experiments E8, E9)."""

import pytest

from repro.core import catalog
from repro.counting.p2cnf import P2CNF
from repro.counting.problems import FOMC_VALUES
from repro.reduction.type1 import Type1Reduction, count_p2cnf

FORMULAS = [
    P2CNF(2, ((0, 1),)),
    P2CNF.path(3),
    P2CNF.path(4),
    P2CNF.star(4),
    P2CNF.cycle(4),
    P2CNF(3, ((0, 1), (0, 2))),
]


class TestEndToEnd:
    @pytest.mark.parametrize("phi", FORMULAS, ids=lambda p: f"n{p.n}m{p.m}")
    def test_rst_recovers_counts(self, phi):
        red = Type1Reduction(catalog.rst_query())
        result = red.run(phi)
        assert result.model_count == phi.count_satisfying()
        expected = {k: v for k, v in phi.signature_counts().items() if v}
        assert result.signature_counts == expected

    def test_path2_query(self):
        phi = P2CNF.path(3)
        assert count_p2cnf(catalog.path_query(2), phi) == \
            phi.count_satisfying()

    def test_wide_query(self):
        phi = P2CNF.star(3)
        assert count_p2cnf(catalog.wide_final_query(), phi) == \
            phi.count_satisfying()

    def test_empty_formula(self):
        phi = P2CNF(3, ())
        result = Type1Reduction(catalog.rst_query()).run(phi)
        assert result.model_count == 8

    def test_oracle_call_count_polynomial(self):
        """Cook reduction budget: at most one oracle call per unknown."""
        phi = P2CNF.path(4)
        result = Type1Reduction(catalog.rst_query()).run(phi)
        unknowns = (phi.m + 1) * (phi.m + 2) // 2
        assert result.oracle_calls == unknowns


class TestHonestOracle:
    """The 'wmc' oracle grounds the actual database; it must agree with
    the block-product fast path (Theorem 3.4, experiment E8)."""

    def test_single_clause(self):
        phi = P2CNF(2, ((0, 1),))
        red = Type1Reduction(catalog.rst_query())
        result = red.run(phi, oracle="wmc")
        assert result.model_count == 3

    def test_two_clauses(self):
        phi = P2CNF.path(3)
        red = Type1Reduction(catalog.rst_query())
        assert red.run(phi, oracle="wmc").model_count == 5

    def test_oracle_values_agree(self):
        phi = P2CNF.path(3)
        red = Type1Reduction(catalog.rst_query())
        for params in [(1, 1), (1, 2), (2, 2), (1, 3)]:
            assert red.product_oracle_value(phi, params) == \
                red.wmc_oracle_value(phi, params)

    def test_callable_oracle(self):
        from repro.tid.wmc import probability
        phi = P2CNF(2, ((0, 1),))
        red = Type1Reduction(catalog.rst_query())
        calls = []

        def oracle(tid):
            calls.append(tid)
            return probability(catalog.rst_query(), tid)

        result = red.run(phi, oracle=oracle)
        assert result.model_count == 3
        assert len(calls) == result.oracle_calls


class TestDatabaseLegality:
    def test_reduction_database_is_fomc(self):
        """Every database handed to the oracle uses only probabilities
        in {1/2, 1} — Theorem 2.9 (1) is about *model counting*."""
        phi = P2CNF.path(3)
        red = Type1Reduction(catalog.rst_query())
        for params in [(1, 1), (2, 3)]:
            tid = red.reduction_database(phi, params)
            assert tid.restrict_check(FOMC_VALUES)


class TestValidation:
    def test_rejects_type2(self):
        with pytest.raises(ValueError):
            Type1Reduction(catalog.example_c9())

    def test_rejects_non_final(self):
        with pytest.raises(ValueError):
            Type1Reduction(catalog.intro_example())

    def test_check_final_override(self):
        red = Type1Reduction(catalog.intro_example(), check_final=False)
        phi = P2CNF(2, ((0, 1),))
        # The intro example is unsafe but not final; its small matrix
        # still happens to be non-singular at 1/2, so the reduction
        # works — the override exists exactly for such experiments.
        assert red.run(phi).model_count == 3

    def test_rejects_h0(self):
        with pytest.raises(ValueError):
            Type1Reduction(catalog.h0())
