"""Vocabulary objects — repro.core.symbols."""

import pytest

from repro.core.symbols import (
    LEFT_UNARY,
    RIGHT_UNARY,
    UNARY_SYMBOLS,
    Vocabulary,
)


class TestConstants:
    def test_names(self):
        assert LEFT_UNARY == "R"
        assert RIGHT_UNARY == "T"
        assert UNARY_SYMBOLS == {"R", "T"}


class TestVocabulary:
    def test_symbols(self):
        v = Vocabulary(True, True, ("S1", "S2"))
        assert v.symbols == {"R", "T", "S1", "S2"}

    def test_no_unaries(self):
        v = Vocabulary(False, False, ("S1",))
        assert v.symbols == {"S1"}

    def test_contains(self):
        v = Vocabulary(True, False, ("S1",))
        assert "R" in v
        assert "T" not in v
        assert "S1" in v

    def test_duplicate_binary_raises(self):
        with pytest.raises(ValueError):
            Vocabulary(True, True, ("S1", "S1"))

    def test_reserved_names_raise(self):
        with pytest.raises(ValueError):
            Vocabulary(True, True, ("R",))
