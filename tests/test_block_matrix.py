"""The block matrix A(p): Lemma 3.19, Proposition 3.20, Lemma 3.21,
Theorem 3.14 (experiments E4, E5, E6)."""

from fractions import Fraction

import pytest

from repro.algebra.quadratic import QuadraticNumber
from repro.core import catalog
from repro.reduction.block_matrix import (
    block_spectral_data,
    theorem_314_conditions,
    z_matrix_direct,
    z_matrix_power,
    z_value,
)

F = Fraction

FINAL_QUERIES = [
    ("rst", catalog.rst_query()),
    ("path2", catalog.path_query(2)),
    ("wide", catalog.wide_final_query()),
]


class TestLemma319:
    """A(p) = A(1)^p / 2^{p-1}: matrix powers equal direct WMC."""

    @pytest.mark.parametrize("name,q", FINAL_QUERIES)
    def test_power_matches_direct(self, name, q):
        for p in (1, 2, 3):
            assert z_matrix_direct(q, p) == z_matrix_power(q, p), (name, p)

    def test_deeper_power_rst(self):
        q = catalog.rst_query()
        assert z_matrix_direct(q, 5) == z_matrix_power(q, 5)

    def test_z_value_accessor(self):
        q = catalog.rst_query()
        assert z_value(q, 1, 0, 0) == F(1, 4)
        assert z_value(q, 1, 1, 1) == F(5, 8)


class TestProposition320:
    @pytest.mark.parametrize("name,q", FINAL_QUERIES)
    def test_ordering(self, name, q):
        a1 = z_matrix_direct(q, 1)
        z00, z01, z10, z11 = a1[0, 0], a1[0, 1], a1[1, 0], a1[1, 1]
        assert z01 == z10
        assert z00 < z01 < z11
        assert 0 < z00 and z11 <= 1


class TestLemma321:
    @pytest.mark.parametrize("name,q", FINAL_QUERIES)
    def test_eigenvalues(self, name, q):
        dec = block_spectral_data(q)
        zero = QuadraticNumber(0)
        assert dec.lambda1 != zero
        assert dec.lambda2 != zero
        assert dec.lambda1 != dec.lambda2
        assert dec.lambda1 != -dec.lambda2

    def test_eigenvalue_sum_is_trace(self):
        q = catalog.rst_query()
        dec = block_spectral_data(q)
        a1 = z_matrix_direct(q, 1)
        assert dec.lambda1 + dec.lambda2 == QuadraticNumber(
            a1[0, 0] + a1[1, 1])


class TestTheorem314:
    @pytest.mark.parametrize("name,q", FINAL_QUERIES)
    def test_all_conditions(self, name, q):
        conditions = theorem_314_conditions(q)
        assert all(conditions.values()), (name, conditions)

    def test_spectral_form_reconstructs_z(self):
        """z_i(p) = a_i lambda1^p + b_i lambda2^p, exactly, through the
        2^{p-1} normalization."""
        q = catalog.rst_query()
        dec = block_spectral_data(q)
        for p in (1, 2, 3, 4):
            reconstructed = dec.power(p)
            direct = z_matrix_direct(q, p)
            for i in range(2):
                for j in range(2):
                    scaled = QuadraticNumber(direct[i, j]) * (2 ** (p - 1))
                    assert reconstructed[i, j] == scaled

    def test_identity_at_p0(self):
        """A(0) = I (Eq. 37): a_i + b_i matches the identity matrix."""
        q = catalog.path_query(2)
        dec = block_spectral_data(q)
        identity = ((1, 0), (0, 1))
        for i in range(2):
            for j in range(2):
                a, b = dec.coefficients[(i, j)]
                assert a + b == QuadraticNumber(identity[i][j])
