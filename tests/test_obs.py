"""Request tracing end to end: the span/histogram/slow-log core with
a fake clock, the live service stack over real sockets, the client
transport knobs, and the hash-seed determinism of serialized traces."""

import json
import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.cli import main
from repro.obs import (
    BUCKET_LABELS,
    NULL_SPAN,
    SLOW_LOG_NAME,
    Tracer,
    current_span,
    current_trace_id,
    span,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.metrics import render_metrics
from repro.service.server import ReproServer
from repro.tid import wmc

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
QUERY = "(R|S1)(S1|T)"


class FakeClock:
    """A hand-cranked monotonic clock for exact durations."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture(autouse=True)
def isolated_cache():
    wmc.clear_circuit_cache()
    wmc.set_circuit_store(None)
    yield
    wmc.set_circuit_store(None)
    wmc.clear_circuit_cache()


# ----------------------------------------------------------------------
# The tracer core, pinned by a fake clock
# ----------------------------------------------------------------------
class TestTracerCore:
    def build_trace(self, tracer, clock):
        root = tracer.root("evaluate", tenant="acme", safe=False)
        with root:
            clock.advance(0.001)
            with span("dispatch", cached=False):
                clock.advance(0.002)
            with span("evaluate", method="auto") as ev:
                clock.advance(0.004)
                with span("kernel", lanes=3):
                    clock.advance(0.001)
                ev.tag(engine="exact")
            clock.advance(0.001)
        return root

    def test_span_tree_shape_and_durations(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        self.build_trace(tracer, clock)
        payload = tracer.recent()[0]
        assert payload["trace"] == "t00000001"
        assert payload["op"] == "evaluate"
        assert payload["tenant"] == "acme"
        assert payload["duration_ms"] == 9.0
        spans = payload["spans"]
        by_name = {s["name"]: s for s in spans}
        roots = [s for s in spans if s["parent"] is None]
        assert len(roots) == 1 and roots[0]["tags"] == {
            "safe": False, "tenant": "acme"}
        assert by_name["dispatch"]["parent"] == roots[0]["id"]
        assert by_name["dispatch"]["start_ms"] == 1.0
        assert by_name["dispatch"]["duration_ms"] == 2.0
        # The kernel span nests under the evaluate *stage*, not root.
        stage = [s for s in spans
                 if s["name"] == "evaluate" and s["parent"] is not None]
        assert len(stage) == 1 and stage[0]["duration_ms"] == 5.0
        assert stage[0]["tags"] == {"engine": "exact", "method": "auto"}
        assert by_name["kernel"]["parent"] == stage[0]["id"]
        assert roots[0]["duration_ms"] == 9.0
        # Spans are ordered as a timeline.
        starts = [s["start_ms"] for s in spans]
        assert starts == sorted(starts)

    def test_histograms_cumulative_and_sorted(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        self.build_trace(tracer, clock)
        hist = tracer.histograms()
        assert set(hist) == {"evaluate"}
        stages = hist["evaluate"]
        assert list(stages) == sorted(stages)
        assert set(stages) == {"total", "dispatch", "evaluate",
                               "kernel"}
        total = stages["total"]
        assert total["count"] == 1
        assert total["sum_ms"] == 9.0
        assert list(total["buckets"]) == list(BUCKET_LABELS)
        # 9 ms lands in the 0.01 s bucket; cumulative counts only
        # ever grow along the ladder.
        assert total["buckets"]["0.005"] == 0
        assert total["buckets"]["0.01"] == 1
        assert total["buckets"]["+Inf"] == 1

    def test_slow_log_threshold_and_jsonl_export(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock, slow_threshold=0.005,
                        trace_dir=tmp_path)
        with tracer.root("ping"):
            clock.advance(0.001)  # fast: not logged
        self.build_trace(tracer, clock)  # 9 ms: logged
        slow = tracer.recent(slow=True)
        assert [p["op"] for p in slow] == ["evaluate"]
        assert slow[0]["slow"] is True
        lines = (tmp_path / SLOW_LOG_NAME).read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == slow[0]
        stats = tracer.stats()
        assert stats["completed"] == 2
        assert stats["slow"] == 1
        assert stats["slow_threshold_ms"] == 5.0

    def test_ring_buffer_drops_oldest(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, buffer_size=2)
        for op in ("a", "b", "c"):
            with tracer.root(op):
                clock.advance(0.001)
        assert [p["op"] for p in tracer.recent()] == ["c", "b"]
        assert tracer.find("t00000001") is None
        assert tracer.find("t00000003")["op"] == "c"
        assert tracer.stats()["dropped"] == 1

    def test_tenant_scoping(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.root("ping", tenant="acme"):
            clock.advance(0.001)
        with tracer.root("ping", tenant="zeta"):
            clock.advance(0.001)
        assert len(tracer.recent()) == 2
        assert [p["tenant"] for p in tracer.recent(tenant="acme")] \
            == ["acme"]
        assert tracer.find("t00000002", tenant="acme") is None
        assert tracer.find("t00000002", tenant="zeta") is not None

    def test_client_supplied_trace_id_wins(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.root("ping", trace_id="client-id"):
            clock.advance(0.001)
        assert tracer.find("client-id") is not None

    def test_error_tagging(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with pytest.raises(ValueError):
            with tracer.root("evaluate"):
                clock.advance(0.001)
                raise ValueError("boom")
        payload = tracer.recent()[0]
        assert payload["spans"][0]["tags"]["error"] == "ValueError"

    def test_cross_thread_begin_finish(self):
        """The compile-pool idiom: begin on one thread, finish on
        another, inside a context copied at the submission site."""
        import contextvars

        clock = FakeClock()
        tracer = Tracer(clock=clock)
        root = tracer.root("compile")
        with root:
            clock.advance(0.001)
            queue = span("queue", role="leader").begin()
            ctx = contextvars.copy_context()

            def task():
                clock.advance(0.002)
                queue.finish()
                with span("compile"):
                    clock.advance(0.004)

            worker = threading.Thread(target=lambda: ctx.run(task))
            worker.start()
            worker.join()
        payload = tracer.recent()[0]
        by_name = {s["name"]: s for s in payload["spans"]
                   if s["parent"] is not None}
        assert by_name["queue"]["duration_ms"] == 2.0
        assert by_name["compile"]["duration_ms"] == 4.0
        assert by_name["compile"]["parent"] == 1  # child of root

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(buffer_size=0)
        with pytest.raises(ValueError):
            Tracer(slow_keep=0)
        with pytest.raises(ValueError):
            Tracer(slow_threshold=-1.0)


class TestDisabledTracing:
    def test_disabled_root_is_the_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.root("evaluate") is NULL_SPAN
        with tracer.root("evaluate"):
            # Library spans inside a disabled trace are no-ops too.
            assert span("dispatch") is NULL_SPAN
        assert tracer.recent() == []
        assert tracer.histograms() == {}

    def test_span_without_active_trace_is_the_null_span(self):
        assert current_span() is None
        assert current_trace_id() is None
        assert span("anything", key="value") is NULL_SPAN
        # And the null span is inert under every operation.
        with NULL_SPAN.tag(x=1) as s:
            assert s.begin().finish() is None


# ----------------------------------------------------------------------
# The live service stack
# ----------------------------------------------------------------------
@pytest.fixture()
def traced_server(tmp_path):
    with ReproServer(port=0, window=0.02, slow_ms=0.0,
                     trace_dir=tmp_path) as srv:
        yield srv


class TestServiceTracing:
    def test_trace_id_round_trips(self, traced_server):
        with ServiceClient(*traced_server.address) as client:
            client.call("ping", trace="my-trace-1")
            assert client.last_trace == "my-trace-1"
            fetched = client.trace(id="my-trace-1")
        assert fetched["enabled"] is True
        assert fetched["count"] == 1
        assert fetched["traces"][0]["trace"] == "my-trace-1"
        assert fetched["traces"][0]["op"] == "ping"

    def test_minted_trace_id_is_echoed(self, traced_server):
        with ServiceClient(*traced_server.address) as client:
            client.ping()
            minted = client.last_trace
            assert minted is not None
            fetched = client.trace(id=minted)
        assert fetched["count"] == 1

    def test_sweep_trace_covers_the_stack(self, traced_server):
        """The acceptance criterion: one cold sweep produces a span
        tree with dispatch, coalesce, queue, compile, and evaluate
        stages, all direct children of the root, whose summed
        durations do not exceed the root's."""
        with ServiceClient(*traced_server.address) as client:
            client.call("sweep", query=QUERY, p=5, grid=4,
                        trace="cold-sweep")
            payload = client.trace(id="cold-sweep")["traces"][0]
        spans = payload["spans"]
        roots = [s for s in spans if s["parent"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "sweep"
        children = [s for s in spans if s["parent"] == roots[0]["id"]]
        stages = {s["name"] for s in children}
        assert {"dispatch", "coalesce", "queue", "compile",
                "evaluate"} <= stages
        summed = sum(s["duration_ms"] for s in children)
        assert summed <= payload["duration_ms"] + 0.1
        # The compile span crossed to the worker thread but still
        # landed in this trace, tagged with the circuit size.
        compile_span = next(s for s in children
                            if s["name"] == "compile")
        assert compile_span["tags"]["nodes"] > 0

    def test_coalesced_rider_attributes_leader(self):
        n = 3
        with ReproServer(port=0, window=0.5) as server:
            barrier = threading.Barrier(n)

            def worker(i):
                with ServiceClient(*server.address) as c:
                    barrier.wait()
                    c.call("sweep", query=QUERY, p=6, grid=4,
                           trace=f"co-{i}")

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServiceClient(*server.address) as c:
                traces = c.trace(limit=10)["traces"]
        by_id = {p["trace"]: p for p in traces
                 if p["trace"].startswith("co-")}
        assert len(by_id) == n

        def rider_tags(payload):
            return [s["tags"] for s in payload["spans"]
                    if s["tags"].get("role") == "rider"]

        def has_compile(payload):
            return any(s["name"] == "compile"
                       for s in payload["spans"])

        leaders = [p for p in by_id.values() if has_compile(p)]
        riders = [p for p in by_id.values() if not has_compile(p)]
        assert len(leaders) == 1
        assert len(riders) == n - 1
        for payload in riders:
            tags = rider_tags(payload)
            assert tags, "rider trace carries no rider span"
            leaders_seen = {t["leader"] for t in tags if "leader" in t}
            assert leaders_seen <= {leaders[0]["trace"]}

    def test_slow_request_lands_in_slow_log(self, traced_server,
                                            tmp_path):
        """slow_ms=0 marks every request slow: the trace shows up in
        the slow view and in the JSONL export."""
        with ServiceClient(*traced_server.address) as client:
            client.call("ping", trace="slow-ping")
            slow = client.trace(slow=True)
        assert any(p["trace"] == "slow-ping" and p["slow"]
                   for p in slow["traces"])
        lines = (tmp_path / SLOW_LOG_NAME).read_text().splitlines()
        exported = [json.loads(line) for line in lines]
        assert any(p["trace"] == "slow-ping" for p in exported)

    def test_trace_op_is_tenant_scoped(self, tmp_path):
        with ReproServer(port=0, auth_tokens={"tok-a": "acme",
                                              "tok-z": "zeta"}) as srv:
            with ServiceClient(*srv.address, auth="tok-a") as a:
                a.call("ping", trace="acme-ping")
            with ServiceClient(*srv.address, auth="tok-z") as z:
                z.call("ping", trace="zeta-ping")
                listing = z.trace(limit=10)
        ids = {p["trace"] for p in listing["traces"]}
        assert "zeta-ping" in ids
        assert "acme-ping" not in ids

    def test_disabled_tracing_answers_empty(self):
        with ReproServer(port=0, tracing=False) as srv:
            with ServiceClient(*srv.address) as client:
                client.call("ping", trace="ghost")
                # The client-supplied id is still echoed for
                # correlation even though nothing is recorded.
                assert client.last_trace == "ghost"
                listing = client.trace()
                stats = client.stats()
        assert listing == {"enabled": False, "count": 0, "traces": []}
        assert stats["tracing"]["enabled"] is False

    def test_stats_uptime_and_metrics_histograms(self, traced_server):
        with ServiceClient(*traced_server.address) as client:
            client.sweep(QUERY, p=4, grid=4)
            stats = client.stats()
            metrics = client.metrics()["text"]
        service = stats["service"]
        assert service["uptime_seconds"] >= 0.0
        assert service["started_at"] > 1.6e9  # a sane unix timestamp
        tracing = stats["tracing"]
        assert tracing["enabled"] is True
        assert tracing["completed"] >= 1
        assert "sweep" in tracing["histograms"]
        assert "total" in tracing["histograms"]["sweep"]
        assert "repro_op_stage_seconds_bucket{" in metrics
        assert 'op="sweep"' in metrics
        assert 'stage="total"' in metrics
        assert 'le="+Inf"' in metrics
        assert "repro_op_stage_seconds_count" in metrics
        assert "repro_uptime_seconds" in metrics
        assert "repro_started_at_seconds" in metrics
        # The projection is a pure function of stats: same input,
        # same text.
        assert render_metrics(stats) == render_metrics(stats)

    def test_bad_trace_field_is_refused(self, traced_server):
        host, port = traced_server.address
        with socket.create_connection((host, port)) as sock:
            fh = sock.makefile("rwb")
            fh.write(json.dumps({"v": 1, "op": "ping", "id": 1,
                                 "trace": 7}).encode() + b"\n")
            fh.flush()
            response = json.loads(fh.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"


class TestCtlVerbs:
    def test_ctl_trace_and_top(self, traced_server, capsys):
        host, port = traced_server.address
        with ServiceClient(host, port) as client:
            client.sweep(QUERY, p=4, grid=4)
        assert main(["ctl", "trace", "--host", host,
                     "--port", str(port), "--limit", "5"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["count"] >= 1
        assert main(["ctl", "top", "--host", host,
                     "--port", str(port)]) == 0
        table = capsys.readouterr().out
        lines = table.splitlines()
        assert lines[0].split() == ["op", "stage", "count",
                                    "total_ms", "p50_ms", "p99_ms"]
        assert any("sweep" in line and "total" in line
                   for line in lines[1:])

    def test_ctl_trace_by_id(self, traced_server, capsys):
        host, port = traced_server.address
        with ServiceClient(host, port) as client:
            client.call("ping", trace="ctl-ping")
        assert main(["ctl", "trace", "--host", host,
                     "--port", str(port), "--id", "ctl-ping"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["count"] == 1
        assert listing["traces"][0]["trace"] == "ctl-ping"

    def test_ctl_top_without_traffic(self, capsys):
        with ReproServer(port=0, tracing=False) as srv:
            host, port = srv.address
            assert main(["ctl", "top", "--host", host,
                         "--port", str(port)]) == 0
        assert "no traced requests" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Client transport knobs
# ----------------------------------------------------------------------
class TestClientTransport:
    def test_per_call_timeout_raises_service_error(self):
        """A server that accepts but never answers must surface a
        structured timeout, not hang the caller."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        accepted = []

        def accept():
            conn, _ = listener.accept()
            accepted.append(conn)  # hold it open, answer nothing

        thread = threading.Thread(target=accept)
        thread.start()
        try:
            client = ServiceClient(host, port)
            with pytest.raises(ServiceError) as err:
                client.call("ping", timeout=0.2)
            assert err.value.code == "timeout"
        finally:
            thread.join()
            for conn in accepted:
                conn.close()
            listener.close()

    def test_timeout_must_be_positive(self, traced_server):
        with ServiceClient(*traced_server.address) as client:
            with pytest.raises(ValueError):
                client.call("ping", timeout=0)

    def test_connect_retry_waits_for_late_listener(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        listener = socket.socket()

        def open_late():
            time.sleep(0.2)
            listener.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEADDR, 1)
            listener.bind((host, port))
            listener.listen(1)

        thread = threading.Thread(target=open_late)
        thread.start()
        try:
            client = ServiceClient(host, port, connect_retries=10,
                                   retry_backoff=0.05)
            client.close()
        finally:
            thread.join()
            listener.close()

    def test_exhausted_retries_propagate(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        with pytest.raises(OSError):
            ServiceClient(host, port, connect_retries=1,
                          retry_backoff=0.01)

    def test_retry_validation(self):
        with pytest.raises(ValueError):
            ServiceClient(connect_retries=-1)
        with pytest.raises(ValueError):
            ServiceClient(retry_backoff=-0.1)


# ----------------------------------------------------------------------
# Hash-seed determinism of everything serialized
# ----------------------------------------------------------------------
_TRACE_PROBE = r"""
import json
from repro.obs import Tracer, span
from repro.service.metrics import render_metrics


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.001
        return self.now


tracer = Tracer(clock=Clock(), slow_threshold=0.0)
for op in ("evaluate", "sweep"):
    with tracer.root(op, tenant="acme", zeta=1, alpha="two",
                     mid=True):
        with span("dispatch", cached=False):
            pass
        with span(op, lanes=4, numeric="exact"):
            with span("kernel"):
                pass
traces = tracer.recent(limit=10)
hist = tracer.histograms()
stats = {"service": {"uptime_seconds": 1.5, "started_at": 2.0},
         "tracing": dict(tracer.stats(), histograms=hist)}
print(json.dumps({
    "traces": traces,
    "histograms": hist,
    "stats": tracer.stats(),
    "metrics": render_metrics(stats),
}, sort_keys=True))
"""


def _probe(hashseed):
    env = dict(os.environ,
               PYTHONHASHSEED=hashseed,
               PYTHONPATH=SRC + os.pathsep + os.environ.get(
                   "PYTHONPATH", ""))
    out = subprocess.run(
        [sys.executable, "-c", _TRACE_PROBE], env=env,
        capture_output=True, text=True, check=True)
    return json.loads(out.stdout)


class TestTraceDeterminism:
    def test_serialized_traces_identical_under_two_seeds(self):
        """Trace ids, span order, tag order, histogram buckets, and
        the Prometheus rendering agree between PYTHONHASHSEED=0 and
        =12345."""
        assert _probe("0") == _probe("12345")
