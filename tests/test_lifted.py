"""The PTIME lifted evaluator for safe queries (the easy dichotomy side)."""

import random
from fractions import Fraction

import pytest

from repro.core import catalog
from repro.core.clauses import Clause
from repro.core.queries import Query, query
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.lifted import UnsafeQueryError, lifted_probability
from repro.tid.wmc import probability

F = Fraction
VALUES = [F(0), F(1, 4), F(1, 2), F(1)]


def random_tid(symbols, U, V, seed):
    rng = random.Random(seed)
    probs = {}
    for u in U:
        probs[r_tuple(u)] = rng.choice(VALUES)
    for v in V:
        probs[t_tuple(v)] = rng.choice(VALUES)
    for s in symbols:
        for u in U:
            for v in V:
                probs[s_tuple(s, u, v)] = rng.choice(VALUES)
    return TID(U, V, probs)


SAFE_QUERIES = [
    ("left-only", catalog.safe_left_only()),
    ("disconnected", catalog.safe_disconnected()),
    ("middle-only", query(Clause.middle("S1", "S2"))),
    ("right-only type2", query(Clause.right_type2(["S1"], ["S2"]),
                               Clause.middle("S1", "S2"))),
    ("left type2", query(Clause.left_type2(["S1"], ["S2", "S3"]),
                         Clause.middle("S2", "S4"))),
    ("two left clauses", query(Clause.left_type1("S1"),
                               Clause.left_type2(["S1"], ["S2"]),
                               Clause.middle("S1", "S2"))),
    ("unary only", query(Clause.unary_only("R"))),
]


class TestAgainstWMC:
    @pytest.mark.parametrize("name,q", SAFE_QUERIES)
    def test_matches_wmc_small(self, name, q):
        symbols = sorted(q.binary_symbols)
        for seed in range(6):
            tid = random_tid(symbols, ["u1", "u2"], ["v1", "v2"], seed)
            assert lifted_probability(q, tid) == probability(q, tid), \
                (name, seed)

    @pytest.mark.parametrize("name,q", SAFE_QUERIES[:4])
    def test_matches_wmc_asymmetric_domains(self, name, q):
        symbols = sorted(q.binary_symbols)
        tid = random_tid(symbols, ["u1"], ["v1", "v2", "v3"], 99)
        assert lifted_probability(q, tid) == probability(q, tid)

    def test_full_clause_r_or_t(self):
        q = Query([Clause("full", {"R", "T"}, [])])
        tid = random_tid([], ["u1", "u2"], ["v1"], 7)
        assert lifted_probability(q, tid) == probability(q, tid)


class TestRejections:
    def test_unsafe_raises(self):
        q = catalog.rst_query()
        tid = random_tid(["S1"], ["u"], ["v"], 0)
        with pytest.raises(UnsafeQueryError):
            lifted_probability(q, tid)

    def test_h0_raises(self):
        tid = random_tid(["S"], ["u"], ["v"], 0)
        with pytest.raises(UnsafeQueryError):
            lifted_probability(catalog.h0(), tid)


class TestConstants:
    def test_true(self):
        tid = random_tid([], ["u"], ["v"], 0)
        assert lifted_probability(Query.TRUE, tid) == 1

    def test_false(self):
        tid = random_tid([], ["u"], ["v"], 0)
        assert lifted_probability(Query.FALSE, tid) == 0


class TestScaling:
    def test_larger_domain_runs(self):
        """The lifted evaluator must handle domains where brute-force
        WMC would be hopeless (PTIME side of the dichotomy, E13)."""
        q = catalog.safe_left_only()
        U = [f"u{i}" for i in range(12)]
        V = [f"v{j}" for j in range(12)]
        tid = random_tid(sorted(q.binary_symbols), U, V, 5)
        value = lifted_probability(q, tid)
        assert 0 <= value <= 1

    def test_product_over_components(self):
        q = catalog.safe_disconnected()
        tid = random_tid(sorted(q.binary_symbols), ["u1"], ["v1"], 3)
        from repro.core.safety import connected_components
        parts = connected_components(q)
        product = F(1)
        for part in parts:
            product *= lifted_probability(part, tid)
        assert product == lifted_probability(q, tid)
