"""Monotone CNF formulas — repro.booleans.cnf."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans.cnf import CNF


class TestConstruction:
    def test_true(self):
        assert CNF.TRUE.is_true()
        assert not CNF.TRUE.is_false()

    def test_false(self):
        assert CNF.FALSE.is_false()
        assert CNF([[]]).is_false()

    def test_absorption(self):
        f = CNF([["a"], ["a", "b"]])
        assert f.clauses == frozenset({frozenset({"a"})})

    def test_absorption_keeps_incomparable(self):
        f = CNF([["a", "b"], ["b", "c"]])
        assert len(f.clauses) == 2

    def test_duplicate_clauses_merge(self):
        assert len(CNF([["a", "b"], ["b", "a"]]).clauses) == 1

    def test_false_absorbs_everything(self):
        f = CNF([[], ["a", "b"]])
        assert f.is_false()
        assert len(f.clauses) == 1

    def test_variables(self):
        assert CNF([["a", "b"], ["c"]]).variables() == {"a", "b", "c"}


class TestConnectives:
    def test_conjoin(self):
        f = CNF([["a"]]) & CNF([["b"]])
        assert f == CNF([["a"], ["b"]])

    def test_conjoin_false(self):
        assert (CNF([["a"]]) & CNF.FALSE).is_false()

    def test_disjoin_distributes(self):
        f = CNF([["a"], ["b"]]) | CNF([["c"]])
        assert f == CNF([["a", "c"], ["b", "c"]])

    def test_disjoin_true(self):
        assert (CNF([["a"]]) | CNF.TRUE).is_true()

    def test_disjunction_many(self):
        f = CNF.disjunction([CNF([["a"]]), CNF([["b"]]), CNF([["c"]])])
        assert f == CNF([["a", "b", "c"]])

    def test_conjunction_shortcircuits_false(self):
        assert CNF.conjunction([CNF([["a"]]), CNF.FALSE]).is_false()


class TestConditioning:
    def test_condition_true_drops_clauses(self):
        f = CNF([["a", "b"], ["c"]])
        assert f.condition("a", True) == CNF([["c"]])

    def test_condition_false_shrinks(self):
        f = CNF([["a", "b"], ["c"]])
        assert f.condition("a", False) == CNF([["b"], ["c"]])

    def test_condition_to_false(self):
        assert CNF([["a"]]).condition("a", False).is_false()

    def test_condition_many(self):
        f = CNF([["a", "b"], ["b", "c"]])
        assert f.condition_many({"a": False, "c": True}) == CNF([["b"]])

    def test_evaluate(self):
        f = CNF([["a", "b"], ["c"]])
        assert f.evaluate({"a", "c"})
        assert not f.evaluate({"a"})
        assert not f.evaluate({"c"})


class TestImplication:
    def test_implies_subsumption(self):
        assert CNF([["a"]]).implies(CNF([["a", "b"]]))
        assert not CNF([["a", "b"]]).implies(CNF([["a"]]))

    def test_implies_reflexive(self):
        f = CNF([["a", "b"], ["c"]])
        assert f.implies(f)

    def test_false_implies_everything(self):
        assert CNF.FALSE.implies(CNF([["a"]]))

    def test_everything_implies_true(self):
        assert CNF([["a"]]).implies(CNF.TRUE)

    def test_rename(self):
        f = CNF([["a", "b"]])
        assert f.rename({"a": "x"}) == CNF([["x", "b"]])


@st.composite
def cnfs(draw, variables=("a", "b", "c", "d")):
    n_clauses = draw(st.integers(0, 4))
    clauses = []
    for _ in range(n_clauses):
        clause = [v for v in variables if draw(st.booleans())]
        if clause:
            clauses.append(clause)
    return CNF(clauses)


def brute_implies(f: CNF, g: CNF, variables) -> bool:
    from itertools import product
    for bits in product((False, True), repeat=len(variables)):
        true_vars = {v for v, b in zip(variables, bits) if b}
        if f.evaluate(true_vars) and not g.evaluate(true_vars):
            return False
    return True


class TestProperties:
    variables = ("a", "b", "c", "d")

    @given(cnfs(), cnfs())
    @settings(max_examples=80, deadline=None)
    def test_implies_matches_semantics(self, f, g):
        assert f.implies(g) == brute_implies(f, g, self.variables)

    @given(cnfs(), cnfs())
    @settings(max_examples=60, deadline=None)
    def test_conjoin_semantics(self, f, g):
        from itertools import product
        h = f & g
        for bits in product((False, True), repeat=4):
            tv = {v for v, b in zip(self.variables, bits) if b}
            assert h.evaluate(tv) == (f.evaluate(tv) and g.evaluate(tv))

    @given(cnfs(), cnfs())
    @settings(max_examples=60, deadline=None)
    def test_disjoin_semantics(self, f, g):
        from itertools import product
        h = f | g
        for bits in product((False, True), repeat=4):
            tv = {v for v, b in zip(self.variables, bits) if b}
            assert h.evaluate(tv) == (f.evaluate(tv) or g.evaluate(tv))

    @given(cnfs(), st.sampled_from(("a", "b", "c", "d")),
           st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_condition_semantics(self, f, var, value):
        from itertools import product
        g = f.condition(var, value)
        others = [v for v in self.variables if v != var]
        for bits in product((False, True), repeat=3):
            tv = {v for v, b in zip(others, bits) if b}
            full = tv | ({var} if value else set())
            assert g.evaluate(tv) == f.evaluate(full)
