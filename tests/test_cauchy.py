"""Lemmas 3.8, 3.10, 3.12 — repro.algebra.cauchy."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.cauchy import (
    cauchy_determinant,
    cauchy_matrix,
    grid_nonvanishing_point,
    jacobian_h,
    jacobian_h_determinant,
    lemma312_matrix,
)
from repro.algebra.polynomials import Polynomial

F = Fraction


class TestCauchyDeterminant:
    def test_closed_form_small(self):
        cs, zs = [F(1), F(2)], [F(3), F(5)]
        assert cauchy_matrix(cs, zs).determinant() == \
            cauchy_determinant(cs, zs)

    def test_closed_form_3x3(self):
        cs, zs = [F(1), F(2), F(5)], [F(3), F(7), F(11)]
        assert cauchy_matrix(cs, zs).determinant() == \
            cauchy_determinant(cs, zs)

    def test_equal_cs_gives_zero(self):
        assert cauchy_determinant([F(1), F(1)], [F(2), F(3)]) == 0

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            cauchy_determinant([F(1)], [F(2), F(3)])

    distinct = st.lists(st.integers(1, 30), min_size=3, max_size=3,
                        unique=True)

    @given(distinct, distinct)
    @settings(max_examples=40, deadline=None)
    def test_closed_form_random(self, cs, zs):
        cs = [F(c) for c in cs]
        zs = [F(z, 7) for z in zs]
        assert cauchy_matrix(cs, zs).determinant() == \
            cauchy_determinant(cs, zs)


class TestLemma310:
    def test_jacobian_factorization(self):
        cs, zs = [F(1), F(2), F(4)], [F(3), F(5), F(9)]
        assert jacobian_h(cs, zs).determinant() == \
            jacobian_h_determinant(cs, zs)

    def test_nonzero_at_distinct_points(self):
        """Lemma 3.10's conclusion: distinct c's and distinct u's give
        a non-zero Jacobian."""
        cs, zs = [F(1), F(2)], [F(5), F(7)]
        assert jacobian_h(cs, zs).determinant() != 0

    def test_zero_when_points_coincide(self):
        cs, zs = [F(1), F(2)], [F(5), F(5)]
        assert jacobian_h(cs, zs).determinant() == 0


class TestLemma38:
    def test_finds_point(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        poly = (x - 1) * (x - 2) * (y - 3)
        grids = {"x": [F(1), F(2), F(4)], "y": [F(3), F(5)]}
        point = grid_nonvanishing_point(poly, grids)
        assert poly.evaluate(point) != 0
        assert point["x"] == F(4)

    def test_zero_poly_raises(self):
        with pytest.raises(ValueError):
            grid_nonvanishing_point(Polynomial.zero(), {})

    def test_insufficient_grid_raises(self):
        x = Polynomial.variable("x")
        with pytest.raises(ValueError):
            grid_nonvanishing_point((x - 1) * (x - 2),
                                    {"x": [F(1), F(2)]})


class TestLemma312:
    def test_nonsingular_disjoint_grids(self):
        matrix = lemma312_matrix([F(5), F(7)],
                                 ([F(1), F(2)], [F(3), F(4)]), 1)
        assert not matrix.is_singular()

    def test_nonsingular_m2(self):
        matrix = lemma312_matrix(
            [F(5), F(7)],
            ([F(1), F(2), F(3)], [F(10), F(11), F(12)]), 2)
        assert not matrix.is_singular()

    def test_equal_grids_singular(self):
        """The repair recorded in EXPERIMENTS.md: with A_1 = A_2 the
        rows collide under coordinate swap and the matrix IS singular —
        Lemma 3.12 genuinely needs distinct per-coordinate grids."""
        matrix = lemma312_matrix([F(5), F(7)],
                                 ([F(1), F(2)], [F(1), F(2)]), 1)
        assert matrix.is_singular()

    def test_equal_cs_singular(self):
        matrix = lemma312_matrix([F(5), F(5)],
                                 ([F(1), F(2)], [F(3), F(4)]), 1)
        assert matrix.is_singular()

    def test_grid_count_mismatch(self):
        with pytest.raises(ValueError):
            lemma312_matrix([F(1), F(2)], ([F(1)],), 1)

    def test_h3(self):
        matrix = lemma312_matrix(
            [F(2), F(3), F(11)],
            ([F(1), F(5)], [F(6), F(8)], [F(9), F(13)]), 1)
        assert not matrix.is_singular()
