"""PQE / GFOMC / FOMC wrappers and the counting correspondence."""

from fractions import Fraction
from itertools import combinations

import pytest

from repro.core.catalog import h0, rst_query, safe_left_only
from repro.counting.problems import (
    fomc,
    generalized_model_count,
    gfomc,
    model_count,
    pqe,
)
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple

F = Fraction


def tid_with(probs, U=("u",), V=("v",), default=F(1)):
    return TID(U, V, probs, default=default)


class TestWrappers:
    def test_pqe_any_probabilities(self):
        tid = tid_with({r_tuple("u"): F(1, 3),
                        s_tuple("S1", "u", "v"): F(1, 7),
                        t_tuple("v"): F(2, 5)})
        assert 0 <= pqe(rst_query(), tid) <= 1

    def test_gfomc_accepts_half(self):
        tid = tid_with({r_tuple("u"): F(1, 2),
                        s_tuple("S1", "u", "v"): F(0),
                        t_tuple("v"): F(1)})
        gfomc(rst_query(), tid)

    def test_gfomc_rejects_third(self):
        tid = tid_with({r_tuple("u"): F(1, 3)})
        with pytest.raises(ValueError):
            gfomc(rst_query(), tid)

    def test_fomc_rejects_zero(self):
        tid = tid_with({r_tuple("u"): F(0)})
        with pytest.raises(ValueError):
            fomc(rst_query(), tid)

    def test_fomc_accepts_half_one(self):
        tid = tid_with({r_tuple("u"): F(1, 2)})
        fomc(rst_query(), tid)


def brute_generalized_count(query, shape, database, certain):
    """Direct subset enumeration for cross-validation."""
    from repro.tid.lineage import lineage
    database = sorted(set(database) - set(certain), key=repr)
    total = 0
    for r in range(len(database) + 1):
        for extra in combinations(database, r):
            world = set(extra) | set(certain)
            tid = TID(shape.left_domain, shape.right_domain,
                      {t: F(1) for t in world}, default=F(0))
            formula = lineage(query, tid)
            if formula.is_true():
                total += 1
    return total


class TestModelCounting:
    def setup_method(self):
        self.q = rst_query()
        self.shape = TID(["u1", "u2"], ["v1"])
        self.db = [r_tuple("u1"), r_tuple("u2"), t_tuple("v1"),
                   s_tuple("S1", "u1", "v1"), s_tuple("S1", "u2", "v1")]

    def test_model_count_matches_brute(self):
        got = model_count(self.q, self.shape, self.db)
        expected = brute_generalized_count(self.q, self.shape, self.db, [])
        assert got == expected

    def test_generalized_with_certain_tuples(self):
        certain = [t_tuple("v1")]
        got = generalized_model_count(self.q, self.shape, self.db, certain)
        expected = brute_generalized_count(
            self.q, self.shape, self.db, certain)
        assert got == expected

    def test_certain_outside_db_raises(self):
        with pytest.raises(ValueError):
            generalized_model_count(self.q, self.shape, self.db,
                                    [s_tuple("S1", "u1", "v9")])

    def test_all_certain(self):
        got = generalized_model_count(self.q, self.shape, self.db, self.db)
        assert got == 1  # the single world DB itself, which satisfies Q

    def test_empty_database(self):
        """With no tuples, every world is empty; RST holds vacuously
        only if the lineage is true (here: domain makes it false)."""
        got = model_count(self.q, self.shape, [])
        expected = brute_generalized_count(self.q, self.shape, [], [])
        assert got == expected

    def test_h0_model_count(self):
        db = [r_tuple("u1"), t_tuple("v1"), s_tuple("S", "u1", "v1")]
        shape = TID(["u1"], ["v1"])
        got = model_count(h0(), shape, db)
        expected = brute_generalized_count(h0(), shape, db, [])
        assert got == expected

    def test_safe_query_count(self):
        q = safe_left_only()
        shape = TID(["u1"], ["v1"])
        db = [r_tuple("u1"), s_tuple("S1", "u1", "v1"),
              s_tuple("S2", "u1", "v1"), s_tuple("S3", "u1", "v1")]
        got = model_count(q, shape, db)
        expected = brute_generalized_count(q, shape, db, [])
        assert got == expected
