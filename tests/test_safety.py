"""The safety dichotomy criterion (Definition 2.4) and query types."""

from repro.core import catalog
from repro.core.clauses import Clause
from repro.core.queries import Query, query
from repro.core.safety import (
    connected_components,
    is_connected,
    is_safe,
    is_unsafe,
    query_length,
    query_type,
)


class TestCensus:
    def test_catalog_expectations(self):
        for name, ctor, expect_unsafe in catalog.CENSUS:
            assert is_unsafe(ctor()) == expect_unsafe, name

    def test_lengths(self):
        assert query_length(catalog.h0()) == 0
        assert query_length(catalog.rst_query()) == 1
        assert query_length(catalog.path_query(2)) == 2
        assert query_length(catalog.path_query(5)) == 5
        assert query_length(catalog.safe_left_only()) is None

    def test_types(self):
        assert query_type(catalog.rst_query()) == ("I", "I")
        assert query_type(catalog.unsafe_type1_type2()) == ("I", "II")
        assert query_type(catalog.example_c9()) == ("II", "II")
        assert query_type(catalog.h0()) is None
        assert query_type(Query.TRUE) is None


class TestDefinition24:
    def test_no_right_clauses_safe(self):
        q = query(Clause.left_type1("S1"), Clause.middle("S1", "S2"))
        assert is_safe(q)

    def test_no_left_clauses_safe(self):
        q = query(Clause.middle("S1", "S2"), Clause.right_type1("S2"))
        assert is_safe(q)

    def test_disconnected_left_right_safe(self):
        assert is_safe(catalog.safe_disconnected())

    def test_direct_connection_length1(self):
        q = query(Clause.left_type1("S1"), Clause.right_type1("S1"))
        assert query_length(q) == 1

    def test_full_clause_no_binaries_safe(self):
        """R(x) v T(y) is (forall x R) v (forall y T): PTIME."""
        q = Query([Clause("full", {"R", "T"}, [])])
        assert is_safe(q)

    def test_unary_only_clause_safe(self):
        q = query(Clause.unary_only("R"), Clause.middle("S1"))
        assert is_safe(q)

    def test_long_chain(self):
        q = catalog.path_query(7)
        assert query_length(q) == 7
        assert is_unsafe(q)

    def test_constants_safe(self):
        assert is_safe(Query.TRUE)
        assert is_safe(Query.FALSE)


class TestComponents:
    def test_connected_query(self):
        assert is_connected(catalog.rst_query())

    def test_disconnected_split(self):
        parts = connected_components(catalog.safe_disconnected())
        assert len(parts) == 2
        symbol_sets = [p.symbols for p in parts]
        assert not (symbol_sets[0] & symbol_sets[1])

    def test_components_cover(self):
        q = catalog.safe_disconnected()
        parts = connected_components(q)
        all_clauses = {c for p in parts for c in p.clauses}
        assert all_clauses == set(q.clauses)

    def test_final_queries_connected(self):
        """Every final query is connected (Section 2)."""
        for q in (catalog.rst_query(), catalog.path_query(3),
                  catalog.wide_final_query(), catalog.example_c9()):
            assert is_connected(q)
