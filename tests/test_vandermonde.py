"""Lemma 3.7 machinery: Vandermonde and Kronecker structure."""

from fractions import Fraction

from repro.algebra.vandermonde import (
    kronecker_of_vandermondes,
    monomial_evaluation_matrix,
    vandermonde,
)

F = Fraction


class TestVandermonde:
    def test_square_nonsingular(self):
        vm = vandermonde([F(1), F(2), F(3)])
        assert not vm.is_singular()

    def test_duplicate_points_singular(self):
        vm = vandermonde([F(1), F(1), F(2)])
        assert vm.is_singular()

    def test_rectangular(self):
        vm = vandermonde([F(1), F(2)], degree=3)
        assert (vm.nrows, vm.ncols) == (2, 4)

    def test_entries(self):
        vm = vandermonde([F(2)], degree=2)
        assert vm.rows[0] == (F(1), F(2), F(4))


class TestLemma37:
    def test_evaluation_matrix_equals_kronecker(self):
        """The proof of Lemma 3.7: the grid-evaluation matrix of the
        monomials y1^k1 y2^k2 IS the Kronecker product of per-coordinate
        Vandermonde matrices."""
        grids = [[F(1), F(2), F(3)], [F(1), F(4), F(5)]]
        m = 2
        eval_matrix = monomial_evaluation_matrix(grids, m)
        kron = kronecker_of_vandermondes(grids, m)
        assert eval_matrix == kron

    def test_nonsingular_on_distinct_grids(self):
        """Lemma 3.7's conclusion: monomials are linearly independent
        because the evaluation matrix is non-singular."""
        grids = [[F(1), F(2), F(3)], [F(5), F(6), F(7)]]
        assert not monomial_evaluation_matrix(grids, 2).is_singular()

    def test_three_coordinates(self):
        grids = [[F(1), F(2)], [F(3), F(4)], [F(5), F(6)]]
        m = 1
        assert monomial_evaluation_matrix(grids, m) == \
            kronecker_of_vandermondes(grids, m)
        assert not monomial_evaluation_matrix(grids, m).is_singular()

    def test_degenerate_grid_singular(self):
        grids = [[F(1), F(1), F(2)], [F(1), F(2), F(3)]]
        assert monomial_evaluation_matrix(grids, 2).is_singular()
