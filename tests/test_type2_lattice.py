"""Type-II structure: G/H decomposition, lattices, Q_alpha_beta
(Sections C.2, C.3; Lemmas C.10, C.22, C.23)."""

from itertools import product

import pytest

from repro.algebra.lattice import TOP
from repro.booleans.cnf import CNF
from repro.booleans.connectivity import is_connected
from repro.core import catalog
from repro.core.clauses import Clause
from repro.core.queries import query
from repro.reduction.type2_blocks import type2_block
from repro.reduction.type2_lattice import TypeIIStructure, _distribute


class TestDistribution:
    def test_example_c5(self):
        """Example C.5: two left clauses distribute into three distinct
        CNFs G_1 = S1, G_2 = (S1 v S2)(S2 v S3), G_3 = (S1 v S3)(S2 v S3)."""
        clauses = [
            Clause.left_type2(["S1", "S2"], ["S1", "S3"]),
            Clause.left_type2(["S1"], ["S2", "S3"]),
        ]
        gs = _distribute(clauses)
        expected = {
            CNF([["S1"]]),
            CNF([["S1", "S2"], ["S2", "S3"]]),
            CNF([["S1", "S3"], ["S2", "S3"]]),
            CNF([["S1", "S2"], ["S1", "S3"], ["S2", "S3"]]),
        }
        # The paper lists three G's after absorbing the choice
        # {S1} & (S1 v S2)... : G from picking S1 in clause 2 and either
        # subclause in clause 1 absorbs to the singleton CNF {S1}&...;
        # our absorption keeps the distinct minimized CNFs:
        assert set(gs) <= expected
        assert CNF([["S1", "S2"], ["S2", "S3"]]) in gs

    def test_example_c9_sides(self):
        st = TypeIIStructure(catalog.example_c9())
        assert st.G == [CNF([["S1"]]), CNF([["S2"]])]
        assert st.H == [CNF([["S3"]]), CNF([["S4"]])]
        assert st.C == CNF([["S1", "S3"]])


class TestLattices:
    def test_example_c9_supports(self):
        st = TypeIIStructure(catalog.example_c9())
        assert st.m_bar == 3
        assert st.n_bar == 3
        assert frozenset({0}) in st.left_lattice.strict_support
        assert frozenset({0, 1}) in st.left_lattice.strict_support

    def test_unsafe_type2_has_mbar_at_least_3(self):
        """Definition C.8: unsafe Type-II queries have m_bar, n_bar >= 3."""
        for q in (catalog.example_c9(), catalog.example_c15()):
            st = TypeIIStructure(q)
            assert st.m_bar >= 3
            assert st.n_bar >= 3

    def test_rejects_type1(self):
        with pytest.raises(ValueError):
            TypeIIStructure(catalog.rst_query())

    def test_g_alpha_top_is_disjunction(self):
        st = TypeIIStructure(catalog.example_c9())
        assert st.g_alpha(TOP) == CNF([["S1", "S2"]])

    def test_g_alpha_conjunction(self):
        st = TypeIIStructure(catalog.example_c9())
        assert st.g_alpha(frozenset({0, 1})) == CNF([["S1"], ["S2"]])


class TestLemmaC22Invertibility:
    """(alpha, beta) -> Y_alpha_beta is invertible: implication between
    the grounded lineages orders the lattice pairs."""

    def test_distinct_lineages_on_block(self):
        q = catalog.example_c15()
        st = TypeIIStructure(q)
        block = type2_block(q, p=1)
        seen = {}
        for alpha in st.left_lattice.strict_support:
            for beta in st.right_lattice.strict_support:
                y = st.lineage_y(block, "u", "v", alpha, beta)
                assert y not in seen.values(), (alpha, beta)
                seen[(alpha, beta)] = y

    def test_implication_respects_order(self):
        q = catalog.example_c9()
        st = TypeIIStructure(q)
        block = type2_block(q, p=1)
        support = st.left_lattice.strict_support
        for a1, a2 in product(support, repeat=2):
            y1 = st.lineage_y(block, "u", "v", a1, frozenset({0}))
            y2 = st.lineage_y(block, "u", "v", a2, frozenset({0}))
            if y1.implies(y2):
                # Lemma C.22: implication forces lattice order.
                assert st.left_lattice.leq(a1, a2) or y1 == y2


class TestLemmaC23Connectivity:
    def test_forbidden_query_lineages_connected(self):
        """For the forbidden query of Example C.15, every Y_alpha_beta
        on the zig-zag block is connected."""
        q = catalog.example_c15()
        st = TypeIIStructure(q)
        block = type2_block(q, p=1)
        for alpha in st.left_lattice.strict_support:
            for beta in st.right_lattice.strict_support:
                y = st.lineage_y(block, "u", "v", alpha, beta)
                assert is_connected(y), (alpha, beta)

    def test_non_forbidden_query_disconnects(self):
        """Example C.9 is final but not forbidden: the paper notes none
        of its Q_alpha_beta is connected."""
        q = catalog.example_c9()
        st = TypeIIStructure(q)
        block = type2_block(q, p=1)
        alpha = frozenset({0})
        beta = frozenset({0})
        y = st.lineage_y(block, "u", "v", alpha, beta)
        assert not is_connected(y)


class TestGrounding:
    def test_ground_left_shape(self):
        q = catalog.example_c9()
        st = TypeIIStructure(q)
        block = type2_block(q, p=1)
        grounded = st.ground_left(CNF([["S1"]]), block, "u")
        # One unit clause per right constant adjacent to u with an
        # uncertain S1 tuple.
        assert all(len(c) == 1 for c in grounded.clauses)

    def test_ground_respects_certain_tuples(self):
        q = catalog.example_c9()
        st = TypeIIStructure(q)
        block = type2_block(q, p=1)
        certain = block.with_probability(
            next(iter(t for t in block.probs if t[0] == "S1")), 1)
        grounded = st.ground_left(CNF([["S1"]]), certain, "u")
        assert len(grounded.clauses) <= len(
            st.ground_left(CNF([["S1"]]), block, "u").clauses)
