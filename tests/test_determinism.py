"""Run-to-run determinism of both WMC engines.

Frozenset iteration order varies with PYTHONHASHSEED, so anything that
iterates clause sets without a deterministic tie-break drifts between
runs.  These tests pin the contract: circuit statistics, serialized
bytes, probabilities, and the recursive engine's values are identical
across hash seeds and across variable insertion orders.
"""

import json
import os
import subprocess
import sys
from fractions import Fraction
from pathlib import Path

from repro.booleans.circuit import compile_cnf
from repro.booleans.cnf import CNF
from repro.tid.wmc import shannon_probability

F = Fraction

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Executed in a fresh interpreter per hash seed: digest everything
#: that must be run-independent.
_PROBE = """
import hashlib, json
from fractions import Fraction
from repro.booleans.circuit import compile_cnf
from repro.booleans.store import cnf_fingerprint
from repro.core.catalog import rst_query
from repro.reduction.blocks import path_block
from repro.tid.lineage import lineage
from repro.tid.wmc import shannon_probability

query = rst_query()
tid = path_block(query, 3)
formula = lineage(query, tid)
circuit = compile_cnf(formula)
weights = {var: Fraction(i + 1, 40)
           for i, var in enumerate(sorted(formula.variables(),
                                          key=repr))}
print(json.dumps({
    "stats": circuit.stats(),
    "bytes": hashlib.sha256(circuit.to_bytes()).hexdigest(),
    "fingerprint": cnf_fingerprint(formula),
    "probability": str(circuit.probability(weights)),
    "block_probability": str(circuit.probability(tid.probability)),
    "model_count": circuit.model_count(formula.variables()),
    "marginal_sample": str(sorted(
        circuit.marginals(weights).items(), key=repr)[0][1]),
    "shannon": str(shannon_probability(formula, weights)),
}, sort_keys=True))
"""

#: The sampling/estimation layer must be just as seed-independent: the
#: estimators iterate variables in sorted-repr order and the sampler
#: walks the (already deterministic) node table, so fixed rng seeds
#: give identical draws under any PYTHONHASHSEED.  The adaptive
#: estimator and importance sampler are held to the strongest form of
#: the contract: their *entire* serialized state (``as_dict`` — point
#: estimate, achieved interval, stopping checkpoint, weights drawn) is
#: byte-identical across hash seeds.
_PROBE_APPROX = """
import json
from fractions import Fraction
from repro.booleans.adaptive import (
    adaptive_estimate_probability,
    importance_estimate_probability,
)
from repro.booleans.approximate import estimate_probability
from repro.booleans.circuit import compile_cnf
from repro.core.catalog import rst_query
from repro.reduction.blocks import path_block
from repro.tid.lineage import lineage

query = rst_query()
tid = path_block(query, 3)
formula = lineage(query, tid)
circuit = compile_cnf(formula)
estimate = estimate_probability(
    formula, tid.probability, Fraction(1, 10), Fraction(1, 10), rng=7)
adaptive = adaptive_estimate_probability(
    formula, tid.probability, Fraction(1, 10), Fraction(1, 10), rng=7)
importance = importance_estimate_probability(
    formula, tid.probability, Fraction(1, 10), Fraction(1, 10), rng=7,
    relative_error=Fraction(1, 2))
worlds = circuit.sample(tid.probability, k=5, rng=7)
top = circuit.top_k_worlds(tid.probability, k=4)
print(json.dumps({
    "estimate": str(estimate.estimate),
    "successes": estimate.successes,
    "samples": estimate.samples,
    "adaptive": adaptive.as_dict(),
    "importance": importance.as_dict(),
    "worlds": [sorted((repr(v), bool(b)) for v, b in w.items())
               for w in worlds],
    "top": [[str(p), sorted((repr(v), bool(b))
                            for v, b in w.items())]
            for p, w in top],
}, sort_keys=True))
"""


def _probe(hashseed: str, script: str = _PROBE) -> dict:
    env = dict(os.environ,
               PYTHONHASHSEED=hashseed,
               PYTHONPATH=SRC + os.pathsep + os.environ.get(
                   "PYTHONPATH", ""))
    out = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True,
        text=True, check=True)
    return json.loads(out.stdout)


class TestAcrossHashSeeds:
    def test_engines_identical_under_two_seeds(self):
        """Stats, serialized bytes, fingerprint, and every probability
        agree between PYTHONHASHSEED=0 and =12345."""
        a = _probe("0")
        b = _probe("12345")
        assert a == b

    def test_sampling_and_estimation_identical_under_two_seeds(self):
        """Monte-Carlo estimates, sampled worlds, and top-k lists are
        bit-identical across hash seeds for a fixed rng seed."""
        a = _probe("0", _PROBE_APPROX)
        b = _probe("12345", _PROBE_APPROX)
        assert a == b


class TestAcrossInsertionOrders:
    def build(self, clause_order, token_order):
        """The same 2x2 block-ish CNF assembled in a given order."""
        clauses = [[("S", "u1", "v1"), ("R", "u1")],
                   [("S", "u1", "v2"), ("R", "u1")],
                   [("S", "u2", "v1"), ("T", "v1")],
                   [("S", "u2", "v2"), ("T", "v2")],
                   [("R", "u2")]]
        return CNF([list(token_order(c)) for c in clause_order(clauses)])

    def test_same_circuit_any_order(self):
        forward = self.build(lambda cs: cs, lambda c: c)
        backward = self.build(reversed, lambda c: list(reversed(c)))
        assert forward == backward
        a, b = compile_cnf(forward), compile_cnf(backward)
        assert a.nodes == b.nodes
        assert a.root == b.root
        assert a.to_bytes() == b.to_bytes()
        assert a.stats() == b.stats()

    def test_shannon_values_any_order(self):
        forward = self.build(lambda cs: cs, lambda c: c)
        backward = self.build(reversed, lambda c: list(reversed(c)))
        weights = {var: F(1, 3) for var in forward.variables()}
        assert shannon_probability(forward, weights) == \
            shannon_probability(backward, weights)


class TestUnitClauseChoice:
    def test_shannon_picks_min_repr_unit(self):
        """The recursive engine must condition on the min-by-repr unit
        first, like the compiler, not on frozenset iteration order."""
        formula = CNF([["b"], ["a"], ["a", "c"], ["b", "d"], ["c", "d"]])
        queried = []

        def prob(var):
            queried.append(var)
            return F(1, 2)

        shannon_probability(formula, prob)
        assert queried[0] == "a"
        assert queried[1] == "b"

    def test_compiler_and_shannon_agree_with_units(self):
        formula = CNF([["z"], ["y"], ["x", "w"], ["w", "z"]])
        weights = {v: F(2, 5) for v in formula.variables()}
        assert compile_cnf(formula).probability(weights) == \
            shannon_probability(formula, weights)
