"""The zig-zag rewriting zg(Q) (Appendix A, Lemma 2.6, Lemma A.1;
experiments E10, F2)."""

import random
from fractions import Fraction

import pytest

from repro.core import catalog
from repro.core.safety import is_unsafe, query_length, query_type
from repro.reduction.zigzag import (
    branch_width,
    zigzag_database,
    zigzag_query,
    zigzag_vocabulary,
)
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.wmc import probability

F = Fraction
GFOMC = [F(0), F(1, 2), F(1)]


def random_delta(query, U, V, seed, values=GFOMC):
    """A random bipartite database over zg(R) for zg(Q)."""
    rng = random.Random(seed)
    zq = zigzag_query(query)
    probs = {}
    has_r = any("R" in c.unaries for c in zq.clauses)
    has_t = any("T" in c.unaries for c in zq.clauses)
    for u in U:
        if has_r:
            probs[r_tuple(u)] = rng.choice(values)
    for v in V:
        if has_t:
            probs[t_tuple(v)] = rng.choice(values)
    for symbol in sorted(zq.binary_symbols):
        for u in U:
            for v in V:
                probs[s_tuple(symbol, u, v)] = rng.choice(values)
    return TID(U, V, probs, default=F(1))


class TestBranchWidth:
    def test_right_type1_gives_2(self):
        assert branch_width(catalog.rst_query()) == 2

    def test_right_type2_gives_at_least_3(self):
        assert branch_width(catalog.example_c9()) == 3

    def test_wide_right_clause(self):
        assert branch_width(catalog.example_a3()) == 3

    def test_h0_rejected(self):
        with pytest.raises(ValueError):
            branch_width(catalog.h0())


class TestVocabulary:
    def test_rst_vocabulary(self):
        vocab = zigzag_vocabulary(catalog.rst_query())
        assert vocab["n"] == 2
        assert vocab["has_left_unary"] and vocab["has_right_unary"]
        assert vocab["binary_copies"]["S1"] == ("S1^(1)", "S1^(2)")
        assert vocab["r_middle_copies"] == ()  # n = 2: no binary R copies
        assert vocab["t_copy"] == "T^(12)"

    def test_type2_vocabulary(self):
        vocab = zigzag_vocabulary(catalog.example_c9())
        assert vocab["n"] == 3
        assert not vocab["has_left_unary"]
        assert vocab["t_copy"] is None


class TestZigzagQueryShape:
    def test_type_i_i_stays_i_i(self):
        zq = zigzag_query(catalog.rst_query())
        assert query_type(zq) == ("I", "I")

    def test_type_i_ii_becomes_i_i(self):
        zq = zigzag_query(catalog.unsafe_type1_type2())
        assert query_type(zq) == ("I", "I")

    def test_type_ii_ii_stays_ii_ii(self):
        zq = zigzag_query(catalog.example_c9())
        assert query_type(zq) == ("II", "II")

    @pytest.mark.parametrize("q,k", [
        (catalog.rst_query(), 1),
        (catalog.path_query(2), 2),
        (catalog.unsafe_type1_type2(), 2),
        (catalog.example_c9(), 2),
    ])
    def test_unsafe_and_length_doubles(self, q, k):
        """Lemma 2.6 / A.2: zg(Q) is unsafe with length >= 2k."""
        assert query_length(q) == k
        zq = zigzag_query(q)
        assert is_unsafe(zq)
        assert query_length(zq) >= 2 * k


class TestLemmaA1:
    """Pr_Delta(zg(Q)) = Pr_{zg(Delta)}(Q) with identical probability
    values."""

    @pytest.mark.parametrize("seed", range(4))
    def test_rst(self, seed):
        q = catalog.rst_query()
        delta = random_delta(q, ["a"], ["b"], seed)
        lhs = probability(zigzag_query(q), delta)
        rhs = probability(q, zigzag_database(q, delta))
        assert lhs == rhs

    @pytest.mark.parametrize("seed", range(3))
    def test_type1_type2(self, seed):
        q = catalog.unsafe_type1_type2()
        delta = random_delta(q, ["a"], ["b"], seed + 10)
        lhs = probability(zigzag_query(q), delta)
        rhs = probability(q, zigzag_database(q, delta))
        assert lhs == rhs

    @pytest.mark.parametrize("seed", range(3))
    def test_type2_type2(self, seed):
        q = catalog.example_c9()
        delta = random_delta(q, ["a"], ["b"], seed + 20)
        lhs = probability(zigzag_query(q), delta)
        rhs = probability(q, zigzag_database(q, delta))
        assert lhs == rhs

    def test_two_by_one_domain(self):
        q = catalog.rst_query()
        delta = random_delta(q, ["a1", "a2"], ["b"], 99)
        lhs = probability(zigzag_query(q), delta)
        rhs = probability(q, zigzag_database(q, delta))
        assert lhs == rhs

    def test_probability_values_preserved(self):
        """zg(Delta) uses exactly the probability values of Delta
        (plus certain tuples) — the reduction maps GFOMC to GFOMC."""
        q = catalog.rst_query()
        delta = random_delta(q, ["a"], ["b"], 3)
        mapped = zigzag_database(q, delta)
        assert mapped.probability_values() <= \
            delta.probability_values() | {F(1)}
