"""Clause homomorphisms and redundancy removal (Section 2)."""

from repro.core.clauses import Clause
from repro.core.homomorphism import (
    clause_atoms,
    clauses_equivalent,
    homomorphism_exists,
    minimize_clause_set,
)


class TestClauseAtoms:
    def test_middle(self):
        atoms, left, right = clause_atoms(Clause.middle("S1", "S2"))
        assert atoms == {("S1", "x0", "y0"), ("S2", "x0", "y0")}
        assert left == ("x0",) and right == ("y0",)

    def test_left_type1(self):
        atoms, _, _ = clause_atoms(Clause.left_type1("S1"))
        assert ("R", "x0") in atoms
        assert ("S1", "x0", "y0") in atoms

    def test_left_type2_variables(self):
        _, left, right = clause_atoms(Clause.left_type2(["S1"], ["S2"]))
        assert left == ("x0",)
        assert right == ("y0", "y1")

    def test_right_type2_variables(self):
        _, left, right = clause_atoms(Clause.right_type2(["S1"], ["S2"]))
        assert left == ("x0", "x1")
        assert right == ("y0",)

    def test_full(self):
        atoms, _, _ = clause_atoms(Clause.full("S"))
        assert atoms == {("R", "x0"), ("T", "y0"), ("S", "x0", "y0")}


class TestHomomorphism:
    def test_middle_subset(self):
        assert homomorphism_exists(Clause.middle("S1"),
                                   Clause.middle("S1", "S2"))
        assert not homomorphism_exists(Clause.middle("S1", "S2"),
                                       Clause.middle("S1"))

    def test_middle_into_left(self):
        # S1(x,y) maps into R(x) v S1(x,y) v S2(x,y).
        assert homomorphism_exists(Clause.middle("S1"),
                                   Clause.left_type1("S1", "S2"))

    def test_left_needs_unary(self):
        # R(x) v S1 cannot map into the middle clause S1.
        assert not homomorphism_exists(Clause.left_type1("S1"),
                                       Clause.middle("S1"))

    def test_middle_into_type2_subclause(self):
        c2 = Clause.left_type2(["S1", "S2"], ["S3"])
        assert homomorphism_exists(Clause.middle("S1"), c2)
        assert not homomorphism_exists(Clause.middle("S1", "S3"), c2)

    def test_type2_into_middle_needs_all_subclauses(self):
        c2 = Clause.left_type2(["S1"], ["S2"])
        assert homomorphism_exists(c2, Clause.middle("S1", "S2"))
        assert not homomorphism_exists(c2, Clause.middle("S1"))

    def test_left_type2_into_left_type2(self):
        small = Clause.left_type2(["S1"], ["S2"])
        big = Clause.left_type2(["S1", "S3"], ["S2", "S4"])
        assert homomorphism_exists(small, big)
        assert not homomorphism_exists(big, small)

    def test_left_not_into_right(self):
        left = Clause.left_type2(["S1"], ["S2"])
        right = Clause.right_type2(["S1"], ["S2"])
        # Ax (Ay S1 v Ay S2) -> Ay (Ax S1 v Ax S2): requires mapping
        # both subclauses through a single x; needs S1,S2 in one J.
        assert not homomorphism_exists(left, right)
        wide = Clause.right_type2(["S1", "S2"], ["S3"])
        assert homomorphism_exists(left, wide)

    def test_unary_only_into_left(self):
        assert homomorphism_exists(Clause.unary_only("R"),
                                   Clause.left_type1("S1"))
        assert homomorphism_exists(Clause.unary_only("R"), Clause.full("S"))
        assert not homomorphism_exists(Clause.unary_only("R"),
                                       Clause.right_type1("S1"))

    def test_equivalence(self):
        assert clauses_equivalent(Clause.middle("S1"), Clause.middle("S1"))
        assert not clauses_equivalent(Clause.middle("S1"),
                                      Clause.middle("S1", "S2"))


class TestMinimizeClauseSet:
    def test_removes_superset_middle(self):
        kept = minimize_clause_set([Clause.middle("S1"),
                                    Clause.middle("S1", "S2")])
        assert kept == (Clause.middle("S1"),)

    def test_keeps_incomparable(self):
        clauses = [Clause.middle("S1", "S2"), Clause.middle("S2", "S3")]
        assert set(minimize_clause_set(clauses)) == set(clauses)

    def test_removes_redundant_left(self):
        # forall x R(x) makes R(x) v S(x,y) redundant.
        kept = minimize_clause_set([Clause.unary_only("R"),
                                    Clause.left_type1("S1")])
        assert kept == (Clause.unary_only("R"),)

    def test_deduplicates(self):
        kept = minimize_clause_set([Clause.middle("S1"),
                                    Clause.middle("S1")])
        assert len(kept) == 1

    def test_paper_example_a3_middle_not_redundant(self):
        """In Example A.3, D = (S1 v S2 v S3) is NOT redundant w.r.t.
        the right Type-II clause with subclauses of size < 3."""
        d = Clause.middle("S1", "S2", "S3")
        c = Clause.right_type2(["U", "S1", "S2"], ["U", "S1", "S3"],
                               ["U", "S2", "S3"])
        kept = minimize_clause_set([d, c])
        assert set(kept) == {d, c}

    def test_right_type2_made_redundant_by_middle(self):
        """But a middle clause contained in the union of all subclauses
        mapped through one x DOES make... (homomorphism direction
        check): here the type-II clause maps into the wide middle."""
        wide = Clause.middle("S1", "S2", "S3")
        c = Clause.right_type2(["S1"], ["S2", "S3"])
        kept = minimize_clause_set([wide, c])
        assert set(kept) == {c}
