"""Final queries (Definition 2.8) and the simplification search."""

import pytest

from repro.core import catalog
from repro.core.final import find_final, is_final, simplifications
from repro.core.queries import Query
from repro.core.safety import is_safe, is_unsafe, query_type


class TestIsFinal:
    def test_path_queries_final(self):
        for k in (1, 2, 3):
            assert is_final(catalog.path_query(k)), k

    def test_wide_final(self):
        assert is_final(catalog.wide_final_query())

    def test_intro_example_not_final(self):
        """(R v S1 v S2)(S2 v T): setting S1 := 0 keeps it unsafe."""
        q = catalog.intro_example()
        assert is_unsafe(q)
        assert not is_final(q)
        assert is_unsafe(q.set_symbol("S1", False))

    def test_fanout_not_final(self):
        assert not is_final(catalog.path_query(2, fanout=2))

    def test_safe_not_final(self):
        assert not is_final(catalog.safe_left_only())

    def test_example_c9_final(self):
        assert is_final(catalog.example_c9())

    def test_all_simplifications_of_final_are_safe(self):
        q = catalog.path_query(2)
        for symbol, value, rewritten in simplifications(q):
            assert is_safe(rewritten), (symbol, value)


class TestFindFinal:
    def test_already_final(self):
        q = catalog.rst_query()
        final, trace = find_final(q)
        assert final == q
        assert trace == []

    def test_intro_example_reduces(self):
        final, trace = find_final(catalog.intro_example())
        assert is_final(final)
        assert trace  # at least one rewriting happened

    def test_fanout_reduces_to_final(self):
        final, trace = find_final(catalog.path_query(2, fanout=2))
        assert is_final(final)
        # Every trace step removed one symbol.
        assert len(trace) == len(set(s for s, _ in trace))

    def test_safe_raises(self):
        with pytest.raises(ValueError):
            find_final(catalog.safe_left_only())

    def test_trace_replay(self):
        q = catalog.path_query(2, fanout=2)
        final, trace = find_final(q)
        replayed = q
        for symbol, value in trace:
            replayed = replayed.set_symbol(symbol, value)
        assert replayed == final

    def test_example_a3_reduces(self):
        """Example A.3 is unsafe; under Definition 2.8's rewritings it
        admits a further unsafe simplification (see the catalog note),
        and the search lands on a final query."""
        q = catalog.example_a3()
        final, _ = find_final(q)
        assert is_final(final)
        assert query_type(final) is not None


class TestFinalProperties:
    def test_final_implies_unsafe(self):
        for _, ctor, _ in catalog.CENSUS:
            q = ctor()
            if not q.full_clauses and is_final(q):
                assert is_unsafe(q)

    def test_rewriting_final_query_gives_safe(self):
        q = catalog.path_query(3)
        for symbol in sorted(q.symbols):
            for value in (False, True):
                assert is_safe(q.set_symbol(symbol, value))

    def test_constant_queries_not_final(self):
        assert not is_final(Query.TRUE)
        assert not is_final(Query.FALSE)
