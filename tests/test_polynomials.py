"""Unit and property tests for repro.algebra.polynomials."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.polynomials import Polynomial

x = Polynomial.variable("x")
y = Polynomial.variable("y")
z = Polynomial.variable("z")


class TestConstruction:
    def test_zero_is_zero(self):
        assert Polynomial.zero().is_zero()

    def test_constant_zero_collapses(self):
        assert Polynomial.constant(0) == Polynomial.zero()

    def test_one(self):
        assert Polynomial.one().constant_value() == 1

    def test_variable_degree(self):
        assert x.degree("x") == 1
        assert x.degree("y") == 0

    def test_variables(self):
        assert (x * y + z).variables() == {"x", "y", "z"}

    def test_duplicate_variable_monomial_merges(self):
        p = Polynomial({(("x", 1), ("x", 1)): Fraction(1)})
        assert p.degree("x") == 2

    def test_zero_exponent_dropped(self):
        p = Polynomial({(("x", 0),): Fraction(3)})
        assert p.is_constant()
        assert p.constant_value() == 3


class TestArithmetic:
    def test_add_commutative(self):
        assert x + y == y + x

    def test_mul_distributes(self):
        assert x * (y + z) == x * y + x * z

    def test_sub_self(self):
        assert (x - x).is_zero()

    def test_scalar_ops(self):
        assert 2 * x == x + x
        assert (x + 1) - 1 == x

    def test_pow(self):
        assert (x + y) ** 2 == x * x + 2 * x * y + y * y

    def test_pow_zero(self):
        assert (x + y) ** 0 == Polynomial.one()

    def test_pow_negative_raises(self):
        with pytest.raises(ValueError):
            x ** -1

    def test_total_degree(self):
        assert (x * y * y + z).total_degree() == 3
        assert Polynomial.zero().total_degree() == 0


class TestSubstitution:
    def test_full_evaluation(self):
        p = x * y + 2 * z
        assert p.evaluate({"x": 2, "y": 3, "z": Fraction(1, 2)}) == 7

    def test_partial_substitution(self):
        p = x * y + y
        assert p.substitute({"x": 1}) == 2 * y

    def test_substitute_polynomial(self):
        p = x * x
        assert p.substitute({"x": y + 1}) == y * y + 2 * y + 1

    def test_rename(self):
        assert (x * y).rename({"x": "w"}) == Polynomial.variable("w") * y

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            (x + y).evaluate({"x": 1})

    def test_coefficient_of(self):
        p = 3 * x * x * y + x * z + 5
        assert p.coefficient_of("x", 2) == 3 * y
        assert p.coefficient_of("x", 1) == z
        assert p.coefficient_of("x", 0) == Polynomial.constant(5)


@st.composite
def polynomials(draw, variables=("x", "y", "z"), max_terms=4):
    n_terms = draw(st.integers(0, max_terms))
    terms = {}
    for _ in range(n_terms):
        mono = tuple(
            (v, draw(st.integers(1, 2)))
            for v in variables if draw(st.booleans()))
        coeff = Fraction(draw(st.integers(-5, 5)))
        if coeff:
            terms[mono] = terms.get(mono, Fraction(0)) + coeff
    return Polynomial(terms)


class TestProperties:
    @given(polynomials(), polynomials())
    @settings(max_examples=60, deadline=None)
    def test_add_then_evaluate(self, p, q):
        point = {v: Fraction(2, 3) for v in (p + q).variables()
                 | p.variables() | q.variables()}
        assert (p + q).evaluate(point) == p.evaluate(point) + q.evaluate(point)

    @given(polynomials(), polynomials())
    @settings(max_examples=60, deadline=None)
    def test_mul_then_evaluate(self, p, q):
        point = {v: Fraction(-3, 2) for v in p.variables() | q.variables()}
        assert (p * q).evaluate(point) == p.evaluate(point) * q.evaluate(point)

    @given(polynomials())
    @settings(max_examples=60, deadline=None)
    def test_additive_inverse(self, p):
        assert (p + (-p)).is_zero()

    @given(polynomials(), polynomials(), polynomials())
    @settings(max_examples=30, deadline=None)
    def test_mul_associative(self, p, q, r):
        assert (p * q) * r == p * (q * r)

    @given(polynomials())
    @settings(max_examples=60, deadline=None)
    def test_hash_consistent_with_eq(self, p):
        q = Polynomial(p.terms)
        assert p == q
        assert hash(p) == hash(q)
