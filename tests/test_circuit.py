"""The knowledge-compilation subsystem — repro.booleans.circuit.

The core validation idiom: on random monotone CNFs and random rational
weight maps, the compiled d-DNNF circuit must agree *exactly* (as
Fractions) with both the recursive Shannon engine and brute-force
world enumeration, and its unweighted counts must match brute-force
model counting.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans.circuit import AND, ITE, Circuit, compile_cnf
from repro.booleans.cnf import CNF
from repro.counting.p2cnf import P2CNF
from repro.counting.pp2cnf import PP2CNF
from repro.evaluation import (
    EvaluationResult,
    evaluate,
    evaluate_batch,
    probability_sweep,
)
from repro.tid.brute import cnf_probability_brute, count_models
from repro.tid.wmc import cnf_probability, compiled, shannon_probability

F = Fraction
HALF = F(1, 2)

WEIGHT_VALUES = (F(0), F(1, 4), F(1, 3), F(1, 2), F(3, 4), F(1))


def random_cnf(seed: int, n_vars: int = 6, max_clauses: int = 6) -> CNF:
    rng = random.Random(seed)
    variables = [f"v{i}" for i in range(rng.randint(1, n_vars))]
    clauses = []
    for _ in range(rng.randint(0, max_clauses)):
        size = rng.randint(1, len(variables))
        clauses.append(rng.sample(variables, size))
    return CNF(clauses)


def random_weights(formula: CNF, seed: int) -> dict:
    rng = random.Random(seed)
    return {v: rng.choice(WEIGHT_VALUES)
            for v in sorted(formula.variables(), key=repr)}


class TestCircuitAgreement:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_probability_matches_both_engines(self, cnf_seed, w_seed):
        formula = random_cnf(cnf_seed)
        weights = random_weights(formula, w_seed)
        circuit = compile_cnf(formula)
        value = circuit.probability(weights)
        assert value == shannon_probability(formula, weights)
        assert value == cnf_probability_brute(formula, weights)
        assert value == cnf_probability(formula, weights)

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_model_count_matches_brute(self, cnf_seed):
        formula = random_cnf(cnf_seed)
        circuit = compile_cnf(formula)
        variables = formula.variables()
        assert circuit.model_count() == count_models(formula)
        # Free variables in a larger scope double the count.
        scope = set(variables) | {"extra0", "extra1"}
        assert circuit.model_count(scope) == count_models(formula, scope)

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_marginals_are_cofactor_differences(self, cnf_seed, w_seed):
        """d Pr / d p(v) == Pr(F[v:=1]) - Pr(F[v:=0]) at the remaining
        weights (multilinearity)."""
        formula = random_cnf(cnf_seed)
        weights = random_weights(formula, w_seed)
        circuit = compile_cnf(formula)
        grads = circuit.marginals(weights)
        assert set(grads) == set(circuit.variables())
        for var in grads:
            hi = dict(weights, **{var: F(1)})
            lo = dict(weights, **{var: F(0)})
            assert grads[var] == \
                circuit.probability(hi) - circuit.probability(lo)

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_compilation_is_deterministic(self, cnf_seed):
        formula = random_cnf(cnf_seed)
        first = compile_cnf(formula)
        second = compile_cnf(formula)
        assert first.size == second.size
        assert first.edge_count == second.edge_count
        assert first.stats() == second.stats()

    def test_model_count_rejects_partial_scope(self):
        circuit = compile_cnf(CNF([["a", "b"], ["b", "c"]]))
        with pytest.raises(ValueError):
            circuit.model_count(["a"])


class TestCircuitStructure:
    def test_constants(self):
        assert compile_cnf(CNF.TRUE).probability() == 1
        assert compile_cnf(CNF.FALSE).probability() == 0
        assert compile_cnf(CNF.TRUE).model_count(["x"]) == 2
        assert compile_cnf(CNF.FALSE).model_count(["x"]) == 0

    def test_decomposability_and_determinism_invariants(self):
        """AND children have disjoint variables; ITE branches do not
        mention the decision variable (d-DNNF well-formedness)."""
        for seed in range(200):
            circuit = compile_cnf(random_cnf(seed))
            var_sets = [frozenset()] * len(circuit.nodes)
            for i, node in enumerate(circuit.nodes):
                if node[0] == "leaf":
                    var_sets[i] = frozenset([node[1]])
                elif node[0] == AND:
                    union = set()
                    for child in node[1]:
                        assert not (union & var_sets[child]), \
                            "non-decomposable AND"
                        union |= var_sets[child]
                    var_sets[i] = frozenset(union)
                elif node[0] == ITE:
                    branches = var_sets[node[2]] | var_sets[node[3]]
                    assert node[1] not in branches, \
                        "decision variable reappears in a branch"
                    var_sets[i] = frozenset(branches | {node[1]})

    def test_hash_consing_shares_identical_blocks(self):
        """n disjoint copies of one component compile to a circuit
        whose size grows by a constant per copy (shared sub-DAG)."""
        def copies(n):
            clauses = []
            for i in range(n):
                clauses += [[f"a{i}", f"b{i}"], [f"b{i}", f"c{i}"]]
            return compile_cnf(CNF(clauses))

        sizes = [copies(n).size for n in (1, 2, 3, 4, 8)]
        # Identical components up to renaming still need their own leaf
        # and decision nodes (variables differ) but the per-copy cost
        # must stay flat — no multiplicative blowup.
        per_copy = sizes[2] - sizes[1]
        assert sizes[3] - sizes[2] == per_copy
        assert sizes[4] - sizes[3] == 4 * per_copy


class TestCNFFastPaths:
    @given(st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_condition_true_stays_minimal(self, cnf_seed):
        formula = random_cnf(cnf_seed)
        for var in sorted(formula.variables(), key=repr):
            fast = formula.condition(var, True)
            # Re-minimizing from scratch must be a no-op.
            assert CNF(fast.clauses) == fast

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_conjunction_disjoint_matches_conjunction(self, s1, s2):
        left = random_cnf(s1)
        right = random_cnf(s2).rename(
            {v: f"w{v}" for v in random_cnf(s2).variables()})
        fast = CNF.conjunction_disjoint([left, right])
        assert fast == CNF.conjunction([left, right])
        assert CNF(fast.clauses) == fast

    def test_conjunction_disjoint_false_short_circuit(self):
        assert CNF.conjunction_disjoint(
            [CNF([["a"]]), CNF.FALSE]).is_false()
        assert CNF.conjunction_disjoint([]).is_true()


class TestEvaluationLayer:
    def _query_and_tids(self):
        from repro.core.catalog import rst_query
        from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
        query = rst_query()
        tids = []
        for p_u in (F(1, 4), F(1, 2), F(3, 4)):
            probs = {r_tuple("u"): p_u, t_tuple("v"): HALF}
            for s in sorted(query.binary_symbols):
                probs[s_tuple(s, "u", "v")] = HALF
            tids.append(TID(["u"], ["v"], probs))
        return query, tids

    def test_compiled_method_agrees(self):
        query, tids = self._query_and_tids()
        for tid in tids:
            by_circuit = evaluate(query, tid, method="compiled")
            assert by_circuit.method == "compiled"
            assert by_circuit.value == \
                evaluate(query, tid, method="shannon").value
            assert by_circuit.value == \
                evaluate(query, tid, method="brute").value

    def test_evaluate_batch(self):
        query, tids = self._query_and_tids()
        results = evaluate_batch(query, tids)
        assert [r.value for r in results] == \
            [evaluate(query, tid).value for tid in tids]
        assert all(r.method == "wmc" for r in results)

    def test_probability_sweep(self):
        formula = CNF([["a", "b"], ["b", "c"]])
        maps = [{"a": F(1, 3), "b": F(1, 2), "c": F(1, 5)},
                {"a": F(1), "b": F(0), "c": HALF},
                None]
        assert probability_sweep(formula, maps) == \
            [shannon_probability(formula, w) for w in maps]

    def test_evaluation_result_is_hashable(self):
        a = EvaluationResult(HALF, "wmc", False)
        b = EvaluationResult(HALF, "wmc", False)
        assert a == b and hash(a) == hash(b)
        # Equality with a bare Fraction stays hash-consistent.
        assert a == HALF and hash(a) == hash(HALF)
        assert len({a, b}) == 1


class TestCountingViaCircuit:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_p2cnf_count_matches_brute(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 6)
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        edges = tuple(rng.sample(pairs, rng.randint(0, len(pairs))))
        phi = P2CNF(n, edges)
        assert phi.count_satisfying() == phi.count_satisfying_brute()

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_pp2cnf_count_matches_brute(self, seed):
        rng = random.Random(seed)
        nl, nr = rng.randint(1, 4), rng.randint(1, 4)
        pairs = [(i, j) for i in range(nl) for j in range(nr)]
        edges = tuple(rng.sample(pairs, rng.randint(0, len(pairs))))
        phi = PP2CNF(nl, nr, edges)
        assert phi.count_satisfying() == phi.count_satisfying_brute()

    def test_known_counts_still_hold(self):
        assert P2CNF.path(5).count_satisfying() == 13
        assert PP2CNF.matching(2).count_satisfying() == 9


class TestCompilationCache:
    def test_cache_returns_same_circuit_object(self):
        formula = CNF([["x", "y"], ["y", "z"]])
        assert compiled(formula) is compiled(CNF([["y", "z"], ["x", "y"]]))

    def test_cached_circuit_serves_any_weights(self):
        formula = CNF([["x", "y"]])
        assert cnf_probability(formula, {"x": F(1), "y": F(0)}) == 1
        assert cnf_probability(formula, {"x": F(0), "y": F(0)}) == 0
        assert cnf_probability(formula) == F(3, 4)
