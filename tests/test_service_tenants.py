"""Tenant auth + quota accounting and the Prometheus metrics text."""

import pytest

from repro.service.metrics import CONTENT_TYPE, render_metrics
from repro.service.protocol import ERROR_CODES, ProtocolError
from repro.service.tenants import (
    ANONYMOUS,
    TenantQuota,
    TenantRegistry,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTenantQuota:
    def test_parse_full_spec(self):
        quota = TenantQuota.parse("rate=120,window=60,nodes=500000")
        assert quota == TenantQuota(rate=120, window=60.0,
                                    compile_nodes=500000)

    def test_parse_partial_specs_leave_rest_unlimited(self):
        assert TenantQuota.parse("rate=5") == TenantQuota(rate=5)
        assert TenantQuota.parse("nodes=100").compile_nodes == 100
        assert TenantQuota.parse("").rate is None

    @pytest.mark.parametrize("bad", [
        "rate", "rate=abc", "bogus=1", "rate=0", "window=0",
        "nodes=-1", "window=-2",
    ])
    def test_parse_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            TenantQuota.parse(bad)

    @pytest.mark.parametrize("spec", [
        "window=nan", "window=inf", "window=-inf",
        "window=Infinity", "window=NaN",
    ])
    def test_parse_rejects_non_finite_windows(self, spec):
        """Regression: ``float("nan") <= 0`` is False, so a nan/inf
        window sailed past validation and silently broke rollover
        arithmetic (a nan window never resets; an inf one never
        rolls over)."""
        with pytest.raises(ValueError, match="finite"):
            TenantQuota.parse(spec)

    @pytest.mark.parametrize("field,value", [
        ("rate", float("nan")), ("rate", float("inf")),
        ("window", float("nan")), ("window", float("inf")),
        ("window", float("-inf")),
        ("compile_nodes", float("nan")),
        ("compile_nodes", float("inf")),
    ])
    def test_constructor_rejects_non_finite_fields(self, field,
                                                   value):
        with pytest.raises(ValueError, match="finite"):
            TenantQuota(**{field: value})

    def test_non_finite_window_never_admits_unlimited_rate(self):
        # The end-to-end consequence of the old bug: with
        # window=inf the counter would have never rolled over, and
        # with window=nan it would have rolled over on *every*
        # request, making rate caps unenforceable.
        with pytest.raises(ValueError):
            TenantRegistry(quota=TenantQuota(rate=1,
                                             window=float("nan")))

    def test_as_dict_round_trips_the_fields(self):
        quota = TenantQuota(rate=3, window=10.0, compile_nodes=42)
        assert quota.as_dict() == {"rate": 3, "window": 10.0,
                                   "compile_nodes": 42}


class TestAuthentication:
    def test_open_registry_maps_everyone_to_anonymous(self):
        registry = TenantRegistry()
        assert not registry.auth_enabled
        assert registry.resolve(None) == ANONYMOUS
        assert registry.resolve("whatever") == ANONYMOUS

    def test_known_token_resolves_to_its_tenant(self):
        registry = TenantRegistry({"tok-a": "alice", "tok-b": "bob"})
        assert registry.auth_enabled
        assert registry.resolve("tok-a") == "alice"
        assert registry.resolve("tok-b") == "bob"

    @pytest.mark.parametrize("token", [None, "nope", ""])
    def test_missing_or_unknown_token_is_unauthorized(self, token):
        registry = TenantRegistry({"tok-a": "alice"})
        with pytest.raises(ProtocolError) as info:
            registry.resolve(token)
        assert info.value.code == "unauthorized"
        assert "unauthorized" in ERROR_CODES

    def test_error_message_never_echoes_the_token(self):
        registry = TenantRegistry({"tok-a": "alice"})
        with pytest.raises(ProtocolError) as info:
            registry.resolve("almost-tok-a")
        assert "almost-tok-a" not in info.value.message


class TestRateWindow:
    def make(self, rate=2, window=10.0):
        clock = FakeClock()
        registry = TenantRegistry(
            {"t": "alice"}, TenantQuota(rate=rate, window=window),
            clock=clock)
        return registry, clock

    def test_requests_within_the_rate_pass(self):
        registry, _ = self.make(rate=3)
        for _ in range(3):
            registry.charge_request("alice")

    def test_request_past_the_rate_is_refused(self):
        registry, _ = self.make(rate=2)
        registry.charge_request("alice")
        registry.charge_request("alice")
        with pytest.raises(ProtocolError) as info:
            registry.charge_request("alice")
        assert info.value.code == "quota-exceeded"
        assert "quota-exceeded" in ERROR_CODES

    def test_window_rolls_over(self):
        registry, clock = self.make(rate=2, window=10.0)
        registry.charge_request("alice")
        registry.charge_request("alice")
        with pytest.raises(ProtocolError):
            registry.charge_request("alice")
        # Mid-window: still refused (the refusal did not reset it).
        clock.advance(5.0)
        with pytest.raises(ProtocolError):
            registry.charge_request("alice")
        # Window boundary: the counter resets and a burst is admitted.
        clock.advance(5.0)
        registry.charge_request("alice")
        registry.charge_request("alice")
        with pytest.raises(ProtocolError):
            registry.charge_request("alice")

    def test_refusals_are_counted_per_tenant(self):
        registry, _ = self.make(rate=1)
        registry.charge_request("alice")
        for _ in range(3):
            with pytest.raises(ProtocolError):
                registry.charge_request("alice")
        usage = registry.usage()["alice"]
        assert usage["requests"] == 4
        assert usage["rate_limited"] == 3

    def test_tenants_have_independent_windows(self):
        clock = FakeClock()
        registry = TenantRegistry(
            {"a": "alice", "b": "bob"}, TenantQuota(rate=1, window=10),
            clock=clock)
        registry.charge_request("alice")
        # Alice's spent window must not throttle Bob.
        registry.charge_request("bob")
        with pytest.raises(ProtocolError):
            registry.charge_request("alice")

    def test_no_quota_means_unlimited(self):
        registry = TenantRegistry({"t": "alice"})
        for _ in range(100):
            registry.charge_request("alice")
        assert registry.usage()["alice"]["requests"] == 100


class TestCompileBudget:
    def make(self, nodes=100):
        return TenantRegistry({"t": "alice"},
                              TenantQuota(compile_nodes=nodes))

    def test_spend_under_budget_passes(self):
        registry = self.make(nodes=100)
        registry.check_compile("alice")
        registry.charge_compile("alice", 60)
        registry.check_compile("alice")
        usage = registry.usage()["alice"]
        assert usage["nodes_spent"] == 60 and usage["compiles"] == 1

    def test_crossing_charge_is_recorded_and_refused(self):
        registry = self.make(nodes=100)
        registry.charge_compile("alice", 60)
        # The request that crosses the cap pays for the work it
        # caused (the circuit is cached for everyone) but is refused.
        with pytest.raises(ProtocolError) as info:
            registry.charge_compile("alice", 60)
        assert info.value.code == "quota-exceeded"
        assert registry.usage()["alice"]["nodes_spent"] == 120

    def test_exhausted_budget_fails_fast_before_work(self):
        registry = self.make(nodes=100)
        with pytest.raises(ProtocolError):
            registry.charge_compile("alice", 120)
        with pytest.raises(ProtocolError) as info:
            registry.check_compile("alice")
        assert info.value.code == "quota-exceeded"

    def test_zero_budget_refuses_the_first_compile(self):
        registry = self.make(nodes=0)
        with pytest.raises(ProtocolError):
            registry.check_compile("alice")

    def test_per_tenant_override_replaces_the_default(self):
        registry = TenantRegistry(
            {"a": "alice", "b": "bob"},
            TenantQuota(compile_nodes=1_000_000),
            overrides={"bob": TenantQuota(compile_nodes=10)})
        registry.charge_compile("alice", 500)  # default: fine
        with pytest.raises(ProtocolError):
            registry.charge_compile("bob", 500)
        assert registry.quota_for("bob").compile_nodes == 10
        assert registry.quota_for("alice").compile_nodes == 1_000_000

    def test_usage_reports_the_effective_quota(self):
        registry = TenantRegistry(
            {"a": "alice"}, TenantQuota(rate=7, compile_nodes=99))
        registry.charge_request("alice")
        assert registry.usage()["alice"]["quota"] == {
            "rate": 7, "window": 60.0, "compile_nodes": 99}


def sample_stats():
    return {
        "cache": {"hits": 12, "compiles": 3, "store_hits": 1,
                  "store_misses": 2, "budget_aborts": 1,
                  "tape_hits": 4, "tape_flattens": 2,
                  "tape_bytes": 2048, "entries": 3,
                  "store_attached": True},
        "service": {"uptime_s": 12.5, "requests": 20, "errors": 2,
                    "ops": {"sweep": 9, "evaluate": 11},
                    "workers": 4, "coalesced_batches": 1,
                    "workloads_cached": 5, "window_s": 0.01,
                    "default_budget_nodes": 250000,
                    "auth_enabled": True},
        "tenants": {
            "alice": {"requests": 15, "rate_limited": 1,
                      "compiles": 2, "nodes_spent": 840,
                      "quota": {"rate": 100, "window": 60.0,
                                "compile_nodes": 1000}},
            "bob": {"requests": 5, "rate_limited": 0, "compiles": 1,
                    "nodes_spent": 60, "quota": None},
        },
    }


class TestMetricsRendering:
    def test_families_have_help_and_type_lines(self):
        text = render_metrics(sample_stats())
        assert "# HELP repro_requests_total " in text
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 20" in text
        assert "# TYPE repro_uptime_seconds gauge" in text

    def test_op_and_tenant_labels(self):
        text = render_metrics(sample_stats())
        assert 'repro_op_requests_total{op="sweep"} 9' in text
        assert 'repro_tenant_requests_total{tenant="alice"} 15' in text
        assert 'repro_tenant_rate_limited_total{tenant="alice"} 1' \
            in text
        assert 'repro_tenant_compile_nodes_total{tenant="bob"} 60' \
            in text

    def test_cache_counters_rendered(self):
        text = render_metrics(sample_stats())
        assert "repro_cache_hits_total 12" in text
        assert "repro_budget_aborts_total 1" in text
        assert "repro_tape_flattens_total 2" in text

    def test_uncurated_numerics_fall_through_as_gauges(self):
        text = render_metrics(sample_stats())
        assert 'repro_service_info{key="workers"} 4' in text
        assert 'repro_cache_info{key="tape_bytes"} 2048' in text
        # Booleans are not numeric samples.
        assert "store_attached" not in text
        assert "auth_enabled" not in text

    def test_label_values_are_escaped(self):
        stats = sample_stats()
        stats["tenants"] = {'we"ird\\name': {"requests": 1}}
        text = render_metrics(stats)
        assert 'tenant="we\\"ird\\\\name"' in text

    def test_every_sample_line_parses(self):
        for line in render_metrics(sample_stats()).splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP repro_",
                                        "# TYPE repro_"))
                continue
            name_and_labels, _, value = line.rpartition(" ")
            assert name_and_labels.startswith("repro_")
            float(value)  # every exposed value must be a number

    def test_deterministic_and_newline_terminated(self):
        a = render_metrics(sample_stats())
        b = render_metrics(sample_stats())
        assert a == b and a.endswith("\n")

    def test_empty_stats_render_to_empty_exposition(self):
        assert render_metrics({}) == "\n"

    def test_content_type_names_the_exposition_format(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE
