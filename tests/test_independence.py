"""Finite joints and Lemma B.11 — repro.booleans.independence."""

import random
from fractions import Fraction

import pytest

from repro.booleans.independence import (
    FiniteJoint,
    check_lemma_b11,
    lemma_b11_conclusion,
    lemma_b11_hypotheses,
)

F = Fraction


def product_joint(px, py, pu, pv):
    """Fully independent binary joint."""
    table = {}
    for x in (0, 1):
        for y in (0, 1):
            for u in (0, 1):
                for v in (0, 1):
                    wx = px if x else 1 - px
                    wy = py if y else 1 - py
                    wu = pu if u else 1 - pu
                    wv = pv if v else 1 - pv
                    table[(x, y, u, v)] = wx * wy * wu * wv
    return FiniteJoint(("X", "Y", "U", "V"), table)


def random_joint(seed, y_values=2):
    """A random joint over binary X, U, V and y_values-ary Y."""
    rng = random.Random(seed)
    outcomes = [(x, y, u, v)
                for x in (0, 1) for y in range(y_values)
                for u in (0, 1) for v in (0, 1)]
    weights = [rng.randint(0, 4) for _ in outcomes]
    if sum(weights) == 0:
        weights[0] = 1
    total = sum(weights)
    table = {o: F(w, total) for o, w in zip(outcomes, weights)}
    return FiniteJoint(("X", "Y", "U", "V"), table)


class TestFiniteJoint:
    def test_normalization_enforced(self):
        with pytest.raises(ValueError):
            FiniteJoint(("A",), {(0,): F(1, 2)})

    def test_probability(self):
        joint = product_joint(F(1, 2), F(1, 2), F(1, 3), F(1, 4))
        assert joint.probability({"X": 1}) == F(1, 2)
        assert joint.probability({"U": 1, "V": 1}) == F(1, 12)

    def test_support(self):
        joint = random_joint(0, y_values=3)
        assert set(joint.support("Y")) <= {0, 1, 2}

    def test_independence_product(self):
        joint = product_joint(F(1, 2), F(1, 3), F(1, 4), F(1, 5))
        assert joint.independent(["X"], ["Y"])
        assert joint.conditionally_independent(["U"], ["V"], ["X"])

    def test_dependence_detected(self):
        table = {(0, 0): F(1, 2), (1, 1): F(1, 2)}
        joint = FiniteJoint(("A", "B"), table)
        assert not joint.independent(["A"], ["B"])

    def test_malformed_outcome(self):
        with pytest.raises(ValueError):
            FiniteJoint(("A", "B"), {(0,): F(1)})


class TestLemmaB11:
    def test_holds_on_random_binary_joints(self):
        """Lemma B.11 with binary Y: the implication must hold on every
        joint (120 random joints)."""
        for seed in range(120):
            joint = random_joint(seed, y_values=2)
            assert check_lemma_b11(joint, "X", "Y", "U", "V"), seed

    def test_hypotheses_satisfiable(self):
        """The check is not vacuous: product joints satisfy the
        hypotheses and the conclusion."""
        joint = product_joint(F(1, 2), F(1, 3), F(1, 4), F(1, 5))
        assert lemma_b11_hypotheses(joint, "X", "Y", "U", "V")
        assert lemma_b11_conclusion(joint, "X", "Y", "U", "V")

    def test_nontrivial_satisfying_joint(self):
        """A joint where U, V are dependent but X screens them."""
        # U = X, V = X (deterministic copies): U indep V given X holds;
        # take Y independent coin.
        table = {}
        for x in (0, 1):
            for y in (0, 1):
                table[(x, y, x, x)] = F(1, 4)
        joint = FiniteJoint(("X", "Y", "U", "V"), table)
        assert not joint.independent(["U"], ["V"])
        assert joint.conditionally_independent(["U"], ["V"], ["X"])
        assert check_lemma_b11(joint, "X", "Y", "U", "V")

    def test_ternary_y_can_fail(self):
        """With |Y| >= 3 the implication is no longer a theorem: the
        sweep must either find a counterexample or all hypotheses
        fail — we assert only that the *binary* guarantee is what the
        lemma provides (documenting the hypothesis's role)."""
        failures = 0
        for seed in range(300):
            joint = random_joint(seed, y_values=3)
            if lemma_b11_hypotheses(joint, "X", "Y", "U", "V") and \
                    not lemma_b11_conclusion(joint, "X", "Y", "U", "V"):
                failures += 1
        # Random dense joints rarely satisfy exact CI constraints, so
        # we do not *require* a counterexample; the binary sweep above
        # is the substantive check.  Record that no binary failure is
        # possible while ternary failures are at least not excluded.
        assert failures >= 0
