"""The Type-I block databases (Section 3.3, Figure 1, experiment F1)."""

from fractions import Fraction

import pytest

from repro.core.catalog import path_query, rst_query
from repro.counting.problems import FOMC_VALUES
from repro.reduction.blocks import parallel_block, path_block, reduction_tid
from repro.tid.database import r_tuple, s_tuple, t_tuple
from repro.tid.lineage import lineage
from repro.tid.wmc import cnf_probability

F = Fraction
HALF = F(1, 2)


class TestPathBlock:
    def test_p1_structure(self):
        """B_1(u, v): domain {u, v} + {t1}, edges (u,t1), (v,t1)."""
        tid = path_block(rst_query(), 1)
        assert set(tid.left_domain) == {"u", "v"}
        assert len(tid.right_domain) == 1
        assert tid.probability(r_tuple("u")) == HALF
        assert tid.probability(r_tuple("v")) == HALF
        (t1,) = tid.right_domain
        assert tid.probability(t_tuple(t1)) == HALF
        assert tid.probability(s_tuple("S1", "u", t1)) == HALF
        assert tid.probability(s_tuple("S1", "v", t1)) == HALF

    def test_p3_path_shape(self):
        tid = path_block(rst_query(), 3)
        # V1 = {u, v, r1, r2}; V2 = {t1, t2, t3}; 6 path edges.
        assert len(tid.left_domain) == 4
        assert len(tid.right_domain) == 3
        edges = [t for t in tid.probs if len(t) == 3]
        assert len(edges) == 6  # one binary symbol

    def test_fomc_legal(self):
        """Block probabilities lie in {1/2, 1} — a legal FOMC input."""
        tid = path_block(path_query(2), 4)
        assert tid.restrict_check(FOMC_VALUES)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            path_block(rst_query(), 0)

    def test_tag_separates_blocks(self):
        a = path_block(rst_query(), 2, tag="_a")
        b = path_block(rst_query(), 2, tag="_b")
        internal_a = set(a.left_domain) - {"u", "v"}
        internal_b = set(b.left_domain) - {"u", "v"}
        assert not internal_a & internal_b


class TestParallelBlock:
    def test_shares_only_endpoints(self):
        tid = parallel_block(rst_query(), [1, 2])
        assert set(tid.left_domain) & {"u", "v"} == {"u", "v"}

    def test_lineage_product_eq25(self):
        """y_ab(p1, p2) = y_ab(p1) * y_ab(p2) (Eq. 25 / Figure 1)."""
        q = rst_query()
        for a in (False, True):
            for b in (False, True):
                single = {}
                for p in (1, 2):
                    tid = path_block(q, p, tag=f"_s{p}")
                    f = lineage(q, tid).condition(
                        r_tuple("u"), a).condition(r_tuple("v"), b)
                    single[p] = cnf_probability(f, tid.probability)
                tid = parallel_block(q, [1, 2])
                f = lineage(q, tid).condition(
                    r_tuple("u"), a).condition(r_tuple("v"), b)
                joint = cnf_probability(f, tid.probability)
                assert joint == single[1] * single[2], (a, b)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            parallel_block(rst_query(), [])


class TestReductionTid:
    def test_nodes_get_half_r(self):
        tid = reduction_tid(rst_query(), ["x0", "x1"], [("x0", "x1")],
                            [1, 1])
        assert tid.probability(r_tuple("x0")) == HALF
        assert tid.probability(r_tuple("x1")) == HALF

    def test_fomc_legal(self):
        tid = reduction_tid(rst_query(), ["x0", "x1", "x2"],
                            [("x0", "x1"), ("x1", "x2")], [1, 2])
        assert tid.restrict_check(FOMC_VALUES)

    def test_isolated_node(self):
        tid = reduction_tid(rst_query(), ["x0", "x1"], [], [1])
        assert tid.probability(r_tuple("x0")) == HALF
        assert not [t for t in tid.probs if len(t) == 3]
