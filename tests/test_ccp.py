"""The Coloring Count Problem (Definition C.2, Theorem C.3)."""

from repro.counting.ccp import (
    TOP_COLOR,
    coloring_counts,
    coloring_signature,
    pp2cnf_count_from_ccp,
)
from repro.counting.pp2cnf import PP2CNF


class TestSignature:
    def test_single_edge(self):
        sig = coloring_signature(["u"], ["v"], [("u", "v")],
                                 {"u": 0}, {"v": 1})
        d = dict(sig)
        assert d[(0, 1)] == 1
        assert d[(0, TOP_COLOR)] == 1
        assert d[(TOP_COLOR, 1)] == 1

    def test_node_counts(self):
        sig = coloring_signature(["u1", "u2"], ["v"], [],
                                 {"u1": 0, "u2": 0}, {"v": 2})
        d = dict(sig)
        assert d[(0, TOP_COLOR)] == 2
        assert d[(TOP_COLOR, 2)] == 1


class TestColoringCounts:
    def test_total_is_m_to_u_times_n_to_v(self):
        counts = coloring_counts(["u1", "u2"], ["v1"],
                                 [("u1", "v1")], 2, 3)
        assert sum(counts.values()) == 2 ** 2 * 3 ** 1

    def test_empty_graph(self):
        counts = coloring_counts(["u"], ["v"], [], 2, 2)
        assert sum(counts.values()) == 4

    def test_counts_positive(self):
        counts = coloring_counts(["u"], ["v"], [("u", "v")], 2, 2)
        assert all(c > 0 for c in counts.values())


class TestTheoremC3:
    """CCP solves #PP2CNF: extraction must match brute force."""

    def check(self, phi: PP2CNF, m=2, n=2):
        left = [f"x{i}" for i in range(phi.n_left)]
        right = [f"y{j}" for j in range(phi.n_right)]
        edges = [(f"x{i}", f"y{j}") for i, j in phi.edges]
        counts = coloring_counts(left, right, edges, m, n)
        got = pp2cnf_count_from_ccp(counts)
        assert got == phi.count_satisfying()

    def test_single_edge(self):
        self.check(PP2CNF(1, 1, ((0, 0),)))

    def test_matching(self):
        self.check(PP2CNF.matching(2))

    def test_complete_2_2(self):
        self.check(PP2CNF.complete(2, 2))

    def test_asymmetric(self):
        self.check(PP2CNF(2, 1, ((0, 0), (1, 0))))

    def test_no_edges(self):
        self.check(PP2CNF(1, 1, ()))

    def test_more_colors_than_needed(self):
        """Theorem C.3 holds for any m, n >= 2: extra colors are
        filtered by validity."""
        self.check(PP2CNF.matching(2), m=3, n=3)
