"""The Type-II link matrix and eigenvalue conditions (Section C.8)."""

from fractions import Fraction

from repro.core.catalog import example_c15
from repro.booleans.cnf import CNF
from repro.booleans.connectivity import clause_components
from repro.reduction.type2_blocks import type2_block
from repro.reduction.type2_spectral import (
    articulation_disconnects,
    articulation_symbols,
    link_matrix_type2,
    theorem_c33_conditions,
)
from repro.tid.database import s_tuple
from repro.tid.lineage import lineage
from repro.tid.wmc import cnf_probability

F = Fraction


class TestArticulationSymbols:
    def test_final_query_all_symbols(self):
        """For a final query every symbol's rewritings are safe."""
        q = example_c15()
        assert articulation_symbols(q) == sorted(q.binary_symbols)

    def test_ubiquitous_symbols_disconnect(self):
        q = example_c15()
        assert articulation_disconnects(q, "U")
        assert articulation_disconnects(q, "V")

    def test_short_query_middle_symbols_do_not(self):
        """C.15 has length 2 < 5: the middle-clause symbols do not
        disconnect — exactly why Theorem 2.9(2) asks for length >= 5
        (obtained in the paper by iterating zg)."""
        q = example_c15()
        assert not articulation_disconnects(q, "S1")


class TestEq75Factorization:
    def test_conditioning_splits_into_three_factors(self):
        """Conditioning the articulation tuples U(r0,t0), U(r1,t1)
        splits the block lineage into independent prefix / middle /
        suffix factors whose probabilities multiply (Eq. 74-75)."""
        q = example_c15()
        block = type2_block(q, p=1)
        formula = lineage(q, block)
        s0 = s_tuple("U", "r0", "t0")
        s1 = s_tuple("U", "r1", "t1")
        for a in (False, True):
            for b in (False, True):
                conditioned = formula.condition(s0, a).condition(s1, b)
                total = cnf_probability(conditioned, block.probability)
                product = F(1)
                for group in clause_components(conditioned):
                    product *= cnf_probability(CNF(group),
                                               block.probability)
                assert total == product


class TestLinkMatrix:
    def test_entries_positive_c32(self):
        z = link_matrix_type2(example_c15(), "U")
        for i in range(2):
            for j in range(2):
                assert 0 < z[i, j] <= 1

    def test_not_symmetric_in_general(self):
        """Type-II blocks need not be symmetric (Appendix C intro)."""
        z = link_matrix_type2(example_c15(), "U")
        # Symmetry may or may not hold; just assert the matrix is a
        # valid probability matrix and record asymmetry is tolerated.
        assert z.nrows == z.ncols == 2

    def test_theorem_c33(self):
        z = link_matrix_type2(example_c15(), "U")
        conditions = theorem_c33_conditions(z)
        assert conditions["c32_entries_positive"]
        assert conditions["c33_eigenvalues"]

    def test_assignment_changes_matrix(self):
        q = example_c15()
        base = link_matrix_type2(q, "U")
        token = s_tuple("S1", "r1", "t0")
        pinned = link_matrix_type2(q, "U", assignment={token: F(1)})
        assert base != pinned

    def test_degenerate_matrix_fails_conditions(self):
        from repro.algebra.matrices import Matrix
        z = Matrix([[F(1, 2), F(1, 2)], [F(1, 2), F(1, 2)]])
        conditions = theorem_c33_conditions(z)
        assert conditions["c32_entries_positive"]
        assert not conditions["c33_eigenvalues"]  # lambda1 = 0


class TestEq79ExponentialForm:
    """y(p) follows the two-eigenvalue exponential law (Eq. 79),
    verified through its exact linear recurrence."""

    def test_recurrence_c15(self):
        from repro.reduction.type2_spectral import verify_exponential_form
        q = example_c15()
        assert verify_exponential_form(
            q, "U", frozenset({0}), frozenset({0}), p_max=4)

    def test_recurrence_other_lattice_pair(self):
        from repro.reduction.type2_spectral import verify_exponential_form
        q = example_c15()
        assert verify_exponential_form(
            q, "U", frozenset({0, 1}), frozenset({1}), p_max=3)

    def test_y_sequence_monotone_decreasing(self):
        from repro.reduction.type2_spectral import y_sequence
        q = example_c15()
        ys = y_sequence(q, frozenset({0}), frozenset({0}), 3)
        assert all(ys[i] > ys[i + 1] for i in range(3))
        assert all(0 < y < 1 for y in ys)
