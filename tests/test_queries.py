"""Query construction, minimization and rewriting (Lemma 2.7)."""

from repro.core.clauses import Clause
from repro.core.queries import Query, query
from repro.core.safety import is_unsafe, query_length, query_type


class TestConstruction:
    def test_true_false(self):
        assert Query.TRUE.is_true()
        assert Query.FALSE.is_false()
        assert not Query.TRUE.is_false()

    def test_minimization_on_build(self):
        q = query(Clause.middle("S1"), Clause.middle("S1", "S2"))
        assert q.clauses == (Clause.middle("S1"),)

    def test_symbols(self):
        q = query(Clause.left_type1("S1"), Clause.right_type1("S2"))
        assert q.symbols == {"R", "S1", "S2", "T"}
        assert q.binary_symbols == {"S1", "S2"}

    def test_side_accessors(self):
        q = query(Clause.left_type1("S1"), Clause.middle("S1", "S2"),
                  Clause.right_type1("S2"))
        assert len(q.left_clauses) == 1
        assert len(q.middle_clauses) == 1
        assert len(q.right_clauses) == 1
        assert not q.full_clauses

    def test_equality_order_independent(self):
        a = query(Clause.middle("S1"), Clause.middle("S2"))
        b = query(Clause.middle("S2"), Clause.middle("S1"))
        assert a == b
        assert hash(a) == hash(b)

    def test_conjoin(self):
        a = query(Clause.middle("S1"))
        b = query(Clause.middle("S2"))
        assert (a & b).clauses == query(
            Clause.middle("S1"), Clause.middle("S2")).clauses

    def test_conjoin_false(self):
        assert (Query.FALSE & query(Clause.middle("S1"))).is_false()


class TestRewriting:
    def setup_method(self):
        self.q = query(Clause.left_type1("S1"),
                       Clause.middle("S1", "S2"),
                       Clause.right_type1("S2"))

    def test_set_true_removes_clauses(self):
        q1 = self.q.set_symbol("S1", True)
        assert q1 == query(Clause.right_type1("S2"))

    def test_set_false_simplifies(self):
        q0 = self.q.set_symbol("S2", False)
        # (R v S1) & S1 & T: the left clause is absorbed by S1.
        assert q0 == query(Clause.middle("S1"), Clause.unary_only("T"))

    def test_symbol_disappears(self):
        for value in (False, True):
            assert "S1" not in self.q.set_symbol("S1", value).symbols

    def test_rewrite_to_false(self):
        q = query(Clause.middle("S1"))
        assert q.set_symbol("S1", False).is_false()

    def test_rewrite_to_true(self):
        q = query(Clause.middle("S1"))
        assert q.set_symbol("S1", True).is_true()

    def test_set_symbols_chain(self):
        q = self.q.set_symbols({"S1": True, "S2": True})
        assert q.is_true()

    def test_lemma27_types_preserved(self):
        """Lemma 2.7 (2): rewriting preserves the type."""
        q = query(Clause.left_type2(["S1"], ["S2"]),
                  Clause.middle("S1", "S3"),
                  Clause.right_type2(["S3"], ["S4"]))
        assert query_type(q) == ("II", "II")
        q0 = q.set_symbol("S4", False)
        # The right Type-II clause degenerates to a middle clause, but
        # the surviving left clause keeps its type.
        assert query_type(q0)[0] == "II"

    def test_lemma27_unsafe_propagates_up(self):
        """Lemma 2.7 (3): if Q[S:=v] is unsafe then Q is unsafe."""
        q = query(Clause.left_type1("S1", "S9"),
                  Clause.middle("S1", "S2"),
                  Clause.right_type1("S2"))
        q0 = q.set_symbol("S9", False)
        assert is_unsafe(q0)
        assert is_unsafe(q)

    def test_lemma27_length_nondecreasing(self):
        q = query(Clause.left_type1("S1"),
                  Clause.middle("S1", "S2"),
                  Clause.middle("S2", "S3"),
                  Clause.right_type1("S3"))
        length = query_length(q)
        for symbol in sorted(q.symbols):
            for value in (False, True):
                rewritten = q.set_symbol(symbol, value)
                new_len = query_length(rewritten)
                if new_len is not None:
                    assert new_len >= length

    def test_rename_binary(self):
        q = query(Clause.middle("S1"))
        renamed = q.rename_binary({"S1": "W"})
        assert renamed == query(Clause.middle("W"))

    def test_constant_rewrites_are_fixed(self):
        assert Query.TRUE.set_symbol("S1", False).is_true()
        assert Query.FALSE.set_symbol("S1", True).is_false()


class TestRepr:
    def test_repr_stable(self):
        q = query(Clause.left_type1("S1"), Clause.right_type1("S1"))
        assert "left" in repr(q) and "right" in repr(q)
