"""Appendix B: conditional independence and migrating variables."""

from fractions import Fraction

import pytest

from repro.booleans.arithmetize import arithmetize
from repro.booleans.cnf import CNF
from repro.booleans.connectivity import variable_disconnects
from repro.booleans.migration import (
    conditionally_independent,
    conditioned_probability,
    is_migrating,
    migrating_variables,
    rank_one_factorization_exists,
)

F = Fraction
HALF = {"default": F(1, 2)}


def half(_):
    return F(1, 2)


EXAMPLE_B10 = CNF([
    ["U", "Z0"],
    ["Z0", "Z1", "Z2", "Z3"],
    ["Z3", "X", "Y"],
    ["X", "Y", "Z4"],
    ["X", "Z1"],
    ["Y", "Z2"],
    ["Z4", "V"],
])


class TestConditionedProbability:
    def test_simple(self):
        f = CNF([["a", "b"]])
        # Pr(a=1 | a v b) = (1/2) / (3/4) = 2/3.
        assert conditioned_probability(f, half, {"a": True}) == F(2, 3)

    def test_impossible_condition(self):
        with pytest.raises(ZeroDivisionError):
            conditioned_probability(CNF.FALSE, half, {"a": True})

    def test_total_probability(self):
        f = CNF([["a", "b"], ["b", "c"]])
        p1 = conditioned_probability(f, half, {"b": True})
        p0 = conditioned_probability(f, half, {"b": False})
        assert p1 + p0 == 1


class TestLemmaB7:
    """X disconnects U, V  iff  U and V are independent given X in the
    distribution conditioned on F."""

    def test_disconnecting_variable(self):
        f = CNF([["u", "x"], ["x", "v"]])
        assert variable_disconnects(f, "x", {"u"}, {"v"})
        assert conditionally_independent(f, half, {"u"}, {"v"}, "x")

    def test_non_disconnecting_variable(self):
        f = CNF([["u", "v"], ["u", "x"], ["x", "v"]])
        assert not variable_disconnects(f, "x", {"u"}, {"v"})
        assert not conditionally_independent(f, half, {"u"}, {"v"}, "x")

    def test_example_b10_x(self):
        assert variable_disconnects(EXAMPLE_B10, "X", {"U"}, {"V"})
        assert conditionally_independent(EXAMPLE_B10, half,
                                         {"U"}, {"V"}, "X")

    def test_lemma_b7_equivalence_sweep(self):
        """Both directions of Lemma B.7 over every variable of a small
        formula."""
        f = CNF([["u", "a"], ["a", "b"], ["b", "v"], ["a", "v"]])
        for var in sorted(f.variables()):
            if var in ("u", "v"):
                continue
            syntactic = variable_disconnects(f, var, {"u"}, {"v"})
            probabilistic = conditionally_independent(
                f, half, {"u"}, {"v"}, var)
            assert syntactic == probabilistic, var


class TestMigration:
    def test_y_migrates_in_b10(self):
        assert is_migrating(EXAMPLE_B10, "X", "Y", {"U"}, {"V"})

    def test_z0_does_not_migrate(self):
        assert not is_migrating(EXAMPLE_B10, "X", "Z0", {"U"}, {"V"})

    def test_migrating_set(self):
        movers = migrating_variables(EXAMPLE_B10, "X", {"U"}, {"V"})
        assert "Y" in movers
        assert "Z0" not in movers
        assert "Z4" not in movers

    def test_requires_disconnecting_x(self):
        f = CNF([["u", "v", "x", "y"]])
        with pytest.raises(ValueError):
            is_migrating(f, "x", "y", {"u"}, {"v"})

    def test_corollary_b12_symmetry(self):
        """If both X and Y disconnect U, V then migration is symmetric."""
        f = EXAMPLE_B10
        both = [v for v in sorted(f.variables())
                if v not in ("U", "V")
                and variable_disconnects(f, v, {"U"}, {"V"})]
        for x in both:
            for y in both:
                if x == y:
                    continue
                assert is_migrating(f, x, y, {"U"}, {"V"}) == \
                    is_migrating(f, y, x, {"U"}, {"V"}), (x, y)


class TestTheoremB1:
    def test_rank_one_when_disconnected(self):
        f = CNF([["u", "x"], ["x", "v"]])
        ys = {}
        for a in (0, 1):
            for b in (0, 1):
                cond = f.condition("u", bool(a)).condition("v", bool(b))
                ys[(a, b)] = arithmetize(cond)
        # x does NOT disconnect u,v here as endpoint substitution —
        # instead check the arithmetization determinant of the
        # (u,v)-conditioned family: (u v x)(x v v) conditioned shares x,
        # so the determinant need not vanish; use a genuinely
        # disconnected formula instead:
        g = CNF([["u", "a"], ["v", "b"]])
        zs = {}
        for a in (0, 1):
            for b in (0, 1):
                cond = g.condition("u", bool(a)).condition("v", bool(b))
                zs[(a, b)] = arithmetize(cond)
        assert rank_one_factorization_exists(
            zs[(0, 0)], zs[(0, 1)], zs[(1, 0)], zs[(1, 1)])
        assert not rank_one_factorization_exists(
            ys[(0, 0)], ys[(0, 1)], ys[(1, 0)], ys[(1, 1)])
