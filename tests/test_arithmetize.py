"""Arithmetization (Section 1.6) — repro.booleans.arithmetize."""

from fractions import Fraction
from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.polynomials import Polynomial
from repro.booleans.arithmetize import arithmetize
from repro.booleans.cnf import CNF

F = Fraction


class TestPaperExample:
    def test_rs_st(self):
        """Y = (R v S) & (S v T) arithmetizes to rt + s - rst."""
        y = arithmetize(CNF([["r", "s"], ["s", "t"]]))
        r, s, t = (Polynomial.variable(v) for v in "rst")
        assert y == r * t + s - r * s * t

    def test_value_at_half(self):
        """Pr = 5/8 at probabilities 1/2 (the paper's example)."""
        y = arithmetize(CNF([["r", "s"], ["s", "t"]]))
        half = {v: F(1, 2) for v in "rst"}
        assert y.evaluate(half) == F(5, 8)


class TestBasics:
    def test_true(self):
        assert arithmetize(CNF.TRUE) == Polynomial.one()

    def test_false(self):
        assert arithmetize(CNF.FALSE).is_zero()

    def test_single_variable(self):
        assert arithmetize(CNF([["a"]])) == Polynomial.variable("a")

    def test_single_clause(self):
        # Pr(a v b) = a + b - ab
        a, b = Polynomial.variable("a"), Polynomial.variable("b")
        assert arithmetize(CNF([["a", "b"]])) == a + b - a * b

    def test_independent_product(self):
        a, b = Polynomial.variable("a"), Polynomial.variable("b")
        assert arithmetize(CNF([["a"], ["b"]])) == a * b

    def test_multilinear(self):
        y = arithmetize(CNF([["a", "b"], ["b", "c"], ["a", "c"]]))
        for v in "abc":
            assert y.degree(v) <= 1

    def test_custom_naming(self):
        y = arithmetize(CNF([[("S", 1, 2)]]), name=lambda t: f"p{t[1]}{t[2]}")
        assert y == Polynomial.variable("p12")


@st.composite
def cnfs(draw):
    variables = ["a", "b", "c", "d"]
    clauses = []
    for _ in range(draw(st.integers(1, 4))):
        clause = [v for v in variables if draw(st.booleans())]
        if clause:
            clauses.append(clause)
    return CNF(clauses)


class TestAgainstEnumeration:
    @given(cnfs())
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_possible_worlds(self, formula):
        """The arithmetization agrees with Y on every 0/1 point, hence
        with the expectation at any product distribution."""
        y = arithmetize(formula)
        variables = sorted(formula.variables())
        for bits in product((0, 1), repeat=len(variables)):
            point = dict(zip(variables, map(F, bits)))
            expected = F(1) if formula.evaluate(
                {v for v, b in zip(variables, bits) if b}) else F(0)
            assert y.evaluate(point) == expected

    @given(cnfs())
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_probability(self, formula):
        from repro.tid.brute import cnf_probability_brute
        y = arithmetize(formula)
        probs = {v: F(1, 3) for v in formula.variables()}
        assert y.evaluate({str(v): p for v, p in probs.items()}) == \
            cnf_probability_brute(formula, probs)
