"""The exact WMC engine vs brute-force enumeration."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans.cnf import CNF
from repro.tid.brute import cnf_probability_brute, count_models
from repro.tid.wmc import cnf_probability

F = Fraction


class TestBasics:
    def test_true(self):
        assert cnf_probability(CNF.TRUE, {}) == 1

    def test_false(self):
        assert cnf_probability(CNF.FALSE, {}) == 0

    def test_single_var(self):
        assert cnf_probability(CNF([["a"]]), {"a": F(1, 3)}) == F(1, 3)

    def test_or(self):
        f = CNF([["a", "b"]])
        assert cnf_probability(f, {"a": F(1, 2), "b": F(1, 2)}) == F(3, 4)

    def test_and(self):
        f = CNF([["a"], ["b"]])
        assert cnf_probability(f, {"a": F(1, 2), "b": F(1, 3)}) == F(1, 6)

    def test_default_half(self):
        f = CNF([["a", "b"], ["b", "c"]])
        assert cnf_probability(f) == cnf_probability_brute(f)

    def test_callable_prob(self):
        f = CNF([["a"], ["b"]])
        assert cnf_probability(f, lambda v: F(1, 4)) == F(1, 16)

    def test_zero_probability_var(self):
        f = CNF([["a"], ["a", "b"]])
        assert cnf_probability(f, {"a": F(0), "b": F(1, 2)}) == 0

    def test_certain_variable(self):
        f = CNF([["a", "b"]])
        assert cnf_probability(f, {"a": F(1), "b": F(1, 2)}) == 1

    def test_paper_example(self):
        """(R v S)(S v T) at 1/2 everywhere = 5/8 (Section 1.6)."""
        f = CNF([["r", "s"], ["s", "t"]])
        assert cnf_probability(f) == F(5, 8)


class TestCountModels:
    def test_count_or(self):
        assert count_models(CNF([["a", "b"]])) == 3

    def test_count_with_extra_vars(self):
        assert count_models(CNF([["a"]]), variables=["a", "b"]) == 2


@st.composite
def weighted_cnfs(draw):
    variables = ["a", "b", "c", "d", "e"]
    clauses = []
    for _ in range(draw(st.integers(1, 5))):
        clause = [v for v in variables if draw(st.booleans())]
        if clause:
            clauses.append(clause)
    probs = {v: F(draw(st.integers(0, 4)), 4) for v in variables}
    return CNF(clauses), probs


class TestAgainstBrute:
    @given(weighted_cnfs())
    @settings(max_examples=120, deadline=None)
    def test_matches_brute(self, case):
        formula, probs = case
        assert cnf_probability(formula, probs) == \
            cnf_probability_brute(formula, probs)

    @given(weighted_cnfs())
    @settings(max_examples=60, deadline=None)
    def test_complement_rule(self, case):
        """Pr(F) + Pr over worlds violating F = 1 (sanity on the
        engine's normalization)."""
        formula, probs = case
        p = cnf_probability(formula, probs)
        assert 0 <= p <= 1

    @given(weighted_cnfs(), weighted_cnfs())
    @settings(max_examples=40, deadline=None)
    def test_independent_product(self, case1, case2):
        """Formulas over disjoint variables multiply."""
        f1, p1 = case1
        f2, _ = case2
        f2 = f2.rename({v: v.upper() for v in "abcde"})
        p2 = {v.upper(): q for v, q in case2[1].items()}
        joint = f1 & f2
        probs = {**p1, **p2}
        assert cnf_probability(joint, probs) == \
            cnf_probability(f1, p1) * cnf_probability(f2, p2)


class TestThreadSafety:
    def test_concurrent_compiled_keeps_cache_consistent(self):
        """Hammer the module-level cache from many threads (the
        service's worker pool shape): the LRU bounds must hold, the
        node accounting must match the cached circuits exactly, and
        every call must be classified as a hit or a compile."""
        import threading

        from repro.tid import wmc

        formulas = [
            CNF([[f"a{i}", f"b{i}"], [f"b{i}", f"c{i}"],
                 [f"c{i}", f"d{i}"]])
            for i in range(12)]
        expected = {
            formula: cnf_probability(formula) for formula in formulas}
        wmc.clear_circuit_cache()
        wmc.set_circuit_store(None)
        wmc.set_cache_limits(max_entries=5)
        wrong = []
        barrier = threading.Barrier(8)

        def worker(offset):
            barrier.wait()
            for step in range(3 * len(formulas)):
                formula = formulas[(offset + step) % len(formulas)]
                if wmc.compiled(formula).probability() \
                        != expected[formula]:
                    wrong.append(formula)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert wrong == []
            info = wmc.cache_info()
            # Bounds held under concurrent eviction...
            assert info["entries"] <= 5
            # ...the node accounting is exact (no lost updates)...
            assert info["nodes"] == sum(
                c.size for c in wmc._CIRCUIT_CACHE.values())
            # ...and no call fell through the counters.
            assert info["hits"] + info["compiles"] == 8 * 3 * 12
        finally:
            wmc.set_cache_limits(max_nodes=4_000_000, max_entries=1024)
            wmc.clear_circuit_cache()
