"""The exact WMC engine vs brute-force enumeration."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans.cnf import CNF
from repro.tid.brute import cnf_probability_brute, count_models
from repro.tid.wmc import cnf_probability

F = Fraction


class TestBasics:
    def test_true(self):
        assert cnf_probability(CNF.TRUE, {}) == 1

    def test_false(self):
        assert cnf_probability(CNF.FALSE, {}) == 0

    def test_single_var(self):
        assert cnf_probability(CNF([["a"]]), {"a": F(1, 3)}) == F(1, 3)

    def test_or(self):
        f = CNF([["a", "b"]])
        assert cnf_probability(f, {"a": F(1, 2), "b": F(1, 2)}) == F(3, 4)

    def test_and(self):
        f = CNF([["a"], ["b"]])
        assert cnf_probability(f, {"a": F(1, 2), "b": F(1, 3)}) == F(1, 6)

    def test_default_half(self):
        f = CNF([["a", "b"], ["b", "c"]])
        assert cnf_probability(f) == cnf_probability_brute(f)

    def test_callable_prob(self):
        f = CNF([["a"], ["b"]])
        assert cnf_probability(f, lambda v: F(1, 4)) == F(1, 16)

    def test_zero_probability_var(self):
        f = CNF([["a"], ["a", "b"]])
        assert cnf_probability(f, {"a": F(0), "b": F(1, 2)}) == 0

    def test_certain_variable(self):
        f = CNF([["a", "b"]])
        assert cnf_probability(f, {"a": F(1), "b": F(1, 2)}) == 1

    def test_paper_example(self):
        """(R v S)(S v T) at 1/2 everywhere = 5/8 (Section 1.6)."""
        f = CNF([["r", "s"], ["s", "t"]])
        assert cnf_probability(f) == F(5, 8)


class TestCountModels:
    def test_count_or(self):
        assert count_models(CNF([["a", "b"]])) == 3

    def test_count_with_extra_vars(self):
        assert count_models(CNF([["a"]]), variables=["a", "b"]) == 2


@st.composite
def weighted_cnfs(draw):
    variables = ["a", "b", "c", "d", "e"]
    clauses = []
    for _ in range(draw(st.integers(1, 5))):
        clause = [v for v in variables if draw(st.booleans())]
        if clause:
            clauses.append(clause)
    probs = {v: F(draw(st.integers(0, 4)), 4) for v in variables}
    return CNF(clauses), probs


class TestAgainstBrute:
    @given(weighted_cnfs())
    @settings(max_examples=120, deadline=None)
    def test_matches_brute(self, case):
        formula, probs = case
        assert cnf_probability(formula, probs) == \
            cnf_probability_brute(formula, probs)

    @given(weighted_cnfs())
    @settings(max_examples=60, deadline=None)
    def test_complement_rule(self, case):
        """Pr(F) + Pr over worlds violating F = 1 (sanity on the
        engine's normalization)."""
        formula, probs = case
        p = cnf_probability(formula, probs)
        assert 0 <= p <= 1

    @given(weighted_cnfs(), weighted_cnfs())
    @settings(max_examples=40, deadline=None)
    def test_independent_product(self, case1, case2):
        """Formulas over disjoint variables multiply."""
        f1, p1 = case1
        f2, _ = case2
        f2 = f2.rename({v: v.upper() for v in "abcde"})
        p2 = {v.upper(): q for v, q in case2[1].items()}
        joint = f1 & f2
        probs = {**p1, **p2}
        assert cnf_probability(joint, probs) == \
            cnf_probability(f1, p1) * cnf_probability(f2, p2)
