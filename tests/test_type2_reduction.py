"""The Type-II counting pipeline: CCP recovery from oracle values
(Theorem C.4's counting half; experiment E12) and Lemma C.35."""

from fractions import Fraction

from repro.counting.ccp import TOP_COLOR, coloring_counts
from repro.counting.pp2cnf import PP2CNF
from repro.reduction.type2 import (
    Type2Reduction,
    compositions,
    conditions_68_70,
    exponential_y_provider,
)

F = Fraction


def make_reduction(m=2, n=2):
    left = [f"a{i}" for i in range(1, m + 1)]
    right = [f"b{j}" for j in range(1, n + 1)]
    mu_l = {c: (-1) ** (i + 1) for i, c in enumerate(left)}
    mu_r = {c: (-1) ** (j + 1) * (j + 1) for j, c in enumerate(right)}
    pairs = ([(a, b) for a in left for b in right]
             + [(a, TOP_COLOR) for a in left]
             + [(TOP_COLOR, b) for b in right])
    coeffs = {pair: (F(i + 1), F(1, i + 2))
              for i, pair in enumerate(pairs)}
    l1, l2 = F(1, 2), F(1, 3)
    assert conditions_68_70(coeffs, l1, l2)
    return Type2Reduction(left, right, mu_l, mu_r,
                          exponential_y_provider(coeffs, l1, l2))


def brute_counts_as_signatures(reduction, phi):
    """Brute-force coloring counts keyed the reduction's way."""
    left_nodes = [f"x{i}" for i in range(phi.n_left)]
    right_nodes = [f"y{j}" for j in range(phi.n_right)]
    edges = [(f"x{i}", f"y{j}") for i, j in phi.edges]
    m, n = len(reduction.left_colors), len(reduction.right_colors)
    brute = coloring_counts(left_nodes, right_nodes, edges, m, n)
    out = {}
    for sig, count in brute.items():
        d = dict(sig)
        key = []
        for alpha, beta in reduction.pairs:
            a = (reduction.left_colors.index(alpha)
                 if alpha != TOP_COLOR else TOP_COLOR)
            b = (reduction.right_colors.index(beta)
                 if beta != TOP_COLOR else TOP_COLOR)
            key.append(d.get((a, b), 0))
        key = tuple(key)
        out[key] = out.get(key, 0) + count
    return {k: v for k, v in out.items() if v}


class TestCompositions:
    def test_counts(self):
        assert len(list(compositions(2, 3))) == 6
        assert list(compositions(0, 2)) == [(0, 0)]
        assert list(compositions(1, 0)) == []
        assert list(compositions(0, 0)) == [()]


class TestConditions:
    def test_all_checks(self):
        coeffs = {("a", "b"): (F(1), F(1)), ("c", "d"): (F(2), F(1, 3))}
        assert conditions_68_70(coeffs, F(1, 2), F(1, 3))
        assert not conditions_68_70(coeffs, F(1, 2), F(1, 2))
        assert not conditions_68_70(coeffs, F(1, 2), F(-1, 2))
        assert not conditions_68_70(
            {("a", "b"): (F(1), F(0))}, F(1, 2), F(1, 3))
        assert not conditions_68_70(
            {("a", "b"): (F(1), F(1)), ("c", "d"): (F(2), F(2))},
            F(1, 2), F(1, 3))


class TestRecovery:
    def test_single_edge(self):
        red = make_reduction()
        phi = PP2CNF(1, 1, ((0, 0),))
        counts = red.run(phi)
        assert counts == brute_counts_as_signatures(red, phi)

    def test_pp2cnf_extraction(self):
        red = make_reduction()
        phi = PP2CNF(1, 1, ((0, 0),))
        assert red.count_pp2cnf(phi, "a1", "a2", "b1", "b2") == \
            phi.count_satisfying() == 3

    def test_no_edges(self):
        red = make_reduction()
        phi = PP2CNF(1, 1, ())
        counts = red.run(phi)
        assert counts == brute_counts_as_signatures(red, phi)
        assert red.count_pp2cnf(phi, "a1", "a2", "b1", "b2") == 4


class TestLemmaC35:
    """det D(p) = (lambda1 lambda2)^p (lambda2 - lambda1)(a1 b2 - a2 b1)."""

    def test_determinant_identity(self):
        l1, l2 = F(1, 2), F(1, 5)
        a1, b1 = F(2), F(3)
        a2, b2 = F(1), F(7)

        def y(a, b, p):
            return a * l1 ** p + b * l2 ** p

        for p in range(4):
            det = (y(a1, b1, p) * y(a2, b2, p + 1)
                   - y(a2, b2, p) * y(a1, b1, p + 1))
            expected = (l1 ** p * l2 ** p * (l2 - l1) * (a1 * b2 - a2 * b1))
            assert det == expected

    def test_zero_iff_proportional(self):
        l1, l2 = F(1, 2), F(1, 5)

        def det_at(a1, b1, a2, b2, p):
            def y(a, b, q):
                return a * l1 ** q + b * l2 ** q
            return (y(a1, b1, p) * y(a2, b2, p + 1)
                    - y(a2, b2, p) * y(a1, b1, p + 1))

        assert det_at(F(2), F(4), F(1), F(2), 3) == 0  # proportional
        assert det_at(F(2), F(4), F(1), F(3), 3) != 0
