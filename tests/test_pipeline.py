"""The Theorem 2.2 routing driver — repro.reduction.pipeline."""

import pytest

from repro.core import catalog
from repro.core.final import is_final
from repro.core.safety import query_type
from repro.counting.p2cnf import P2CNF
from repro.reduction.pipeline import hardness_certificate
from repro.reduction.type1 import Type1Reduction


class TestRouting:
    def test_h0_route(self):
        cert = hardness_certificate(catalog.h0())
        assert cert.route == "H0"

    def test_safe_query_rejected(self):
        with pytest.raises(ValueError):
            hardness_certificate(catalog.safe_left_only())

    def test_already_final_type1(self):
        cert = hardness_certificate(catalog.rst_query())
        assert cert.route == "type1"
        assert cert.final_query == catalog.rst_query()
        assert not cert.steps

    def test_non_final_type1(self):
        cert = hardness_certificate(catalog.intro_example())
        assert cert.route == "type1"
        assert is_final(cert.final_query)
        assert any(s.kind == "rewrite" for s in cert.steps)

    def test_type2_route(self):
        cert = hardness_certificate(catalog.example_c9())
        assert cert.route == "type2"
        assert query_type(cert.final_query) == ("II", "II")

    def test_mixed_type_goes_through_zigzag(self):
        cert = hardness_certificate(catalog.unsafe_type1_type2())
        kinds = [s.kind for s in cert.steps]
        assert "zigzag" in kinds
        assert cert.route == "type1"  # I-II -> zg -> I-I
        assert is_final(cert.final_query)

    def test_example_a3_routes(self):
        cert = hardness_certificate(catalog.example_a3())
        assert cert.route in ("type1", "type2")
        assert is_final(cert.final_query)


class TestCertificateFeedsReduction:
    @pytest.mark.parametrize("name,ctor", [
        ("rst", catalog.rst_query),
        ("intro", catalog.intro_example),
        ("fanout", lambda: catalog.path_query(2, fanout=2)),
    ])
    def test_type1_certificates_count(self, name, ctor):
        cert = hardness_certificate(ctor())
        assert cert.route == "type1"
        phi = P2CNF(2, ((0, 1),))
        reduction = Type1Reduction(cert.final_query)
        assert reduction.run(phi).model_count == 3

    def test_zigzag_certificate_counts(self):
        """The full Theorem 2.2 chain on a type I-II query: rewrite,
        zig-zag, re-finalize, then run the Theorem 3.1 reduction on
        the resulting final I-I query."""
        cert = hardness_certificate(catalog.unsafe_type1_type2())
        phi = P2CNF(2, ((0, 1),))
        reduction = Type1Reduction(cert.final_query)
        assert reduction.run(phi).model_count == 3


class TestCertificateMetadata:
    def test_length_reported(self):
        cert = hardness_certificate(catalog.rst_query())
        assert cert.length == 1

    def test_steps_record_queries(self):
        cert = hardness_certificate(catalog.unsafe_type1_type2())
        for step in cert.steps:
            assert step.query is not None
            assert step.detail


class TestTypeIIOneRoute:
    def test_type2_type1_routes_via_zigzag(self):
        from repro.core.catalog import unsafe_type2_type1
        from repro.core.safety import query_type
        q = unsafe_type2_type1()
        assert query_type(q) == ("II", "I")
        cert = hardness_certificate(q)
        # zg turns II-I into a type A-A query; the route may end at
        # either class depending on which final query the rewrites land
        # on, but a zigzag step must have happened unless rewriting
        # alone reached a same-type query.
        assert cert.route in ("type1", "type2")
        assert is_final(cert.final_query)
