"""The multi-process service: dispatcher routing, protocol parity,
worker-crash recovery, centralized quotas, and cross-process traces."""

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.dispatch import ReproDispatcher, _HashRing
from repro.service.protocol import ERROR_CODES
from repro.service.server import ReproServer
from repro.service.tenants import TenantQuota
from repro.tid import wmc

QUERY = "(R|S1)(S1|T)"
#: P(QUERY) over B_4(u, v) with all weights 1/2 — the exact value the
#: single-process smoke pins; the dispatcher must agree bit for bit.
EXACT_P4 = "4181/131072"


@pytest.fixture(autouse=True)
def isolated_cache():
    wmc.clear_circuit_cache()
    wmc.set_circuit_store(None)
    yield
    wmc.set_circuit_store(None)
    wmc.clear_circuit_cache()


@pytest.fixture(scope="module")
def dispatcher():
    """One shared two-worker pool for the read-mostly parity tests
    (worker boot costs a Python start-up each; respawn tests build
    their own)."""
    with ReproDispatcher(port=0, workers=2, window=0.0) as disp:
        yield disp


@pytest.fixture()
def client(dispatcher):
    with ServiceClient(*dispatcher.address) as c:
        yield c


class TestHashRing:
    def test_route_is_deterministic(self):
        ring = _HashRing(4)
        keys = [f"fingerprint-{i:04d}" for i in range(200)]
        assert [ring.route(k) for k in keys] \
            == [_HashRing(4).route(k) for k in keys]

    def test_every_worker_gets_traffic(self):
        ring = _HashRing(4)
        owners = {ring.route(f"fp-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_consistency_under_pool_growth(self):
        # Adding a worker must move only a minority of the keyspace —
        # the property that keeps per-worker LRUs warm across resizes.
        keys = [f"fp-{i}" for i in range(1000)]
        small, large = _HashRing(3), _HashRing(4)
        moved = sum(small.route(k) != large.route(k) for k in keys)
        assert 0 < moved < len(keys) / 2


class TestDispatcherParity:
    def test_ping(self, client):
        assert client.ping() == {"pong": True}

    def test_exact_evaluate_matches_single_process(self, client):
        result = client.evaluate(QUERY, p=4)
        assert result["engine"] == "exact"
        assert result["value"] == EXACT_P4

    def test_batch_splits_per_p_and_matches_evaluates(self, client):
        batch = client.evaluate_batch(QUERY, ps=[2, 3, 4])
        assert batch["count"] == 3
        singles = [client.evaluate(QUERY, p=p) for p in (2, 3, 4)]
        assert [r["value"] for r in batch["results"]] \
            == [r["value"] for r in singles]
        assert [r["p"] for r in batch["results"]] == [2, 3, 4]

    def test_batch_rejects_p_param(self, client):
        with pytest.raises(ServiceError) as info:
            client.call("evaluate_batch", query=QUERY, ps=[2], p=3)
        assert info.value.code == "bad-request"

    def test_sweep_through_the_pool(self, client):
        result = client.sweep(QUERY, p=3, grid=4)
        assert result["engine"] == "exact"
        assert result["count"] == 4

    def test_same_fingerprint_routes_to_one_worker(
            self, dispatcher, client):
        fingerprint = client.evaluate(QUERY, p=4)["fingerprint"]
        index = dispatcher._ring.route(fingerprint)
        for _ in range(3):
            client.evaluate(QUERY, p=4)
        assert fingerprint in dispatcher._workers[index].resident
        other = dispatcher._workers[1 - index]
        assert fingerprint not in other.resident

    def test_error_codes_proxy_transparently(self, client):
        cases = [
            (dict(op="evaluate", query="no parens"), "bad-query"),
            (dict(op="evaluate", query=QUERY, tpyo=1), "bad-request"),
            (dict(op="sweep", query="(S1|S2)", p=3), "bad-query"),
            # A formula no other test warms: the tiny budget must
            # abort a *fresh* compile to surface the structured code.
            (dict(op="compile", query="(R|S1)(S1|S2)(S2|T)", p=6,
                  budget_nodes=2), "budget-exceeded"),
        ]
        for params, expected in cases:
            op = params.pop("op")
            with pytest.raises(ServiceError) as info:
                client.call(op, **params)
            assert info.value.code == expected, op
            assert info.value.code in ERROR_CODES

    def test_store_gc_without_store_is_bad_request(
            self, client, monkeypatch):
        monkeypatch.delenv("REPRO_CIRCUIT_STORE", raising=False)
        with pytest.raises(ServiceError) as info:
            client.store_gc(max_bytes=0)
        assert info.value.code == "bad-request"

    def test_stats_aggregate_across_workers(self, client):
        for p in (2, 3, 4, 5):
            client.evaluate(QUERY, p=p)
        stats = client.stats()
        service = stats["service"]
        assert service["workers"] == 2
        assert service["proxied_requests"] >= 4
        assert stats["cache"]["compiles"] >= 4
        # Each fresh compile feeds the merged service-wide planner.
        assert service["planner"]["observations"] >= 4
        assert len(service["planner"]["growth"]) \
            == service["planner"]["observations"]
        rows = {row["worker"]: row for row in stats["workers"]}
        assert set(rows) == {0, 1}
        assert all(row["alive"] for row in rows.values())

    def test_metrics_render_the_aggregate(self, client):
        client.evaluate(QUERY, p=4)
        text = client.metrics()["text"]
        assert 'repro_service_info{key="workers"} 2' in text
        assert "repro_cache_compiles_total" in text
        assert "repro_requests_total" in text

    def test_trace_spans_both_processes(self, client):
        client.call("evaluate", query=QUERY, p=4,
                    trace="xproc-parity")
        payload = client.trace(id="xproc-parity")["traces"][0]
        spans = payload["spans"]
        roots = [s for s in spans if s["parent"] is None]
        assert len(roots) == 1  # one merged tree, not two forests
        names = {s["name"] for s in spans}
        assert {"proxy", "dispatch", "evaluate"} <= names
        worker_spans = [s for s in spans
                        if str(s.get("tags", {}).get("process", ""))
                        .startswith("worker-")]
        assert worker_spans, "no worker-side spans grafted"
        by_id = {s["id"]: s for s in spans}
        for entry in worker_spans:
            assert entry["parent"] in by_id  # grafted, not floating
        proxy = next(s for s in spans if s["name"] == "proxy")
        assert "child_trace" in proxy["tags"]
        assert isinstance(proxy["tags"]["worker"], int)


class TestCrashRecovery:
    def _kill_owner(self, dispatcher, fingerprint):
        handle = dispatcher._workers[
            dispatcher._ring.route(fingerprint)]
        pid = handle.process.pid
        handle.process.kill()
        handle.process.wait(timeout=10)
        return handle, pid

    def test_dead_worker_is_respawned_and_request_retried(self):
        with ReproDispatcher(port=0, workers=2, window=0.0) as disp:
            with ServiceClient(*disp.address) as client:
                first = client.evaluate(QUERY, p=4)
                handle, old_pid = self._kill_owner(
                    disp, first["fingerprint"])
                again = client.evaluate(QUERY, p=4)
                assert again["value"] == first["value"]
                assert handle.process.pid != old_pid
                assert handle.respawns == 1
                stats = client.stats()["service"]
                assert stats["worker_respawns"] == 1
                assert stats["redispatches"] >= 1

    def test_kill_mid_request_structured_error_or_retried_success(
            self):
        with ReproDispatcher(port=0, workers=2, window=0.0) as disp:
            with ServiceClient(*disp.address, timeout=600) as client:
                fingerprint = client.evaluate(QUERY,
                                              p=4)["fingerprint"]
                handle = disp._workers[disp._ring.route(fingerprint)]
                outcome = {}

                def slow_request():
                    try:
                        # A large exact sweep takes long enough to
                        # still be in flight when the worker dies.
                        outcome["result"] = client.sweep(
                            QUERY, p=4, grid=20_000)
                    except ServiceError as error:
                        outcome["error"] = error

                thread = threading.Thread(target=slow_request)
                thread.start()
                time.sleep(0.3)
                handle.process.kill()
                thread.join(timeout=120)
                assert not thread.is_alive()
                if "error" in outcome:
                    # A structured failure, never a raw socket error.
                    assert outcome["error"].code == "internal"
                else:
                    assert outcome["result"]["count"] == 20_000
                if handle.respawns == 0:
                    # The sweep won the race and finished before the
                    # kill landed; the next request routed to the dead
                    # worker must take the detect-and-respawn path.
                    assert client.evaluate(QUERY,
                                           p=4)["value"] == EXACT_P4
                assert handle.respawns >= 1
                # The pool keeps serving after the crash.
                assert client.ping() == {"pong": True}

    def test_warm_store_state_survives_respawn(self, tmp_path):
        store_dir = str(tmp_path / "store")
        with ReproDispatcher(port=0, workers=2, window=0.0,
                             store=store_dir) as disp:
            with ServiceClient(*disp.address) as client:
                compiled = client.compile(QUERY, p=4)
                assert compiled["source"] == "compiled"
                handle, _ = self._kill_owner(
                    disp, compiled["fingerprint"])
                # The respawned worker's memory is cold but the
                # shared store is not: the circuit comes back from
                # disk, not a recompile.
                warm = client.compile(QUERY, p=4)
                assert warm["fingerprint"] == compiled["fingerprint"]
                assert warm["source"] == "disk store"
                assert handle.respawns == 1
                assert client.stats()["cache"]["store_hits"] >= 1


class TestCentralizedQuotas:
    def test_rate_limit_enforced_at_the_dispatcher(self):
        with ReproDispatcher(
                port=0, workers=1, window=0.0,
                auth_tokens={"tok": "alice"},
                quota=TenantQuota(rate=3, window=3600)) as disp:
            with ServiceClient(*disp.address, auth="tok") as client:
                for _ in range(3):
                    client.ping()
                with pytest.raises(ServiceError) as info:
                    client.ping()
                assert info.value.code == "quota-exceeded"

    def test_compile_budget_charged_centrally(self):
        with ReproDispatcher(
                port=0, workers=2, window=0.0,
                auth_tokens={"tok": "alice"},
                quota=TenantQuota(compile_nodes=1)) as disp:
            with ServiceClient(*disp.address, auth="tok") as client:
                # The crossing request pays and is refused — exactly
                # the single-process semantics — with the spend
                # recorded in the dispatcher's registry even though
                # the compile happened a process away.
                with pytest.raises(ServiceError) as info:
                    client.evaluate(QUERY, p=4)
                assert info.value.code == "quota-exceeded"
                usage = client.stats()["tenants"]["alice"]
                assert usage["nodes_spent"] > 1
                # A different formula needs fresh work: refused
                # before any worker is bothered.
                with pytest.raises(ServiceError) as info:
                    client.evaluate(QUERY, p=5)
                assert info.value.code == "quota-exceeded"
                # The warm fingerprint stays accessible.
                assert client.evaluate(QUERY, p=4)["engine"] \
                    == "exact"

    def test_workers_run_open_and_strip_charge_field(self):
        with ReproDispatcher(port=0, workers=1,
                             window=0.0) as disp:
            with ServiceClient(*disp.address) as client:
                result = client.evaluate(QUERY, p=4)
                assert "charge" not in result
                # Directly probe the worker: it reports the charge
                # field (worker mode) but requires no auth.
                address = disp._workers[0].address
                with ServiceClient(*address) as direct:
                    fresh = direct.evaluate(QUERY, p=5)
                    assert fresh["charge"]["nodes"] > 0
                    warm = direct.evaluate(QUERY, p=5)
                    assert "charge" not in warm


class TestWorkersZeroParity:
    def test_workers_zero_is_the_in_process_server(self):
        # `repro serve --workers 0` must construct today's
        # single-process ReproServer, byte-identical behaviour.
        with ReproServer(port=0, window=0.0) as server:
            with ServiceClient(*server.address) as client:
                result = client.evaluate(QUERY, p=4)
                assert result["value"] == EXACT_P4
                assert "charge" not in result
                stats = client.stats()["service"]
                assert "proxied_requests" not in stats
                assert stats["planner"]["observations"] >= 1


PROBE_SCRIPT = r"""
import json, sys
from repro.service.client import ServiceClient
from repro.service.dispatch import ReproDispatcher

QUERY = "(R|S1)(S1|T)"
with ReproDispatcher(port=0, workers=2, window=0.0) as disp:
    with ServiceClient(*disp.address) as client:
        values = [client.evaluate(QUERY, p=p)["value"]
                  for p in (3, 4)]
        client.call("evaluate", query=QUERY, p=4, trace="probe")
        payload = client.trace(id="probe")["traces"][0]
        shape = sorted(
            (s["name"],
             next((x["name"] for x in payload["spans"]
                   if x["id"] == s["parent"]), "") or "",
             str(s.get("tags", {}).get("process", "")))
            for s in payload["spans"])
        fingerprint = client.evaluate(QUERY, p=4)["fingerprint"]
        route = disp._ring.route(fingerprint)
print(json.dumps({"values": values, "shape": shape,
                  "fingerprint": fingerprint, "route": route}))
"""


class TestHashSeedIndependence:
    def test_cross_process_trace_tree_is_seed_independent(self):
        """Two-hashseed subprocess probe: routing, exact values, and
        the merged dispatcher->worker span tree must not depend on
        PYTHONHASHSEED in either process."""
        outputs = []
        for seed in ("0", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env.pop("REPRO_CIRCUIT_STORE", None)
            src = os.path.join(os.path.dirname(__file__),
                               os.pardir, "src")
            env["PYTHONPATH"] = os.path.abspath(src)
            proc = subprocess.run(
                [sys.executable, "-c", PROBE_SCRIPT],
                capture_output=True, text=True, timeout=300,
                env=env)
            assert proc.returncode == 0, proc.stderr
            outputs.append(json.loads(proc.stdout.strip()))
        assert outputs[0] == outputs[1]
        assert any(process.startswith("worker-")
                   for _, _, process in outputs[0]["shape"])
