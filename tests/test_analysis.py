"""The repo-invariant static analyzer (``repro ctl analyze``).

Contracts pinned here: each of the four rule packs catches a seeded
violation in a fixture tree and stays quiet on the corrected twin
(that pair is what makes the CI lint step a real gate — a newly
introduced unsorted-dict-iteration or unguarded-global access exits
1); suppression comments need a rule id *and* a reason; the baseline
round-trips through ``--baseline``; bad operands die with a one-line
``repro:`` message, not a traceback; and the live tree itself is
analyzer-clean modulo the committed baseline.
"""

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze, run
from repro.analysis.engine import BASELINE_NAME, collect_files

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_repo(tmp_path, files):
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return tmp_path


def findings_of(root, rule=None, paths=None):
    report = analyze(Path(root), paths)
    found = report.findings
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
UNSORTED_DICT_ITERATION = """
    def to_bytes(weights):
        out = []
        for key in weights.keys():
            out.append(key)
        return out
"""


class TestDeterminismRule:
    def test_flags_set_iteration_in_serializer(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            def fingerprint(clauses):
                seen = set(clauses)
                return [c for c in seen]
        """})
        found = findings_of(tmp_path, "determinism")
        assert len(found) == 1
        assert "sorted" in found[0].message
        assert found[0].context == "fingerprint"

    def test_flags_unsorted_dict_view(self, tmp_path):
        # The exact violation shape the CI lint job must fail on.
        make_repo(tmp_path, {"src/mod.py": UNSORTED_DICT_ITERATION})
        found = findings_of(tmp_path, "determinism")
        assert len(found) == 1
        assert ".keys() dict view" in found[0].message
        assert run(root=tmp_path, stream=io.StringIO()) == 1

    def test_sorted_wrapper_is_clean(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            def to_bytes(weights):
                out = []
                for key in sorted(weights.keys(), key=repr):
                    out.append(key)
                return tuple(sorted(set(out)))
        """})
        assert findings_of(tmp_path, "determinism") == []

    def test_order_insensitive_scope_is_clean(self, tmp_path):
        # Same body, but the function name is not order-sensitive.
        make_repo(tmp_path, {"src/mod.py": """
            def collect(weights):
                out = []
                for key in weights.keys():
                    out.append(key)
                return out
        """})
        assert findings_of(tmp_path, "determinism") == []

    def test_class_name_scopes_methods(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            class Compiler:
                def order(self):
                    return list({1, 2, 3})
        """})
        found = findings_of(tmp_path, "determinism")
        assert [f.context for f in found] == ["Compiler.order"]


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
UNGUARDED_GLOBAL = """
    import threading

    _LOCK = threading.Lock()
    _CACHE = {}

    def remember(key, value):
        _CACHE[key] = value
"""


class TestLockDisciplineRule:
    def test_flags_unguarded_module_global(self, tmp_path):
        # The second violation shape the CI lint job must fail on.
        make_repo(tmp_path, {"src/mod.py": UNGUARDED_GLOBAL})
        found = findings_of(tmp_path, "lock-discipline")
        assert len(found) == 1
        assert "_CACHE" in found[0].message
        assert found[0].context == "remember"
        assert run(root=tmp_path, stream=io.StringIO()) == 1

    def test_locked_access_is_clean(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            import threading

            _LOCK = threading.Lock()
            _CACHE = {}

            def remember(key, value):
                with _LOCK:
                    _CACHE[key] = value
        """})
        assert findings_of(tmp_path, "lock-discipline") == []

    def test_caller_holds_lock_docstring_exempts(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            import threading

            _LOCK = threading.Lock()
            _CACHE = {}

            def _evict():
                \"\"\"Caller holds ``_LOCK``.\"\"\"
                _CACHE.clear()
        """})
        assert findings_of(tmp_path, "lock-discipline") == []

    def test_global_rebinding_is_guarded_state(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            import threading

            _LOCK = threading.Lock()
            _limit = 100

            def set_limit(value):
                global _limit
                _limit = value
        """})
        found = findings_of(tmp_path, "lock-discipline")
        assert len(found) == 1
        assert "write of module global '_limit'" in found[0].message

    def test_flags_unguarded_instance_counter(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._jobs = {}
                    self.launched = 0

                def submit(self, key):
                    self.launched += 1
                    with self._lock:
                        self._jobs[key] = True
        """})
        found = findings_of(tmp_path, "lock-discipline")
        assert len(found) == 1
        assert "self.launched" in found[0].message
        assert found[0].context == "Pool.submit"

    def test_nested_def_does_not_inherit_lock(self, tmp_path):
        # A closure defined under the lock runs later, unlocked.
        make_repo(tmp_path, {"src/mod.py": """
            import threading

            _LOCK = threading.Lock()
            _CACHE = {}

            def schedule():
                with _LOCK:
                    def later():
                        _CACHE.clear()
                    return later
        """})
        found = findings_of(tmp_path, "lock-discipline")
        assert len(found) == 1


# ----------------------------------------------------------------------
# numeric-boundary
# ----------------------------------------------------------------------
class TestNumericBoundaryRule:
    def test_flags_float_contamination_in_exact_kernel(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            import math

            def eval_exact(values):
                total = 0.5
                for v in values:
                    total += float(v) + math.log(v)
                return total
        """})
        messages = sorted(
            f.message for f in findings_of(tmp_path, "numeric-boundary"))
        assert len(messages) == 3
        assert "float literal 0.5" in messages[0]
        assert "float(...) cast" in messages[1]
        assert "math.log" in messages[2]

    def test_exact_integer_math_is_clean(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            import math
            from fractions import Fraction

            def eval_exact(values):
                total = Fraction(0)
                for v in values:
                    total += Fraction(math.isqrt(v), 2)
                return total
        """})
        assert findings_of(tmp_path, "numeric-boundary") == []

    def test_flags_fraction_in_float_lane_loop(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            from fractions import Fraction

            def fill_float_lanes(rows):
                out = []
                for row in rows:
                    out.append(float(Fraction(row)))
                return out
        """})
        found = findings_of(tmp_path, "numeric-boundary")
        assert len(found) == 1
        assert "hoist" in found[0].message

    def test_hoisted_fraction_is_clean(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            from fractions import Fraction

            def fill_float_lanes(rows, default):
                fallback = float(Fraction(default))
                return [fallback for _ in rows]
        """})
        assert findings_of(tmp_path, "numeric-boundary") == []


# ----------------------------------------------------------------------
# protocol-drift
# ----------------------------------------------------------------------
def service_repo(tmp_path, *, dispatch_ops=("ping", "eval"),
                 client_ops=("ping", "eval"),
                 readme_eval_params="`x`, `y`",
                 client_eval_kwargs="x=x, y=y"):
    dispatch = ", ".join(
        f'"{op}": self._op_{op}' for op in dispatch_ops)
    calls = "\n".join(
        f'    def {op}(self, x=None, y=None):\n'
        f'        return self.call("{op}"'
        + (f', {client_eval_kwargs})' if op == "eval" else ')')
        for op in client_ops)
    client_src = ("class Client:\n"
                  "    def call(self, op, **params):\n"
                  "        return (op, params)\n\n"
                  + calls + "\n")
    return make_repo(tmp_path, {
        "src/service/protocol.py": """
            OPS = ("ping", "eval")

            def check_fields(params, allowed):
                pass
        """,
        "src/service/server.py": f"""
            from service.protocol import check_fields

            _EXTRA = ("y",)

            class Server:
                def __init__(self):
                    self._dispatch = {{{dispatch}}}

                def _op_ping(self, params):
                    check_fields(params, ())
                    return {{}}

                def _op_eval(self, params):
                    check_fields(params, ("x",) + _EXTRA)
                    return {{}}
        """,
        "src/service/client.py": client_src,
        "README.md": f"""
            # fixture service

            | op | params | notes |
            |---|---|---|
            | `ping` | — | liveness |
            | `eval` | {readme_eval_params} | evaluate |
        """,
    })


class TestProtocolDriftRule:
    def test_synchronized_surface_is_clean(self, tmp_path):
        service_repo(tmp_path)
        report = analyze(tmp_path)
        assert [f for f in report.findings
                if f.rule == "parse-error"] == []
        assert [f for f in report.findings
                if f.rule == "protocol-drift"] == []

    def test_missing_dispatch_entry(self, tmp_path):
        service_repo(tmp_path, dispatch_ops=("ping",))
        messages = [f.message
                    for f in findings_of(tmp_path, "protocol-drift")]
        assert any("'eval' in protocol.OPS has no server dispatch"
                   in m for m in messages)
        assert any("_op_eval is not reachable" in m for m in messages)

    def test_missing_client_method(self, tmp_path):
        service_repo(tmp_path, client_ops=("ping",))
        messages = [f.message
                    for f in findings_of(tmp_path, "protocol-drift")]
        assert any("no method issuing op 'eval'" in m
                   for m in messages)

    def test_undocumented_param(self, tmp_path):
        service_repo(tmp_path, readme_eval_params="`x`")
        messages = [f.message
                    for f in findings_of(tmp_path, "protocol-drift")]
        assert messages == ["op 'eval': param 'y' accepted by the "
                            "server but absent from the README op "
                            "table"]

    def test_documented_param_the_server_rejects(self, tmp_path):
        service_repo(tmp_path,
                     readme_eval_params="`x`, `y`, `ghost`")
        messages = [f.message
                    for f in findings_of(tmp_path, "protocol-drift")]
        assert messages == ["op 'eval': README documents param "
                            "'ghost' the server rejects"]

    def test_client_param_the_server_rejects(self, tmp_path):
        service_repo(tmp_path, client_eval_kwargs="x=x, zz=y")
        messages = [f.message
                    for f in findings_of(tmp_path, "protocol-drift")]
        assert any("client sends param 'zz'" in m for m in messages)

    def test_missing_op_table(self, tmp_path):
        service_repo(tmp_path)
        (tmp_path / "README.md").write_text("# no table here\n")
        messages = [f.message
                    for f in findings_of(tmp_path, "protocol-drift")]
        assert messages == ["README has no op/params markdown table"]

    def test_non_service_tree_is_skipped(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": "X = 1\n"})
        assert findings_of(tmp_path, "protocol-drift") == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_allow_comment_with_reason_suppresses(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            def to_bytes(weights):
                # repro: allow[determinism] proven singleton upstream
                return list(set(weights))
        """})
        report = analyze(tmp_path)
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0][1] == "proven singleton upstream"

    def test_same_line_comment_suppresses(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": (
            "def to_bytes(w):\n"
            "    return list(set(w))"
            "  # repro: allow[determinism] fixture\n")})
        report = analyze(tmp_path)
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_reasonless_allow_is_itself_a_finding(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            def to_bytes(weights):
                # repro: allow[determinism]
                return list(set(weights))
        """})
        rules = {f.rule for f in analyze(tmp_path).findings}
        # the original finding survives AND the bare allow is reported
        assert rules == {"determinism", "suppression"}

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            def to_bytes(weights):
                # repro: allow[numeric-boundary] not the right rule
                return list(set(weights))
        """})
        assert len(findings_of(tmp_path, "determinism")) == 1

    def test_star_suppresses_any_rule(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": """
            def to_bytes(weights):
                # repro: allow[*] fixture blanket
                return list(set(weights))
        """})
        assert analyze(tmp_path).findings == []


# ----------------------------------------------------------------------
# baseline round-trip + reporters
# ----------------------------------------------------------------------
class TestBaseline:
    def test_add_then_remove_round_trip(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": UNSORTED_DICT_ITERATION})
        out = io.StringIO()
        assert run(root=tmp_path, stream=out) == 1

        # Accept the finding into the baseline: now clean.
        assert run(root=tmp_path, update_baseline=True,
                   stream=io.StringIO()) == 0
        baseline = json.loads(
            (tmp_path / BASELINE_NAME).read_text())
        assert len(baseline["findings"]) == 1
        assert "TODO" in baseline["findings"][0]["reason"]
        assert run(root=tmp_path, stream=io.StringIO()) == 0

        # Fix the violation: stale entry is reported, run stays green,
        # and a rewrite empties the baseline.
        (tmp_path / "src/mod.py").write_text(
            "def to_bytes(weights):\n"
            "    return sorted(weights.keys(), key=repr)\n")
        out = io.StringIO()
        assert run(root=tmp_path, stream=out) == 0
        assert "stale baseline entry" in out.getvalue()
        assert run(root=tmp_path, update_baseline=True,
                   stream=io.StringIO()) == 0
        baseline = json.loads(
            (tmp_path / BASELINE_NAME).read_text())
        assert baseline["findings"] == []

    def test_baseline_keys_survive_line_shifts(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": UNSORTED_DICT_ITERATION})
        assert run(root=tmp_path, update_baseline=True,
                   stream=io.StringIO()) == 0
        # Prepend code: every line number changes, the key must not.
        mod = tmp_path / "src/mod.py"
        mod.write_text("import os\n\n\n" + mod.read_text())
        assert run(root=tmp_path, stream=io.StringIO()) == 0

    def test_baseline_rewrite_keeps_existing_reasons(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": UNSORTED_DICT_ITERATION})
        assert run(root=tmp_path, update_baseline=True,
                   stream=io.StringIO()) == 0
        path = tmp_path / BASELINE_NAME
        baseline = json.loads(path.read_text())
        baseline["findings"][0]["reason"] = "handwritten justification"
        path.write_text(json.dumps(baseline))
        assert run(root=tmp_path, update_baseline=True,
                   stream=io.StringIO()) == 0
        rewritten = json.loads(path.read_text())
        assert rewritten["findings"][0]["reason"] == \
            "handwritten justification"

    def test_json_report_shape(self, tmp_path):
        make_repo(tmp_path, {"src/mod.py": UNSORTED_DICT_ITERATION})
        out = io.StringIO()
        assert run(root=tmp_path, json_output=True, stream=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["files"] == 1
        [finding] = payload["findings"]
        assert finding["rule"] == "determinism"
        assert finding["path"] == "src/mod.py"
        assert "::determinism::" in finding["key"]


# ----------------------------------------------------------------------
# operand validation (friendly SystemExit, no tracebacks)
# ----------------------------------------------------------------------
class TestOperandErrors:
    def test_path_outside_root(self, tmp_path):
        with pytest.raises(SystemExit, match="outside the analyzed"):
            collect_files(tmp_path, ["/etc/hosts"])

    def test_non_python_file(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello")
        with pytest.raises(SystemExit,
                           match="not a Python source file"):
            collect_files(tmp_path, [str(target)])

    def test_missing_path(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            collect_files(tmp_path, [str(tmp_path / "nope.py")])

    def test_module_main_entry(self, tmp_path, capsys):
        from repro.analysis import main

        make_repo(tmp_path, {"src/mod.py": UNSORTED_DICT_ITERATION})
        assert main(["--root", str(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "determinism"

    def test_discover_root_finds_baseline(self, tmp_path):
        from repro.analysis.engine import discover_root

        make_repo(tmp_path, {"src/mod.py": "X = 1\n"})
        (tmp_path / BASELINE_NAME).write_text(
            '{"version": 1, "findings": []}')
        nested = tmp_path / "src"
        assert discover_root(nested) == tmp_path

    def test_ctl_analyze_wires_through_cli(self, tmp_path, capsys):
        from repro.cli import main

        make_repo(tmp_path, {"src/mod.py": UNSORTED_DICT_ITERATION})
        assert main(["ctl", "analyze", "--root", str(tmp_path)]) == 1
        assert "[determinism]" in capsys.readouterr().out
        with pytest.raises(SystemExit, match="repro: ctl analyze"):
            main(["ctl", "analyze", "--root", str(tmp_path),
                  "/etc/hosts"])


# ----------------------------------------------------------------------
# the live tree
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_repository_is_clean_modulo_baseline(self):
        """The acceptance gate CI runs: zero non-baselined findings
        on the real source tree."""
        out = io.StringIO()
        assert run(root=REPO_ROOT, stream=out) == 0, out.getvalue()

    def test_committed_baseline_reasons_are_written(self):
        baseline = json.loads(
            (REPO_ROOT / BASELINE_NAME).read_text())
        assert baseline["version"] == 1
        for entry in baseline["findings"]:
            assert entry["reason"].strip()
            assert "TODO" not in entry["reason"]

    def test_all_four_rule_packs_are_registered(self):
        from repro.analysis import all_rules

        assert {r.id for r in all_rules()} >= {
            "determinism", "lock-discipline", "numeric-boundary",
            "protocol-drift"}
