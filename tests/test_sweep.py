"""The batched sweep engine and the pipelines rewired onto it."""

from fractions import Fraction

import pytest

from repro.booleans.circuit import compile_cnf
from repro.booleans.cnf import CNF
from repro.core.catalog import example_c15, rst_query
from repro.evaluation import endpoint_weight_grid, probability_sweep
from repro.reduction.blocks import path_block
from repro.reduction.block_matrix import z_matrix_direct, z_matrix_power
from repro.reduction.type2_blocks import type2_block
from repro.reduction.type2_lattice import TypeIIStructure
from repro.reduction.type2_spectral import (
    link_matrix_sweep,
    link_matrix_type2,
)
from repro.tid import wmc
from repro.tid.database import r_tuple, s_tuple
from repro.tid.lineage import lineage

F = Fraction


def endpoint_grid(k=6, p=3):
    query = rst_query()
    tid = path_block(query, p)
    formula = lineage(query, tid)
    return formula, endpoint_weight_grid(formula, tid, k)


class TestProbabilityBatch:
    def test_matches_per_vector_probability(self):
        formula, maps = endpoint_grid()
        circuit = compile_cnf(formula)
        batched = circuit.probability_batch(maps)
        assert batched == [circuit.probability(w) for w in maps]

    def test_mixed_specs(self):
        """Mappings, callables, and None all batch together."""
        circuit = compile_cnf(CNF([["a", "b"], ["b", "c"]]))
        specs = [{"a": F(1, 3)}, (lambda v: F(1, 4)), None]
        assert circuit.probability_batch(specs) == \
            [circuit.probability(s) for s in specs]

    def test_empty_batch(self):
        circuit = compile_cnf(CNF([["a"]]))
        assert circuit.probability_batch([]) == []

    def test_pinning_equals_conditioning(self):
        """Weight-pinning a variable to 0/1 is bit-identical to
        structural conditioning (multilinearity)."""
        formula, _ = endpoint_grid(k=1)
        circuit = compile_cnf(formula)
        var = sorted(formula.variables(), key=repr)[0]
        for value in (F(0), F(1)):
            pinned = circuit.probability_batch(
                [{var: value}])[0]
            conditioned = compile_cnf(
                formula.condition(var, bool(value)))
            assert pinned == conditioned.probability(None)

    def test_float_fast_path_close(self):
        formula, maps = endpoint_grid()
        circuit = compile_cnf(formula)
        exact = circuit.probability_batch(maps)
        floats = circuit.probability_batch(maps, numeric="float")
        assert all(isinstance(v, float) for v in floats)
        for approx, truth in zip(floats, exact):
            assert abs(approx - float(truth)) < 1e-12

    def test_unknown_numeric_mode(self):
        circuit = compile_cnf(CNF([["a"]]))
        with pytest.raises(ValueError, match="numeric"):
            circuit.probability_batch([None], numeric="decimal")


class TestProbabilitySweep:
    def test_exact_matches_batch(self):
        formula, maps = endpoint_grid()
        wmc.clear_circuit_cache()
        values = probability_sweep(formula, maps)
        circuit = compile_cnf(formula)
        assert values == [circuit.probability(w) for w in maps]
        assert wmc.cache_info()["compiles"] == 1

    def test_float_mode_cross_checked(self):
        formula, maps = endpoint_grid()
        values = probability_sweep(formula, maps, numeric="float")
        exact = probability_sweep(formula, maps)
        for approx, truth in zip(values, exact):
            assert abs(approx - float(truth)) < 1e-9

    def test_multiprocessing_chunks_match_serial(self):
        formula, maps = endpoint_grid(k=7)
        serial = probability_sweep(formula, maps)
        parallel = probability_sweep(formula, maps, processes=2)
        assert parallel == serial

    def test_multiprocessing_rejects_callables(self):
        formula, maps = endpoint_grid(k=2)
        with pytest.raises(ValueError, match="callables"):
            probability_sweep(
                formula, [maps[0], lambda v: F(1, 2)], processes=2)


class TestBlockMatrixGrid:
    def test_endpoint_grid_matches_per_entry(self):
        """z_matrix_direct's batched grid is bit-identical to four
        separate conditioned evaluations."""
        query = rst_query()
        p = 3
        z = z_matrix_direct(query, p)
        tid = path_block(query, p)
        circuit = compile_cnf(lineage(query, tid))
        base = tid.probability
        r_u, r_v = r_tuple("u"), r_tuple("v")
        for a in (0, 1):
            for b in (0, 1):
                pinned = {r_u: F(a), r_v: F(b)}
                assert z[a, b] == circuit.probability(
                    lambda t, pinned=pinned: pinned.get(t, base(t)))

    def test_lemma_319_still_holds(self):
        query = rst_query()
        assert z_matrix_direct(query, 3) == z_matrix_power(query, 3)


class TestTypeIISweeps:
    def test_link_matrix_sweep_interior(self):
        q = example_c15()
        token = s_tuple("S1", "r1", "t0")
        thetas = [{}, {token: F(1, 3)}, {token: F(2, 3)}]
        swept = link_matrix_sweep(q, "U", thetas)
        for theta, z in zip(thetas, swept):
            assert z == link_matrix_type2(q, "U", assignment=theta)

    def test_link_matrix_sweep_01_fallback(self):
        q = example_c15()
        token = s_tuple("S1", "r1", "t0")
        thetas = [{token: F(1)}, {token: F(0)}]
        swept = link_matrix_sweep(q, "U", thetas)
        for theta, z in zip(thetas, swept):
            assert z == link_matrix_type2(q, "U", assignment=theta)

    def test_y_probability_sweep_matches_modified_blocks(self):
        q = example_c15()
        structure = TypeIIStructure(q)
        block = type2_block(q, p=1)
        token = s_tuple("S1", "r1", "t0")
        alpha, beta = frozenset({0}), frozenset({0})
        overlays = [{}, {token: F(1, 3)}, {token: F(1)}, {token: F(0)}]
        swept = structure.y_probability_sweep(
            block, "r0", "t1", alpha, beta, overlays)
        for overlay, value in zip(overlays, swept):
            modified = block
            for tok, val in overlay.items():
                modified = modified.with_probability(tok, val)
            assert value == structure.y_probability(
                modified, "r0", "t1", alpha, beta)
