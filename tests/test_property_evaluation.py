"""Property tests: evaluation engines agree on random queries and
random databases (the project's core validation idiom, at scale)."""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generate import GeneratorConfig, random_query
from repro.core.safety import is_safe
from repro.tid.brute import probability_brute
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.lifted import lifted_probability
from repro.tid.lineage import lineage
from repro.tid.wmc import probability

F = Fraction

SMALL = GeneratorConfig(n_symbols=3, max_clauses=3, max_subclauses=2)


def build_tid(query, seed, n_left=2, n_right=1,
              values=(F(0), F(1, 4), F(1, 2), F(1))):
    rng = random.Random(seed)
    U = [f"u{i}" for i in range(n_left)]
    V = [f"v{j}" for j in range(n_right)]
    probs = {}
    for u in U:
        probs[r_tuple(u)] = rng.choice(values)
    for v in V:
        probs[t_tuple(v)] = rng.choice(values)
    for s in sorted(query.binary_symbols):
        for u in U:
            for v in V:
                probs[s_tuple(s, u, v)] = rng.choice(values)
    return TID(U, V, probs)


class TestEngineAgreement:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_wmc_equals_brute(self, query_seed, tid_seed):
        query = random_query(query_seed, SMALL)
        tid = build_tid(query, tid_seed)
        assert probability(query, tid) == probability_brute(query, tid)

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_lifted_on_safe(self, query_seed, tid_seed):
        query = random_query(query_seed, SMALL)
        if not is_safe(query):
            return
        tid = build_tid(query, tid_seed)
        assert lifted_probability(query, tid) == probability(query, tid)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_monotonicity_in_probabilities(self, query_seed):
        """Raising any tuple's probability cannot lower Pr(Q)
        (monotone queries)."""
        query = random_query(query_seed, SMALL)
        tid = build_tid(query, query_seed,
                        values=(F(1, 4), F(1, 2)))
        base = probability(query, tid)
        for token in list(tid.probs)[:4]:
            bumped = tid.with_probability(
                token, tid.probability(token) + F(1, 4))
            assert probability(query, bumped) >= base

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_certain_world_is_model_check(self, query_seed):
        """With all probabilities in {0,1}, Pr(Q) is 0/1 and equals a
        direct model check of the lineage."""
        query = random_query(query_seed, SMALL)
        tid = build_tid(query, query_seed, values=(F(0), F(1)))
        value = probability(query, tid)
        assert value in (F(0), F(1))
        formula = lineage(query, tid)
        assert value == (F(1) if formula.is_true() else F(0))

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_probability_bounds(self, query_seed):
        query = random_query(query_seed, SMALL)
        tid = build_tid(query, query_seed + 1)
        assert 0 <= probability(query, tid) <= 1


class TestLineageProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_lineage_vars_are_uncertain_tuples(self, query_seed):
        query = random_query(query_seed, SMALL)
        tid = build_tid(query, query_seed)
        formula = lineage(query, tid)
        uncertain = set(tid.uncertain_tuples())
        assert formula.variables() <= uncertain

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_conjunction_of_clause_lineages(self, query_seed):
        """Pr(Q) <= Pr(any single clause's lineage)."""
        from repro.core.queries import Query
        query = random_query(query_seed, SMALL)
        tid = build_tid(query, query_seed + 5)
        full = probability(query, tid)
        for clause in query.clauses:
            single = probability(Query([clause]), tid)
            assert single >= full
