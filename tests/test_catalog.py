"""The query catalog reproduces the paper's running examples."""

from repro.core import catalog
from repro.core.safety import is_unsafe, query_length, query_type


class TestNamedQueries:
    def test_h0_shape(self):
        q = catalog.h0()
        assert len(q.clauses) == 1
        assert q.clauses[0].side == "full"
        assert q.symbols == {"R", "S", "T"}

    def test_rst_is_path1(self):
        assert catalog.rst_query() == catalog.path_query(1)

    def test_path_query_structure(self):
        q = catalog.path_query(3)
        assert len(q.left_clauses) == 1
        assert len(q.middle_clauses) == 2
        assert len(q.right_clauses) == 1

    def test_path_query_fanout(self):
        q = catalog.path_query(2, fanout=2)
        assert len(q.binary_symbols) == 4

    def test_path_query_invalid(self):
        import pytest
        with pytest.raises(ValueError):
            catalog.path_query(0)

    def test_example_c9_matches_paper(self):
        q = catalog.example_c9()
        assert query_type(q) == ("II", "II")
        assert len(q.clauses) == 3
        left = q.left_clauses[0]
        assert left.subclauses == (frozenset({"S1"}), frozenset({"S2"}))

    def test_example_c15_ubiquitous_symbols(self):
        q = catalog.example_c15()
        left = q.left_clauses[0]
        # U occurs in every left subclause (left-ubiquitous).
        assert all("U" in j for j in left.subclauses)
        right = q.right_clauses[0]
        assert all("V" in j for j in right.subclauses)

    def test_example_c18_clause_count(self):
        q = catalog.example_c18()
        assert len(q.clauses) == 5
        assert query_type(q) == ("II", "II")

    def test_example_a3_right_clause(self):
        q = catalog.example_a3()
        right = q.right_clauses[0]
        assert len(right.subclauses) == 3

    def test_wide_final_query_shape(self):
        q = catalog.wide_final_query()
        assert len(q.right_clauses) == 2

    def test_census_well_formed(self):
        assert len(catalog.CENSUS) >= 12
        names = [name for name, _, _ in catalog.CENSUS]
        assert len(names) == len(set(names))

    def test_census_reconstructible(self):
        for name, ctor, expect_unsafe in catalog.CENSUS:
            q1, q2 = ctor(), ctor()
            assert q1 == q2, name
            assert is_unsafe(q1) == expect_unsafe


class TestLengths:
    def test_path_lengths(self):
        for k in range(1, 6):
            assert query_length(catalog.path_query(k)) == k

    def test_intro_example_length(self):
        assert query_length(catalog.intro_example()) == 1
