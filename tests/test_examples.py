"""Smoke tests: every shipped example must run end-to-end (their
internal assertions double as integration checks)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = _load(path)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more
