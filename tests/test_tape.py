"""The flat instruction-tape engine: kernels, serialization, caching.

Contracts pinned here: the tape's exact kernel is *bit-identical* to
the node interpreter on arbitrary formulas and weight batches (same
Fractions, not approximations); the float kernels (numpy and the
stdlib fallback) agree with the exact values to float tolerance and
reject non-finite weights loudly; ``to_bytes``/``from_bytes`` round
trips exactly and is byte-identical across ``PYTHONHASHSEED`` values;
``tape_for_circuit`` flattens once per circuit and the counters prove
it.
"""

import json
import os
import random
import subprocess
import sys
from fractions import Fraction
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans import tape as tape_module
from repro.booleans.circuit import (
    UnsupportedVersionError,
    WeightOverlay,
    compile_cnf,
)
from repro.booleans.cnf import CNF
from repro.booleans.tape import (
    Tape,
    adopt_tape,
    flatten_circuit,
    peek_tape,
    reset_tape_stats,
    tape_for_circuit,
    tape_stats,
)
from repro.core.generate import random_query
from repro.tid.lineage import lineage

from test_property_evaluation import SMALL, build_tid

F = Fraction

SRC = str(Path(__file__).resolve().parent.parent / "src")


def rst_formula():
    """A small block lineage with shared structure (ITE + AND nodes)."""
    from repro.core.catalog import rst_query
    from repro.reduction.blocks import path_block

    query = rst_query()
    tid = path_block(query, 4)
    return lineage(query, tid), tid


def random_formula_and_weights(query_seed, tid_seed, k=3):
    query = random_query(query_seed, SMALL)
    tid = build_tid(query, tid_seed)
    formula = lineage(query, tid)
    rng = random.Random(query_seed * 31 + tid_seed)
    variables = sorted(formula.variables(), key=repr)
    specs = []
    for _ in range(k):
        specs.append({var: F(rng.randrange(0, 8), 7)
                      for var in variables
                      if rng.random() < 0.8})  # some fall to default
    return formula, specs


class TestKernelAgreement:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_exact_kernel_bit_identical_to_node(self, qs, ts):
        formula, specs = random_formula_and_weights(qs, ts)
        circuit = compile_cnf(formula)
        node = circuit.probability_batch(specs, engine="node")
        tape = circuit.probability_batch(specs, engine="tape")
        assert node == tape
        assert all(isinstance(v, Fraction) for v in tape)

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_float_kernel_matches_exact(self, qs, ts):
        formula, specs = random_formula_and_weights(qs, ts)
        circuit = compile_cnf(formula)
        exact = circuit.probability_batch(specs, engine="node")
        floats = circuit.probability_batch(specs, numeric="float",
                                           engine="tape")
        assert all(abs(f - float(e)) < 1e-9
                   for f, e in zip(floats, exact))

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_fallback_kernel_matches_numpy(self, qs, ts):
        formula, specs = random_formula_and_weights(qs, ts)
        tape = flatten_circuit(compile_cnf(formula))
        with_numpy = tape.evaluate(specs, numeric="float")
        saved = tape_module._np
        tape_module._np = None
        try:
            without = tape.evaluate(specs, numeric="float")
        finally:
            tape_module._np = saved
        assert all(abs(a - b) < 1e-12
                   for a, b in zip(with_numpy, without))

    def test_empty_batch(self):
        formula, _ = rst_formula()
        tape = flatten_circuit(compile_cnf(formula))
        assert tape.evaluate([], numeric="exact") == []
        assert tape.evaluate([], numeric="float") == []

    def test_rejects_unknown_numeric(self):
        formula, _ = rst_formula()
        tape = flatten_circuit(compile_cnf(formula))
        with pytest.raises(ValueError, match="numeric"):
            tape.evaluate([{}], numeric="decimal")

    def test_constant_circuits(self):
        true_tape = flatten_circuit(compile_cnf(CNF.TRUE))
        false_tape = flatten_circuit(compile_cnf(CNF.FALSE))
        assert true_tape.evaluate([None, None]) == [F(1), F(1)]
        assert false_tape.evaluate([None], numeric="float") == [0.0]


class TestWeightOverlay:
    def test_overlay_specs_match_dicts(self):
        formula, tid = rst_formula()
        circuit = compile_cnf(formula)
        variables = sorted(circuit.variables(), key=repr)
        base = tid.probability
        overlays = [{variables[j % len(variables)]: F(j + 1, 11)}
                    for j in range(6)]
        dict_specs = []
        for o in overlays:
            d = {v: tid.probability(v) for v in variables}
            d.update(o)
            dict_specs.append(d)
        overlay_specs = [WeightOverlay(base, o) for o in overlays]
        for numeric in ("exact", "float"):
            want = circuit.probability_batch(dict_specs,
                                             numeric=numeric)
            got = circuit.probability_batch(overlay_specs,
                                            numeric=numeric)
            if numeric == "exact":
                assert got == want
            else:
                assert all(abs(a - b) < 1e-12
                           for a, b in zip(got, want))

    def test_overlay_is_callable_spec(self):
        overlay = WeightOverlay({"x": F(1, 3)}, {"y": F(1, 5)})
        assert overlay("y") == F(1, 5)
        assert overlay("x") == F(1, 3)
        assert overlay("z") == F(1, 2)  # base-map miss -> default 1/2

    def test_mixed_bases_fall_back_to_generic_path(self):
        """Lanes with *different* base objects still evaluate
        correctly (the fast fill requires one shared base)."""
        formula, tid = rst_formula()
        circuit = compile_cnf(formula)
        variables = sorted(circuit.variables(), key=repr)
        base_a = {v: F(1, 3) for v in variables}
        base_b = {v: F(2, 5) for v in variables}
        specs = [WeightOverlay(base_a, {variables[0]: F(1, 7)}),
                 WeightOverlay(base_b, {variables[1]: F(6, 7)})]
        tape = flatten_circuit(circuit)
        exact = tape.evaluate(specs)
        floats = tape.evaluate(specs, numeric="float")
        want = [circuit.probability(spec) for spec in specs]
        assert exact == want
        assert all(abs(f - float(e)) < 1e-9
                   for f, e in zip(floats, want))

    def test_overlay_of_unknown_variable_is_ignored(self):
        formula, tid = rst_formula()
        circuit = compile_cnf(formula)
        plain = WeightOverlay(tid.probability, {})
        stray = WeightOverlay(tid.probability,
                              {("not", "a", "circuit", "var"): F(1, 9)})
        tape = flatten_circuit(circuit)
        a, b = tape.evaluate([plain, stray], numeric="float")
        assert a == b


class TestNonFiniteGuards:
    def _poisoned(self, bad):
        formula, tid = rst_formula()
        circuit = compile_cnf(formula)
        variables = sorted(circuit.variables(), key=repr)
        good = {v: 0.5 for v in variables}
        poisoned = dict(good)
        poisoned[variables[1]] = bad
        return circuit, [good, poisoned]

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_node_engine_names_lane(self, bad):
        circuit, specs = self._poisoned(bad)
        with pytest.raises(ValueError, match="float lane 1"):
            circuit.probability_batch(specs, numeric="float",
                                      engine="node")

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_tape_numpy_kernel_names_lane(self, bad):
        circuit, specs = self._poisoned(bad)
        with pytest.raises(ValueError, match="float lane 1"):
            circuit.probability_batch(specs, numeric="float",
                                      engine="tape")

    def test_tape_fallback_kernel_names_lane(self, monkeypatch):
        circuit, specs = self._poisoned(float("nan"))
        monkeypatch.setattr(tape_module, "_np", None)
        with pytest.raises(ValueError, match="float lane 1"):
            circuit.probability_batch(specs, numeric="float",
                                      engine="tape")

    def test_overlay_fast_fill_names_lane(self):
        formula, tid = rst_formula()
        circuit = compile_cnf(formula)
        var = sorted(circuit.variables(), key=repr)[0]
        specs = [WeightOverlay(tid.probability, {}),
                 WeightOverlay(tid.probability, {var: float("inf")})]
        with pytest.raises(ValueError, match="float lane 1"):
            circuit.probability_batch(specs, numeric="float")

    def test_exact_path_accepts_what_float_rejects(self):
        """The guard is float-only: symbolic/extreme exact inputs keep
        working on the exact kernels."""
        circuit, specs = self._poisoned(float("inf"))
        specs[1][sorted(circuit.variables(), key=repr)[1]] = F(1, 2)
        assert circuit.probability_batch(specs, engine="tape") == \
            circuit.probability_batch(specs, engine="node")

    def test_engine_validation(self):
        formula, _ = rst_formula()
        circuit = compile_cnf(formula)
        with pytest.raises(ValueError, match="engine"):
            circuit.probability_batch([{}], engine="jit")


class TestSerialization:
    def test_round_trip_is_byte_identical(self):
        formula, tid = rst_formula()
        tape = flatten_circuit(compile_cnf(formula))
        data = tape.to_bytes()
        back = Tape.from_bytes(data)
        assert back.to_bytes() == data
        assert back.slots == tape.slots
        assert back.root == tape.root
        assert back.stats() == tape.stats()
        specs = [tid.probability, None]
        assert back.evaluate(specs) == tape.evaluate(specs)

    def test_round_trip_preserves_matching(self):
        formula, _ = rst_formula()
        circuit = compile_cnf(formula)
        back = Tape.from_bytes(flatten_circuit(circuit).to_bytes())
        assert back.matches(circuit)
        other = compile_cnf(CNF([["a", "b"], ["b", "c"]]))
        assert not back.matches(other)

    def test_version_skew_raises_unsupported(self):
        formula, _ = rst_formula()
        data = flatten_circuit(compile_cnf(formula)).to_bytes()
        lines = data.decode("utf-8").splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        lines[0] = json.dumps(header)
        with pytest.raises(UnsupportedVersionError):
            Tape.from_bytes("\n".join(lines).encode("utf-8"))

    @pytest.mark.parametrize("mangle", [
        lambda d: b"not a tape at all",
        lambda d: d[: len(d) // 2],
        lambda d: d.replace(b'"root":', b'"root":9999, "x":', 1),
    ])
    def test_corrupt_payloads_raise_value_error(self, mangle):
        formula, _ = rst_formula()
        data = flatten_circuit(compile_cnf(formula)).to_bytes()
        with pytest.raises(ValueError):
            Tape.from_bytes(mangle(data))

    def test_operand_topology_is_validated(self):
        formula, _ = rst_formula()
        data = flatten_circuit(compile_cnf(formula)).to_bytes()
        lines = data.decode("utf-8").splitlines()
        operands = json.loads(lines[4])
        operands[-1] = 10_000  # forward reference
        lines[4] = json.dumps(operands)
        with pytest.raises(ValueError, match="topological|range"):
            Tape.from_bytes("\n".join(lines).encode("utf-8"))


def _mangled_lines(data):
    lines = data.decode("utf-8").splitlines()
    return json.loads(lines[0]), lines


class TestValidate:
    """``Tape.validate`` — the structural gate ``from_bytes`` runs so
    corrupt-but-parseable sidecars fail closed."""

    def test_fresh_tapes_validate(self):
        formula, _ = rst_formula()
        flatten_circuit(compile_cnf(formula)).validate()  # no raise
        flatten_circuit(compile_cnf(CNF([]))).validate()  # constant

    def test_duplicate_slot_table_entry(self):
        formula, _ = rst_formula()
        data = flatten_circuit(compile_cnf(formula)).to_bytes()
        header, lines = _mangled_lines(data)
        assert len(header["slots"]) >= 2
        header["slots"][1] = header["slots"][0]
        lines[0] = json.dumps(header)
        with pytest.raises(ValueError, match="duplicate"):
            Tape.from_bytes("\n".join(lines).encode("utf-8"))

    def test_slot_table_first_use_order(self):
        # Pointing the first LIT at the last slot is a parseable tape
        # that would bind weights to the wrong variables — it must be
        # rejected, not evaluated.
        formula, _ = rst_formula()
        tape = flatten_circuit(compile_cnf(formula))
        data = tape.to_bytes()
        header, lines = _mangled_lines(data)
        ops = json.loads(lines[1])
        arg0 = json.loads(lines[2])
        first_lit = ops.index(tape_module.OP_LIT)
        assert arg0[first_lit] == 0 and len(header["slots"]) > 1
        arg0[first_lit] = len(header["slots"]) - 1
        lines[2] = json.dumps(arg0)
        with pytest.raises(ValueError, match="first-use"):
            Tape.from_bytes("\n".join(lines).encode("utf-8"))

    def test_unreferenced_slot_entry(self):
        formula, _ = rst_formula()
        data = flatten_circuit(compile_cnf(formula)).to_bytes()
        header, lines = _mangled_lines(data)
        header["slots"].append(["s", "never-used-variable"])
        lines[0] = json.dumps(header)
        with pytest.raises(ValueError, match="never referenced"):
            Tape.from_bytes("\n".join(lines).encode("utf-8"))

    def test_unknown_opcode(self):
        formula, _ = rst_formula()
        data = flatten_circuit(compile_cnf(formula)).to_bytes()
        _, lines = _mangled_lines(data)
        ops = json.loads(lines[1])
        ops[0] = 9
        lines[1] = json.dumps(ops)
        with pytest.raises(ValueError, match="opcode"):
            Tape.from_bytes("\n".join(lines).encode("utf-8"))

    def test_direct_validate_catches_bad_arity(self):
        from array import array

        tape = Tape(array("B", [tape_module.OP_CONST1,
                               tape_module.OP_AND]),
                    array("q", [0, 0]), array("q", [0, 1]),
                    array("q", [0]), (), 1, 2, 1)
        with pytest.raises(ValueError, match="fewer than two"):
            tape.validate()

    def test_invalid_sidecar_is_store_miss_and_removed(self, tmp_path):
        # Parseable-but-invalid .tape sidecars go through the same
        # corrupt→miss+unlink path as unparseable garbage.
        from repro.booleans.store import CircuitStore

        formula, _ = rst_formula()
        tape = flatten_circuit(compile_cnf(formula))
        store = CircuitStore(tmp_path)
        path = store.put_tape(formula, tape)
        header, lines = _mangled_lines(path.read_bytes())
        ops = json.loads(lines[1])
        arg0 = json.loads(lines[2])
        arg0[ops.index(tape_module.OP_LIT)] = len(header["slots"]) - 1
        lines[2] = json.dumps(arg0)
        path.write_bytes("\n".join(lines).encode("utf-8"))
        assert store.get_tape(formula) is None
        assert not path.exists()


_PROBE = """
import hashlib, json
from repro.booleans.circuit import compile_cnf
from repro.booleans.tape import flatten_circuit
from repro.core.catalog import rst_query
from repro.reduction.blocks import path_block
from repro.tid.lineage import lineage

query = rst_query()
tid = path_block(query, 3)
circuit = compile_cnf(lineage(query, tid))
tape = flatten_circuit(circuit)
print(json.dumps({
    "bytes": hashlib.sha256(tape.to_bytes()).hexdigest(),
    "stats": tape.stats(),
    "block_probability": str(tape.evaluate([tid.probability])[0]),
}))
"""


def _probe(hashseed: str) -> dict:
    env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=SRC)
    out = subprocess.run([sys.executable, "-c", _PROBE], env=env,
                         capture_output=True, text=True, check=True)
    return json.loads(out.stdout)


class TestDeterminism:
    def test_tape_bytes_identical_across_hash_seeds(self):
        assert _probe("0") == _probe("12345")


class TestCachingAndCounters:
    def test_flatten_once_then_hits(self):
        formula, tid = rst_formula()
        circuit = compile_cnf(formula)
        reset_tape_stats()
        assert peek_tape(circuit) is None
        tape = tape_for_circuit(circuit)
        again = tape_for_circuit(circuit)
        assert again is tape
        stats = tape_stats()
        assert stats["tape_flattens"] == 1
        assert stats["tape_hits"] == 1
        assert stats["tape_bytes"] == tape.byte_size

    def test_probability_batch_reuses_attached_tape(self):
        formula, tid = rst_formula()
        circuit = compile_cnf(formula)
        reset_tape_stats()
        grid = [{v: F(i + 1, 9) for v in circuit.variables()}
                for i in range(3)]
        circuit.probability_batch(grid, numeric="float")
        circuit.probability_batch(grid, numeric="float")
        stats = tape_stats()
        assert stats["tape_flattens"] == 1
        assert stats["tape_hits"] >= 1

    def test_adopt_tape_rejects_mismatch(self):
        formula, _ = rst_formula()
        circuit = compile_cnf(formula)
        other = compile_cnf(CNF([["a", "b"], ["b", "c"]]))
        stray = flatten_circuit(other)
        assert not adopt_tape(circuit, stray)
        assert peek_tape(circuit) is None

    def test_adopt_tape_attaches_match_once(self):
        formula, _ = rst_formula()
        circuit = compile_cnf(formula)
        reset_tape_stats()
        loaded = Tape.from_bytes(flatten_circuit(circuit).to_bytes())
        assert adopt_tape(circuit, loaded)
        assert peek_tape(circuit) is loaded
        assert not adopt_tape(circuit, loaded)  # already attached
        stats = tape_stats()
        # flatten_circuit is pure and never counts; adoption only adds
        # the loaded tape's footprint.
        assert stats["tape_flattens"] == 0
        assert stats["tape_bytes"] >= loaded.byte_size
        # the attached tape now serves probability_batch
        assert tape_for_circuit(circuit) is loaded


class TestFlattening:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_tape_is_smaller_or_similar_per_node(self, qs):
        """Flattening is linear: instructions stay within a small
        constant of the circuit's node count."""
        query = random_query(qs, SMALL)
        tid = build_tid(query, qs)
        circuit = compile_cnf(lineage(query, tid))
        tape = flatten_circuit(circuit)
        assert tape.n_instructions <= 4 * circuit.size + 2
        assert 0 <= tape.root < tape.n_instructions

    def test_flatten_is_pure(self):
        formula, _ = rst_formula()
        circuit = compile_cnf(formula)
        a = flatten_circuit(circuit)
        b = flatten_circuit(circuit)
        assert a is not b
        assert a.to_bytes() == b.to_bytes()
        assert peek_tape(circuit) is None  # no attachment side effect
