"""Forbidden queries and ubiquitous symbols (Definition C.11,
Lemma C.12)."""

from repro.core import catalog
from repro.core.forbidden import (
    clause_ubiquitous,
    is_forbidden,
    left_ubiquitous,
    minimal_left_right_paths,
    right_ubiquitous,
)


class TestUbiquitousSymbols:
    def test_c15_left_ubiquitous_u(self):
        assert left_ubiquitous(catalog.example_c15()) == {"U"}

    def test_c15_right_ubiquitous_v(self):
        assert right_ubiquitous(catalog.example_c15()) == {"V"}

    def test_c9_has_none(self):
        assert left_ubiquitous(catalog.example_c9()) == frozenset()
        assert right_ubiquitous(catalog.example_c9()) == frozenset()

    def test_c18_two_left_ubiquitous(self):
        """Example C.18 has two left-ubiquitous symbols U, U2
        (Lemma C.12 (4): then each occurs in a middle clause)."""
        q = catalog.example_c18()
        assert left_ubiquitous(q) == {"U", "U2"}
        middles = [j for c in q.middle_clauses for j in c.subclauses]
        for symbol in ("U", "U2"):
            assert any(symbol in j for j in middles)

    def test_clause_ubiquitous(self):
        q = catalog.example_c15()
        (left,) = q.left_clauses
        assert clause_ubiquitous(left) == {"U"}


class TestMinimalPaths:
    def test_c15_paths(self):
        paths = minimal_left_right_paths(catalog.example_c15())
        assert paths
        for path in paths:
            assert path[0].side == "left"
            assert path[-1].side == "right"
            assert len(path) == 3  # length 2

    def test_safe_query_no_paths(self):
        assert minimal_left_right_paths(catalog.safe_left_only()) == []

    def test_consecutive_clauses_share_symbols(self):
        for path in minimal_left_right_paths(catalog.example_c15()):
            for a, b in zip(path, path[1:]):
                assert a.symbols & b.symbols


class TestIsForbidden:
    def test_c15_forbidden(self):
        assert is_forbidden(catalog.example_c15())

    def test_c9_not_forbidden(self):
        """Example C.9 is final but not forbidden: S2 in C0 is neither
        ubiquitous nor shared with C1 — exactly why its Q_alpha_beta
        disconnect (Example C.9's discussion)."""
        assert not is_forbidden(catalog.example_c9())

    def test_safe_not_forbidden(self):
        assert not is_forbidden(catalog.safe_left_only())

    def test_non_final_not_forbidden(self):
        assert not is_forbidden(catalog.intro_example())

    def test_lemma_c12_no_ubiquitous_in_c1(self):
        """Lemma C.12 (2): no ubiquitous symbol occurs in C_1 on a
        minimal path."""
        q = catalog.example_c15()
        lu = left_ubiquitous(q)
        for path in minimal_left_right_paths(q):
            c1 = path[1]
            assert not (lu & c1.symbols)

    def test_lemma_c12_subclauses_meet_c1(self):
        """Lemma C.12 (3): every left subclause shares a symbol with
        C_1."""
        q = catalog.example_c15()
        for path in minimal_left_right_paths(q):
            first, second = path[0], path[1]
            for j in first.subclauses:
                assert j & second.symbols


class TestForbiddenVsConnectivity:
    def test_forbidden_gives_connected_lineages(self):
        """The pairing the paper engineers: forbidden -> Lemma C.23
        connectivity holds; non-forbidden final queries may fail it."""
        from repro.booleans.connectivity import is_connected
        from repro.reduction.type2_blocks import type2_block
        from repro.reduction.type2_lattice import TypeIIStructure
        q = catalog.example_c15()
        assert is_forbidden(q)
        st = TypeIIStructure(q)
        block = type2_block(q, p=1)
        for alpha in st.left_lattice.strict_support:
            for beta in st.right_lattice.strict_support:
                assert is_connected(st.lineage_y(block, "u", "v",
                                                 alpha, beta))
