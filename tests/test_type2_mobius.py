"""Theorem C.19: Moebius inversion over blocks (experiment E11)."""

import random
from fractions import Fraction

import pytest

from repro.core import catalog
from repro.reduction.type2_blocks import type2_block
from repro.reduction.type2_lattice import TypeIIStructure
from repro.reduction.type2_mobius import (
    mobius_block_probability,
    trivial_block,
    union_of_blocks,
)
from repro.tid.database import TID, s_tuple
from repro.tid.wmc import probability

F = Fraction


def random_block(query, u, v, seed, values=(F(1, 2), F(1))):
    """A small random block with an internal left and right constant."""
    rng = random.Random(seed)
    lefts = [u, f"ri_{u}_{v}"]
    rights = [v, f"ti_{u}_{v}"]
    probs = {}
    for symbol in sorted(query.binary_symbols):
        for a in lefts:
            for b in rights:
                probs[s_tuple(symbol, a, b)] = rng.choice(values)
    return TID(lefts, rights, probs, default=F(1))


class TestTheoremC19:
    @pytest.mark.parametrize("seed", range(3))
    def test_one_by_one(self, seed):
        q = catalog.example_c9()
        st = TypeIIStructure(q)
        blocks = {("u1", "v1"): random_block(q, "u1", "v1", seed)}
        assert mobius_block_probability(st, blocks) == \
            probability(q, union_of_blocks(blocks))

    @pytest.mark.parametrize("seed", range(3))
    def test_two_by_one(self, seed):
        q = catalog.example_c9()
        st = TypeIIStructure(q)
        blocks = {(u, "v1"): random_block(q, u, "v1", seed + 7 * hash(u) % 5)
                  for u in ("u1", "u2")}
        assert mobius_block_probability(st, blocks) == \
            probability(q, union_of_blocks(blocks))

    def test_two_by_two_with_trivial_blocks(self):
        """Non-edges carry trivial (all-certain) blocks."""
        q = catalog.example_c9()
        st = TypeIIStructure(q)
        blocks = {
            ("u1", "v1"): random_block(q, "u1", "v1", 1),
            ("u2", "v2"): random_block(q, "u2", "v2", 2),
            ("u1", "v2"): trivial_block(st, "u1", "v2"),
            ("u2", "v1"): trivial_block(st, "u2", "v1"),
        }
        assert mobius_block_probability(st, blocks) == \
            probability(q, union_of_blocks(blocks))

    def test_zigzag_block(self):
        q = catalog.example_c9()
        st = TypeIIStructure(q)
        blocks = {("u", "v"): type2_block(q, p=1)}
        assert mobius_block_probability(st, blocks) == \
            probability(q, union_of_blocks(blocks))

    def test_forbidden_query_c15(self):
        q = catalog.example_c15()
        st = TypeIIStructure(q)
        blocks = {("u1", "v1"): random_block(q, "u1", "v1", 5)}
        assert mobius_block_probability(st, blocks) == \
            probability(q, union_of_blocks(blocks))

    def test_incomplete_grid_raises(self):
        q = catalog.example_c9()
        st = TypeIIStructure(q)
        blocks = {("u1", "v1"): random_block(q, "u1", "v1", 0),
                  ("u2", "v2"): random_block(q, "u2", "v2", 1)}
        with pytest.raises(ValueError):
            mobius_block_probability(st, blocks)


class TestBlocks:
    def test_zigzag_block_structure(self):
        q = catalog.example_c15()
        blk = type2_block(q, p=2, branches=2)
        assert "u" in blk.left_domain
        assert "v" in blk.right_domain
        # all elementary tuples at 1/2 by default
        assert set(blk.probs.values()) == {F(1, 2)}

    def test_assignment_override(self):
        q = catalog.example_c9()
        token = None
        blk = type2_block(q, p=1)
        token = next(iter(blk.probs))
        blk2 = type2_block(q, p=1, assignment={token: F(1)})
        assert blk2.probability(token) == 1

    def test_assignment_outside_block_raises(self):
        q = catalog.example_c9()
        with pytest.raises(ValueError):
            type2_block(q, p=1, assignment={
                s_tuple("S1", "nope", "nah"): F(0)})

    def test_dead_end_count(self):
        from repro.reduction.type2_blocks import dead_end_count
        assert dead_end_count(catalog.example_c9()) == 0
        assert dead_end_count(catalog.example_a3()) == 1
