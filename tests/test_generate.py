"""The random query generator plus generator-driven property tests:
Lemma 2.7 and the dichotomy invariants on hundreds of random queries."""

import random
from fractions import Fraction

import pytest

from repro.core.generate import GeneratorConfig, random_queries, random_query
from repro.core.safety import is_safe, is_unsafe, query_length, query_type
from repro.evaluation import evaluate
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple

F = Fraction


class TestGenerator:
    def test_deterministic(self):
        assert random_query(7) == random_query(7)

    def test_stream(self):
        queries = random_queries(20)
        assert len(queries) == 20

    def test_never_constant(self):
        for q in random_queries(50):
            assert not q.is_constant()

    def test_config_limits_symbols(self):
        config = GeneratorConfig(n_symbols=2)
        for q in random_queries(20, config=config):
            assert q.binary_symbols <= {"S1", "S2"}

    def test_type1_only_config(self):
        config = GeneratorConfig(allow_type2=False)
        for q in random_queries(20, config=config):
            qtype = query_type(q)
            assert qtype == ("I", "I")


class TestLemma27OnRandomQueries:
    """Lemma 2.7 on 60 random queries: rewriting preserves types,
    propagates unsafety upward, and never shortens the query."""

    @pytest.mark.parametrize("seed", range(60))
    def test_rewriting_invariants(self, seed):
        q = random_query(seed)
        base_length = query_length(q)
        for symbol in sorted(q.symbols):
            for value in (False, True):
                rewritten = q.set_symbol(symbol, value)
                # (1) the symbol disappears
                assert symbol not in rewritten.symbols
                if rewritten.is_constant():
                    continue
                # (3) unsafety propagates upward
                if is_unsafe(rewritten):
                    assert is_unsafe(q)
                # (4) length is non-decreasing
                new_length = query_length(rewritten)
                if base_length is not None and new_length is not None:
                    assert new_length >= base_length


class TestDichotomyOnRandomQueries:
    """Safe random queries: the lifted evaluator agrees with exact WMC
    on random GFOMC databases."""

    def _tid(self, q, seed):
        rng = random.Random(seed)
        U, V = ["u1", "u2"], ["v1"]
        values = [F(0), F(1, 2), F(1)]
        probs = {}
        for u in U:
            probs[r_tuple(u)] = rng.choice(values)
        for v in V:
            probs[t_tuple(v)] = rng.choice(values)
        for s in sorted(q.binary_symbols):
            for u in U:
                for v in V:
                    probs[s_tuple(s, u, v)] = rng.choice(values)
        return TID(U, V, probs)

    @pytest.mark.parametrize("seed", range(40))
    def test_cross_check(self, seed):
        q = random_query(seed, GeneratorConfig(n_symbols=3,
                                               max_clauses=3))
        tid = self._tid(q, seed)
        result = evaluate(q, tid, method="cross-check")
        assert 0 <= result.value <= 1
        assert result.safe == is_safe(q)

    def test_unsafe_fraction_sane(self):
        """Census shape: both classes are populated in a random sweep."""
        queries = random_queries(200)
        unsafe = sum(1 for q in queries if is_unsafe(q))
        assert 0 < unsafe < len(queries)
