"""Lemma 1.1: non-root assignments in {c1, c2, c3} (experiment E1)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.lemma11 import (
    PROBABILITY_VALUES,
    find_nonroot_assignment,
    verify_lemma11,
)
from repro.algebra.polynomials import Polynomial

x = Polynomial.variable("x")
y = Polynomial.variable("y")


class TestBasics:
    def test_constant(self):
        assert find_nonroot_assignment(Polynomial.constant(3)) == {}

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            find_nonroot_assignment(Polynomial.zero())

    def test_degree_three_raises(self):
        with pytest.raises(ValueError):
            find_nonroot_assignment(x ** 3)

    def test_too_few_values_raises(self):
        with pytest.raises(ValueError):
            find_nonroot_assignment(x, values=[Fraction(0), Fraction(1)])

    def test_single_variable(self):
        # x(1-x) vanishes at 0 and 1; only 1/2 survives.
        p = x * (1 - x)
        assignment = find_nonroot_assignment(p)
        assert assignment == {"x": Fraction(1, 2)}

    def test_needs_zero(self):
        # (x - 1/2)(x - 1) vanishes at 1/2 and 1; only 0 survives.
        p = (x - Fraction(1, 2)) * (x - 1)
        assert find_nonroot_assignment(p) == {"x": Fraction(0)}

    def test_two_variables(self):
        p = x * (1 - x) * y * (1 - y)
        a = find_nonroot_assignment(p)
        assert p.evaluate(a) != 0

    def test_custom_values(self):
        values = [Fraction(1, 3), Fraction(2, 3), Fraction(1, 5)]
        p = (x - Fraction(1, 3)) * (x - Fraction(2, 3))
        a = find_nonroot_assignment(p, values=values)
        assert a["x"] == Fraction(1, 5)

    def test_values_in_allowed_set(self):
        p = (x + y) * (x - y) + x * y
        a = find_nonroot_assignment(p)
        assert set(a.values()) <= set(PROBABILITY_VALUES)


@st.composite
def degree2_polynomials(draw):
    """Random non-zero polynomials with per-variable degree <= 2."""
    variables = ["x", "y", "z"][: draw(st.integers(1, 3))]
    terms = {}
    for _ in range(draw(st.integers(1, 5))):
        mono = tuple((v, draw(st.integers(1, 2)))
                     for v in variables if draw(st.booleans()))
        coeff = draw(st.integers(-4, 4))
        if coeff:
            terms[mono] = terms.get(mono, Fraction(0)) + coeff
    poly = Polynomial(terms)
    return poly


class TestLemma11Property:
    @given(degree2_polynomials())
    @settings(max_examples=150, deadline=None)
    def test_lemma_holds(self, poly):
        if poly.is_zero():
            return
        assert verify_lemma11(poly)

    @given(degree2_polynomials())
    @settings(max_examples=80, deadline=None)
    def test_lemma_with_custom_constant(self, poly):
        """The remark after Theorem 2.2: {0, c, 1} works for any c."""
        if poly.is_zero():
            return
        values = [Fraction(0), Fraction(1, 3), Fraction(1)]
        assignment = find_nonroot_assignment(poly, values=values)
        full = {v: assignment.get(v, values[0]) for v in poly.variables()}
        assert poly.evaluate(full) != 0
