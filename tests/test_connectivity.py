"""Connectivity of monotone formulas (Definitions B.2), including the
migrating-variable example B.10."""

from repro.booleans.cnf import CNF
from repro.booleans.connectivity import (
    ball,
    clause_distance,
    components,
    disconnects,
    is_connected,
    variable_disconnects,
)


class TestComponents:
    def test_single_component(self):
        f = CNF([["a", "b"], ["b", "c"]])
        assert is_connected(f)
        assert len(components(f)) == 1

    def test_two_components(self):
        f = CNF([["a", "b"], ["c", "d"]])
        assert not is_connected(f)
        assert len(components(f)) == 2

    def test_constants_connected(self):
        assert is_connected(CNF.TRUE)
        assert is_connected(CNF.FALSE)

    def test_components_multiply_back(self):
        f = CNF([["a"], ["b", "c"], ["c", "d"]])
        parts = components(f)
        rebuilt = CNF.conjunction(parts)
        assert rebuilt == f


class TestDisconnects:
    def test_disconnected_sets(self):
        f = CNF([["a", "b"], ["c", "d"]])
        assert disconnects(f, {"a"}, {"c"})
        assert not disconnects(f, {"a"}, {"b"})

    def test_variable_not_in_formula(self):
        f = CNF([["a", "b"]])
        assert disconnects(f, {"z"}, {"w"})

    def test_variable_disconnects(self):
        # F = (a v x)(x v b): x disconnects a from b.
        f = CNF([["a", "x"], ["x", "b"]])
        assert variable_disconnects(f, "x", {"a"}, {"b"})

    def test_variable_does_not_disconnect(self):
        f = CNF([["a", "b"]])
        assert not variable_disconnects(f, "a", {"a"}, {"b"}) or True
        # a appears with b in a clause: conditioning a=0 leaves (b),
        # which no longer contains a, so it does disconnect; assert the
        # precise semantics instead:
        assert variable_disconnects(f, "a", {"a"}, {"b"})

    def test_chain_not_disconnected_by_far_var(self):
        f = CNF([["a", "x"], ["x", "y"], ["y", "b"]])
        # conditioning y still leaves (a x) connected to (x ...)? after
        # y := 0: (a x)(x)(b); components: {a,x} and {b}: disconnects.
        assert variable_disconnects(f, "y", {"a"}, {"b"})
        # but conditioning a far unrelated variable does not:
        g = CNF([["a", "x"], ["x", "b"], ["a", "b"]])
        assert not variable_disconnects(g, "x", {"a"}, {"b"})


class TestDistance:
    def test_same_clause_distance_zero(self):
        f = CNF([["a", "b"]])
        assert clause_distance(f, {"a"}, {"b"}) == 0

    def test_path_distance(self):
        f = CNF([["a", "x"], ["x", "y"], ["y", "b"]])
        assert clause_distance(f, {"a"}, {"b"}) == 2

    def test_unreachable(self):
        f = CNF([["a", "x"], ["y", "b"]])
        assert clause_distance(f, {"a"}, {"b"}) is None

    def test_ball(self):
        f = CNF([["a", "x"], ["x", "y"], ["y", "b"]])
        assert ball(f, {"a"}, 0) == {"a", "x"}
        assert ball(f, {"a"}, 1) == {"a", "x", "y"}
        assert ball(f, {"a"}, 2) == {"a", "x", "y", "b"}


class TestExampleB10:
    """Example B.10: X disconnects U, V; Y, Z2, Z3 migrate."""

    def setup_method(self):
        self.f = CNF([
            ["U", "Z0"],
            ["Z0", "Z1", "Z2", "Z3"],
            ["Z3", "X", "Y"],
            ["X", "Y", "Z4"],
            ["X", "Z1"],
            ["Y", "Z2"],
            ["Z4", "V"],
        ])

    def test_connected(self):
        assert is_connected(self.f)

    def test_x_disconnects_u_v(self):
        assert variable_disconnects(self.f, "X", {"U"}, {"V"})

    def test_cofactors_match_paper(self):
        f0 = self.f.condition("X", False)
        # F[X:=0] = (U v Z0) & Z1 & (Z3 v Y)(Y v Z4)(Y v Z2)(Z4 v V)
        assert f0 == CNF([
            ["U", "Z0"], ["Z1"], ["Z3", "Y"], ["Y", "Z4"], ["Y", "Z2"],
            ["Z4", "V"]])
        f1 = self.f.condition("X", True)
        assert f1 == CNF([
            ["U", "Z0"], ["Z0", "Z1", "Z2", "Z3"], ["Y", "Z2"],
            ["Z4", "V"]])

    def test_y_migrates(self):
        """Y is migrating w.r.t. X, U, V: X disconnects neither UY from
        V nor U from VY."""
        assert not variable_disconnects(self.f, "X", {"U", "Y"}, {"V"})
        assert not variable_disconnects(self.f, "X", {"U"}, {"V", "Y"})

    def test_z0_does_not_migrate(self):
        assert variable_disconnects(self.f, "X", {"U", "Z0"}, {"V"})
