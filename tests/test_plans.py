"""Safe plans — repro.tid.plans."""

import random
from fractions import Fraction

import pytest

from repro.core import catalog
from repro.core.clauses import Clause
from repro.core.generate import GeneratorConfig, random_query
from repro.core.queries import Query, query
from repro.core.safety import is_safe
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.lifted import UnsafeQueryError, lifted_probability
from repro.tid.plans import safe_plan
from repro.tid.wmc import probability

F = Fraction


def build_tid(q, seed, n_left=2, n_right=2):
    rng = random.Random(seed)
    U = [f"u{i}" for i in range(n_left)]
    V = [f"v{j}" for j in range(n_right)]
    values = [F(0), F(1, 3), F(1, 2), F(1)]
    probs = {}
    for u in U:
        probs[r_tuple(u)] = rng.choice(values)
    for v in V:
        probs[t_tuple(v)] = rng.choice(values)
    for s in sorted(q.binary_symbols):
        for u in U:
            for v in V:
                probs[s_tuple(s, u, v)] = rng.choice(values)
    return TID(U, V, probs)


SAFE_QUERIES = [
    ("left-only", catalog.safe_left_only()),
    ("disconnected", catalog.safe_disconnected()),
    ("middle-only", query(Clause.middle("S1", "S2"))),
    ("right type2", query(Clause.right_type2(["S1"], ["S2"]),
                          Clause.middle("S1", "S2"))),
    ("unary-only", query(Clause.unary_only("R"))),
    ("two type2 left", query(Clause.left_type2(["S1"], ["S2"]),
                             Clause.left_type2(["S1"], ["S3"]),
                             Clause.middle("S1", "S2", "S3"))),
]


class TestCompilation:
    @pytest.mark.parametrize("name,q", SAFE_QUERIES)
    def test_plan_matches_lifted(self, name, q):
        plan = safe_plan(q)
        for seed in range(4):
            tid = build_tid(q, seed)
            assert plan.evaluate(tid) == lifted_probability(q, tid), \
                (name, seed)

    @pytest.mark.parametrize("name,q", SAFE_QUERIES[:3])
    def test_plan_matches_wmc(self, name, q):
        plan = safe_plan(q)
        tid = build_tid(q, 9)
        assert plan.evaluate(tid) == probability(q, tid)

    def test_unsafe_rejected(self):
        with pytest.raises(UnsafeQueryError):
            safe_plan(catalog.rst_query())

    def test_h0_rejected(self):
        with pytest.raises(UnsafeQueryError):
            safe_plan(catalog.h0())

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            safe_plan(Query.TRUE)


class TestPlanShape:
    def test_components_count(self):
        plan = safe_plan(catalog.safe_disconnected())
        assert len(plan.components) == 2

    def test_describe_mentions_structure(self):
        plan = safe_plan(catalog.safe_left_only())
        text = plan.describe()
        assert "independent-join" in text
        assert "prod_{u in U}" in text
        assert "shannon(R)" in text

    def test_type2_plan_uses_inclusion_exclusion(self):
        q = query(Clause.left_type2(["S1"], ["S2"]),
                  Clause.middle("S1", "S3"))
        text = safe_plan(q).describe()
        assert "incl-excl" in text

    def test_right_component_iterates_v(self):
        q = query(Clause.right_type1("S1"))
        text = safe_plan(q).describe()
        assert "prod_{v in V}" in text


class TestRandomSafeQueries:
    @pytest.mark.parametrize("seed", range(30))
    def test_plan_agrees_on_random_queries(self, seed):
        q = random_query(seed, GeneratorConfig(n_symbols=3,
                                               max_clauses=3))
        if not is_safe(q) or q.full_clauses:
            return
        plan = safe_plan(q)
        tid = build_tid(q, seed, n_left=2, n_right=1)
        assert plan.evaluate(tid) == lifted_probability(q, tid)

    def test_plan_is_reusable_across_databases(self):
        q = catalog.safe_left_only()
        plan = safe_plan(q)
        values = {plan.evaluate(build_tid(q, seed)) for seed in range(6)}
        assert len(values) > 1  # genuinely depends on the data
