"""Circuit serialization, the content-addressed store, and the
two-tier compilation cache."""

from fractions import Fraction

import pytest

from repro.booleans.circuit import (
    Circuit,
    FORMAT_VERSION,
    compile_cnf,
    decode_token,
    encode_token,
)
from repro.booleans.cnf import CNF
from repro.booleans.store import CircuitStore, cnf_fingerprint
from repro.core.catalog import rst_query
from repro.reduction.blocks import path_block
from repro.tid import wmc
from repro.tid.lineage import lineage

F = Fraction


def block_formula(p=3):
    query = rst_query()
    tid = path_block(query, p)
    return lineage(query, tid), tid


@pytest.fixture(autouse=True)
def isolated_cache():
    """Every test starts from a cold tier-1 cache and no disk store."""
    wmc.clear_circuit_cache()
    wmc.set_circuit_store(None)
    yield
    wmc.set_circuit_store(None)
    wmc.clear_circuit_cache()


class TestTokenCodec:
    @pytest.mark.parametrize("token", [
        "a", "", "S1", 0, -7, True, False, None,
        ("R", "u"), ("S1", "u", "v"), ("nested", ("deep", 3), None),
        (), ("mixed", 1, True, ""),
    ])
    def test_round_trip_exact(self, token):
        decoded = decode_token(encode_token(token))
        assert decoded == token
        assert type(decoded) is type(token)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="cannot serialize"):
            encode_token(object())

    def test_bool_int_not_confused(self):
        assert decode_token(encode_token(True)) is True
        assert decode_token(encode_token(1)) == 1
        assert decode_token(encode_token(1)) is not True


class TestSerialization:
    def test_node_table_identical(self):
        formula, _ = block_formula()
        circuit = compile_cnf(formula)
        clone = Circuit.from_bytes(circuit.to_bytes())
        assert clone.nodes == circuit.nodes
        assert clone.root == circuit.root

    def test_every_query_bit_identical(self):
        """probability, model_count, and marginals all round-trip to
        bit-identical Fractions — the acceptance bar for persistence."""
        formula, tid = block_formula()
        circuit = compile_cnf(formula)
        clone = Circuit.from_bytes(circuit.to_bytes())
        weights = {var: F(i + 1, len(formula.variables()) + 2)
                   for i, var in enumerate(
                       sorted(formula.variables(), key=repr))}
        assert clone.probability(weights) == \
            circuit.probability(weights)
        assert clone.probability(tid.probability) == \
            circuit.probability(tid.probability)
        assert clone.model_count(formula.variables()) == \
            circuit.model_count(formula.variables())
        assert clone.marginals(weights) == circuit.marginals(weights)

    def test_serialization_is_deterministic(self):
        formula, _ = block_formula()
        circuit = compile_cnf(formula)
        assert circuit.to_bytes() == circuit.to_bytes()
        assert Circuit.from_bytes(circuit.to_bytes()).to_bytes() == \
            circuit.to_bytes()

    def test_hash_equal_tokens_stay_distinct(self):
        """True and 1 are hash-equal, so naive dict interning would
        collapse them; a hand-built circuit using both as variables
        must round-trip to the same probabilities."""
        from repro.booleans.circuit import AND, LEAF

        circuit = Circuit(
            ((LEAF, True), (LEAF, 1), (AND, (0, 1))), 2)
        clone = Circuit.from_bytes(circuit.to_bytes())
        assert clone.nodes == circuit.nodes
        def lookup(var):
            # A dict can't hold both keys (True == 1), so dispatch on
            # the token's type explicitly.
            if var is True:
                return F(1, 3)
            if type(var) is int and var == 1:
                return F(1, 5)
            raise AssertionError(var)

        assert clone.probability(lookup) == circuit.probability(lookup)
        assert clone.probability(lookup) == F(1, 15)

    def test_constant_circuits(self):
        for formula in (CNF.TRUE, CNF.FALSE):
            circuit = compile_cnf(formula)
            clone = Circuit.from_bytes(circuit.to_bytes())
            assert clone.probability({}) == circuit.probability({})

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a serialized"):
            Circuit.from_bytes(b"garbage")
        with pytest.raises(ValueError, match="not a serialized"):
            Circuit.from_bytes(b'{"format":"something-else"}\n')

    def test_rejects_future_version(self):
        formula, _ = block_formula(p=1)
        data = compile_cnf(formula).to_bytes()
        bumped = data.replace(
            f'"version":{FORMAT_VERSION}'.encode(),
            f'"version":{FORMAT_VERSION + 1}'.encode(), 1)
        with pytest.raises(ValueError, match="unsupported"):
            Circuit.from_bytes(bumped)

    def test_rejects_truncation(self):
        formula, _ = block_formula(p=1)
        data = compile_cnf(formula).to_bytes()
        truncated = b"\n".join(data.splitlines()[:-2]) + b"\n"
        with pytest.raises(ValueError, match="truncated"):
            Circuit.from_bytes(truncated)

    def test_malformed_payloads_raise_valueerror_not_leaks(self):
        """Every corruption shape must surface as ValueError — a
        leaked KeyError/IndexError/TypeError would blow through the
        store's corruption-as-miss handling."""
        payloads = [
            # header missing the variable table
            b'{"format":"repro-ddnnf","version":1,"root":0,'
            b'"nodes":1}\n["leaf",0]\n',
            # leaf variable id beyond the table
            b'{"format":"repro-ddnnf","version":1,"root":0,'
            b'"nodes":1,"variables":[["s","a"]]}\n["leaf",5]\n',
            # negative variable id must not wrap around
            b'{"format":"repro-ddnnf","version":1,"root":2,'
            b'"nodes":3,"variables":[["s","a"]]}\n["true"]\n'
            b'["false"]\n["ite",-1,0,1]\n',
            # wrong arity node line
            b'{"format":"repro-ddnnf","version":1,"root":0,'
            b'"nodes":1,"variables":[]}\n["ite"]\n',
            # non-integer (float) ITE child index must fail at load,
            # not crash later inside probability()
            b'{"format":"repro-ddnnf","version":1,"root":2,'
            b'"nodes":3,"variables":[["s","a"]]}\n["true"]\n'
            b'["false"]\n["ite",0,1.0,0]\n',
            # non-integer child id
            b'{"format":"repro-ddnnf","version":1,"root":1,'
            b'"nodes":2,"variables":[]}\n["true"]\n'
            b'["and",["x"]]\n',
            # malformed variable table entry
            b'{"format":"repro-ddnnf","version":1,"root":0,'
            b'"nodes":1,"variables":[["q"]]}\n["leaf",0]\n',
        ]
        for payload in payloads:
            with pytest.raises(ValueError):
                Circuit.from_bytes(payload)


class TestFingerprint:
    def test_order_independent(self):
        a = CNF([["x", "y"], ["y", "z"]])
        b = CNF([["z", "y"], ["y", "x"]])
        assert a == b
        assert cnf_fingerprint(a) == cnf_fingerprint(b)

    def test_distinct_formulas_distinct_keys(self):
        a = CNF([["x", "y"]])
        b = CNF([["x"], ["y"]])
        assert cnf_fingerprint(a) != cnf_fingerprint(b)

    def test_tuple_tokens(self):
        formula, _ = block_formula(p=1)
        key = cnf_fingerprint(formula)
        assert len(key) == 64
        assert key == cnf_fingerprint(
            CNF(list(formula.clauses)))


class TestCircuitStore:
    def test_put_get_round_trip(self, tmp_path):
        formula, tid = block_formula()
        circuit = compile_cnf(formula)
        store = CircuitStore(tmp_path / "store")
        store.put(formula, circuit)
        assert formula in store
        assert len(store) == 1
        loaded = store.get(formula)
        assert loaded.nodes == circuit.nodes
        assert loaded.probability(tid.probability) == \
            circuit.probability(tid.probability)

    def test_miss_returns_none(self, tmp_path):
        store = CircuitStore(tmp_path / "store")
        assert store.get(CNF([["a"]])) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        formula, _ = block_formula(p=1)
        store = CircuitStore(tmp_path / "store")
        path = store.put(formula, compile_cnf(formula))
        path.write_bytes(b"corrupted beyond repair")
        assert store.get(formula) is None
        assert not path.exists()

    def test_clear(self, tmp_path):
        store = CircuitStore(tmp_path / "store")
        formula = CNF([["a", "b"]])
        store.put(formula, compile_cnf(formula))
        store.clear()
        assert len(store) == 0

    def test_wrong_version_entry_is_miss_but_kept(self, tmp_path):
        """Version skew is not corruption: a reader on another format
        version must not destroy the entry for its writer."""
        formula, _ = block_formula(p=1)
        store = CircuitStore(tmp_path / "store")
        path = store.put(formula, compile_cnf(formula))
        data = path.read_bytes().replace(
            f'"version":{FORMAT_VERSION}'.encode(),
            f'"version":{FORMAT_VERSION + 1}'.encode(), 1)
        path.write_bytes(data)
        assert store.get(formula) is None
        assert path.exists()


class TestTwoTierCache:
    def test_disk_store_skips_recompilation(self, tmp_path):
        formula, tid = block_formula()
        wmc.set_circuit_store(str(tmp_path / "store"))
        first = wmc.compiled(formula)
        assert wmc.cache_info()["compiles"] == 1
        value = first.probability(tid.probability)

        wmc.clear_circuit_cache()  # new process, warm disk
        second = wmc.compiled(formula)
        info = wmc.cache_info()
        assert info["compiles"] == 0
        assert info["store_hits"] == 1
        assert second.nodes == first.nodes
        assert second.probability(tid.probability) == value
        # Promotion: now cached in memory.
        wmc.compiled(formula)
        assert wmc.cache_info()["hits"] == 1

    def test_adopt_skips_compilation(self):
        formula, _ = block_formula(p=2)
        circuit = compile_cnf(formula)
        wmc.adopt(formula, Circuit.from_bytes(circuit.to_bytes()))
        assert wmc.compiled(formula).nodes == circuit.nodes
        info = wmc.cache_info()
        assert info["compiles"] == 0
        assert info["hits"] == 1

    def test_readopt_does_not_double_count_nodes(self):
        """Replacing a cached entry must swap its size, not add it
        again — otherwise repeated adopt/compile cycles inflate the
        node accounting and trigger premature eviction."""
        formula, _ = block_formula(p=2)
        circuit = wmc.compiled(formula)
        assert wmc.cache_info()["nodes"] == circuit.size
        for _ in range(3):
            wmc.adopt(formula, circuit)
        info = wmc.cache_info()
        assert info["entries"] == 1
        assert info["nodes"] == circuit.size

    def test_eviction_bounded_by_nodes(self):
        wmc.set_cache_limits(max_nodes=30, max_entries=1024)
        try:
            for i in range(12):
                wmc.compiled(CNF([[f"x{i}", f"y{i}"],
                                  [f"y{i}", f"z{i}"]]))
            info = wmc.cache_info()
            assert info["nodes"] <= 30
            assert info["entries"] < 12
        finally:
            wmc.set_cache_limits(max_nodes=4_000_000,
                                 max_entries=1024)

    def test_newest_entry_survives_even_when_oversized(self):
        wmc.set_cache_limits(max_nodes=2, max_entries=1024)
        try:
            formula, _ = block_formula(p=2)
            circuit = wmc.compiled(formula)
            assert circuit.size > 2
            assert wmc.cache_info()["entries"] == 1
            assert wmc.compiled(formula) is circuit  # still cached
        finally:
            wmc.set_cache_limits(max_nodes=4_000_000,
                                 max_entries=1024)

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            wmc.set_cache_limits(max_nodes=0)
        with pytest.raises(ValueError):
            wmc.set_cache_limits(max_entries=-1)

    def test_unwritable_store_does_not_fail_compilation(self, tmp_path):
        """Write-through is best-effort like the read side: a store
        that cannot be written must not crash a query whose
        compilation already succeeded."""
        import os
        import stat

        store_dir = tmp_path / "store"
        store_dir.mkdir()
        wmc.clear_circuit_cache()
        wmc.set_circuit_store(str(store_dir))
        os.chmod(store_dir, stat.S_IRUSR | stat.S_IXUSR)
        try:
            circuit = wmc.compiled(CNF([["a", "b"], ["b", "c"]]))
            assert circuit.size > 2
            assert wmc.cache_info()["compiles"] == 1
        finally:
            os.chmod(store_dir, stat.S_IRWXU)
            wmc.set_circuit_store(None)
            wmc.clear_circuit_cache()


class TestTapeSidecar:
    def test_put_get_round_trip(self, tmp_path):
        from repro.booleans.tape import flatten_circuit

        formula, tid = block_formula()
        circuit = compile_cnf(formula)
        tape = flatten_circuit(circuit)
        store = CircuitStore(tmp_path / "store")
        path = store.put_tape(formula, tape)
        assert path.exists()
        loaded = store.get_tape(formula)
        assert loaded.to_bytes() == tape.to_bytes()
        assert loaded.matches(circuit)
        assert loaded.evaluate([tid.probability]) == \
            tape.evaluate([tid.probability])

    def test_miss_returns_none(self, tmp_path):
        store = CircuitStore(tmp_path / "store")
        assert store.get_tape(CNF([["a"]])) is None

    def test_corrupt_tape_is_a_miss_and_removed(self, tmp_path):
        from repro.booleans.tape import flatten_circuit

        formula, _ = block_formula(p=1)
        store = CircuitStore(tmp_path / "store")
        path = store.put_tape(formula,
                              flatten_circuit(compile_cnf(formula)))
        path.write_bytes(b"corrupted beyond repair")
        assert store.get_tape(formula) is None
        assert not path.exists()

    def test_wrong_version_tape_is_miss_but_kept(self, tmp_path):
        from repro.booleans.tape import (
            TAPE_FORMAT_VERSION,
            flatten_circuit,
        )

        formula, _ = block_formula(p=1)
        store = CircuitStore(tmp_path / "store")
        path = store.put_tape(formula,
                              flatten_circuit(compile_cnf(formula)))
        data = path.read_bytes().replace(
            f'"version":{TAPE_FORMAT_VERSION}'.encode(),
            f'"version":{TAPE_FORMAT_VERSION + 1}'.encode(), 1)
        path.write_bytes(data)
        assert store.get_tape(formula) is None
        assert path.exists()

    def test_warm_store_never_reflattens(self, tmp_path):
        """The PR 6 service contract: ensure_tape on a warm store
        adopts the persisted sidecar — zero flattens in the new
        process."""
        from repro.booleans.tape import peek_tape

        formula, tid = block_formula()
        wmc.set_circuit_store(str(tmp_path / "store"))
        circuit = wmc.compiled(formula)
        tape = wmc.ensure_tape(formula, circuit)
        expected = tape.evaluate([tid.probability], numeric="float")
        assert wmc.cache_info()["tape_flattens"] == 1

        wmc.clear_circuit_cache()  # new process, warm disk
        warm_circuit = wmc.compiled(formula)
        warm_tape = wmc.ensure_tape(formula, warm_circuit)
        info = wmc.cache_info()
        assert info["compiles"] == 0
        assert info["tape_flattens"] == 0
        assert peek_tape(warm_circuit) is warm_tape
        assert warm_tape.to_bytes() == tape.to_bytes()
        assert warm_tape.evaluate([tid.probability],
                                  numeric="float") == expected

    def test_ensure_tape_writes_sidecar_once(self, tmp_path):
        formula, _ = block_formula(p=2)
        store = CircuitStore(tmp_path / "store")
        wmc.set_circuit_store(str(tmp_path / "store"))
        circuit = wmc.compiled(formula)
        wmc.ensure_tape(formula, circuit)
        sidecar = store.tape_path_for(cnf_fingerprint(formula))
        assert sidecar.exists()
        stamp = sidecar.stat().st_mtime_ns
        wmc.ensure_tape(formula, circuit)  # attached: no rewrite
        assert sidecar.stat().st_mtime_ns == stamp


class TestPrune:
    def _populate(self, tmp_path, count=4, p_values=(1, 2, 3)):
        from repro.booleans.tape import flatten_circuit

        store = CircuitStore(tmp_path / "store")
        paths = []
        for p in p_values:
            formula, _ = block_formula(p=p)
            circuit = compile_cnf(formula)
            paths.append(store.put(formula, circuit))
            paths.append(store.put_tape(formula,
                                        flatten_circuit(circuit)))
        return store, paths

    def test_prune_keeps_store_under_budget(self, tmp_path):
        store, paths = self._populate(tmp_path)
        total = sum(p.stat().st_size for p in paths)
        report = store.prune(max_bytes=total // 2)
        assert report["bytes_before"] == total
        assert report["bytes_after"] <= total // 2
        assert report["examined"] == len(paths)
        assert report["removed"] >= 1
        remaining = sum(p.stat().st_size
                        for p in paths if p.exists())
        assert remaining == report["bytes_after"]

    def test_prune_evicts_oldest_atime_first(self, tmp_path):
        import os

        store, _ = self._populate(tmp_path)
        entries = sorted(store.root.glob("??/*"), key=str)
        # Make the first circuit+tape pair clearly the coldest.
        for i, path in enumerate(entries):
            stamp = 1_000_000_000 + i * 1000
            os.utime(path, (stamp, stamp))
        cold = entries[0]
        hot = entries[-1]
        budget = sum(p.stat().st_size for p in entries) \
            - cold.stat().st_size
        store.prune(max_bytes=budget)
        assert not cold.exists()
        assert hot.exists()

    def test_evicting_a_circuit_takes_its_tape_sidecar(self, tmp_path):
        import os

        from repro.booleans.store import SUFFIX, TAPE_SUFFIX

        store, _ = self._populate(tmp_path)
        circuits = sorted(store.root.glob(f"??/*{SUFFIX}"), key=str)
        # Age one circuit far below everything else; leave its tape
        # sidecar hot — eviction must still take them together.
        victim = circuits[0]
        os.utime(victim, (1, 1))
        sidecar = victim.parent / (
            victim.name[: -len(SUFFIX)] + TAPE_SUFFIX)
        assert sidecar.exists()
        total = sum(p.stat().st_size
                    for p in store.root.glob("??/*"))
        store.prune(max_bytes=total - victim.stat().st_size)
        assert not victim.exists()
        assert not sidecar.exists()

    def test_prune_to_zero_empties_the_store(self, tmp_path):
        store, paths = self._populate(tmp_path)
        report = store.prune(max_bytes=0)
        assert report["bytes_after"] == 0
        assert not any(p.exists() for p in paths)

    def test_prune_noop_when_under_budget(self, tmp_path):
        store, paths = self._populate(tmp_path)
        total = sum(p.stat().st_size for p in paths)
        report = store.prune(max_bytes=total * 10)
        assert report["removed"] == 0
        assert all(p.exists() for p in paths)

    def test_negative_budget_rejected(self, tmp_path):
        store = CircuitStore(tmp_path / "store")
        with pytest.raises(ValueError, match="max_bytes"):
            store.prune(max_bytes=-1)


class TestStoreHitTouchesAtime:
    """Regression: ``relatime``/``noatime`` mounts (the Linux default)
    do not update ``st_atime`` on reads, so ``prune``'s oldest-atime
    order degenerated to oldest-*write* and evicted the hottest
    circuits.  Store hits now explicitly ``os.utime`` the entry; the
    injected clock makes the bump observable without real reads."""

    def test_circuit_hit_bumps_atime_preserves_mtime(self, tmp_path):
        import os

        formula, _ = block_formula(p=2)
        now = [1_000_000_000.0]
        store = CircuitStore(tmp_path / "store",
                             clock=lambda: now[0])
        path = store.put(formula, compile_cnf(formula))
        os.utime(path, (5.0, 5.0))
        now[0] = 2_000_000_000.0
        assert store.get(formula) is not None
        stat = path.stat()
        assert stat.st_atime == pytest.approx(2_000_000_000.0)
        assert stat.st_mtime == pytest.approx(5.0)

    def test_tape_hit_bumps_atime(self, tmp_path):
        import os

        from repro.booleans.tape import flatten_circuit

        formula, _ = block_formula(p=2)
        now = [1_000_000_000.0]
        store = CircuitStore(tmp_path / "store",
                             clock=lambda: now[0])
        circuit = compile_cnf(formula)
        store.put(formula, circuit)
        path = store.put_tape(formula, flatten_circuit(circuit))
        os.utime(path, (5.0, 5.0))
        now[0] = 3_000_000_000.0
        assert store.get_tape(formula) is not None
        assert path.stat().st_atime == pytest.approx(
            3_000_000_000.0)

    def test_read_entries_survive_prune_on_relatime_mounts(
            self, tmp_path):
        import os

        from repro.booleans.tape import flatten_circuit

        now = [1_000.0]
        store = CircuitStore(tmp_path / "store",
                             clock=lambda: now[0])
        formulas = [block_formula(p=p)[0] for p in (1, 2, 3)]
        for formula in formulas:
            circuit = compile_cnf(formula)
            store.put(formula, circuit)
            store.put_tape(formula, flatten_circuit(circuit))
        # Simulate a relatime mount's steady state: every atime is
        # frozen at write order, making the first-written pair look
        # coldest even though it is about to be the hottest.
        for index, formula in enumerate(formulas):
            key = cnf_fingerprint(formula)
            stamp = float((index + 1) * 100)
            for path in (store.path_for(key),
                         store.tape_path_for(key)):
                os.utime(path, (stamp, stamp))
        hot = formulas[0]
        now[0] = 4_000.0
        assert store.get(hot) is not None
        assert store.get_tape(hot) is not None
        hot_key = cnf_fingerprint(hot)
        victim_key = cnf_fingerprint(formulas[1])
        victim_bytes = (
            store.path_for(victim_key).stat().st_size
            + store.tape_path_for(victim_key).stat().st_size)
        total = sum(path.stat().st_size
                    for path in store.root.glob("??/*"))
        store.prune(max_bytes=total - victim_bytes)
        # Without the hit-touch the read pair (oldest frozen atime)
        # would have been evicted here.
        assert store.path_for(hot_key).exists()
        assert store.tape_path_for(hot_key).exists()
        assert not store.path_for(victim_key).exists()


class TestAtomicWrites:
    def test_atomic_write_bytes_basic(self, tmp_path):
        from repro.booleans.store import atomic_write_bytes

        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"first")
        assert target.read_bytes() == b"first"
        atomic_write_bytes(target, b"second")
        assert target.read_bytes() == b"second"
        # No temp-file litter survives a successful publish.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_atomic_write_bytes_relative_path(self, tmp_path,
                                              monkeypatch):
        from repro.booleans.store import atomic_write_bytes

        monkeypatch.chdir(tmp_path)
        atomic_write_bytes("bare-name.bin", b"data")
        assert (tmp_path / "bare-name.bin").read_bytes() == b"data"

    def test_concurrent_writers_never_expose_a_torn_file(
            self, tmp_path):
        """Many threads hammering the same key (two service workers,
        or service + CLI) while a reader polls: every load returns a
        complete circuit — one of the writers' payloads — or a clean
        pre-first-write miss, never a torn/corrupt blob."""
        import threading

        formula_a, _ = block_formula(p=2)
        formula_b, _ = block_formula(p=3)
        circuit_a = compile_cnf(formula_a)
        circuit_b = compile_cnf(formula_b)
        valid = {circuit_a.to_bytes(), circuit_b.to_bytes()}
        store = CircuitStore(tmp_path)
        key = "ab" + "0" * 62
        stop = threading.Event()
        failures = []

        def writer(circuit):
            while not stop.is_set():
                store.save(key, circuit)

        def reader():
            seen = 0
            while seen < 200 and not failures:
                existed = store.path_for(key).exists()
                loaded = store.load(key)
                if loaded is None:
                    # Only legitimate before the first publish: once
                    # the blob exists, atomic replacement means every
                    # read sees a complete payload (a None here would
                    # be a torn read, which load() deletes).
                    if existed:
                        failures.append("miss after first publish")
                    continue
                if loaded.to_bytes() not in valid:
                    failures.append("foreign payload")
                seen += 1
            stop.set()

        threads = [threading.Thread(target=writer, args=(c,))
                   for c in (circuit_a, circuit_b) for _ in range(2)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert failures == []
        # The final state is a complete circuit, and no temp litter.
        assert store.load(key).to_bytes() in valid
        assert list(tmp_path.glob("**/*.tmp")) == []
