"""Cross-module integration tests: the dichotomy in action (E13),
generalized model counting through the hardness pipeline, and the
paper's headline claims exercised end to end."""

import random
from fractions import Fraction

import pytest

from repro import (
    P2CNF,
    Query,
    is_final,
    is_safe,
    is_unsafe,
    lifted_probability,
    probability,
    probability_brute,
)
from repro.core import catalog
from repro.core.final import find_final
from repro.core.safety import query_length, query_type
from repro.counting.problems import GFOMC_VALUES, gfomc
from repro.reduction.blocks import path_block
from repro.reduction.type1 import Type1Reduction
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple

F = Fraction
GFOMC_LIST = [F(0), F(1, 2), F(1)]


def random_gfomc_tid(query, U, V, seed):
    rng = random.Random(seed)
    probs = {}
    for u in U:
        probs[r_tuple(u)] = rng.choice(GFOMC_LIST)
    for v in V:
        probs[t_tuple(v)] = rng.choice(GFOMC_LIST)
    for s in sorted(query.binary_symbols):
        for u in U:
            for v in V:
                probs[s_tuple(s, u, v)] = rng.choice(GFOMC_LIST)
    return TID(U, V, probs, default=F(1))


class TestDichotomyCensus:
    """E13: classify the catalog; safe queries evaluate in PTIME and
    agree with the exponential engine, unsafe queries route to the
    hardness machinery."""

    @pytest.mark.parametrize("name,ctor,expect_unsafe", catalog.CENSUS)
    def test_classification_and_evaluation(self, name, ctor,
                                           expect_unsafe):
        q = ctor()
        assert is_unsafe(q) == expect_unsafe
        tid = random_gfomc_tid(q, ["u1", "u2"], ["v1"], seed=42)
        value = gfomc(q, tid)
        assert 0 <= value <= 1
        if is_safe(q):
            assert lifted_probability(q, tid) == value

    def test_every_unsafe_query_reaches_a_final_query(self):
        for name, ctor, expect_unsafe in catalog.CENSUS:
            q = ctor()
            if not expect_unsafe or q.full_clauses:
                continue
            final, _ = find_final(q)
            assert is_final(final), name

    def test_final_type1_queries_feed_the_reduction(self):
        phi = P2CNF(2, ((0, 1),))
        for name, ctor, expect_unsafe in catalog.CENSUS:
            q = ctor()
            if not expect_unsafe or q.full_clauses:
                continue
            final, _ = find_final(q)
            if query_type(final) == ("I", "I"):
                red = Type1Reduction(final)
                assert red.run(phi).model_count == 3, name


class TestThreeEvaluatorAgreement:
    """WMC, brute force and (when safe) the lifted evaluator agree."""

    @pytest.mark.parametrize("seed", range(5))
    def test_agreement(self, seed):
        rng = random.Random(seed)
        name, ctor, _ = catalog.CENSUS[seed % len(catalog.CENSUS)]
        q = ctor()
        if len(q.binary_symbols) > 4:
            return
        tid = random_gfomc_tid(q, ["u1", "u2"], ["v1"], seed)
        w = probability(q, tid)
        assert w == probability_brute(q, tid)
        if is_safe(q):
            assert w == lifted_probability(q, tid)


class TestBlockLineageFacts:
    def test_lemma_315_connectivity(self):
        """Lemma 3.15: for unsafe Type-I queries the block lineage
        Y^(p)(u,v) is connected."""
        from repro.booleans.connectivity import is_connected
        from repro.reduction.small_matrix import link_lineage
        for q in (catalog.rst_query(), catalog.path_query(2),
                  catalog.wide_final_query()):
            for p in (1, 2, 3):
                assert is_connected(link_lineage(q, p))

    def test_lemma_317_internal_variables_disconnect(self):
        """Lemma 3.17: conditioning any internal tuple of the link
        block disconnects the endpoint variables (final queries)."""
        from repro.booleans.connectivity import variable_disconnects
        from repro.reduction.small_matrix import link_lineage
        q = catalog.rst_query()
        formula = link_lineage(q, p=2)
        endpoints = ({r_tuple("u")}, {r_tuple("v")})
        for token in sorted(formula.variables(), key=repr):
            if token in (r_tuple("u"), r_tuple("v")):
                continue
            assert variable_disconnects(formula, token, *endpoints), token


class TestGeneralizedModelCountingPipeline:
    def test_gfomc_equals_scaled_count(self):
        """GFOMC probability x 2^{#half tuples} is the generalized
        model count — on a block database."""
        q = catalog.rst_query()
        tid = path_block(q, 2)
        pr = gfomc(q, tid)
        half_tuples = len(tid.uncertain_tuples())
        count = pr * F(2) ** half_tuples
        assert count.denominator == 1
        assert count > 0

    def test_probability_values_stay_gfomc(self):
        q = catalog.rst_query()
        red = Type1Reduction(q)
        phi = P2CNF(2, ((0, 1),))
        tid = red.reduction_database(phi, (1, 2))
        assert tid.restrict_check(GFOMC_VALUES)


class TestTheorem22Narrative:
    """The paper's main theorem, walked end to end for one query: an
    unsafe query, made final, drives a reduction that counts #P2CNF
    with oracle databases whose probabilities lie in {1/2, 1} only."""

    def test_full_story(self):
        q = catalog.intro_example()          # unsafe, not final
        assert is_unsafe(q) and not is_final(q)
        final, trace = find_final(q)         # Lemma 2.7 chain
        assert is_final(final)
        assert query_type(final) == ("I", "I")
        phi = P2CNF.path(3)
        red = Type1Reduction(final)
        result = red.run(phi)
        assert result.model_count == phi.count_satisfying() == 5
        for params in result.parameters_used:
            tid = red.reduction_database(phi, params)
            assert tid.restrict_check({F(1, 2), F(1)})
