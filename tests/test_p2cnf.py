"""P2CNF / PP2CNF instances, counts and signatures (Section 3, C.1)."""

import pytest

from repro.counting.p2cnf import P2CNF
from repro.counting.pp2cnf import PP2CNF


class TestP2CNF:
    def test_single_clause(self):
        phi = P2CNF(2, ((0, 1),))
        assert phi.count_satisfying() == 3

    def test_path_counts_are_fibonacci_like(self):
        # Independent-set complement counts on paths: 3, 5, 8, 13 ...
        assert P2CNF.path(2).count_satisfying() == 3
        assert P2CNF.path(3).count_satisfying() == 5
        assert P2CNF.path(4).count_satisfying() == 8
        assert P2CNF.path(5).count_satisfying() == 13

    def test_star(self):
        # Center true: 2^(n-1); center false: all leaves true: 1.
        phi = P2CNF.star(4)
        assert phi.count_satisfying() == 2 ** 3 + 1

    def test_cycle(self):
        # Lucas numbers: cycle_4 -> 7.
        assert P2CNF.cycle(4).count_satisfying() == 7

    def test_complete(self):
        # At most one variable false: n + 1.
        assert P2CNF.complete(4).count_satisfying() == 5

    def test_duplicate_edge_raises(self):
        with pytest.raises(ValueError):
            P2CNF(2, ((0, 1), (1, 0)))

    def test_self_loop_raises(self):
        with pytest.raises(ValueError):
            P2CNF(2, ((0, 0),))

    def test_off_range_raises(self):
        with pytest.raises(ValueError):
            P2CNF(2, ((0, 2),))


class TestSignatures:
    def test_signature_of_assignment(self):
        phi = P2CNF.path(3)
        assert phi.signature((0, 0, 0)) == (2, 0, 0)
        assert phi.signature((1, 1, 1)) == (0, 0, 2)
        assert phi.signature((1, 0, 1)) == (0, 2, 0)
        assert phi.signature((0, 1, 0)) == (0, 2, 0)

    def test_counts_sum_to_2n(self):
        phi = P2CNF.path(4)
        assert sum(phi.signature_counts().values()) == 16

    def test_satisfying_equals_k00_zero(self):
        phi = P2CNF.cycle(4)
        counts = phi.signature_counts()
        assert phi.count_satisfying() == sum(
            c for (k00, _, _), c in counts.items() if k00 == 0)

    def test_signature_components_sum_to_m(self):
        phi = P2CNF.star(4)
        for (k00, k01, k11) in phi.signature_counts():
            assert k00 + k01 + k11 == phi.m

    def test_satisfied(self):
        phi = P2CNF.path(3)
        assert phi.satisfied((1, 0, 1))
        assert not phi.satisfied((0, 0, 1))


class TestPP2CNF:
    def test_single_clause(self):
        phi = PP2CNF(1, 1, ((0, 0),))
        assert phi.count_satisfying() == 3

    def test_matching(self):
        assert PP2CNF.matching(2).count_satisfying() == 9

    def test_complete(self):
        # (all X true) * 2^m + (some X false -> all Y true): 2^n + 2^m - 1
        phi = PP2CNF.complete(2, 3)
        assert phi.count_satisfying() == 2 ** 3 + 2 ** 2 - 1

    def test_duplicate_edge_raises(self):
        with pytest.raises(ValueError):
            PP2CNF(1, 1, ((0, 0), (0, 0)))

    def test_off_range_raises(self):
        with pytest.raises(ValueError):
            PP2CNF(1, 1, ((0, 1),))

    def test_satisfied(self):
        phi = PP2CNF.matching(2)
        assert phi.satisfied((1, 0), (0, 1))
        assert not phi.satisfied((0, 0), (1, 0))
