"""The one-call H0 reduction from #PP2CNF (Section 2)."""

from fractions import Fraction

import pytest

from repro.counting.pp2cnf import PP2CNF
from repro.counting.problems import GFOMC_VALUES
from repro.reduction.h0 import count_pp2cnf_via_h0, h0_reduction_tid

F = Fraction

INSTANCES = [
    PP2CNF(1, 1, ((0, 0),)),
    PP2CNF.matching(2),
    PP2CNF.matching(3),
    PP2CNF.complete(2, 2),
    PP2CNF.complete(2, 3),
    PP2CNF(2, 2, ((0, 0), (0, 1), (1, 1))),
    PP2CNF(3, 2, ((0, 0), (1, 0), (2, 1))),
    PP2CNF(2, 2, ()),
]


class TestH0Reduction:
    @pytest.mark.parametrize("phi", INSTANCES,
                             ids=lambda p: f"L{p.n_left}R{p.n_right}m{p.m}")
    def test_counts_match_brute_force(self, phi):
        assert count_pp2cnf_via_h0(phi) == phi.count_satisfying()

    def test_database_is_gfomc(self):
        phi = PP2CNF.matching(2)
        tid = h0_reduction_tid(phi)
        assert tid.restrict_check(GFOMC_VALUES)

    def test_database_uses_zero_on_edges(self):
        phi = PP2CNF(1, 1, ((0, 0),))
        tid = h0_reduction_tid(phi)
        assert tid.probability(("S", "u0", "v0")) == 0

    def test_nonedges_certain(self):
        phi = PP2CNF(2, 1, ((0, 0),))
        tid = h0_reduction_tid(phi)
        assert tid.probability(("S", "u1", "v0")) == 1

    def test_single_oracle_call(self):
        """The reduction is Karp-style: exactly one GFOMC evaluation."""
        calls = []

        def oracle(query, tid):
            calls.append((query, tid))
            from repro.tid.wmc import probability
            return probability(query, tid)

        phi = PP2CNF.matching(2)
        assert count_pp2cnf_via_h0(phi, oracle=oracle) == 9
        assert len(calls) == 1

    def test_lineage_is_phi(self):
        """The lineage of H0 on the reduction TID IS the PP2CNF."""
        from repro.core.catalog import h0
        from repro.tid.lineage import lineage
        phi = PP2CNF(2, 2, ((0, 0), (1, 1)))
        tid = h0_reduction_tid(phi)
        formula = lineage(h0(), tid)
        expected_clauses = {
            frozenset({("R", f"u{i}"), ("T", f"v{j}")})
            for i, j in phi.edges}
        assert formula.clauses == expected_clauses
