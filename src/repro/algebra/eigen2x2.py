"""Exact spectral analysis of 2x2 rational matrices.

Lemma 3.19 shows the block matrix satisfies A(p) = A(1)^p / 2^(p-1), and
Eq. (33)-(35) expand the entries of A(1)^p as a_i * lambda1^p +
b_i * lambda2^p.  Theorem 3.14 then needs the exact conditions

    (22)  lambda1 != +-lambda2, lambda1 != 0, lambda2 != 0
    (23)  b_i != 0 for all entries i
    (24)  a_i * b_j != a_j * b_i for i != j.

This module computes lambda1, lambda2 and the per-entry spectral
coefficients (a_i, b_i) exactly inside Q(sqrt(disc)).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.algebra.matrices import Matrix
from repro.algebra.quadratic import QuadraticNumber


@dataclass(frozen=True)
class SpectralDecomposition:
    """Eigen data of a 2x2 matrix A with distinct eigenvalues.

    ``coefficients[(i, j)]`` is the pair (a_ij, b_ij) such that
    ``(A^p)[i][j] == a_ij * lambda1**p + b_ij * lambda2**p`` for all p >= 0.
    """

    matrix: Matrix
    lambda1: QuadraticNumber
    lambda2: QuadraticNumber
    coefficients: dict

    def entry_at_power(self, i: int, j: int, p: int) -> QuadraticNumber:
        a, b = self.coefficients[(i, j)]
        return a * self.lambda1 ** p + b * self.lambda2 ** p

    def power(self, p: int) -> Matrix:
        """A^p reconstructed from the spectral data (exact)."""
        return Matrix.from_function(
            2, 2, lambda i, j: self.entry_at_power(i, j, p))


def spectral_decomposition_2x2(matrix: Matrix) -> SpectralDecomposition:
    """Exact eigen-decomposition of a 2x2 rational matrix.

    Requires distinct eigenvalues (which Lemma 3.21 guarantees for the
    small matrix of a final Type-I query).  Entries of ``matrix`` must be
    Fractions; the result lives in Q(sqrt(discriminant)).
    """
    if matrix.nrows != 2 or matrix.ncols != 2:
        raise ValueError("expected a 2x2 matrix")
    a00 = Fraction(matrix[0, 0])
    a01 = Fraction(matrix[0, 1])
    a10 = Fraction(matrix[1, 0])
    a11 = Fraction(matrix[1, 1])
    trace = a00 + a11
    det = a00 * a11 - a01 * a10
    disc = trace * trace - 4 * det
    if disc < 0:
        raise ValueError("complex eigenvalues: not supported")
    root = QuadraticNumber.sqrt(disc)
    lambda1 = (QuadraticNumber(trace) + root) / 2
    lambda2 = (QuadraticNumber(trace) - root) / 2
    if lambda1 == lambda2:
        raise ValueError("repeated eigenvalue: spectral form unavailable")

    # Solve, per entry (i, j):  a + b = I[i][j],  a*l1 + b*l2 = A[i][j].
    coefficients: dict[tuple[int, int], tuple] = {}
    identity = ((Fraction(1), Fraction(0)), (Fraction(0), Fraction(1)))
    entries = ((a00, a01), (a10, a11))
    denom = lambda1 - lambda2
    for i in range(2):
        for j in range(2):
            a = (QuadraticNumber(entries[i][j])
                 - QuadraticNumber(identity[i][j]) * lambda2) / denom
            b = QuadraticNumber(identity[i][j]) - a
            coefficients[(i, j)] = (a, b)
    return SpectralDecomposition(matrix=matrix, lambda1=lambda1,
                                 lambda2=lambda2, coefficients=coefficients)


def check_condition_22(dec: SpectralDecomposition) -> bool:
    """lambda1 != +-lambda2 and both eigenvalues non-zero (Eq. 22)."""
    zero = QuadraticNumber(0)
    return (dec.lambda1 != zero and dec.lambda2 != zero
            and dec.lambda1 != dec.lambda2
            and dec.lambda1 != -dec.lambda2)


def check_condition_23(dec: SpectralDecomposition,
                       entries=((0, 0), (1, 0), (1, 1))) -> bool:
    """b_i != 0 for the symmetric entries i in {00, 10, 11} (Eq. 23)."""
    zero = QuadraticNumber(0)
    return all(dec.coefficients[e][1] != zero for e in entries)


def check_condition_24(dec: SpectralDecomposition,
                       entries=((0, 0), (1, 0), (1, 1))) -> bool:
    """a_i*b_j != a_j*b_i for all pairs i != j (Eq. 24)."""
    for idx, e1 in enumerate(entries):
        for e2 in entries[idx + 1:]:
            a1, b1 = dec.coefficients[e1]
            a2, b2 = dec.coefficients[e2]
            if a1 * b2 == a2 * b1:
                return False
    return True
