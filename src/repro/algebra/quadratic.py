"""Exact arithmetic in the real quadratic field Q(sqrt(d)).

The eigenvalues of the small matrix A(1) (Lemma 3.21) are

    lambda_{1,2} = ((z00 + z11) +- sqrt((z11 - z00)^2 + 4*z01*z10)) / 2,

which are irrational in general.  Theorem 3.14's conditions (22)-(24) are
*equalities and disequalities* between expressions in lambda_1, lambda_2
and the spectral coefficients a_i, b_i; deciding them with floating point
would be unsound.  ``QuadraticNumber`` represents a + b*sqrt(d) with
rational a, b and a fixed non-negative square-free-ish radicand d, giving
exact field arithmetic, equality, and sign tests.
"""

from __future__ import annotations

import math
from fractions import Fraction


class QuadraticNumber:
    """An element a + b*sqrt(d) of Q(sqrt(d)), with d a fixed rational >= 0.

    Two numbers may be combined only if their radicands agree (or either
    has b == 0, in which case it is plain rational and coerces freely).
    """

    __slots__ = ("a", "b", "d")

    def __init__(self, a, b=0, d=0):
        self.a = Fraction(a)
        self.b = Fraction(b)
        self.d = Fraction(d)
        if self.d < 0:
            raise ValueError("radicand must be non-negative (real field)")
        if self.d == 0 or _is_rational_square(self.d):
            # sqrt(d) is rational: fold it into the rational part.
            root = _rational_sqrt(self.d)
            self.a = self.a + self.b * root
            self.b = Fraction(0)
            self.d = Fraction(0)
        if self.b == 0:
            self.d = Fraction(0)

    # ------------------------------------------------------------------
    @staticmethod
    def sqrt(d) -> "QuadraticNumber":
        """The number sqrt(d) for rational d >= 0."""
        return QuadraticNumber(0, 1, d)

    def is_rational(self) -> bool:
        return self.b == 0

    def to_fraction(self) -> Fraction:
        if not self.is_rational():
            raise ValueError(f"{self} is irrational")
        return self.a

    def conjugate(self) -> "QuadraticNumber":
        return QuadraticNumber(self.a, -self.b, self.d)

    def __float__(self) -> float:
        return float(self.a) + float(self.b) * math.sqrt(float(self.d))

    # ------------------------------------------------------------------
    # Field arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "QuadraticNumber":
        if isinstance(other, QuadraticNumber):
            if other.b == 0 or self.b == 0 or other.d == self.d:
                return other
            raise ValueError(
                f"incompatible radicands: {self.d} vs {other.d}")
        return QuadraticNumber(Fraction(other))

    def _result_d(self, other: "QuadraticNumber") -> Fraction:
        return self.d if self.b != 0 else other.d

    def __add__(self, other):
        other = self._coerce(other)
        return QuadraticNumber(self.a + other.a, self.b + other.b,
                               self._result_d(other))

    __radd__ = __add__

    def __neg__(self):
        return QuadraticNumber(-self.a, -self.b, self.d)

    def __sub__(self, other):
        return self + (-self._coerce(other))

    def __rsub__(self, other):
        return self._coerce(other) + (-self)

    def __mul__(self, other):
        other = self._coerce(other)
        d = self._result_d(other)
        return QuadraticNumber(
            self.a * other.a + self.b * other.b * d,
            self.a * other.b + self.b * other.a,
            d)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        norm = other.a * other.a - other.b * other.b * other.d
        if norm == 0:
            if other.a == 0 and other.b == 0:
                raise ZeroDivisionError("division by zero")
            # a^2 == b^2 d with d a non-square: impossible unless zero.
            raise ZeroDivisionError("division by zero norm element")
        inv = QuadraticNumber(other.a / norm, -other.b / norm, other.d)
        return self * inv

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def __pow__(self, n: int):
        if n < 0:
            return QuadraticNumber(1) / self ** (-n)
        result = QuadraticNumber(1)
        base = self
        while n:
            if n & 1:
                result = result * base
            base = base * base
            n >>= 1
        return result

    # ------------------------------------------------------------------
    # Comparisons (exact: sign of a + b*sqrt(d))
    # ------------------------------------------------------------------
    def sign(self) -> int:
        """Exact sign of the real number a + b*sqrt(d)."""
        if self.b == 0:
            return _sign(self.a)
        if self.a == 0:
            return _sign(self.b)
        if self.a > 0 and self.b > 0:
            return 1
        if self.a < 0 and self.b < 0:
            return -1
        # Opposite signs: compare a^2 with b^2 d, sign decided by |a| side.
        lhs = self.a * self.a
        rhs = self.b * self.b * self.d
        if lhs == rhs:
            return 0
        bigger_is_a = lhs > rhs
        return _sign(self.a) if bigger_is_a else _sign(self.b)

    def __eq__(self, other) -> bool:
        try:
            other = self._coerce(other)
        except (ValueError, TypeError):
            return NotImplemented
        return (self - other).sign() == 0

    def __lt__(self, other) -> bool:
        return (self - self._coerce(other)).sign() < 0

    def __le__(self, other) -> bool:
        return (self - self._coerce(other)).sign() <= 0

    def __gt__(self, other) -> bool:
        return (self - self._coerce(other)).sign() > 0

    def __ge__(self, other) -> bool:
        return (self - self._coerce(other)).sign() >= 0

    def __hash__(self) -> int:
        if self.b == 0:
            return hash(self.a)
        return hash((self.a, self.b, self.d))

    def __repr__(self) -> str:
        if self.b == 0:
            return f"{self.a}"
        return f"({self.a} + {self.b}*sqrt({self.d}))"


def _sign(value: Fraction) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


def _is_rational_square(value: Fraction) -> bool:
    if value < 0:
        return False
    num = math.isqrt(value.numerator)
    den = math.isqrt(value.denominator)
    return num * num == value.numerator and den * den == value.denominator


def _rational_sqrt(value: Fraction) -> Fraction:
    if not _is_rational_square(value):
        raise ValueError(f"{value} is not a rational square")
    return Fraction(math.isqrt(value.numerator),
                    math.isqrt(value.denominator))
