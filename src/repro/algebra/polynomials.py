"""Sparse multivariate polynomials over the rationals.

The hardness proofs in the paper manipulate *arithmetizations* of Boolean
formulas: multilinear polynomials in the tuple-probability variables.  The
determinant of the small matrix (Lemma 1.2) multiplies two multilinear
polynomials, so per-variable degrees up to 2 arise naturally; this class
supports arbitrary integer exponents.

Monomials are represented as a sorted tuple of ``(variable, exponent)``
pairs; coefficients are :class:`fractions.Fraction`.  Polynomials are
immutable and hashable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

Monomial = tuple[tuple[str, int], ...]
_ZERO = Fraction(0)
_ONE = Fraction(1)


def _normalize_monomial(pairs: Iterable[tuple[str, int]]) -> Monomial:
    """Merge duplicate variables, drop zero exponents, sort by name."""
    merged: dict[str, int] = {}
    for var, exp in pairs:
        merged[var] = merged.get(var, 0) + exp
    return tuple(sorted((v, e) for v, e in merged.items() if e != 0))


class Polynomial:
    """An immutable sparse multivariate polynomial with Fraction coefficients."""

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[Monomial, Fraction] | None = None):
        cleaned: dict[Monomial, Fraction] = {}
        if terms:
            for mono, coeff in terms.items():
                coeff = Fraction(coeff)
                if coeff != 0:
                    cleaned[_normalize_monomial(mono)] = coeff
        self._terms: dict[Monomial, Fraction] = cleaned
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "Polynomial":
        return Polynomial()

    @staticmethod
    def constant(value) -> "Polynomial":
        value = Fraction(value)
        if value == 0:
            return Polynomial()
        return Polynomial({(): value})

    @staticmethod
    def variable(name: str) -> "Polynomial":
        return Polynomial({((name, 1),): _ONE})

    @staticmethod
    def one() -> "Polynomial":
        return Polynomial.constant(1)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def terms(self) -> dict[Monomial, Fraction]:
        """The monomial -> coefficient mapping (a defensive copy)."""
        return dict(self._terms)

    def is_zero(self) -> bool:
        return not self._terms

    def is_constant(self) -> bool:
        return all(mono == () for mono in self._terms)

    def constant_value(self) -> Fraction:
        """The value of a constant polynomial (raises if non-constant)."""
        if not self.is_constant():
            raise ValueError(f"polynomial is not constant: {self}")
        return self._terms.get((), _ZERO)

    def variables(self) -> frozenset[str]:
        return frozenset(v for mono in self._terms for v, _ in mono)

    def degree(self, var: str) -> int:
        """Degree of ``var`` in this polynomial (0 when absent)."""
        best = 0
        for mono in self._terms:
            for v, e in mono:
                if v == var and e > best:
                    best = e
        return best

    def total_degree(self) -> int:
        if not self._terms:
            return 0
        return max(sum(e for _, e in mono) for mono in self._terms)

    def coefficient_of(self, var: str, power: int) -> "Polynomial":
        """The polynomial coefficient of ``var**power`` (in remaining vars)."""
        out: dict[Monomial, Fraction] = {}
        for mono, coeff in self._terms.items():
            exp = dict(mono).get(var, 0)
            if exp == power:
                rest = tuple((v, e) for v, e in mono if v != var)
                out[rest] = out.get(rest, _ZERO) + coeff
        return Polynomial(out)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Polynomial":
        other = _coerce(other)
        out = dict(self._terms)
        for mono, coeff in other._terms.items():
            out[mono] = out.get(mono, _ZERO) + coeff
        return Polynomial(out)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self._terms.items()})

    def __sub__(self, other) -> "Polynomial":
        return self + (-_coerce(other))

    def __rsub__(self, other) -> "Polynomial":
        return _coerce(other) + (-self)

    def __mul__(self, other) -> "Polynomial":
        other = _coerce(other)
        out: dict[Monomial, Fraction] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                mono = _normalize_monomial(m1 + m2)
                out[mono] = out.get(mono, _ZERO) + c1 * c2
        return Polynomial(out)

    __rmul__ = __mul__

    def __pow__(self, n: int) -> "Polynomial":
        if n < 0:
            raise ValueError("negative powers are not supported")
        result = Polynomial.one()
        base = self
        while n:
            if n & 1:
                result = result * base
            base = base * base
            n >>= 1
        return result

    # ------------------------------------------------------------------
    # Substitution and evaluation
    # ------------------------------------------------------------------
    def substitute(self, assignment: Mapping[str, object]) -> "Polynomial":
        """Substitute variables with constants or other polynomials.

        Values may be Fractions, ints, or :class:`Polynomial` instances
        (the latter enables variable renaming and composition).
        """
        result = Polynomial.zero()
        for mono, coeff in self._terms.items():
            term = Polynomial.constant(coeff)
            for var, exp in mono:
                if var in assignment:
                    value = assignment[var]
                    factor = value if isinstance(value, Polynomial) \
                        else Polynomial.constant(value)
                else:
                    factor = Polynomial.variable(var)
                term = term * factor ** exp
            result = result + term
        return result

    def evaluate(self, assignment: Mapping[str, object]) -> Fraction:
        """Fully evaluate; every variable must be assigned a rational."""
        total = _ZERO
        for mono, coeff in self._terms.items():
            value = coeff
            for var, exp in mono:
                if var not in assignment:
                    raise KeyError(f"unassigned variable: {var}")
                value *= Fraction(assignment[var]) ** exp
            total += value
        return total

    def rename(self, mapping: Mapping[str, str]) -> "Polynomial":
        """Rename variables (non-renamed variables are kept)."""
        out: dict[Monomial, Fraction] = {}
        for mono, coeff in self._terms.items():
            new = _normalize_monomial(
                (mapping.get(v, v), e) for v, e in mono)
            out[new] = out.get(new, _ZERO) + coeff
        return Polynomial(out)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, (int, Fraction)):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._terms.items()))
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._terms)

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for mono, coeff in sorted(self._terms.items()):
            factors = [] if coeff != 1 or not mono else []
            if coeff != 1 or not mono:
                factors.append(str(coeff))
            for var, exp in mono:
                factors.append(var if exp == 1 else f"{var}^{exp}")
            parts.append("*".join(factors))
        return " + ".join(parts)


def _coerce(value) -> Polynomial:
    if isinstance(value, Polynomial):
        return value
    return Polynomial.constant(value)
