"""Vandermonde matrices and the Lemma 3.7 linear-independence argument.

Lemma 3.7 proves that the monomials g_k(y) = y1^k1 * ... * yh^kh with
k in {0..m}^h are linearly independent, by evaluating them on a grid
A1 x ... x Ah of distinct values: the evaluation matrix is the Kronecker
product of per-coordinate Vandermonde matrices, hence non-singular.  This
module builds those matrices so the lemma can be machine-checked.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Sequence

from repro.algebra.matrices import Matrix


def vandermonde(points: Sequence[Fraction], degree: int | None = None) -> Matrix:
    """The Vandermonde matrix V[i][j] = points[i] ** j.

    With ``degree`` omitted the matrix is square (degree = len(points)-1).
    """
    if degree is None:
        degree = len(points) - 1
    return Matrix([[Fraction(p) ** j for j in range(degree + 1)]
                   for p in points])


def monomial_evaluation_matrix(grids: Sequence[Sequence[Fraction]],
                               max_degree: int) -> Matrix:
    """Rows: points u in grids[0] x ... x grids[h-1].
    Columns: exponent vectors k in {0..max_degree}^h.
    Entry: product_i u_i ** k_i.

    Lemma 3.7 asserts this equals the Kronecker product of the
    per-coordinate Vandermonde matrices, hence is non-singular whenever
    each grid consists of max_degree+1 distinct values.
    """
    h = len(grids)
    exponents = list(product(range(max_degree + 1), repeat=h))
    rows = []
    for point in product(*grids):
        rows.append([
            _prod(Fraction(point[i]) ** k[i] for i in range(h))
            for k in exponents])
    return Matrix(rows)


def kronecker_of_vandermondes(grids: Sequence[Sequence[Fraction]],
                              max_degree: int) -> Matrix:
    """The Kronecker product A1 (x) ... (x) Ah from Lemma 3.7's proof."""
    result = None
    for grid in grids:
        vm = vandermonde(list(grid), max_degree)
        result = vm if result is None else result.kronecker(vm)
    if result is None:
        raise ValueError("need at least one grid")
    return result


def _prod(factors):
    total = Fraction(1)
    for f in factors:
        total *= f
    return total
