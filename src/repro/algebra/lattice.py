"""The lattice of closed sets and its Moebius function (Definition C.6).

Given formulas F = {F_1, ..., F_m}, the paper associates to each subset
alpha of [m] the conjunction F_alpha and defines its *closure* as
{i | F_alpha implies F_i}.  The lattice L^(F) consists of the closed sets
ordered by reverse inclusion, with top element 1^ = empty set standing for
the disjunction F_1 v ... v F_m.  The Moebius function mu is defined by
mu(1^) = 1 and mu(alpha) = -sum_{beta > alpha} mu(beta); the *support*
L(F) drops elements with mu = 0.

The Type-II hardness proof (Appendix C) runs Moebius inversion over these
lattices, so we implement them generically: the caller supplies m and a
closure operator.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Iterable

#: The top lattice element (stands for the disjunction of all formulas).
TOP: frozenset[int] = frozenset()


class Lattice:
    """Lattice of closed subsets of {0, ..., m-1} under reverse inclusion."""

    def __init__(self, m: int,
                 closure: Callable[[frozenset[int]], frozenset[int]]):
        self.m = m
        self._closure = closure
        self.elements: set[frozenset[int]] = {TOP}
        for size in range(1, m + 1):
            for subset in combinations(range(m), size):
                closed = frozenset(closure(frozenset(subset)))
                if not closed:
                    raise ValueError(
                        "closure of a non-empty set must contain it")
                self.elements.add(closed)
        self.mobius: dict[frozenset[int], int] = self._compute_mobius()

    # ------------------------------------------------------------------
    def leq(self, alpha: frozenset[int], beta: frozenset[int]) -> bool:
        """alpha <= beta in the lattice order (reverse set inclusion)."""
        return beta <= alpha

    def lt(self, alpha: frozenset[int], beta: frozenset[int]) -> bool:
        return beta < alpha

    def closure(self, alpha: Iterable[int]) -> frozenset[int]:
        alpha = frozenset(alpha)
        if not alpha:
            return TOP
        return frozenset(self._closure(alpha))

    def _compute_mobius(self) -> dict[frozenset[int], int]:
        # Process from the top (smallest set) downwards.
        ordered = sorted(self.elements, key=len)
        mobius: dict[frozenset[int], int] = {}
        for element in ordered:
            if element == TOP:
                mobius[element] = 1
                continue
            mobius[element] = -sum(
                mobius[other] for other in ordered
                if other < element)  # strict superset in lattice order
        return mobius

    # ------------------------------------------------------------------
    @property
    def support(self) -> list[frozenset[int]]:
        """Elements with non-zero Moebius value, L(F)."""
        return sorted((e for e in self.elements if self.mobius[e] != 0),
                      key=lambda e: (len(e), sorted(e)))

    @property
    def strict_support(self) -> list[frozenset[int]]:
        """The support minus the top element, L0(F) (Definition C.8)."""
        return [e for e in self.support if e != TOP]

    def mobius_inversion_terms(self) -> list[tuple[frozenset[int], int]]:
        """Pairs (alpha, mu(alpha)) for alpha < 1^ with mu != 0, i.e. the
        terms of Pr(F_1 v ... v F_m) = -sum_{alpha<1^} mu(alpha) Pr(F_alpha).
        """
        return [(e, self.mobius[e]) for e in self.strict_support]

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{set(e) if e else '1^'}:{self.mobius[e]}"
            for e in sorted(self.elements, key=lambda e: (len(e), sorted(e))))
        return f"Lattice({parts})"
