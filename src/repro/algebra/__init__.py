"""Exact algebra substrate: polynomials, rational matrices, quadratic fields,
lattices with Moebius functions, and the Lemma 1.1 non-root assignment solver.

Everything in this package computes over exact rationals
(:class:`fractions.Fraction`) or the quadratic extension field
``Q(sqrt(d))``; no floating point is used in any correctness-critical path.
"""

from repro.algebra.polynomials import Polynomial
from repro.algebra.matrices import Matrix
from repro.algebra.quadratic import QuadraticNumber
from repro.algebra.lattice import Lattice
from repro.algebra.lemma11 import find_nonroot_assignment

__all__ = [
    "Polynomial",
    "Matrix",
    "QuadraticNumber",
    "Lattice",
    "find_nonroot_assignment",
]
