"""The calculus lemmas behind Theorem 3.6 (Lemmas 3.8, 3.10, 3.12).

* Lemma 3.8: a polynomial of per-variable degree <= m that is not
  identically zero is non-zero somewhere on any grid A_1 x ... x A_h
  with |A_i| = m + 1 — made constructive by ``grid_nonvanishing_point``.
* Lemma 3.10: the Jacobian of H(z) = (prod_j (c_i + z_j))_i factors
  through a Cauchy-type determinant (Eq. 16, Krattenthaler):

      det[1/(c_i + z_j)] = prod_{i<j} (c_i - c_j)(z_i - z_j)
                           / prod_{i,j} (c_i + z_j).

* Lemma 3.12: the grid-evaluation matrix M[u, k] =
  prod_i prod_j (c_i + u_j)^{k_i} is non-singular for distinct c_i and
  per-coordinate grids of distinct values.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product as iter_product
from typing import Sequence

from repro.algebra.matrices import Matrix
from repro.algebra.polynomials import Polynomial

F = Fraction


def cauchy_matrix(cs: Sequence[Fraction], zs: Sequence[Fraction]) -> Matrix:
    """The matrix [1 / (c_i + z_j)]."""
    return Matrix([[F(1) / (F(c) + F(z)) for z in zs] for c in cs])


def cauchy_determinant(cs: Sequence[Fraction],
                       zs: Sequence[Fraction]) -> Fraction:
    """Closed form of det[1/(c_i + z_j)] (Eq. 16)."""
    n = len(cs)
    if len(zs) != n:
        raise ValueError("need equally many c's and z's")
    numerator = F(1)
    for i in range(n):
        for j in range(i + 1, n):
            numerator *= (F(cs[i]) - F(cs[j])) * (F(zs[i]) - F(zs[j]))
    denominator = F(1)
    for c in cs:
        for z in zs:
            denominator *= F(c) + F(z)
    return numerator / denominator


def jacobian_h(cs: Sequence[Fraction], zs: Sequence[Fraction]) -> Matrix:
    """The Jacobian of H(z)_i = prod_j (c_i + z_j) at the point z."""
    h = len(cs)
    rows = []
    for i in range(h):
        row = []
        for k in range(h):
            entry = F(1)
            for j in range(h):
                if j != k:
                    entry *= F(cs[i]) + F(zs[j])
            row.append(entry)
        rows.append(row)
    return Matrix(rows)


def jacobian_h_determinant(cs: Sequence[Fraction],
                           zs: Sequence[Fraction]) -> Fraction:
    """det J(H) via Lemma 3.10's factorization: the Cauchy determinant
    times prod_{i,j} (c_i + z_j)."""
    factor = F(1)
    for c in cs:
        for z in zs:
            factor *= F(c) + F(z)
    return cauchy_determinant(cs, zs) * factor


def grid_nonvanishing_point(poly: Polynomial,
                            grids: dict[str, Sequence[Fraction]]
                            ) -> dict[str, Fraction]:
    """Lemma 3.8, constructive: a grid point where ``poly`` is non-zero.

    ``grids[var]`` must contain more distinct values than the degree of
    ``var`` in ``poly``.  Raises ``ValueError`` for the zero polynomial
    or an insufficient grid.
    """
    if poly.is_zero():
        raise ValueError("polynomial is identically zero")
    point: dict[str, Fraction] = {}
    current = poly
    for var in sorted(poly.variables()):
        values = list(dict.fromkeys(F(v) for v in grids[var]))
        if len(values) <= poly.degree(var):
            raise ValueError(
                f"grid for {var} needs degree+1 distinct values")
        for value in values:
            candidate = current.substitute({var: value})
            if not candidate.is_zero():
                point[var] = value
                current = candidate
                break
        else:  # pragma: no cover - impossible per Lemma 3.8
            raise AssertionError("Lemma 3.8 violated")
    return point


def lemma312_matrix(cs: Sequence[Fraction],
                    grids: Sequence[Sequence[Fraction]],
                    m: int) -> Matrix:
    """The matrix of Lemma 3.12: rows indexed by u in the grid product,
    columns by k in {0..m}^h, entries prod_i prod_j (c_i + u_j)^{k_i}."""
    h = len(cs)
    if len(grids) != h:
        raise ValueError("need one grid per coordinate")
    exponents = list(iter_product(range(m + 1), repeat=h))
    rows = []
    for u in iter_product(*grids):
        row = []
        for k in exponents:
            entry = F(1)
            for i in range(h):
                base = F(1)
                for j in range(h):
                    base *= F(cs[i]) + F(u[j])
                entry *= base ** k[i]
            row.append(entry)
        rows.append(row)
    return Matrix(rows)
