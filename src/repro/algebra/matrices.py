"""Exact dense linear algebra over the rationals (and any exact field).

The Type-I reduction (Section 3.2) solves a linear system whose matrix is
the "big matrix" M; Theorem 3.6 shows M is non-singular, so Gaussian
elimination over Fractions recovers the signature counts *exactly*.  This
module provides the small amount of linear algebra that the reductions
need: determinant, rank, solving, inversion, and matrix powers.

Entries may be any exact field elements supporting +, -, *, /, equality
with 0 (Fractions and :class:`repro.algebra.quadratic.QuadraticNumber`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Sequence


class Matrix:
    """A small immutable exact matrix with fraction-friendly operations."""

    __slots__ = ("rows", "nrows", "ncols")

    def __init__(self, rows: Sequence[Sequence]):
        data = tuple(tuple(entry for entry in row) for row in rows)
        if data and any(len(row) != len(data[0]) for row in data):
            raise ValueError("ragged rows")
        self.rows = data
        self.nrows = len(data)
        self.ncols = len(data[0]) if data else 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity(n: int, one=Fraction(1), zero=Fraction(0)) -> "Matrix":
        return Matrix([[one if i == j else zero for j in range(n)]
                       for i in range(n)])

    @staticmethod
    def from_function(nrows: int, ncols: int,
                      fn: Callable[[int, int], object]) -> "Matrix":
        return Matrix([[fn(i, j) for j in range(ncols)]
                       for i in range(nrows)])

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    def __getitem__(self, pos: tuple[int, int]):
        i, j = pos
        return self.rows[i][j]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Matrix):
            return NotImplemented
        return self.rows == other.rows

    def __hash__(self) -> int:
        return hash(self.rows)

    def __repr__(self) -> str:
        return f"Matrix({[list(r) for r in self.rows]!r})"

    def transpose(self) -> "Matrix":
        return Matrix([[self.rows[i][j] for i in range(self.nrows)]
                       for j in range(self.ncols)])

    def scale(self, factor) -> "Matrix":
        return Matrix([[entry * factor for entry in row]
                       for row in self.rows])

    def __add__(self, other: "Matrix") -> "Matrix":
        if (self.nrows, self.ncols) != (other.nrows, other.ncols):
            raise ValueError("shape mismatch")
        return Matrix([[a + b for a, b in zip(r1, r2)]
                       for r1, r2 in zip(self.rows, other.rows)])

    def __sub__(self, other: "Matrix") -> "Matrix":
        return self + other.scale(-1)

    def __mul__(self, other: "Matrix") -> "Matrix":
        if self.ncols != other.nrows:
            raise ValueError("shape mismatch")
        cols = other.transpose().rows
        return Matrix([[_dot(row, col) for col in cols]
                       for row in self.rows])

    def __pow__(self, n: int) -> "Matrix":
        if self.nrows != self.ncols:
            raise ValueError("matrix power needs a square matrix")
        if n < 0:
            raise ValueError("negative matrix powers are not supported")
        result = Matrix.identity(self.nrows,
                                 one=_one_like(self), zero=_zero_like(self))
        base = self
        while n:
            if n & 1:
                result = result * base
            base = base * base
            n >>= 1
        return result

    def apply(self, vector: Sequence) -> list:
        """Matrix-vector product."""
        if len(vector) != self.ncols:
            raise ValueError("shape mismatch")
        return [_dot(row, vector) for row in self.rows]

    # ------------------------------------------------------------------
    # Elimination-based operations
    # ------------------------------------------------------------------
    def determinant(self):
        """Exact determinant via fraction-free-ish Gaussian elimination."""
        if self.nrows != self.ncols:
            raise ValueError("determinant needs a square matrix")
        n = self.nrows
        if n == 0:
            return Fraction(1)
        work = [list(row) for row in self.rows]
        det = _one_like(self)
        for col in range(n):
            pivot_row = next(
                (r for r in range(col, n) if work[r][col] != 0), None)
            if pivot_row is None:
                return _zero_like(self)
            if pivot_row != col:
                work[col], work[pivot_row] = work[pivot_row], work[col]
                det = det * -1
            pivot = work[col][col]
            det = det * pivot
            for r in range(col + 1, n):
                if work[r][col] != 0:
                    factor = work[r][col] / pivot
                    work[r] = [a - factor * b
                               for a, b in zip(work[r], work[col])]
        return det

    def rank(self) -> int:
        work = [list(row) for row in self.rows]
        rank = 0
        for col in range(self.ncols):
            pivot_row = next(
                (r for r in range(rank, self.nrows) if work[r][col] != 0),
                None)
            if pivot_row is None:
                continue
            work[rank], work[pivot_row] = work[pivot_row], work[rank]
            pivot = work[rank][col]
            for r in range(self.nrows):
                if r != rank and work[r][col] != 0:
                    factor = work[r][col] / pivot
                    work[r] = [a - factor * b
                               for a, b in zip(work[r], work[rank])]
            rank += 1
            if rank == self.nrows:
                break
        return rank

    def is_singular(self) -> bool:
        return self.determinant() == 0

    def solve(self, rhs: Sequence) -> list:
        """Solve ``self @ x = rhs`` exactly (square, non-singular)."""
        if self.nrows != self.ncols:
            raise ValueError("solve needs a square matrix")
        n = self.nrows
        if len(rhs) != n:
            raise ValueError("rhs length mismatch")
        work = [list(row) + [rhs[i]] for i, row in enumerate(self.rows)]
        for col in range(n):
            pivot_row = next(
                (r for r in range(col, n) if work[r][col] != 0), None)
            if pivot_row is None:
                raise ValueError("matrix is singular")
            work[col], work[pivot_row] = work[pivot_row], work[col]
            pivot = work[col][col]
            work[col] = [entry / pivot for entry in work[col]]
            for r in range(n):
                if r != col and work[r][col] != 0:
                    factor = work[r][col]
                    work[r] = [a - factor * b
                               for a, b in zip(work[r], work[col])]
        return [work[i][n] for i in range(n)]

    def inverse(self) -> "Matrix":
        if self.nrows != self.ncols:
            raise ValueError("inverse needs a square matrix")
        n = self.nrows
        cols = []
        identity = Matrix.identity(n, one=_one_like(self),
                                   zero=_zero_like(self))
        for j in range(n):
            cols.append(self.solve([identity[i, j] for i in range(n)]))
        return Matrix(cols).transpose()

    def kronecker(self, other: "Matrix") -> "Matrix":
        """Kronecker product (used by Lemma 3.7's Vandermonde argument)."""
        rows = []
        for r1 in self.rows:
            for r2 in other.rows:
                rows.append([a * b for a in r1 for b in r2])
        return Matrix(rows)


def _dot(xs, ys):
    total = None
    for x, y in zip(xs, ys):
        term = x * y
        total = term if total is None else total + term
    if total is None:
        raise ValueError("empty dot product")
    return total


def _zero_like(matrix: Matrix):
    sample = matrix.rows[0][0]
    return sample - sample


def _one_like(matrix: Matrix):
    sample = matrix.rows[0][0]
    zero = sample - sample
    if sample != zero:
        return sample / sample
    return Fraction(1)
