"""Lemma 1.1: non-root assignments with values in a three-element set.

    Let f(x1, ..., xn) be a multivariate polynomial, not identically 0,
    where each variable has degree <= 2.  Let c1, c2, c3 be three distinct
    constants.  Then there exists an assignment with values in {c1, c2, c3}
    such that f does not vanish.

The constructive proof substitutes one variable at a time: viewing f as a
degree-<=2 polynomial in x_n over the ring of polynomials in the remaining
variables, at most two of the three candidate values can turn f into the
zero polynomial, so a greedy scan always succeeds.  This is exactly the
mechanism the paper uses to pick probabilities in {0, 1/2, 1} that keep the
small matrix non-singular.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.algebra.polynomials import Polynomial

#: The probability values the paper cares about: {0, 1/2, 1}.
PROBABILITY_VALUES: tuple[Fraction, ...] = (
    Fraction(0), Fraction(1, 2), Fraction(1))


def find_nonroot_assignment(
    poly: Polynomial,
    values: Sequence[Fraction] = PROBABILITY_VALUES,
) -> dict[str, Fraction]:
    """Return an assignment from ``values`` on which ``poly`` is non-zero.

    Implements the constructive proof of Lemma 1.1.  Raises ``ValueError``
    if ``poly`` is identically zero, if fewer than three distinct values
    are supplied, or if some variable has degree > 2.
    """
    values = tuple(dict.fromkeys(Fraction(v) for v in values))
    if len(values) < 3:
        raise ValueError("Lemma 1.1 needs three distinct values")
    if poly.is_zero():
        raise ValueError("polynomial is identically zero")

    assignment: dict[str, Fraction] = {}
    current = poly
    for var in sorted(poly.variables()):
        if current.degree(var) > 2:
            raise ValueError(f"variable {var} has degree > 2")
        for value in values:
            candidate = current.substitute({var: value})
            if not candidate.is_zero():
                assignment[var] = value
                current = candidate
                break
        else:  # pragma: no cover - impossible per Lemma 1.1
            raise AssertionError(
                "Lemma 1.1 violated: all three substitutions vanish")
    assert not current.is_zero()
    return assignment


def verify_lemma11(poly: Polynomial,
                   values: Sequence[Fraction] = PROBABILITY_VALUES) -> bool:
    """Check Lemma 1.1 holds for ``poly`` by running the solver and
    re-evaluating the polynomial on the produced assignment."""
    assignment = find_nonroot_assignment(poly, values)
    full = {var: assignment.get(var, values[0]) for var in poly.variables()}
    return poly.evaluate(full) != 0
