"""The safety criterion for bipartite queries (Definition 2.4).

A bipartite query is *unsafe* iff some left clause C_0 and some right
clause C_k are connected by a path of clauses in which consecutive
clauses share a relational symbol.  The *length* of an unsafe query is
the minimal such k.  Safe queries factor into independent pieces and are
evaluable in polynomial time (``repro.tid.lifted``); unsafe queries are
the subject of the hardness theorems.

The clause H0 = forall x forall y (R(x) v S(x,y) v T(y)) carries both
unary symbols ("full" side); it is simultaneously a left and a right
clause, giving length 0.
"""

from __future__ import annotations

from collections import deque

from repro.core.queries import Query


def _is_leftish(clause) -> bool:
    """Counts as a left clause for Definition 2.4.

    A full clause (H0-like) with binary atoms is simultaneously left and
    right.  A degenerate full clause R(x) v T(y) with no binary atoms is
    forall x R(x) v forall y T(y): an independent disjunction, evaluable
    in PTIME, hence *not* a path endpoint.
    """
    if clause.side == "full":
        return bool(clause.binary_symbols)
    return clause.side == "left" and (bool(clause.unaries)
                                      or len(clause.subclauses) > 1)


def _is_rightish(clause) -> bool:
    if clause.side == "full":
        return bool(clause.binary_symbols)
    return clause.side == "right" and (bool(clause.unaries)
                                       or len(clause.subclauses) > 1)


def clause_graph(query: Query) -> dict[int, set[int]]:
    """Adjacency between clause indices: edges join clauses sharing a
    relational symbol."""
    clauses = query.clauses
    adjacency: dict[int, set[int]] = {i: set() for i in range(len(clauses))}
    for i in range(len(clauses)):
        for j in range(i + 1, len(clauses)):
            if clauses[i].symbols & clauses[j].symbols:
                adjacency[i].add(j)
                adjacency[j].add(i)
    return adjacency


def query_length(query: Query) -> int | None:
    """The minimal k admitting a left-to-right path C_0, ..., C_k
    (Definition 2.4); None when the query is safe."""
    if query.is_constant():
        return None
    clauses = query.clauses
    adjacency = clause_graph(query)
    starts = [i for i, c in enumerate(clauses) if _is_leftish(c)]
    dist = {i: 0 for i in starts}
    queue = deque(starts)
    best: int | None = None
    while queue:
        i = queue.popleft()
        if _is_rightish(clauses[i]):
            best = dist[i] if best is None else min(best, dist[i])
            # BFS: the first right clause found is at minimal distance,
            # but keep scanning the same level for robustness.
        for j in adjacency[i]:
            if j not in dist:
                dist[j] = dist[i] + 1
                queue.append(j)
    return best


def is_unsafe(query: Query) -> bool:
    """Definition 2.4: some left and right clause are connected."""
    return query_length(query) is not None


def is_safe(query: Query) -> bool:
    return not is_unsafe(query)


def query_type(query: Query) -> tuple[str, str] | None:
    """The type A-B of a bipartite query (Definition 2.3):
    'I' when the relevant side uses the unary symbol, 'II' when it uses
    multi-subclause clauses.  None for constant queries or queries
    containing a full clause (H0-like, outside the classification).
    """
    if query.is_constant() or query.full_clauses:
        return None
    left = "I"
    for clause in query.left_clauses:
        if clause.is_type2:
            left = "II"
    right = "I"
    for clause in query.right_clauses:
        if clause.is_type2:
            right = "II"
    return (left, right)


def connected_components(query: Query) -> list[Query]:
    """Split Q into symbol-disjoint conjuncts (Q is *disconnected* when
    more than one component exists)."""
    if query.is_constant():
        return [query]
    adjacency = clause_graph(query)
    seen: set[int] = set()
    out: list[Query] = []
    for start in range(len(query.clauses)):
        if start in seen:
            continue
        queue = deque([start])
        seen.add(start)
        group = []
        while queue:
            i = queue.popleft()
            group.append(query.clauses[i])
            for j in adjacency[i]:
                if j not in seen:
                    seen.add(j)
                    queue.append(j)
        out.append(Query(group))
    return out


def is_connected(query: Query) -> bool:
    return len(connected_components(query)) <= 1
