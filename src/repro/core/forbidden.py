"""Forbidden queries of Type II (Definition C.11) and ubiquitous
symbols.

A binary symbol is *C-ubiquitous* for a Type-II clause C when it occurs
in every subclause of C; *left-ubiquitous* when C-ubiquitous for every
left clause (mirror for right).  A final Type-II query is *forbidden*
when, along every minimal left-right path C_0, ..., C_k, every symbol of
C_0 is left-ubiquitous or occurs in C_1, and every symbol of C_k is
right-ubiquitous or occurs in C_{k-1}.

Forbidden queries are the fragment for which Appendix C proves the
connectivity of every Y_alpha_beta (Lemma C.23); Example C.9 is final
but not forbidden, Example C.15 is forbidden.  Lemma C.12's structural
consequences are machine-checked in the test-suite.
"""

from __future__ import annotations

from collections import deque

from repro.core.final import is_final
from repro.core.queries import Query
from repro.core.safety import clause_graph, query_length


def clause_ubiquitous(clause) -> frozenset[str]:
    """Symbols occurring in every subclause of the clause."""
    if not clause.subclauses:
        return frozenset()
    common = set(clause.subclauses[0])
    for j in clause.subclauses[1:]:
        common &= j
    return frozenset(common)


def left_ubiquitous(query: Query) -> frozenset[str]:
    """Symbols C-ubiquitous for every left clause (Appendix C.3)."""
    lefts = query.left_clauses
    if not lefts:
        return frozenset()
    common = clause_ubiquitous(lefts[0])
    for clause in lefts[1:]:
        common &= clause_ubiquitous(clause)
    return frozenset(common)


def right_ubiquitous(query: Query) -> frozenset[str]:
    rights = query.right_clauses
    if not rights:
        return frozenset()
    common = clause_ubiquitous(rights[0])
    for clause in rights[1:]:
        common &= clause_ubiquitous(clause)
    return frozenset(common)


def minimal_left_right_paths(query: Query) -> list[tuple]:
    """All minimal-length left-to-right clause paths (as clause
    tuples)."""
    length = query_length(query)
    if length is None:
        return []
    clauses = query.clauses
    adjacency = clause_graph(query)

    def is_left(c):
        return c.side in ("left", "full") and (
            c.side == "full" or c.unaries or len(c.subclauses) > 1)

    def is_right(c):
        return c.side in ("right", "full") and (
            c.side == "full" or c.unaries or len(c.subclauses) > 1)

    paths = []
    starts = [i for i, c in enumerate(clauses) if is_left(c)]
    queue = deque([(i, (i,)) for i in starts])
    while queue:
        node, path = queue.popleft()
        if len(path) - 1 > length:
            continue
        if is_right(clauses[node]) and len(path) - 1 == length:
            paths.append(tuple(clauses[i] for i in path))
            continue
        for nxt in adjacency[node]:
            if nxt not in path:
                queue.append((nxt, path + (nxt,)))
    return paths


def is_forbidden(query: Query) -> bool:
    """Definition C.11 (for Type-II queries): final, and along every
    minimal left-right path the end clauses' symbols are ubiquitous or
    shared with their path neighbour."""
    if not is_final(query):
        return False
    lu = left_ubiquitous(query)
    ru = right_ubiquitous(query)
    for path in minimal_left_right_paths(query):
        if len(path) < 2:
            return False  # length-0 paths fall outside Definition C.11
        first, second = path[0], path[1]
        if any(symbol not in lu and symbol not in second.symbols
               for symbol in first.binary_symbols):
            return False
        last, before_last = path[-1], path[-2]
        if any(symbol not in ru and symbol not in before_last.symbols
               for symbol in last.binary_symbols):
            return False
    return True
