"""Final queries (Definition 2.8) and the simplification search.

A *final* query is a bipartite, unsafe query Q such that for every
symbol S of Q both rewritings Q[S := 0] and Q[S := 1] are safe.  The
hardness proof first drives any unsafe query down to a final one by
repeatedly applying a rewriting that preserves unsafety (possible by
Lemma 2.7 whenever the query is not yet final); our ``find_final``
implements exactly that search.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.queries import Query
from repro.core.safety import is_safe, is_unsafe


def simplifications(query: Query) -> Iterator[tuple[str, bool, Query]]:
    """All one-step rewritings (symbol, value, Q[symbol := value])."""
    for symbol in sorted(query.symbols):
        for value in (False, True):
            yield symbol, value, query.set_symbol(symbol, value)


def is_final(query: Query) -> bool:
    """Definition 2.8: unsafe, and every one-step rewriting is safe."""
    if not is_unsafe(query):
        return False
    return all(is_safe(rewritten)
               for _, _, rewritten in simplifications(query))


def find_final(query: Query) -> tuple[Query, list[tuple[str, bool]]]:
    """Simplify an unsafe query to a final query.

    Returns the final query together with the rewriting trace
    [(symbol, value), ...].  Each rewriting removes the symbol entirely,
    so the search terminates.  Raises ``ValueError`` on safe input.
    """
    if not is_unsafe(query):
        raise ValueError("find_final expects an unsafe query")
    trace: list[tuple[str, bool]] = []
    current = query
    progress = True
    while progress:
        progress = False
        for symbol, value, rewritten in simplifications(current):
            if is_unsafe(rewritten):
                current = rewritten
                trace.append((symbol, value))
                progress = True
                break
    assert is_final(current)
    return current, trace
