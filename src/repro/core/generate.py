"""Random bipartite queries, for property tests and census sweeps.

The generator produces syntactically valid (minimized) queries over a
configurable number of binary symbols, mixing Type-I and Type-II left /
right clauses and middle clauses.  It is deterministic in the seed, so
failing cases reproduce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.clauses import Clause
from repro.core.queries import Query


@dataclass(frozen=True)
class GeneratorConfig:
    n_symbols: int = 4
    max_clauses: int = 4
    max_subclauses: int = 3
    max_subclause_size: int = 2
    allow_type2: bool = True
    left_probability: float = 0.4
    right_probability: float = 0.4


def random_query(seed: int, config: GeneratorConfig = GeneratorConfig()
                 ) -> Query:
    """A random minimized bipartite query (never constant)."""
    rng = random.Random(seed)
    symbols = [f"S{i}" for i in range(1, config.n_symbols + 1)]
    clauses = []
    n_clauses = rng.randint(1, config.max_clauses)
    for _ in range(n_clauses):
        clauses.append(_random_clause(rng, symbols, config))
    query = Query(clauses)
    if query.is_constant():  # pragma: no cover - construction avoids it
        return Query([Clause.middle(symbols[0])])
    return query


def _random_subclause(rng: random.Random, symbols, config) -> list[str]:
    size = rng.randint(1, min(config.max_subclause_size, len(symbols)))
    return rng.sample(symbols, size)


def _random_clause(rng: random.Random, symbols,
                   config: GeneratorConfig) -> Clause:
    roll = rng.random()
    if roll < config.left_probability:
        side = "left"
    elif roll < config.left_probability + config.right_probability:
        side = "right"
    else:
        side = "middle"
    if side == "middle":
        return Clause.middle(*_random_subclause(rng, symbols, config))
    type2 = config.allow_type2 and rng.random() < 0.5
    if type2:
        n_subs = rng.randint(2, config.max_subclauses)
        subs = [_random_subclause(rng, symbols, config)
                for _ in range(n_subs)]
        clause = Clause(side, (), subs)
        # Subclause absorption may collapse to one subclause, turning
        # the clause into a middle clause; that is fine.
        return clause
    unary = "R" if side == "left" else "T"
    return Clause(side, {unary},
                  [_random_subclause(rng, symbols, config)])


def random_queries(count: int, start_seed: int = 0,
                   config: GeneratorConfig = GeneratorConfig()):
    """A deterministic stream of random queries."""
    return [random_query(start_seed + i, config) for i in range(count)]
