"""Clause homomorphisms and redundancy (Section 2).

A homomorphism C -> C' maps the logical variables of C to same-sort
variables of C' such that every atom of C becomes an atom of C'.  If a
homomorphism C_i -> C_j exists between distinct clauses of a query then
C_j is redundant and is removed (the paper assumes all queries are
minimized and non-redundant).

Clauses are expanded to their prenex atom form: a left clause
forall x (R(x)? v OR_l forall y S_{J_l}(x,y)) becomes atoms over the
variables {x, y0, y1, ...} (one y per subclause); right clauses mirror
this; middle and full clauses use {x, y}.  The homomorphism search is a
small backtracking over variable images (sorts must match).
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.clauses import Clause
from repro.core.symbols import LEFT_UNARY, RIGHT_UNARY

Atom = tuple  # ("R", var) | ("T", var) | (symbol, left_var, right_var)


def clause_atoms(clause: Clause) -> tuple[frozenset[Atom],
                                          tuple[str, ...], tuple[str, ...]]:
    """The prenex atom set of a clause plus its (left, right) variables.

    Left-sort variables are named ``x*``, right-sort variables ``y*``.
    """
    atoms: set[Atom] = set()
    if clause.side in ("middle", "full"):
        left_vars, right_vars = ("x0",), ("y0",)
        if LEFT_UNARY in clause.unaries:
            atoms.add((LEFT_UNARY, "x0"))
        if RIGHT_UNARY in clause.unaries:
            atoms.add((RIGHT_UNARY, "y0"))
        for j in clause.subclauses:
            for symbol in j:
                atoms.add((symbol, "x0", "y0"))
    elif clause.side == "left":
        left_vars = ("x0",)
        right_vars = tuple(f"y{i}" for i in range(len(clause.subclauses)))
        if LEFT_UNARY in clause.unaries:
            atoms.add((LEFT_UNARY, "x0"))
        for i, j in enumerate(clause.subclauses):
            for symbol in j:
                atoms.add((symbol, "x0", f"y{i}"))
    elif clause.side == "right":
        right_vars = ("y0",)
        left_vars = tuple(f"x{i}" for i in range(len(clause.subclauses)))
        if RIGHT_UNARY in clause.unaries:
            atoms.add((RIGHT_UNARY, "y0"))
        for i, j in enumerate(clause.subclauses):
            for symbol in j:
                atoms.add((symbol, f"x{i}", "y0"))
    else:  # pragma: no cover
        raise AssertionError(clause.side)
    return frozenset(atoms), left_vars, right_vars


@lru_cache(maxsize=100_000)
def homomorphism_exists(source: Clause, target: Clause) -> bool:
    """Is there a homomorphism ``source -> target``?

    When one exists and both clauses appear in a query, ``target`` is
    redundant (source implies target, and the query is a conjunction).
    """
    src_atoms, src_left, src_right = clause_atoms(source)
    tgt_atoms, tgt_left, tgt_right = clause_atoms(target)
    tgt_atom_set = set(tgt_atoms)

    variables = list(src_left) + list(src_right)
    candidates = {v: (tgt_left if v.startswith("x") else tgt_right)
                  for v in variables}
    # Atoms grouped by the variables they constrain, checked incrementally.
    src_atom_list = sorted(src_atoms)

    def atom_mapped(atom: Atom, mapping: dict[str, str]) -> bool | None:
        """True/False when decidable under partial mapping, None otherwise."""
        mapped = []
        for part in atom[1:]:
            if part not in mapping:
                return None
            mapped.append(mapping[part])
        return (atom[0], *mapped) in tgt_atom_set

    def backtrack(index: int, mapping: dict[str, str]) -> bool:
        if index == len(variables):
            return all(atom_mapped(a, mapping) for a in src_atom_list)
        var = variables[index]
        for image in candidates[var]:
            mapping[var] = image
            ok = True
            for atom in src_atom_list:
                verdict = atom_mapped(atom, mapping)
                if verdict is False:
                    ok = False
                    break
            if ok and backtrack(index + 1, mapping):
                return True
            del mapping[var]
        return False

    return backtrack(0, {})


def clauses_equivalent(c1: Clause, c2: Clause) -> bool:
    """Logical equivalence via mutual homomorphisms."""
    if c1 == c2:
        return True
    return homomorphism_exists(c1, c2) and homomorphism_exists(c2, c1)


def minimize_clause_set(clauses) -> tuple[Clause, ...]:
    """Remove redundant clauses: drop C_j when some other kept clause
    maps homomorphically into it.  Equivalent clauses keep one
    representative (the canonically smallest)."""
    ordered = sorted(set(clauses), key=lambda c: c.sort_key())
    # Collapse equivalence classes first.
    representatives: list[Clause] = []
    for clause in ordered:
        if not any(clauses_equivalent(clause, kept)
                   for kept in representatives):
            representatives.append(clause)
    kept = []
    for clause in representatives:
        redundant = any(
            other is not clause and homomorphism_exists(other, clause)
            for other in representatives)
        if not redundant:
            kept.append(clause)
    return tuple(kept)
