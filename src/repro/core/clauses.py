"""Clauses of bipartite forall-CNF queries (Definition 2.3).

A clause is stored in a unified form covering every case the paper uses:

* ``side == "left"``: forall x ( R(x)? v OR_l forall y S_{J_l}(x, y) ).
  With a unary R and exactly one subclause this is a *left clause of
  Type I* (note forall y (R(x) v S_J(x,y)) == R(x) v forall y S_J(x,y));
  with no unary and more than one subclause it is *Type II*.
* ``side == "right"``: the mirror image with T(y) and forall x.
* ``side == "middle"``: forall x forall y S_J(x, y); single subclause,
  no unary.
* ``side == "full"``: forall x forall y (R(x) v T(y) v S_J(x, y)); this
  is the shape of H0, which falls outside Definition 2.3's bipartite
  classes and is treated separately by the paper.

Each subclause J is a non-empty frozenset of binary symbol names.
Clauses are immutable, hashable, and *minimized on construction*: a
subclause J_k with J_k a subset of another subclause J_i is absorbed
(forall y S_{J_k} implies forall y S_{J_i}, and A v B == B when A
implies B).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.symbols import LEFT_UNARY, RIGHT_UNARY

SIDES = ("left", "middle", "right", "full")


def _minimize_subclauses(
        subclauses: Iterable[frozenset[str]]) -> tuple[frozenset[str], ...]:
    """Keep only inclusion-maximal subclauses (disjunct absorption)."""
    unique = {frozenset(j) for j in subclauses}
    kept = [j for j in unique
            if not any(j < other for other in unique)]
    return tuple(sorted(kept, key=lambda j: (len(j), sorted(j))))


class Clause:
    """An immutable, minimized clause of a bipartite forall-CNF query."""

    __slots__ = ("side", "unaries", "subclauses", "_hash")

    def __init__(self, side: str, unaries: Iterable[str] = (),
                 subclauses: Iterable[Iterable[str]] = ()):
        unaries = frozenset(unaries)
        subs = _minimize_subclauses(frozenset(j) for j in subclauses)
        if side not in SIDES:
            raise ValueError(f"unknown side: {side}")
        if any(not j for j in subs):
            raise ValueError("empty subclause (use rewriting helpers)")
        if not unaries and not subs:
            raise ValueError("empty clause (identically false)")
        if not unaries <= {LEFT_UNARY, RIGHT_UNARY}:
            raise ValueError(f"bad unary symbols: {unaries}")
        # Canonicalize the side from the structure where it is forced.
        if unaries == {LEFT_UNARY, RIGHT_UNARY}:
            side = "full"
        elif LEFT_UNARY in unaries:
            side = "left"
        elif RIGHT_UNARY in unaries:
            side = "right"
        elif len(subs) == 1:
            # forall x forall y S_J regardless of claimed orientation.
            side = "middle"
        elif side in ("middle", "full"):
            raise ValueError(
                "type II clauses (multiple subclauses, no unary) must "
                "declare side 'left' or 'right'")
        if side == "full" and len(subs) > 1:
            raise ValueError("'full' clauses carry a single subclause")
        self.side = side
        self.unaries = unaries
        self.subclauses = subs
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def left_type1(*symbols: str) -> "Clause":
        """forall x forall y (R(x) v S_{J}(x,y)) with J = symbols."""
        return Clause("left", {LEFT_UNARY}, [frozenset(symbols)])

    @staticmethod
    def left_type2(*subclauses: Iterable[str]) -> "Clause":
        """forall x (forall y S_{J_1} v ... v forall y S_{J_m})."""
        return Clause("left", (), [frozenset(j) for j in subclauses])

    @staticmethod
    def middle(*symbols: str) -> "Clause":
        """forall x forall y S_J(x,y)."""
        return Clause("middle", (), [frozenset(symbols)])

    @staticmethod
    def right_type1(*symbols: str) -> "Clause":
        """forall y forall x (S_J(x,y) v T(y))."""
        return Clause("right", {RIGHT_UNARY}, [frozenset(symbols)])

    @staticmethod
    def right_type2(*subclauses: Iterable[str]) -> "Clause":
        """forall y (forall x S_{J_1} v ... v forall x S_{J_n})."""
        return Clause("right", (), [frozenset(j) for j in subclauses])

    @staticmethod
    def full(*symbols: str) -> "Clause":
        """forall x forall y (R(x) v T(y) v S_J(x,y)); the shape of H0."""
        return Clause("full", {LEFT_UNARY, RIGHT_UNARY},
                      [frozenset(symbols)])

    @staticmethod
    def unary_only(symbol: str) -> "Clause":
        """forall x R(x) (or forall y T(y)); arises from rewritings."""
        if symbol == LEFT_UNARY:
            return Clause("left", {LEFT_UNARY}, [])
        if symbol == RIGHT_UNARY:
            return Clause("right", {RIGHT_UNARY}, [])
        raise ValueError(f"not a unary symbol: {symbol}")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def binary_symbols(self) -> frozenset[str]:
        return frozenset(s for j in self.subclauses for s in j)

    @property
    def symbols(self) -> frozenset[str]:
        return self.unaries | self.binary_symbols

    @property
    def is_type2(self) -> bool:
        """A Type II (multi-subclause, no unary) left or right clause."""
        return not self.unaries and len(self.subclauses) > 1

    def sort_key(self):
        return (self.side, sorted(self.unaries),
                [(len(j), sorted(j)) for j in self.subclauses])

    # ------------------------------------------------------------------
    # Rewriting a symbol to false / true (Lemma 2.7 building block)
    # ------------------------------------------------------------------
    def set_symbol(self, symbol: str, value: bool) -> "Clause | None | bool":
        """The clause after substituting ``symbol := value``.

        Returns ``True`` when the clause becomes valid (drop it),
        ``False`` when it becomes unsatisfiable (the query is false),
        or the rewritten :class:`Clause`.
        """
        if symbol not in self.symbols:
            return self
        if symbol in self.unaries:
            if value:
                return True
            unaries = self.unaries - {symbol}
            if not unaries and not self.subclauses:
                return False
            return Clause(self.side, unaries, self.subclauses)
        if value:
            # Any subclause containing the symbol becomes forall y TRUE,
            # making the whole clause valid.
            if any(symbol in j for j in self.subclauses):
                return True
            return self
        # symbol := false — remove it from every subclause; empty
        # subclauses are dropped (forall y FALSE == FALSE).
        new_subs = [j - {symbol} for j in self.subclauses]
        new_subs = [j for j in new_subs if j]
        if not new_subs and not self.unaries:
            return False
        return Clause(self.side, self.unaries, new_subs)

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return (self.side == other.side and self.unaries == other.unaries
                and self.subclauses == other.subclauses)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.side, self.unaries, self.subclauses))
        return self._hash

    def __repr__(self) -> str:
        parts = []
        if LEFT_UNARY in self.unaries:
            parts.append("R(x)")
        for j in self.subclauses:
            atom = "|".join(sorted(j))
            if self.is_type2 or (not self.unaries and len(self.subclauses) > 1):
                var = "Ay." if self.side == "left" else "Ax."
                parts.append(f"{var}({atom})")
            else:
                parts.append(f"({atom})")
        if RIGHT_UNARY in self.unaries:
            parts.append("T(y)")
        return f"<{self.side}: " + " v ".join(parts) + ">"
