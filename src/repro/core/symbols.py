"""The restricted vocabulary of bipartite queries (Section 2).

A bipartite query uses two unary symbols R(x), T(y) and binary symbols
S_j(x, y).  The first position of every binary symbol ranges over the
left domain U, the second over the right domain V.  Unary symbol names
are fixed to ``"R"`` and ``"T"``; binary symbols may use any other name
(the zig-zag construction introduces names like ``"S1^(2)"``).
"""

from __future__ import annotations

from dataclasses import dataclass

LEFT_UNARY = "R"
RIGHT_UNARY = "T"
UNARY_SYMBOLS = frozenset({LEFT_UNARY, RIGHT_UNARY})


@dataclass(frozen=True)
class Vocabulary:
    """The relational symbols a query may mention."""

    has_left_unary: bool
    has_right_unary: bool
    binary: tuple[str, ...]

    def __post_init__(self):
        if len(set(self.binary)) != len(self.binary):
            raise ValueError("duplicate binary symbol")
        if UNARY_SYMBOLS & set(self.binary):
            raise ValueError("'R' and 'T' are reserved for unary symbols")

    @property
    def symbols(self) -> frozenset[str]:
        out = set(self.binary)
        if self.has_left_unary:
            out.add(LEFT_UNARY)
        if self.has_right_unary:
            out.add(RIGHT_UNARY)
        return frozenset(out)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self.symbols
