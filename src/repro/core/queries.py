"""Bipartite forall-CNF queries (duals of UCQs).

A :class:`Query` is a conjunction of clauses, kept minimized: clauses are
individually minimized (subclause absorption, done by :class:`Clause`)
and redundant clauses — those into which another clause maps
homomorphically — are removed, as the paper assumes throughout.

Queries are immutable values; rewriting ``Q[S := 0]`` / ``Q[S := 1]``
(Lemma 2.7) returns new queries.  The constant queries ``Query.TRUE``
(empty conjunction) and ``Query.FALSE`` (some clause became
unsatisfiable) are first-class so rewritings always compose.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.clauses import Clause
from repro.core.homomorphism import minimize_clause_set


class Query:
    """An immutable, minimized bipartite forall-CNF query."""

    __slots__ = ("clauses", "_false", "_hash")

    def __init__(self, clauses: Iterable[Clause] = (), *,
                 _false: bool = False):
        self._false = _false
        self.clauses: tuple[Clause, ...] = (
            () if _false else minimize_clause_set(clauses))
        self._hash: int | None = None

    # ------------------------------------------------------------------
    TRUE: "Query"
    FALSE: "Query"

    def is_true(self) -> bool:
        return not self._false and not self.clauses

    def is_false(self) -> bool:
        return self._false

    def is_constant(self) -> bool:
        return self.is_true() or self.is_false()

    # ------------------------------------------------------------------
    @property
    def symbols(self) -> frozenset[str]:
        return frozenset(s for c in self.clauses for s in c.symbols)

    @property
    def binary_symbols(self) -> frozenset[str]:
        return frozenset(s for c in self.clauses for s in c.binary_symbols)

    @property
    def left_clauses(self) -> tuple[Clause, ...]:
        return tuple(c for c in self.clauses if c.side == "left")

    @property
    def middle_clauses(self) -> tuple[Clause, ...]:
        return tuple(c for c in self.clauses if c.side == "middle")

    @property
    def right_clauses(self) -> tuple[Clause, ...]:
        return tuple(c for c in self.clauses if c.side == "right")

    @property
    def full_clauses(self) -> tuple[Clause, ...]:
        return tuple(c for c in self.clauses if c.side == "full")

    def conjoin(self, other: "Query") -> "Query":
        if self.is_false() or other.is_false():
            return Query.FALSE
        return Query(self.clauses + other.clauses)

    def __and__(self, other: "Query") -> "Query":
        return self.conjoin(other)

    # ------------------------------------------------------------------
    # Rewriting (Lemma 2.7)
    # ------------------------------------------------------------------
    def set_symbol(self, symbol: str, value: bool) -> "Query":
        """Q[symbol := value], minimized (Lemma 2.7)."""
        if self.is_constant():
            return self
        new_clauses: list[Clause] = []
        for clause in self.clauses:
            result = clause.set_symbol(symbol, value)
            if result is False:
                return Query.FALSE
            if result is True:
                continue
            new_clauses.append(result)
        return Query(new_clauses)

    def set_symbols(self, assignment: dict[str, bool]) -> "Query":
        query = self
        for symbol, value in assignment.items():
            query = query.set_symbol(symbol, value)
        return query

    def rename_binary(self, mapping: dict[str, str]) -> "Query":
        """Rename binary symbols (used by the zig-zag construction)."""
        if self.is_constant():
            return self
        clauses = []
        for clause in self.clauses:
            subclauses = [frozenset(mapping.get(s, s) for s in j)
                          for j in clause.subclauses]
            clauses.append(Clause(clause.side, clause.unaries, subclauses))
        return Query(clauses)

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return (self._false == other._false
                and set(self.clauses) == set(other.clauses))

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._false, frozenset(self.clauses)))
        return self._hash

    def __repr__(self) -> str:
        if self.is_false():
            return "Query(FALSE)"
        if self.is_true():
            return "Query(TRUE)"
        return "Query[" + " & ".join(
            repr(c) for c in sorted(self.clauses,
                                    key=lambda c: c.sort_key())) + "]"


Query.TRUE = Query()
Query.FALSE = Query(_false=True)


def query(*clauses: Clause) -> Query:
    """Convenience constructor: ``query(c1, c2, ...)``."""
    return Query(clauses)
