"""A catalog of named queries from the paper and standard families.

These are the concrete workloads for tests, examples, and benchmarks:
the paper's running examples (H0, Example C.9, the forbidden query of
Example C.15, the dead-end motivation A.3, Example C.18) plus
parameterized families (path queries of any length, wide final queries).
"""

from __future__ import annotations

from repro.core.clauses import Clause
from repro.core.queries import Query


def h0() -> Query:
    """H0 = forall x forall y (R(x) v S(x,y) v T(y)) (Section 2)."""
    return Query([Clause.full("S")])


def path_query(k: int, fanout: int = 1) -> Query:
    """The final Type-I path query of length k:

        (R v S_1) & (S_1 v S_2) & ... & (S_{k-1} v S_k) & (S_k v T)

    With ``fanout > 1`` each S_i is replaced by a group of ``fanout``
    symbols S_i_1..S_i_f appearing together; the query stays unsafe (but
    is no longer final) and the per-link lineage grows — used to stress
    the engines.
    """
    if k < 1:
        raise ValueError("path query needs length >= 1")

    def group(i: int) -> list[str]:
        if fanout == 1:
            return [f"S{i}"]
        return [f"S{i}_{j}" for j in range(fanout)]

    clauses = [Clause.left_type1(*group(1))]
    for i in range(1, k):
        clauses.append(Clause.middle(*(group(i) + group(i + 1))))
    clauses.append(Clause.right_type1(*group(k)))
    return Query(clauses)


def rst_query() -> Query:
    """The length-1 final Type-I query (R v S) & (S v T)."""
    return path_query(1)


def wide_final_query() -> Query:
    """A final Type-I query whose middle clause has three symbols:

        (R v S1) & (S1 v S2 v S3) & (S3 v T) & (S2 v T)
    """
    return Query([
        Clause.left_type1("S1"),
        Clause.middle("S1", "S2", "S3"),
        Clause.right_type1("S3"),
        Clause.right_type1("S2"),
    ])


def safe_left_only() -> Query:
    """Safe: no right clause at all (first observation before Def 2.4)."""
    return Query([
        Clause.left_type1("S1", "S2"),
        Clause.middle("S2", "S3"),
    ])


def safe_disconnected() -> Query:
    """Safe: a left part and a right part over disjoint symbols."""
    return Query([
        Clause.left_type1("S1"),
        Clause.middle("S1", "S2"),
        Clause.middle("S3", "S4"),
        Clause.right_type1("S4"),
    ])


def unsafe_type1_type2() -> Query:
    """An unsafe query of type I-II (left Type I, right Type II)."""
    return Query([
        Clause.left_type1("S1"),
        Clause.middle("S1", "S2"),
        Clause.right_type2(["S2"], ["S3"]),
    ])


def unsafe_type2_type1() -> Query:
    """An unsafe query of type II-I (left Type II, right Type I)."""
    return Query([
        Clause.left_type2(["S1"], ["S2"]),
        Clause.middle("S1", "S3"),
        Clause.right_type1("S3"),
    ])


def example_c9() -> Query:
    """Example C.9: forall x (Ay.S1 v Ay.S2) & (S1 v S3) &
    forall y (Ax.S3 v Ax.S4) — an unsafe Type II-II query (not
    forbidden: its Q_alpha_beta queries disconnect)."""
    return Query([
        Clause.left_type2(["S1"], ["S2"]),
        Clause.middle("S1", "S3"),
        Clause.right_type2(["S3"], ["S4"]),
    ])


def example_c15() -> Query:
    """Example C.15: a forbidden Type II-II query with left-ubiquitous U
    and right-ubiquitous V:

      forall x (Ay.(U v S1) v Ay.(U v S2))
      & forall x forall y (S1 v S2 v S3 v S4)
      & forall y (Ax.(V v S3) v Ax.(V v S4))
    """
    return Query([
        Clause.left_type2(["U", "S1"], ["U", "S2"]),
        Clause.middle("S1", "S2", "S3", "S4"),
        Clause.right_type2(["V", "S3"], ["V", "S4"]),
    ])


def example_c18() -> Query:
    """Example C.18: two left-ubiquitous symbols U, U' occurring in
    middle clauses; no single rewriting keeps it unsafe."""
    return Query([
        Clause.left_type2(["U", "U2", "S1", "S2"],
                          ["U", "U2", "S2", "S3"],
                          ["U", "U2", "S1", "S3"]),
        Clause.middle("S1", "S2", "S3", "S4", "S5"),
        Clause.right_type2(["V", "S4"], ["V", "S5"]),
        Clause.middle("U", "S1", "S2", "S3"),
        Clause.middle("U2", "S1", "S2", "S3"),
    ])


def example_a3() -> Query:
    """Example A.3 (motivates the zig-zag dead-end branches): a Type I-II
    query with a ubiquitous right symbol U."""
    return Query([
        Clause.left_type1("S0"),
        Clause.middle("S0", "S1"),
        Clause.middle("S1", "S2", "S3"),
        Clause.right_type2(["U", "S1", "S2"],
                           ["U", "S1", "S3"],
                           ["U", "S2", "S3"]),
    ])


def intro_example() -> Query:
    """Section 1.4's example: (R v S v T' v A) & B, here in bipartite
    form (R v S1 v S2) & (S2 v T): unsafe but not final."""
    return Query([
        Clause.left_type1("S1", "S2"),
        Clause.right_type1("S2"),
    ])


#: (name, constructor, expected-unsafe) triples for census-style sweeps.
CENSUS = (
    ("H0", h0, True),
    ("path-1 (RST)", rst_query, True),
    ("path-2", lambda: path_query(2), True),
    ("path-3", lambda: path_query(3), True),
    ("path-2 fanout-2", lambda: path_query(2, fanout=2), True),
    ("wide final", wide_final_query, True),
    ("intro example", intro_example, True),
    ("type I-II", unsafe_type1_type2, True),
    ("type II-I", unsafe_type2_type1, True),
    ("Example C.9", example_c9, True),
    ("Example C.15", example_c15, True),
    ("Example C.18", example_c18, True),
    ("Example A.3", example_a3, True),
    ("safe left-only", safe_left_only, False),
    ("safe disconnected", safe_disconnected, False),
)
