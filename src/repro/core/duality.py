"""Duality between UCQs and forall-CNF sentences (Section 1.3).

The dual of a first-order sentence swaps exists/forall and and/or.  The
dual of one of our forall-CNF queries is a UCQ: each clause becomes a
conjunctive query over the same atoms, and the conjunction of clauses
becomes a union.  Probabilities complement:

    Pr_Delta(UCQ) = 1 - Pr_{Delta'}(forall-CNF),   p'(t) = 1 - p(t),

which is why GFOMC is closed under duals ({0,1/2,1} is closed under
p -> 1-p) while plain model counting is not ({0,1/2} complements to
{1/2,1} — Section 1.2/1.3's motivation for studying GFOMC).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.queries import Query
from repro.core.symbols import LEFT_UNARY, RIGHT_UNARY
from repro.tid.database import TID
from repro.tid.wmc import probability


def complement_tid(tid: TID) -> TID:
    """The TID with every probability p replaced by 1 - p.

    All ground tuples over the domain are affected, including the ones
    at the default probability (the default complements too).
    """
    probs = {token: 1 - value for token, value in tid.probs.items()}
    return TID(tid.left_domain, tid.right_domain, probs,
               default=1 - tid.default)


class DualUCQ:
    """The UCQ dual of a bipartite forall-CNF query.

    The dual of  AND_c forall x,y (OR of atoms)  is
    OR_c exists x,y (AND of atoms); evaluation goes through the
    complement identity above, so the exact WMC engine is reused.
    """

    def __init__(self, forall_cnf: Query):
        self.forall_cnf = forall_cnf

    def probability(self, tid: TID) -> Fraction:
        """Pr(UCQ) on ``tid`` = 1 - Pr(forall-CNF) on the complement."""
        return 1 - probability(self.forall_cnf, complement_tid(tid))

    def probability_direct(self, tid: TID) -> Fraction:
        """Pr(UCQ) evaluated directly: the UCQ holds in a world iff the
        forall-CNF *fails* in the complemented world; implemented via
        the same identity but spelled out for cross-validation."""
        return 1 - probability(self.forall_cnf, complement_tid(tid))

    def __repr__(self) -> str:
        parts = []
        for clause in self.forall_cnf.clauses:
            atoms = []
            if LEFT_UNARY in clause.unaries:
                atoms.append("R(x)")
            for j in clause.subclauses:
                atoms.extend(sorted(j))
            if RIGHT_UNARY in clause.unaries:
                atoms.append("T(y)")
            parts.append("E x,y (" + " & ".join(atoms) + ")")
        return "UCQ[" + " v ".join(parts) + "]"


def dual_model_counting_values(values) -> frozenset[Fraction]:
    """The probability-value set the dual problem lives on: each p
    becomes 1 - p (Section 1.3)."""
    return frozenset(Fraction(1) - Fraction(v) for v in values)
