"""Bipartite forall-CNF queries (duals of UCQs) and their static analysis.

Implements Definition 2.3 (left / middle / right clauses of Types I and
II), query minimization via clause homomorphisms, the rewritings
Q[S := 0] / Q[S := 1] of Lemma 2.7, the safety criterion of Definition
2.4, and final queries (Definition 2.8).
"""

from repro.core.clauses import Clause
from repro.core.queries import Query
from repro.core.safety import is_safe, is_unsafe, query_length, query_type
from repro.core.final import is_final, find_final

__all__ = [
    "Clause",
    "Query",
    "is_safe",
    "is_unsafe",
    "query_length",
    "query_type",
    "is_final",
    "find_final",
]
