"""Polynomial-time evaluation of *safe* bipartite queries.

This is the easy side of the dichotomy (Theorem 2.1).  The paper's two
observations before Definition 2.4 drive the algorithm:

1. a query with no right clauses factorizes over the left domain,
   Pr(Q) = prod_u Pr(Q[u/x]), and each factor is computable in
   polynomial time by inclusion-exclusion over the (query-sized) set of
   subclause choices;
2. a safe query splits into symbol-disjoint components, each having no
   right clauses or no left clauses, and probabilities multiply.

The per-u factor expands every Type-II disjunction
OR_l forall y S_{J_l}(u, y) by inclusion-exclusion:
indicator(OR_l E_l) = sum over non-empty A of (-1)^{|A|+1}
indicator(AND_{l in A} E_l), and each signed conjunction is a per-v
independent product of constant-size CNF probabilities.  The run time is
O(|U| * |V|) per component for a fixed query — genuinely PTIME in the
database.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations, product as iter_product

from repro.booleans.cnf import CNF
from repro.core.queries import Query
from repro.core.safety import connected_components, is_unsafe
from repro.core.symbols import LEFT_UNARY, RIGHT_UNARY
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.wmc import cnf_probability

ONE = Fraction(1)
ZERO = Fraction(0)


class UnsafeQueryError(ValueError):
    """Raised when the lifted evaluator is handed an unsafe query."""


def lifted_probability(query: Query, tid: TID) -> Fraction:
    """Pr(Q) for a safe bipartite query, in polynomial time."""
    if query.is_false():
        return ZERO
    if query.is_true():
        return ONE
    if is_unsafe(query):
        raise UnsafeQueryError(f"query is unsafe: {query!r}")
    result = ONE
    for component in connected_components(query):
        result *= _component_probability(component, tid)
        if result == 0:
            return ZERO
    return result


def _component_probability(component: Query, tid: TID) -> Fraction:
    full = [c for c in component.clauses if c.side == "full"]
    if full:
        # Safe full clauses have no binary atoms: R(x) v T(y) is the
        # independent disjunction (forall x R) v (forall y T).
        if len(component.clauses) > 1 or full[0].binary_symbols:
            raise UnsafeQueryError(
                "full clauses mixing with other clauses are outside the "
                "paper's bipartite fragment")
        pr_r = ONE
        for u in tid.left_domain:
            pr_r *= tid.probability(r_tuple(u))
        pr_t = ONE
        for v in tid.right_domain:
            pr_t *= tid.probability(t_tuple(v))
        return pr_r + pr_t - pr_r * pr_t
    has_left = any(c.side == "left" for c in component.clauses)
    has_right = any(c.side == "right" for c in component.clauses)
    if has_left and has_right:  # pragma: no cover - excluded by safety
        raise UnsafeQueryError("component has both left and right clauses")
    if has_right:
        return _one_sided_probability(component, tid, left_side=False)
    if has_left:
        return _one_sided_probability(component, tid, left_side=True)
    return _middle_only_probability(component, tid)


def _middle_only_probability(component: Query, tid: TID) -> Fraction:
    subclauses = [j for c in component.clauses for j in c.subclauses]
    result = ONE
    for u in tid.left_domain:
        for v in tid.right_domain:
            result *= _local_probability(tid, subclauses, u, v)
            if result == 0:
                return ZERO
    return result


def _one_sided_probability(component: Query, tid: TID,
                           left_side: bool) -> Fraction:
    """prod over the shared-variable domain of the per-constant factor."""
    outer = tid.left_domain if left_side else tid.right_domain
    result = ONE
    for w in outer:
        result *= _factor_at(component, tid, w, left_side)
        if result == 0:
            return ZERO
    return result


def _factor_at(component: Query, tid: TID, w, left_side: bool) -> Fraction:
    """Pr(Q[w/x]) (or Q[w/y]) via inclusion-exclusion over subclause
    choices; middle clauses join every term as mandatory conjuncts."""
    side = "left" if left_side else "right"
    unary_symbol = LEFT_UNARY if left_side else RIGHT_UNARY
    unary_token = r_tuple(w) if left_side else t_tuple(w)
    inner = tid.right_domain if left_side else tid.left_domain

    side_clauses = [c for c in component.clauses if c.side == side]
    middles = [j for c in component.clauses if c.side == "middle"
               for j in c.subclauses]

    def conjunction_probability(chosen: list[frozenset[str]]) -> Fraction:
        """Pr(AND of chosen subclauses and middles), independent per
        inner constant."""
        total = ONE
        for z in inner:
            u, v = (w, z) if left_side else (z, w)
            total *= _local_probability(tid, chosen + middles, u, v)
            if total == 0:
                return ZERO
        return total

    p_unary = tid.probability(unary_token)
    result = ZERO
    cases: list[tuple[Fraction, bool]] = []
    if any(unary_symbol in c.unaries for c in side_clauses):
        cases = [(ONE - p_unary, False), (p_unary, True)]
    else:
        cases = [(ONE, False)]
    for weight, unary_true in cases:
        if weight == 0:
            continue
        active = [c for c in side_clauses
                  if not (unary_true and unary_symbol in c.unaries)]
        if any(not c.subclauses for c in active):
            continue  # a falsified unary-only clause: contributes 0
        result += weight * _inclusion_exclusion(
            active, conjunction_probability)
    return result


def _inclusion_exclusion(active, conjunction_probability) -> Fraction:
    """sum over per-clause non-empty subclause subsets of the signed
    conjunction probabilities."""
    if not active:
        return conjunction_probability([])
    subset_lists = []
    for clause in active:
        subsets = []
        subs = clause.subclauses
        for size in range(1, len(subs) + 1):
            for combo in combinations(range(len(subs)), size):
                sign = -1 if size % 2 == 0 else 1
                subsets.append((sign, [subs[i] for i in combo]))
        subset_lists.append(subsets)
    total = ZERO
    for picks in iter_product(*subset_lists):
        sign = 1
        chosen: list[frozenset[str]] = []
        for s, subclauses in picks:
            sign *= s
            chosen.extend(subclauses)
        total += sign * conjunction_probability(chosen)
    return total


def _local_probability(tid: TID, subclauses, u, v) -> Fraction:
    """Pr of the constant-size CNF AND_J (OR_{j in J} S_j(u,v))."""
    formula = CNF(frozenset(j) for j in subclauses)
    return cnf_probability(
        formula, lambda symbol: tid.probability(s_tuple(symbol, u, v)))
