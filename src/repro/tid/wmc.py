"""Exact weighted model counting over monotone CNF lineages.

This is the "#P oracle" of the reductions: given independent Boolean
variables with rational marginals, compute Pr(F) exactly.  Since PR 1
the default engine is *knowledge compilation*: the formula is compiled
once into a d-DNNF circuit (``repro.booleans.circuit``) whose trace
mirrors the classic search — unit-clause conditioning,
independent-component factorization, Shannon expansion on a most-shared
variable — and every evaluation is then a single linear pass over the
circuit.  A *two-tier* cache makes the repeated-evaluation workloads of
the reductions (block-matrix grids, Type-II sweeps, Vandermonde
interpolation) pay the exponential search at most once per formula:

* tier 1 is an in-process LRU keyed on the canonical CNF, bounded both
  by entry count and by cumulative circuit *size* (node count), so a
  handful of giant circuits cannot pin gigabytes the way a pure entry
  cap would;
* tier 2 is an optional content-addressed disk store
  (``repro.booleans.store``) shared across processes — install one via
  ``set_circuit_store`` or the ``REPRO_CIRCUIT_STORE`` environment
  variable and repeated CLI/service invocations skip recompilation
  entirely.

The pre-compilation recursive engine survives as
``shannon_probability``; it restarts its search on every call and is
kept as an independent validation oracle and as the benchmark baseline
(``benchmarks/bench_compile.py``).
"""

from __future__ import annotations

import os
import threading

from collections import OrderedDict
from fractions import Fraction
from typing import Mapping

from repro.booleans.adaptive import (
    ENGINE_LABELS,
    estimate_batch_with,
    estimate_with,
)
from repro.booleans.approximate import (
    AutoProbability,
    AutoSweep,
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
)
from repro.booleans.circuit import (
    Circuit,
    CompilationBudgetExceeded,
    branch_variable,
    compile_cnf,
    make_lookup,
)
from repro.booleans.cnf import CNF
from repro.booleans.connectivity import clause_components
from repro import obs
from repro.booleans.tape import (
    Tape,
    adopt_tape,
    peek_tape,
    reset_tape_stats,
    tape_for_circuit,
    tape_stats,
)
from repro.core.queries import Query
from repro.tid.database import TID
from repro.tid.lineage import lineage

ONE = Fraction(1)

#: Guards every piece of module-level cache state below — the LRU
#: mapping and its node counter, the stats counters, the budget-failure
#: memo, and the store handle — so concurrent callers (the service's
#: worker pool, multi-threaded library users) can never corrupt the LRU
#: ordering or lose counter increments.  The *exponential* work
#: (``compile_cnf``) deliberately runs outside the lock: two threads
#: racing on the same formula at worst compile it twice (the second
#: result wins benignly in ``_remember``); callers that must not pay a
#: duplicate compilation dedupe in-flight work above this layer
#: (``repro.service.scheduler.CompilePool``).
_LOCK = threading.RLock()

#: Tier-1 compilation cache: canonical CNF -> compiled circuit, LRU.
_CIRCUIT_CACHE: OrderedDict[CNF, Circuit] = OrderedDict()
#: Secondary bound: maximum number of cached circuits.
_CACHE_ENTRY_LIMIT = 1024
#: Primary bound: maximum *cumulative* ``Circuit.size`` (node count)
#: across all cached circuits — the actual memory proxy.
_CACHE_NODE_LIMIT = 4_000_000
_cache_nodes = 0

#: Default exact-compilation budget of the ``auto`` policy: generous
#: enough that every workload in the test-suite and benchmarks compiles
#: exactly, small enough to abort genuinely adversarial lineages well
#: before they exhaust memory.
DEFAULT_BUDGET_NODES = 250_000

#: Counters for observability and the warm-start acceptance tests.
#: ``store_hits``/``store_misses`` cover the tier-2 disk store (misses
#: are only counted when a store is attached), so CI logs show whether
#: a warm start actually warm-started; ``budget_aborts`` counts
#: compilations abandoned by the ``auto`` policy's node budget.
_stats = {"hits": 0, "store_hits": 0, "store_misses": 0,
          "compiles": 0, "budget_aborts": 0}

#: Negative cache for the auto policy: formula -> the largest budget
#: known to be insufficient.  A blown budget means any request at or
#: below it fails too, so repeat auto calls on the same adversarial
#: lineage (e.g. ``evaluate_batch`` over many databases sharing one
#: lineage) skip straight to the estimator instead of redoing the
#: aborted exponential search.  Bounded FIFO; success (or ``adopt``)
#: clears the entry.
_BUDGET_FAILURES: OrderedDict[CNF, int] = OrderedDict()
_BUDGET_FAILURE_LIMIT = 128

#: Tier-2 disk store (``repro.booleans.store.CircuitStore``), or None.
#: ``False`` means "not yet initialized from the environment".
_STORE_ENV = "REPRO_CIRCUIT_STORE"
_circuit_store = False


def set_circuit_store(store) -> None:
    """Install the tier-2 disk store.

    ``store`` may be a ``CircuitStore``, a directory path (a store is
    created there), or None to disable persistence.  When never called,
    the ``REPRO_CIRCUIT_STORE`` environment variable (a directory path)
    is consulted on first use.
    """
    global _circuit_store
    if store is None or hasattr(store, "get"):
        with _LOCK:
            _circuit_store = store
    else:
        from repro.booleans.store import CircuitStore
        with _LOCK:
            _circuit_store = CircuitStore(store)


def get_circuit_store():
    """The active tier-2 store (resolving ``REPRO_CIRCUIT_STORE`` on
    first call), or None."""
    with _LOCK:
        if _circuit_store is False:
            path = os.environ.get(_STORE_ENV)
            set_circuit_store(path if path else None)
        return _circuit_store


def set_cache_limits(max_nodes: int | None = None,
                     max_entries: int | None = None) -> None:
    """Tune the tier-1 bounds (None keeps the current value)."""
    global _CACHE_NODE_LIMIT, _CACHE_ENTRY_LIMIT
    if max_nodes is not None and max_nodes <= 0:
        raise ValueError("max_nodes must be positive")
    if max_entries is not None and max_entries <= 0:
        raise ValueError("max_entries must be positive")
    with _LOCK:
        if max_nodes is not None:
            _CACHE_NODE_LIMIT = max_nodes
        if max_entries is not None:
            _CACHE_ENTRY_LIMIT = max_entries
        _evict()


def cache_info() -> dict:
    """Both cache tiers at a glance: tier-1 occupancy and limits, the
    lifetime counters (memory hits, disk-store hits *and* misses,
    compilations, budget aborts), and whether a tier-2 store is
    attached — enough to read warm-start behaviour off a CI log."""
    store = get_circuit_store()
    with _LOCK:
        info = {
            "entries": len(_CIRCUIT_CACHE),
            "nodes": _cache_nodes,
            "entry_limit": _CACHE_ENTRY_LIMIT,
            "node_limit": _CACHE_NODE_LIMIT,
            "store_attached": store is not None,
            **_stats,
        }
    # Tape counters (tape_hits / tape_flattens / tape_bytes) live in
    # the tape module — flattened tapes ride on circuit objects, so the
    # counters are process-global like ours.  Merged here so the
    # service ``stats`` op and warm-start assertions see one dict.
    info.update(tape_stats())
    return info


def _evict() -> None:
    """Drop LRU entries until both bounds hold (the most recent entry
    always survives, even when it alone exceeds the node limit).
    Caller holds ``_LOCK``."""
    global _cache_nodes
    while len(_CIRCUIT_CACHE) > 1 and (
            len(_CIRCUIT_CACHE) > _CACHE_ENTRY_LIMIT
            or _cache_nodes > _CACHE_NODE_LIMIT):
        _, evicted = _CIRCUIT_CACHE.popitem(last=False)
        _cache_nodes -= evicted.size


def _remember(formula: CNF, circuit: Circuit) -> None:
    """Caller holds ``_LOCK``."""
    global _cache_nodes
    replaced = _CIRCUIT_CACHE.pop(formula, None)
    if replaced is not None:
        _cache_nodes -= replaced.size
    _CIRCUIT_CACHE[formula] = circuit
    _cache_nodes += circuit.size
    _evict()


def compiled(formula: CNF,
             budget_nodes: int | None = None) -> Circuit:
    """The d-DNNF circuit of ``formula``, compiled at most once.

    Equal CNFs (structural equality is logical equivalence for
    minimized monotone CNFs) share one circuit across the whole
    process.  Lookup order: tier-1 memory LRU, then the disk store
    (hits are promoted into memory), then compilation (the result is
    written through to both tiers).

    ``budget_nodes`` bounds a *fresh* compilation
    (``CompilationBudgetExceeded`` propagates to the caller); circuits
    already sitting in either cache tier are returned regardless of
    their size — the exponential work is sunk, so answering exactly is
    strictly better than estimating.  Budget failures are negatively
    cached: once a formula has blown a budget, later calls at or below
    that budget raise immediately instead of redoing the aborted
    search (the disk store is still consulted first, in case another
    process finished the compilation).
    """
    with _LOCK:
        circuit = _CIRCUIT_CACHE.get(formula)
        if circuit is not None:
            _CIRCUIT_CACHE.move_to_end(formula)
            _stats["hits"] += 1
            return circuit
    store = get_circuit_store()
    if store is not None:
        # Disk I/O runs unlocked; re-check the memory tier afterwards
        # in case a concurrent thread finished the same lookup first.
        circuit = store.get(formula)
        with _LOCK:
            if circuit is not None:
                _stats["store_hits"] += 1
                _remember(formula, circuit)
                return circuit
            _stats["store_misses"] += 1
            raced = _CIRCUIT_CACHE.get(formula)
            if raced is not None:
                _CIRCUIT_CACHE.move_to_end(formula)
                _stats["hits"] += 1
                return raced
    if budget_nodes is not None:
        with _LOCK:
            known_insufficient = _BUDGET_FAILURES.get(formula)
            if known_insufficient is not None and \
                    budget_nodes <= known_insufficient:
                _stats["budget_aborts"] += 1
                raise CompilationBudgetExceeded(budget_nodes)
    try:
        # The exponential search runs outside the lock so one hard
        # compilation cannot stall unrelated cache traffic.  The span
        # covers only a *fresh* compilation — cache hits above return
        # without touching the tracer, keeping the warm path free of
        # instrumentation cost and the stage durations disjoint.
        with obs.span("compile", budget=budget_nodes or 0) as sp:
            circuit = compile_cnf(formula, budget_nodes)
            sp.tag(nodes=circuit.size)
    except CompilationBudgetExceeded:
        with _LOCK:
            _stats["budget_aborts"] += 1
            _BUDGET_FAILURES[formula] = max(
                _BUDGET_FAILURES.get(formula, 0), budget_nodes)
            _BUDGET_FAILURES.move_to_end(formula)
            while len(_BUDGET_FAILURES) > _BUDGET_FAILURE_LIMIT:
                _BUDGET_FAILURES.popitem(last=False)
        raise
    with _LOCK:
        _BUDGET_FAILURES.pop(formula, None)
        _stats["compiles"] += 1
        _remember(formula, circuit)
    if store is not None:
        # Write-through is best-effort, mirroring the read side (which
        # treats unreadable entries as misses): a read-only or full
        # store directory must not fail a query whose compilation
        # already succeeded.
        try:
            store.put(formula, circuit)
        except OSError:
            pass
    return circuit


def is_cached(formula: CNF) -> bool:
    """Whether ``formula``'s circuit sits in the tier-1 memory cache
    right now — a pure probe: no counters move, no LRU reordering.
    The service uses this to decide whether a sweep should pay the
    coalescing window (cold compile ahead: batch up) or answer
    immediately (circuit already hot: the pass is linear anyway)."""
    with _LOCK:
        return formula in _CIRCUIT_CACHE


def adopt(formula: CNF, circuit: Circuit) -> None:
    """Install a pre-built circuit (e.g. deserialized from a file) as
    ``formula``'s compilation, so subsequent ``compiled``/sweep calls
    skip the exponential search entirely."""
    with _LOCK:
        _BUDGET_FAILURES.pop(formula, None)
        _remember(formula, circuit)


def ensure_tape(formula: CNF, circuit: Circuit) -> Tape:
    """The instruction tape for an already-compiled ``circuit``,
    without flattening twice across warm processes.

    Lookup order mirrors ``compiled``: the tape already attached to
    the circuit (tier 1 — tapes share the circuit's LRU lifetime),
    then the disk store's ``.tape`` sidecar (adopted only when it
    matches this circuit's node table), then a fresh flattening whose
    result is written through to the store best-effort.  A warm
    service therefore performs *zero* re-flattens on repeats — the
    ``tape_flattens`` counter in ``cache_info`` proves it.
    """
    if peek_tape(circuit) is None:
        store = get_circuit_store()
        if store is not None and hasattr(store, "get_tape"):
            stored = store.get_tape(formula)
            if stored is not None:
                adopt_tape(circuit, stored)
    fresh = peek_tape(circuit) is None
    tape = tape_for_circuit(circuit)
    if fresh:
        store = get_circuit_store()
        if store is not None and hasattr(store, "put_tape"):
            try:
                store.put_tape(formula, tape)
            except OSError:
                pass
    return tape


def tape_for(formula: CNF,
             budget_nodes: int | None = None) -> Tape:
    """Compile (or fetch) ``formula``'s circuit and return its
    instruction tape — the one-stop entry point for float sweeps."""
    return ensure_tape(formula, compiled(formula, budget_nodes))


def clear_circuit_cache() -> None:
    """Drop all tier-1 circuits, the budget-failure memo, and the
    counters (mainly for tests and benchmarks; the disk store is
    untouched)."""
    global _cache_nodes
    with _LOCK:
        _CIRCUIT_CACHE.clear()
        _BUDGET_FAILURES.clear()
        _cache_nodes = 0
        for key in _stats:
            _stats[key] = 0
    reset_tape_stats()


def probability(query: Query, tid: TID) -> Fraction:
    """Pr(Q) over the TID: ground to lineage, then compile + evaluate."""
    if query.is_false():
        return Fraction(0)
    formula = lineage(query, tid)
    return cnf_probability(formula, tid.probability)


def cnf_probability(formula: CNF, prob: Mapping | None = None,
                    default: Fraction | None = None) -> Fraction:
    """Exact Pr(F) for a monotone CNF with independent variables.

    ``prob`` maps variables to marginals; it may be a dict or a callable.
    Missing variables use ``default`` (or 1/2 when unspecified).  The
    first call for a given formula compiles it (cost comparable to one
    run of ``shannon_probability``); subsequent calls with any weight
    vector are linear in the circuit size.
    """
    return compiled(formula).probability(prob, default)


# ----------------------------------------------------------------------
# The budgeted "auto" policy: exact under budget, else estimate
# ----------------------------------------------------------------------
def _planned_budget(formula: CNF, budget_nodes, planner):
    """Resolve the effective budget, via the planner when one is
    given (``repro.booleans.adaptive.BudgetPlanner``)."""
    if planner is None:
        return budget_nodes
    return planner.budget_for(formula, budget_nodes)


def _observe(planner, formula: CNF, circuit: Circuit) -> None:
    """Report a successful compilation back to the budget planner so
    its circuit-size trajectory keeps learning online."""
    if planner is not None and len(formula):
        planner.observe(len(formula), circuit.size)


def cnf_probability_auto(formula: CNF, prob: Mapping | None = None,
                         default: Fraction | None = None, *,
                         budget_nodes: int | None = DEFAULT_BUDGET_NODES,
                         epsilon=DEFAULT_EPSILON,
                         delta=DEFAULT_DELTA,
                         rng=None,
                         estimator: str = "hoeffding",
                         relative_error=None,
                         planner=None) -> AutoProbability:
    """Pr(F) by the ``auto`` policy: exact compilation while it stays
    under ``budget_nodes`` interned nodes, Monte-Carlo estimation with
    an (epsilon, delta) guarantee once it blows past.

    ``estimator`` picks the past-budget sampler: ``"hoeffding"`` (the
    fixed-n PR 3 estimator), ``"adaptive"`` (sequential
    empirical-Bernstein, stops early on low-variance lineages), or
    ``"importance"`` (self-normalized tilted sampling for small
    probabilities); ``relative_error`` switches the sequential
    samplers to a relative-width target.  ``planner`` — a
    ``repro.booleans.adaptive.BudgetPlanner`` — overrides
    ``budget_nodes`` with a per-formula plan from the observed
    circuit-size trajectory, and successful compilations feed the
    trajectory back.

    The returned ``AutoProbability`` records which engine answered
    (``engine`` is ``"exact"``, ``"estimate"``, ``"adaptive"``, or
    ``"importance"``) and, on the sampled paths, the full
    ``ProbabilityEstimate`` with its interval.  A budget of None never
    degrades (plain ``cnf_probability`` semantics).
    """
    budget_nodes = _planned_budget(formula, budget_nodes, planner)
    try:
        circuit = compiled(formula, budget_nodes)
    except CompilationBudgetExceeded:
        estimate = estimate_with(estimator, formula, prob, epsilon,
                                 delta, rng, default, relative_error)
        return AutoProbability(estimate.estimate,
                               ENGINE_LABELS[estimator], estimate)
    _observe(planner, formula, circuit)
    return AutoProbability(circuit.probability(prob, default), "exact")


def probability_batch_auto(formula: CNF, weight_specs,
                           default: Fraction | None = None, *,
                           budget_nodes: int | None =
                           DEFAULT_BUDGET_NODES,
                           epsilon=DEFAULT_EPSILON,
                           delta=DEFAULT_DELTA,
                           rng=None,
                           numeric: str = "exact",
                           estimator: str = "hoeffding",
                           relative_error=None,
                           planner=None) -> AutoSweep:
    """Many-weight-vector ``auto``: one budgeted compilation backing a
    batched circuit pass, or — past budget — one estimate per weight
    vector via the chosen ``estimator`` (each vector re-samples; a
    single shared ``rng`` keeps the whole sweep reproducible, and the
    sequential samplers stop each vector as early as its variance
    allows).  ``planner`` plans the budget per formula as in
    ``cnf_probability_auto``.

    This is the primitive behind the ``auto``/``adaptive`` modes of
    the reduction sweeps (``block_matrix.z_matrix_direct``,
    ``type2_spectral.link_matrix_sweep``,
    ``TypeIIStructure.y_probability_sweep``) and of
    ``repro.evaluation.probability_sweep``.  ``numeric="float"``
    yields float values from either engine (the ``estimates`` list
    keeps the exact rationals).
    """
    weight_specs = list(weight_specs)
    budget_nodes = _planned_budget(formula, budget_nodes, planner)
    try:
        circuit = compiled(formula, budget_nodes)
    except CompilationBudgetExceeded:
        estimates = estimate_batch_with(
            estimator, formula, weight_specs, epsilon, delta, rng,
            default, relative_error)
        values = [e.estimate for e in estimates]
        if numeric == "float":
            values = [float(v) for v in values]
        return AutoSweep(values, ENGINE_LABELS[estimator], estimates)
    _observe(planner, formula, circuit)
    if numeric == "float":
        # Float batches run on the flat instruction tape; resolving it
        # here (rather than inside probability_batch) lets the disk
        # store's serialized sidecar satisfy the flattening, so warm
        # services never re-flatten.
        ensure_tape(formula, circuit)
    return AutoSweep(
        circuit.probability_batch(weight_specs, default, numeric),
        "exact")


# ----------------------------------------------------------------------
# The legacy recursive engine (validation oracle / benchmark baseline)
# ----------------------------------------------------------------------
def shannon_probability(formula: CNF, prob: Mapping | None = None,
                        default: Fraction | None = None) -> Fraction:
    """Pr(F) by the pre-compilation recursive engine.

    Recomputes from scratch on every call (the memo cache is per-call),
    exactly as ``cnf_probability`` behaved before the circuit backend;
    kept as an independent implementation for cross-checks and as the
    recompute-every-call baseline in ``benchmarks/bench_compile.py``.
    """
    lookup = make_lookup(prob, default)
    cache: dict[CNF, Fraction] = {}
    return _probability(formula, lookup, cache)


def _probability(formula: CNF, prob, cache) -> Fraction:
    if formula.is_true():
        return ONE
    if formula.is_false():
        return Fraction(0)
    hit = cache.get(formula)
    if hit is not None:
        return hit

    result = _probability_uncached(formula, prob, cache)
    cache[formula] = result
    return result


def _probability_uncached(formula: CNF, prob, cache) -> Fraction:
    # Unit clauses force their variable true.  Like the compiler
    # (circuit.py), pick the min-by-repr unit rather than the first in
    # frozenset iteration order, which varies with PYTHONHASHSEED —
    # the result is the same either way, but the recursion trace (and
    # hence timing and cache shape) stays run-to-run deterministic.
    units = [clause for clause in formula.clauses if len(clause) == 1]
    if units:
        var = min((next(iter(c)) for c in units), key=repr)
        p = Fraction(prob(var))
        if p == 0:
            return Fraction(0)
        return p * _probability(formula.condition(var, True),
                                prob, cache)

    groups = clause_components(formula)
    if len(groups) > 1:
        result = ONE
        for group in groups:
            result *= _probability(CNF._from_minimized(group), prob, cache)
            if result == 0:
                return result
        return result

    var = branch_variable(formula)
    p = Fraction(prob(var))
    high = _probability(formula.condition(var, True), prob, cache)
    if p == ONE:
        return high
    low = _probability(formula.condition(var, False), prob, cache)
    return p * high + (ONE - p) * low
