"""Exact weighted model counting over monotone CNF lineages.

This is the "#P oracle" of the reductions: given independent Boolean
variables with rational marginals, compute Pr(F) exactly.  The engine
recursively applies, in order:

1. trivial formulas;
2. independent-component factorization (Pr multiplies);
3. unit-clause conditioning ({X} forces X true);
4. Shannon expansion on a most-shared variable,

memoizing on the canonical CNF.  The block databases of the reductions
decompose into chains whose cut variables the expansion finds quickly,
so this is fast on all construction-sized inputs while remaining fully
general (and exponential in the worst case — it is, after all, a #P
oracle).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from repro.booleans.cnf import CNF
from repro.booleans.connectivity import clause_components
from repro.core.queries import Query
from repro.tid.database import TID
from repro.tid.lineage import lineage

ONE = Fraction(1)


def probability(query: Query, tid: TID) -> Fraction:
    """Pr(Q) over the TID: ground to lineage, then weighted-model-count."""
    if query.is_false():
        return Fraction(0)
    formula = lineage(query, tid)
    return cnf_probability(formula, tid.probability)


def cnf_probability(formula: CNF, prob: Mapping | None = None,
                    default: Fraction | None = None) -> Fraction:
    """Exact Pr(F) for a monotone CNF with independent variables.

    ``prob`` maps variables to marginals; it may be a dict or a callable.
    Missing variables use ``default`` (or 1/2 when unspecified).
    """
    if callable(prob):
        lookup = prob
    else:
        table = dict(prob or {})
        fallback = Fraction(1, 2) if default is None else Fraction(default)
        lookup = lambda v: table.get(v, fallback)  # noqa: E731
    cache: dict[CNF, Fraction] = {}
    return _probability(formula, lookup, cache)


def _probability(formula: CNF, prob, cache) -> Fraction:
    if formula.is_true():
        return ONE
    if formula.is_false():
        return Fraction(0)
    hit = cache.get(formula)
    if hit is not None:
        return hit

    result = _probability_uncached(formula, prob, cache)
    cache[formula] = result
    return result


def _probability_uncached(formula: CNF, prob, cache) -> Fraction:
    # Unit clauses force their variable true.
    for clause in formula.clauses:
        if len(clause) == 1:
            (var,) = clause
            p = Fraction(prob(var))
            if p == 0:
                return Fraction(0)
            return p * _probability(formula.condition(var, True),
                                    prob, cache)

    groups = clause_components(formula)
    if len(groups) > 1:
        result = ONE
        for group in groups:
            result *= _probability(CNF(group), prob, cache)
            if result == 0:
                return result
        return result

    var = _branch_variable(formula)
    p = Fraction(prob(var))
    high = _probability(formula.condition(var, True), prob, cache)
    if p == ONE:
        return high
    low = _probability(formula.condition(var, False), prob, cache)
    return p * high + (ONE - p) * low


def _branch_variable(formula: CNF):
    counts: dict[object, int] = {}
    for clause in formula.clauses:
        for var in clause:
            counts[var] = counts.get(var, 0) + 1
    return max(counts, key=lambda v: (counts[v], repr(v)))
