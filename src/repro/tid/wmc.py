"""Exact weighted model counting over monotone CNF lineages.

This is the "#P oracle" of the reductions: given independent Boolean
variables with rational marginals, compute Pr(F) exactly.  Since PR 1
the default engine is *knowledge compilation*: the formula is compiled
once into a d-DNNF circuit (``repro.booleans.circuit``) whose trace
mirrors the classic search — unit-clause conditioning,
independent-component factorization, Shannon expansion on a most-shared
variable — and every evaluation is then a single linear pass over the
circuit.  A module-level cache keyed on the canonical CNF makes the
repeated-evaluation workloads of the reductions (block-matrix grids,
Type-II sweeps, Vandermonde interpolation) pay the exponential search
at most once per formula.

The pre-compilation recursive engine survives as
``shannon_probability``; it restarts its search on every call and is
kept as an independent validation oracle and as the benchmark baseline
(``benchmarks/bench_compile.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from fractions import Fraction
from typing import Mapping

from repro.booleans.circuit import (
    Circuit,
    branch_variable,
    compile_cnf,
    make_lookup,
)
from repro.booleans.cnf import CNF
from repro.booleans.connectivity import clause_components
from repro.core.queries import Query
from repro.tid.database import TID
from repro.tid.lineage import lineage

ONE = Fraction(1)

#: Module-level compilation cache: canonical CNF -> compiled circuit,
#: evicted least-recently-used beyond ``_CACHE_LIMIT`` entries.
_CIRCUIT_CACHE: OrderedDict[CNF, Circuit] = OrderedDict()
_CACHE_LIMIT = 1024


def compiled(formula: CNF) -> Circuit:
    """The d-DNNF circuit of ``formula``, compiled at most once.

    Equal CNFs (structural equality is logical equivalence for
    minimized monotone CNFs) share one circuit across the whole
    process; the cache is LRU-bounded so one-shot giant lineages cannot
    pin memory forever.
    """
    circuit = _CIRCUIT_CACHE.get(formula)
    if circuit is not None:
        _CIRCUIT_CACHE.move_to_end(formula)
        return circuit
    circuit = compile_cnf(formula)
    _CIRCUIT_CACHE[formula] = circuit
    if len(_CIRCUIT_CACHE) > _CACHE_LIMIT:
        _CIRCUIT_CACHE.popitem(last=False)
    return circuit


def clear_circuit_cache() -> None:
    """Drop all cached circuits (mainly for tests and benchmarks)."""
    _CIRCUIT_CACHE.clear()


def probability(query: Query, tid: TID) -> Fraction:
    """Pr(Q) over the TID: ground to lineage, then compile + evaluate."""
    if query.is_false():
        return Fraction(0)
    formula = lineage(query, tid)
    return cnf_probability(formula, tid.probability)


def cnf_probability(formula: CNF, prob: Mapping | None = None,
                    default: Fraction | None = None) -> Fraction:
    """Exact Pr(F) for a monotone CNF with independent variables.

    ``prob`` maps variables to marginals; it may be a dict or a callable.
    Missing variables use ``default`` (or 1/2 when unspecified).  The
    first call for a given formula compiles it (cost comparable to one
    run of ``shannon_probability``); subsequent calls with any weight
    vector are linear in the circuit size.
    """
    return compiled(formula).probability(prob, default)


# ----------------------------------------------------------------------
# The legacy recursive engine (validation oracle / benchmark baseline)
# ----------------------------------------------------------------------
def shannon_probability(formula: CNF, prob: Mapping | None = None,
                        default: Fraction | None = None) -> Fraction:
    """Pr(F) by the pre-compilation recursive engine.

    Recomputes from scratch on every call (the memo cache is per-call),
    exactly as ``cnf_probability`` behaved before the circuit backend;
    kept as an independent implementation for cross-checks and as the
    recompute-every-call baseline in ``benchmarks/bench_compile.py``.
    """
    lookup = make_lookup(prob, default)
    cache: dict[CNF, Fraction] = {}
    return _probability(formula, lookup, cache)


def _probability(formula: CNF, prob, cache) -> Fraction:
    if formula.is_true():
        return ONE
    if formula.is_false():
        return Fraction(0)
    hit = cache.get(formula)
    if hit is not None:
        return hit

    result = _probability_uncached(formula, prob, cache)
    cache[formula] = result
    return result


def _probability_uncached(formula: CNF, prob, cache) -> Fraction:
    # Unit clauses force their variable true.
    for clause in formula.clauses:
        if len(clause) == 1:
            (var,) = clause
            p = Fraction(prob(var))
            if p == 0:
                return Fraction(0)
            return p * _probability(formula.condition(var, True),
                                    prob, cache)

    groups = clause_components(formula)
    if len(groups) > 1:
        result = ONE
        for group in groups:
            result *= _probability(CNF._from_minimized(group), prob, cache)
            if result == 0:
                return result
        return result

    var = branch_variable(formula)
    p = Fraction(prob(var))
    high = _probability(formula.condition(var, True), prob, cache)
    if p == ONE:
        return high
    low = _probability(formula.condition(var, False), prob, cache)
    return p * high + (ONE - p) * low
