"""Brute-force possible-worlds evaluation (the validation oracle).

Enumerates all 2^n assignments to the uncertain tuples.  Exponential by
construction — used only to cross-validate the WMC engine, the lifted
evaluator, and the block-product formulas on small instances.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product as iter_product
from typing import Mapping

from repro.booleans.cnf import CNF
from repro.core.queries import Query
from repro.tid.database import TID
from repro.tid.lineage import lineage

ONE = Fraction(1)


def cnf_probability_brute(formula: CNF,
                          prob: Mapping | None = None,
                          default: Fraction = Fraction(1, 2)) -> Fraction:
    """Pr(F) by summing over all assignments of F's variables."""
    if callable(prob):
        lookup = prob
    else:
        table = dict(prob or {})
        lookup = lambda v: table.get(v, default)  # noqa: E731
    variables = sorted(formula.variables(), key=repr)
    total = Fraction(0)
    for bits in iter_product((False, True), repeat=len(variables)):
        weight = ONE
        true_vars = []
        for var, bit in zip(variables, bits):
            p = Fraction(lookup(var))
            weight *= p if bit else ONE - p
            if bit:
                true_vars.append(var)
        if weight and formula.evaluate(true_vars):
            total += weight
    return total


def probability_brute(query: Query, tid: TID) -> Fraction:
    """Pr(Q) over the TID by brute-force world enumeration."""
    if query.is_false():
        return Fraction(0)
    formula = lineage(query, tid)
    return cnf_probability_brute(formula, tid.probability)


def count_models(formula: CNF, variables=None) -> int:
    """The number of satisfying assignments over ``variables``
    (default: the formula's variables)."""
    variables = sorted(variables if variables is not None
                       else formula.variables(), key=repr)
    count = 0
    for bits in iter_product((False, True), repeat=len(variables)):
        true_vars = [v for v, bit in zip(variables, bits) if bit]
        if formula.evaluate(true_vars):
            count += 1
    return count
