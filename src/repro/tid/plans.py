"""Safe plans: compiled, inspectable PTIME evaluation for safe queries.

The lifted evaluator (``repro.tid.lifted``) computes Pr(Q) procedurally.
This module compiles the same algorithm into an explicit *plan tree* —
the classical "safe plan" artifact of probabilistic databases — that

* can be pretty-printed (showing exactly why the query is tractable:
  which independence the optimizer exploited, where
  inclusion-exclusion runs, where the unary atom is Shannon-expanded);
* evaluates over any TID in time O(|U| * |V|) per component;
* is validated against the procedural evaluator and the exact WMC
  engine in the test-suite.

Plan node algebra:

    IndependentJoin [components multiply]
      DomainProduct(side) [factors over u in U or v in V]
        Shannon(unary) [condition on R(u) / T(v)]
          InclusionExclusion [over Type-II subclause choices]
            LocalProduct [per opposite-domain constant]
              LocalFormula [constant-size CNF of binary atoms]
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations, product as iter_product
from typing import Sequence

from repro.booleans.cnf import CNF
from repro.core.queries import Query
from repro.core.safety import connected_components, is_unsafe
from repro.core.symbols import LEFT_UNARY, RIGHT_UNARY
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.lifted import UnsafeQueryError
from repro.tid.wmc import cnf_probability

ONE = Fraction(1)
ZERO = Fraction(0)


@dataclass(frozen=True)
class LocalFormula:
    """Pr of a constant-size CNF over the binary atoms at one (u, v)."""

    subclauses: tuple[frozenset[str], ...]

    def evaluate(self, tid: TID, u, v) -> Fraction:
        formula = CNF(frozenset(j) for j in self.subclauses)
        return cnf_probability(
            formula, lambda s: tid.probability(s_tuple(s, u, v)))

    def describe(self) -> str:
        inner = " & ".join(
            "(" + "|".join(sorted(j)) + ")" for j in self.subclauses)
        return f"local {inner or 'TRUE'}"


@dataclass(frozen=True)
class LocalProduct:
    """prod over the opposite domain of a local formula (independence
    across the inner constants)."""

    formula: LocalFormula
    left_side: bool  # the *outer* variable is on the left

    def evaluate(self, tid: TID, w) -> Fraction:
        inner = tid.right_domain if self.left_side else tid.left_domain
        total = ONE
        for z in inner:
            u, v = (w, z) if self.left_side else (z, w)
            total *= self.formula.evaluate(tid, u, v)
            if total == 0:
                return ZERO
        return total

    def describe(self) -> str:
        domain = "v in V" if self.left_side else "u in U"
        return f"prod_{{{domain}}} {self.formula.describe()}"


@dataclass(frozen=True)
class InclusionExclusion:
    """Signed sum over subclause choices of Type-II disjunctions."""

    terms: tuple[tuple[int, LocalProduct], ...]

    def evaluate(self, tid: TID, w) -> Fraction:
        return sum((sign * term.evaluate(tid, w)
                    for sign, term in self.terms), ZERO)

    def describe(self) -> str:
        if len(self.terms) == 1 and self.terms[0][0] == 1:
            return self.terms[0][1].describe()
        parts = [f"{'+' if sign > 0 else '-'} {term.describe()}"
                 for sign, term in self.terms]
        return "incl-excl[ " + " ".join(parts) + " ]"


@dataclass(frozen=True)
class Shannon:
    """Condition on the unary atom of the outer constant."""

    unary: str | None
    when_false: InclusionExclusion | None
    when_true: InclusionExclusion | None

    def evaluate(self, tid: TID, w) -> Fraction:
        if self.unary is None:
            return self.when_false.evaluate(tid, w)
        token = r_tuple(w) if self.unary == LEFT_UNARY else t_tuple(w)
        p = tid.probability(token)
        total = ZERO
        if p != 1 and self.when_false is not None:
            total += (ONE - p) * self.when_false.evaluate(tid, w)
        if p != 0:
            high = ONE if self.when_true is None \
                else self.when_true.evaluate(tid, w)
            total += p * high
        return total

    def describe(self) -> str:
        if self.unary is None:
            return self.when_false.describe()
        false_part = "0" if self.when_false is None \
            else self.when_false.describe()
        true_part = "1" if self.when_true is None \
            else self.when_true.describe()
        return (f"shannon({self.unary}): [0 -> {false_part}] "
                f"[1 -> {true_part}]")


@dataclass(frozen=True)
class DomainProduct:
    """prod over the shared-variable domain of the per-constant factor
    (the first observation before Definition 2.4)."""

    left_side: bool
    factor: Shannon

    def evaluate(self, tid: TID) -> Fraction:
        outer = tid.left_domain if self.left_side else tid.right_domain
        total = ONE
        for w in outer:
            total *= self.factor.evaluate(tid, w)
            if total == 0:
                return ZERO
        return total

    def describe(self, indent: str = "") -> str:
        domain = "u in U" if self.left_side else "v in V"
        return (f"{indent}prod_{{{domain}}}\n"
                f"{indent}  {self.factor.describe()}")


@dataclass(frozen=True)
class IndependentJoin:
    """Symbol-disjoint components multiply (the second observation)."""

    components: tuple[DomainProduct, ...]

    def evaluate(self, tid: TID) -> Fraction:
        total = ONE
        for component in self.components:
            total *= component.evaluate(tid)
            if total == 0:
                return ZERO
        return total

    def describe(self) -> str:
        lines = ["independent-join"]
        for component in self.components:
            lines.append(component.describe(indent="  "))
        return "\n".join(lines)


def safe_plan(query: Query) -> IndependentJoin:
    """Compile a safe bipartite query into a plan tree.

    Raises :class:`UnsafeQueryError` on unsafe input — there is no safe
    plan for those (that is the dichotomy).
    """
    if query.is_constant():
        raise ValueError("constant queries need no plan")
    if is_unsafe(query):
        raise UnsafeQueryError(f"no safe plan exists for {query!r}")
    if query.full_clauses:
        raise UnsafeQueryError("H0-like queries are outside plan space")
    components = []
    for component in connected_components(query):
        components.append(_compile_component(component))
    return IndependentJoin(tuple(components))


def _compile_component(component: Query) -> DomainProduct:
    has_left = any(c.side == "left" for c in component.clauses)
    has_right = any(c.side == "right" for c in component.clauses)
    if has_left and has_right:  # pragma: no cover - safety excludes it
        raise UnsafeQueryError("component touches both sides")
    left_side = has_left or not has_right
    side = "left" if left_side else "right"
    unary_symbol = LEFT_UNARY if left_side else RIGHT_UNARY

    side_clauses = [c for c in component.clauses if c.side == side]
    middles = tuple(j for c in component.clauses if c.side == "middle"
                    for j in c.subclauses)
    has_unary = any(unary_symbol in c.unaries for c in side_clauses)

    when_false = _compile_choices(side_clauses, middles, left_side,
                                  unary_true=False)
    if has_unary:
        when_true = _compile_choices(side_clauses, middles, left_side,
                                     unary_true=True)
        factor = Shannon(unary_symbol, when_false, when_true)
    else:
        factor = Shannon(None, when_false, None)
    return DomainProduct(left_side, factor)


def _compile_choices(side_clauses, middles: Sequence[frozenset],
                     left_side: bool,
                     unary_true: bool) -> InclusionExclusion | None:
    unary_symbol = LEFT_UNARY if left_side else RIGHT_UNARY
    active = [c for c in side_clauses
              if not (unary_true and unary_symbol in c.unaries)]
    if any(not c.subclauses for c in active):
        return None  # a falsified unary-only clause: contributes 0
    subset_lists = []
    for clause in active:
        options = []
        subs = clause.subclauses
        for size in range(1, len(subs) + 1):
            for combo in combinations(range(len(subs)), size):
                sign = -1 if size % 2 == 0 else 1
                options.append((sign, [subs[i] for i in combo]))
        subset_lists.append(options)
    terms = []
    for picks in iter_product(*subset_lists):
        sign = 1
        chosen: list[frozenset] = list(middles)
        for s, subclauses in picks:
            sign *= s
            chosen.extend(subclauses)
        local = LocalFormula(tuple(
            sorted(set(map(frozenset, chosen)),
                   key=lambda j: (len(j), sorted(j)))))
        terms.append((sign, LocalProduct(local, left_side)))
    return InclusionExclusion(tuple(terms))
