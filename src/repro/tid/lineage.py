"""Lineage: grounding a forall-CNF query over a TID (footnote 4).

The lineage Phi_Delta(Q) is the monotone CNF over tuple variables
obtained by expanding the universal quantifiers over the (bipartite)
domain.  Tuples with probability 1 are *certain*: their literals are
true, satisfying any clause containing them; tuples with probability 0
are absent and their literals are dropped.  The remaining tuples become
Boolean variables.

Grounding rules per clause shape (u ranges over U, v over V):

* middle  S_J:            clause {S_j(u,v) | j in J} for every (u, v);
* full    R v S_J v T:    clause {R(u), T(v)} ∪ {S_j(u,v)} per (u, v);
* left    R? v OR_l Ay.S_{J_l}: per u, the CNF disjunction of R(u) and
  the per-subclause conjunctions AND_v {S_j(u,v) | j in J_l};
* right:  mirror image.

Type II clauses distribute the disjunction over |V| conjuncts per
subclause, producing up to |V|^m clauses per u — polynomial for fixed
query, exactly as the paper's footnote computes.
"""

from __future__ import annotations

from fractions import Fraction

from repro.booleans.cnf import CNF
from repro.core.queries import Query
from repro.core.symbols import LEFT_UNARY, RIGHT_UNARY
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple

ONE = Fraction(1)
ZERO = Fraction(0)


def _literal_cnf(tid: TID, token) -> CNF:
    """The CNF of a single ground atom under the TID's certain tuples."""
    p = tid.probability(token)
    if p == ONE:
        return CNF.TRUE
    if p == ZERO:
        return CNF.FALSE
    return CNF([[token]])


def _subclause_cnf(tid: TID, symbols, u, v) -> CNF:
    """S_J grounded at (u, v): the disjunction of its atoms."""
    clause = []
    for symbol in sorted(symbols):
        p = tid.probability(s_tuple(symbol, u, v))
        if p == ONE:
            return CNF.TRUE
        if p != ZERO:
            clause.append(s_tuple(symbol, u, v))
    if not clause:
        return CNF.FALSE
    return CNF([clause])


def lineage(query: Query, tid: TID) -> CNF:
    """Phi_Delta(Q): the lineage CNF of ``query`` over ``tid``."""
    if query.is_false():
        return CNF.FALSE
    parts: list[CNF] = []
    for clause in query.clauses:
        part = _clause_lineage(clause, tid)
        if part.is_false():
            return CNF.FALSE
        parts.append(part)
    return CNF.conjunction(parts)


def _clause_lineage(clause, tid: TID) -> CNF:
    if clause.side == "middle" or clause.side == "full":
        return _ground_pointwise(clause, tid)
    if clause.side == "left":
        return CNF.conjunction(
            _left_clause_at(clause, tid, u) for u in tid.left_domain)
    if clause.side == "right":
        return CNF.conjunction(
            _right_clause_at(clause, tid, v) for v in tid.right_domain)
    raise AssertionError(clause.side)  # pragma: no cover


def _ground_pointwise(clause, tid: TID) -> CNF:
    parts = []
    (subclause,) = clause.subclauses or (frozenset(),)
    for u in tid.left_domain:
        for v in tid.right_domain:
            ground = _subclause_cnf(tid, subclause, u, v)
            if LEFT_UNARY in clause.unaries:
                ground = ground.disjoin(_literal_cnf(tid, r_tuple(u)))
            if RIGHT_UNARY in clause.unaries:
                ground = ground.disjoin(_literal_cnf(tid, t_tuple(v)))
            if ground.is_false():
                return CNF.FALSE
            parts.append(ground)
    return CNF.conjunction(parts)


def _left_clause_at(clause, tid: TID, u) -> CNF:
    """R(u)? v OR_l AND_v S_{J_l}(u, v)."""
    disjuncts: list[CNF] = []
    if LEFT_UNARY in clause.unaries:
        disjuncts.append(_literal_cnf(tid, r_tuple(u)))
    for subclause in clause.subclauses:
        disjuncts.append(CNF.conjunction(
            _subclause_cnf(tid, subclause, u, v)
            for v in tid.right_domain))
    return CNF.disjunction(disjuncts)


def _right_clause_at(clause, tid: TID, v) -> CNF:
    """T(v)? v OR_l AND_u S_{J_l}(u, v)."""
    disjuncts: list[CNF] = []
    if RIGHT_UNARY in clause.unaries:
        disjuncts.append(_literal_cnf(tid, t_tuple(v)))
    for subclause in clause.subclauses:
        disjuncts.append(CNF.conjunction(
            _subclause_cnf(tid, subclause, u, v)
            for u in tid.left_domain))
    return CNF.disjunction(disjuncts)
