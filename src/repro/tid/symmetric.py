"""Symmetric tuple-independent databases: the tractable restriction of
Section 1.1.

The introduction contrasts the paper's negative result (restricting
*probability values* to {0, 1/2, 1} does not help) with known positive
results: Van den Broeck et al. prove that *symmetric* databases — every
tuple of a relation carries the same probability — make FO2 evaluation
polynomial-time, even for unsafe queries.  This module reproduces that
phenomenon on our bipartite fragment:

* For *pointwise* queries (every clause grounds per pair (u, v):
  left/right Type I, middle, and full clauses — including the hard
  H0!), conditioning on the number k of true R-tuples and l of true
  T-tuples makes all pairs independent:

      Pr(Q) = sum_{k,l} C(n,k) C(m,l) p_R^k (1-p_R)^{n-k}
              p_T^l (1-p_T)^{m-l} *
              q_11^{kl} q_10^{k(m-l)} q_01^{(n-k)l} q_00^{(n-k)(m-l)},

  an O(n * m) sum — versus #P-hardness on general databases.
* With Type-II clauses on one side, conditioning on the opposite unary
  count still works: per-constant factors depend only on the count and
  multiply (inclusion-exclusion over subclause choices, as in the
  lifted evaluator).
* Type-II clauses on *both* sides are rejected (outside this
  restriction's easy fragment).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations, product as iter_product
from math import comb
from typing import Mapping

from repro.booleans.cnf import CNF
from repro.core.queries import Query
from repro.core.symbols import LEFT_UNARY, RIGHT_UNARY
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple
from repro.tid.wmc import cnf_probability

ONE = Fraction(1)
ZERO = Fraction(0)


@dataclass(frozen=True)
class SymmetricTID:
    """A bipartite TID where every relation is symmetric: all R-tuples
    share probability ``p_left``, all T-tuples ``p_right``, and every
    binary symbol S has a single probability ``p_binary[S]``."""

    n_left: int
    n_right: int
    p_left: Fraction
    p_right: Fraction
    p_binary: Mapping[str, Fraction]

    def materialize(self) -> TID:
        """The explicit TID (for cross-validation against exact WMC)."""
        U = [f"u{i}" for i in range(self.n_left)]
        V = [f"v{j}" for j in range(self.n_right)]
        probs = {}
        for u in U:
            probs[r_tuple(u)] = Fraction(self.p_left)
        for v in V:
            probs[t_tuple(v)] = Fraction(self.p_right)
        for symbol, p in self.p_binary.items():
            for u in U:
                for v in V:
                    probs[s_tuple(symbol, u, v)] = Fraction(p)
        return TID(U, V, probs)


def symmetric_probability(query: Query, stid: SymmetricTID) -> Fraction:
    """Pr(Q) over a symmetric TID, in polynomial time in the domain."""
    if query.is_false():
        return ZERO
    if query.is_true():
        return ONE
    has_left_t2 = any(c.side == "left" and c.is_type2
                      for c in query.clauses)
    has_right_t2 = any(c.side == "right" and c.is_type2
                       for c in query.clauses)
    if has_left_t2 and has_right_t2:
        raise ValueError(
            "Type-II clauses on both sides are outside the symmetric "
            "fast path; use the exact engine")
    if has_right_t2:
        return symmetric_probability(_mirror(query), _mirror_tid(stid))
    if has_left_t2:
        return _one_sided_type2(query, stid)
    return _pointwise(query, stid)


# ----------------------------------------------------------------------
# Pointwise queries (left/right Type I, middle, full): (k, l) double sum
# ----------------------------------------------------------------------
def _pair_probability(query: Query, stid: SymmetricTID,
                      r_value: bool, t_value: bool) -> Fraction:
    """Pr that one pair (u, v) satisfies all pointwise constraints,
    given the unary values."""
    clauses = []
    for clause in query.clauses:
        if LEFT_UNARY in clause.unaries and r_value:
            continue
        if RIGHT_UNARY in clause.unaries and t_value:
            continue
        subs = clause.subclauses
        if not subs:
            return ZERO  # an unsatisfied unary-only clause
        (j,) = subs
        clauses.append(j)
    formula = CNF(clauses)
    return cnf_probability(
        formula, lambda symbol: Fraction(stid.p_binary.get(symbol, ONE)))


def _pointwise(query: Query, stid: SymmetricTID) -> Fraction:
    n, m = stid.n_left, stid.n_right
    p_r, p_t = Fraction(stid.p_left), Fraction(stid.p_right)
    q = {(a, b): _pair_probability(query, stid, bool(a), bool(b))
         for a in (0, 1) for b in (0, 1)}
    total = ZERO
    for k in range(n + 1):
        weight_k = comb(n, k) * p_r ** k * (1 - p_r) ** (n - k)
        if weight_k == 0:
            continue
        for length in range(m + 1):
            weight_l = comb(m, length) * p_t ** length \
                * (1 - p_t) ** (m - length)
            if weight_l == 0:
                continue
            term = (q[(1, 1)] ** (k * length)
                    * q[(1, 0)] ** (k * (m - length))
                    * q[(0, 1)] ** ((n - k) * length)
                    * q[(0, 0)] ** ((n - k) * (m - length)))
            total += weight_k * weight_l * term
    return total


# ----------------------------------------------------------------------
# One-sided Type II: condition on the T-count, per-u factors multiply
# ----------------------------------------------------------------------
def _one_sided_type2(query: Query, stid: SymmetricTID) -> Fraction:
    if query.full_clauses:
        raise ValueError("full clauses cannot mix with Type-II clauses")
    n, m = stid.n_left, stid.n_right
    p_r, p_t = Fraction(stid.p_left), Fraction(stid.p_right)
    lookup = lambda s: Fraction(stid.p_binary.get(s, ONE))  # noqa: E731

    left_clauses = list(query.left_clauses)
    middles = [j for c in query.middle_clauses for j in c.subclauses]
    # Right Type-I clauses: satisfied at T(v) = 1, otherwise their
    # subclause joins the per-(u, v) constraints.
    right_subs = [j for c in query.right_clauses for j in c.subclauses]

    def local(subclauses) -> Fraction:
        return cnf_probability(CNF(subclauses), lookup)

    def factor(t_true: int) -> Fraction:
        """Pr of the per-u event given l true T-tuples."""
        total = ZERO
        has_unary = any(LEFT_UNARY in c.unaries for c in left_clauses)
        cases = [(1 - p_r, False), (p_r, True)] if has_unary \
            else [(ONE, False)]
        for weight, r_true in cases:
            if weight == 0:
                continue
            active = [c for c in left_clauses
                      if not (r_true and LEFT_UNARY in c.unaries)]
            if any(not c.subclauses for c in active):
                continue
            total += weight * _choice_sum(
                active, middles, right_subs, t_true, m, local)
        return total

    total = ZERO
    for length in range(m + 1):
        weight = comb(m, length) * p_t ** length \
            * (1 - p_t) ** (m - length)
        if weight == 0:
            continue
        total += weight * factor(length) ** n
    return total


def _choice_sum(active, middles, right_subs, t_true, m, local) -> Fraction:
    """Inclusion-exclusion over Type-II subclause choices; each signed
    term is q1^l * q0^(m-l) with q depending on the T-value."""
    subset_lists = []
    for clause in active:
        options = []
        subs = clause.subclauses
        for size in range(1, len(subs) + 1):
            for combo in combinations(range(len(subs)), size):
                sign = -1 if size % 2 == 0 else 1
                options.append((sign, [subs[i] for i in combo]))
        subset_lists.append(options)
    total = ZERO
    for picks in iter_product(*subset_lists):
        sign = 1
        chosen = list(middles)
        for s, subclauses in picks:
            sign *= s
            chosen.extend(subclauses)
        q1 = local(chosen)
        q0 = local(chosen + right_subs)
        total += sign * q1 ** t_true * q0 ** (m - t_true)
    return total


# ----------------------------------------------------------------------
# Mirroring (swap the roles of the two domains)
# ----------------------------------------------------------------------
def _mirror(query: Query) -> Query:
    from repro.core.clauses import Clause
    swapped = []
    for clause in query.clauses:
        if clause.side == "middle":
            swapped.append(clause)
            continue
        side = {"left": "right", "right": "left",
                "full": "full"}[clause.side]
        unaries = set()
        if LEFT_UNARY in clause.unaries:
            unaries.add(RIGHT_UNARY)
        if RIGHT_UNARY in clause.unaries:
            unaries.add(LEFT_UNARY)
        swapped.append(Clause(side, unaries, clause.subclauses))
    return Query(swapped)


def _mirror_tid(stid: SymmetricTID) -> SymmetricTID:
    return SymmetricTID(stid.n_right, stid.n_left, stid.p_right,
                        stid.p_left, stid.p_binary)
