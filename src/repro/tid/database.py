"""Bipartite tuple-independent probabilistic databases (Section 2).

A TID is a pair (Dom, p): a bipartite domain Dom = U  union  V plus a
probability for every ground tuple.  Ground tuples over the restricted
vocabulary are

* ``("R", u)``     — the left unary atom, u in U;
* ``("T", v)``     — the right unary atom, v in V;
* ``(S, u, v)``    — a binary atom, S a binary symbol name.

Only tuples with probability != default are stored; the *default*
probability is configurable (the paper's block constructions default
unmentioned tuples to 1).  All probabilities are exact Fractions.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from repro.core.symbols import LEFT_UNARY, RIGHT_UNARY

Tuple = tuple

ZERO = Fraction(0)
HALF = Fraction(1, 2)
ONE = Fraction(1)


def r_tuple(u) -> Tuple:
    return (LEFT_UNARY, u)


def t_tuple(v) -> Tuple:
    return (RIGHT_UNARY, v)


def s_tuple(symbol: str, u, v) -> Tuple:
    return (symbol, u, v)


class TID:
    """An immutable bipartite tuple-independent database."""

    __slots__ = ("left_domain", "right_domain", "probs", "default", "_hash")

    def __init__(self, left_domain: Iterable, right_domain: Iterable,
                 probs: Mapping[Tuple, Fraction] | None = None,
                 default: Fraction = ONE):
        self.left_domain = tuple(dict.fromkeys(left_domain))
        self.right_domain = tuple(dict.fromkeys(right_domain))
        if set(self.left_domain) & set(self.right_domain):
            raise ValueError("left and right domains must be disjoint")
        self.default = Fraction(default)
        cleaned: dict[Tuple, Fraction] = {}
        left = set(self.left_domain)
        right = set(self.right_domain)
        for token, value in (probs or {}).items():
            value = Fraction(value)
            if not 0 <= value <= 1:
                raise ValueError(f"probability out of range: {token}={value}")
            self._check_token(token, left, right)
            if value != self.default:
                cleaned[token] = value
        self.probs = cleaned
        self._hash: int | None = None

    @staticmethod
    def _check_token(token: Tuple, left: set, right: set) -> None:
        if len(token) == 2 and token[0] == LEFT_UNARY:
            if token[1] not in left:
                raise ValueError(f"R-tuple over non-left constant: {token}")
        elif len(token) == 2 and token[0] == RIGHT_UNARY:
            if token[1] not in right:
                raise ValueError(f"T-tuple over non-right constant: {token}")
        elif len(token) == 3:
            if token[0] in (LEFT_UNARY, RIGHT_UNARY):
                raise ValueError(f"binary tuple with unary symbol: {token}")
            if token[1] not in left or token[2] not in right:
                raise ValueError(f"binary tuple off-domain: {token}")
        else:
            raise ValueError(f"malformed tuple: {token}")

    # ------------------------------------------------------------------
    def probability(self, token: Tuple) -> Fraction:
        return self.probs.get(token, self.default)

    def with_probability(self, token: Tuple, value) -> "TID":
        probs = dict(self.probs)
        probs[token] = Fraction(value)
        return TID(self.left_domain, self.right_domain, probs, self.default)

    def uncertain_tuples(self) -> list[Tuple]:
        """Tuples with probability strictly between 0 and 1."""
        return sorted(
            (t for t, p in self.probs.items() if 0 < p < 1),
            key=repr)

    def probability_values(self) -> frozenset[Fraction]:
        """The set of probability values in use (including the default)."""
        return frozenset(self.probs.values()) | {self.default}

    def restrict_check(self, allowed: Iterable[Fraction]) -> bool:
        """Do all probabilities lie in ``allowed``?  (GFOMC restricts to
        {0, 1/2, 1}; FOMC for forall-CNF to {1/2, 1}.)"""
        allowed = {Fraction(a) for a in allowed}
        return self.probability_values() <= allowed

    # ------------------------------------------------------------------
    def union(self, other: "TID") -> "TID":
        """Union of two TIDs; overlapping tuples must agree."""
        if self.default != other.default:
            raise ValueError("defaults differ")
        probs = dict(self.probs)
        for token, value in other.probs.items():
            if probs.get(token, value) != value:
                raise ValueError(f"conflicting probability for {token}")
            probs[token] = value
        return TID(self.left_domain + other.left_domain,
                   self.right_domain + other.right_domain,
                   probs, self.default)

    def __eq__(self, other) -> bool:
        if not isinstance(other, TID):
            return NotImplemented
        return (set(self.left_domain) == set(other.left_domain)
                and set(self.right_domain) == set(other.right_domain)
                and self.probs == other.probs
                and self.default == other.default)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((frozenset(self.left_domain),
                               frozenset(self.right_domain),
                               frozenset(self.probs.items()), self.default))
        return self._hash

    def __repr__(self) -> str:
        return (f"TID(U={list(self.left_domain)}, V={list(self.right_domain)}, "
                f"{len(self.probs)} non-default tuples, "
                f"default={self.default})")
