"""Tuple-independent probabilistic databases and query evaluation.

Provides bipartite TIDs with exact rational probabilities, lineage
construction (grounding a forall-CNF query into a monotone CNF), an
exact weighted-model-counting engine, a brute-force possible-worlds
evaluator (for cross-validation), and the polynomial-time lifted
evaluator for safe queries.
"""

from repro.tid.database import TID, Tuple, r_tuple, t_tuple, s_tuple
from repro.tid.lineage import lineage
from repro.tid.wmc import probability, cnf_probability
from repro.tid.brute import probability_brute, cnf_probability_brute
from repro.tid.lifted import lifted_probability
from repro.tid.plans import safe_plan

__all__ = [
    "TID",
    "Tuple",
    "r_tuple",
    "t_tuple",
    "s_tuple",
    "lineage",
    "probability",
    "cnf_probability",
    "probability_brute",
    "cnf_probability_brute",
    "lifted_probability",
    "safe_plan",
]
