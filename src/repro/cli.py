"""Command-line interface: classify, evaluate, and reduce.

Usage (after installation):

    python -m repro classify "(R|S1)(S1|S2)(S2|T)"
    python -m repro census
    python -m repro reduce --edges "0-1,1-2" --vars 3
    python -m repro h0 --left 2 --right 2 --edges "0-0,1-1"
    python -m repro compile "(R|S1)(S1|S2)(S2|T)" --p 4
    python -m repro estimate "(R|S1)(S1|T)" --p 6 --epsilon 0.05

The tiny query syntax covers Type-I bipartite queries: a conjunction of
parenthesized clauses, each a |-separated list of symbols; "R" and "T"
denote the unary atoms, anything else a binary symbol.  Type-II clauses
use ";" between subclauses with an L/R prefix, e.g. "(L: S1 ; S2)" for
forall x (forall y S1 v forall y S2).
"""

from __future__ import annotations

import argparse
import os
import re
import sys

from fractions import Fraction
from pathlib import Path

from repro.core.catalog import CENSUS
from repro.core.clauses import Clause
from repro.core.final import find_final, is_final
from repro.core.queries import Query
from repro.core.safety import is_safe, query_length, query_type
from repro.counting.p2cnf import P2CNF
from repro.counting.pp2cnf import PP2CNF

CLAUSE_RE = re.compile(r"\(([^()]*)\)")


def parse_query(text: str) -> Query:
    """Parse the miniature clause syntax described in the module doc.

    Malformed input exits with a friendly message (``SystemExit``)
    instead of a bare traceback — this is the CLI's front door.
    """
    clauses = []
    bodies = CLAUSE_RE.findall(text)
    if not bodies:
        raise SystemExit(
            f"repro: no clauses found in {text!r} — write a query as "
            f"parenthesized |-separated clauses, e.g. \"(R|S1)(S1|T)\"")
    for body in bodies:
        body = body.strip()
        try:
            if body.startswith(("L:", "R:")):
                side = "left" if body[0] == "L" else "right"
                subs = [
                    [s.strip() for s in part.split("|") if s.strip()]
                    for part in body[2:].split(";")]
                clauses.append(Clause(side, (), subs))
                continue
            atoms = [a.strip() for a in body.split("|") if a.strip()]
            unaries = {a for a in atoms if a in ("R", "T")}
            binaries = [a for a in atoms if a not in ("R", "T")]
            if unaries == {"R", "T"}:
                clauses.append(Clause("full", unaries, [binaries]))
            elif unaries == {"R"}:
                clauses.append(Clause("left", unaries, [binaries]))
            elif unaries == {"T"}:
                clauses.append(Clause("right", unaries, [binaries]))
            else:
                clauses.append(Clause.middle(*binaries))
        except (ValueError, TypeError) as error:
            raise SystemExit(
                f"repro: bad clause \"({body})\": {error}") from None
    return Query(clauses)


def parse_edges(text: str) -> list[tuple[int, int]]:
    """Parse an edge list like ``"0-1,1-2"``; friendly errors on
    malformed parts (``"0-"``, ``"3"``, ``"a-b"``)."""
    edges = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split("-")
        if len(pieces) != 2 or not pieces[0].strip() or \
                not pieces[1].strip():
            raise SystemExit(
                f"repro: bad edge {part!r} — each comma-separated part "
                f"must be two integers joined by '-', e.g. \"0-1,1-2\"")
        try:
            edges.append((int(pieces[0]), int(pieces[1])))
        except ValueError:
            raise SystemExit(
                f"repro: bad edge {part!r} — endpoints must be "
                f"integers, e.g. \"0-1,1-2\"") from None
    return edges


def cmd_classify(args) -> int:
    query = parse_query(args.query)
    print("query:  ", query)
    print("safe:   ", is_safe(query))
    qtype = query_type(query)
    print("type:   ", "-".join(qtype) if qtype else "H0-like/none")
    print("length: ", query_length(query))
    if not is_safe(query) and not query.full_clauses:
        print("final:  ", is_final(query))
        if not is_final(query):
            final, trace = find_final(query)
            print("final form after", len(trace), "rewrites:", final)
    return 0


def cmd_census(_args) -> int:
    print(f"{'query':24s} {'verdict':8s} {'type':8s} {'length':>6s}")
    for name, ctor, _ in CENSUS:
        q = ctor()
        qtype = query_type(q)
        print(f"{name:24s} "
              f"{'safe' if is_safe(q) else 'unsafe':8s} "
              f"{'-'.join(qtype) if qtype else 'H0':8s} "
              f"{str(query_length(q)):>6s}")
    return 0


def cmd_reduce(args) -> int:
    from repro.core.catalog import path_query
    from repro.reduction.type1 import Type1Reduction

    phi = P2CNF(args.vars, tuple(parse_edges(args.edges)))
    query = path_query(args.length)
    reduction = Type1Reduction(query)
    result = reduction.run(phi)
    print(f"query: {query}")
    print(f"phi: n={phi.n}, m={phi.m}, edges={phi.edges}")
    print(f"oracle calls: {result.oracle_calls}")
    for signature, count in sorted(result.signature_counts.items()):
        print(f"   #{signature} = {count}")
    print(f"#Phi = {result.model_count}")
    if args.check:
        brute = phi.count_satisfying_brute()
        print(f"brute force: {brute} "
              f"({'match' if brute == result.model_count else 'MISMATCH'})")
    return 0


def cmd_h0(args) -> int:
    from repro.reduction.h0 import count_pp2cnf_via_h0

    phi = PP2CNF(args.left, args.right, tuple(parse_edges(args.edges)))
    count = count_pp2cnf_via_h0(phi)
    print(f"#PP2CNF = {count}")
    if args.check:
        print(f"brute force: {phi.count_satisfying_brute()}")
    return 0


def _block_workload(args):
    """The (tid, formula) pair of a query's path-block lineage, with
    the optional tier-2 store installed first."""
    from repro.reduction.blocks import path_block
    from repro.tid import wmc
    from repro.tid.lineage import lineage

    if getattr(args, "store", None):
        wmc.set_circuit_store(args.store)
    query = parse_query(args.query)
    tid = path_block(query, args.p)
    return query, tid, lineage(query, tid)


def _load_circuit(path: str, formula):
    """Deserialize a saved circuit and adopt it as ``formula``'s
    compilation (exiting with a friendly message on mismatch)."""
    from repro.booleans.circuit import Circuit
    from repro.tid import wmc

    try:
        circuit = Circuit.from_bytes(Path(path).read_bytes())
    except OSError as error:
        raise SystemExit(f"repro: cannot read {path}: {error}") from None
    except ValueError as error:
        raise SystemExit(f"repro: {path}: {error}") from None
    # A compiled circuit mentions exactly its formula's variables, so
    # anything short of set equality means a different lineage — a
    # subset match (e.g. a two-symbol query's lineage inside a
    # three-symbol one) would silently compute the wrong query.
    if circuit.variables() != formula.variables():
        extra = circuit.variables() - formula.variables()
        missing = formula.variables() - circuit.variables()
        detail = []
        if extra:
            detail.append(f"{len(extra)} unknown tuple variables "
                          f"(e.g. {sorted(extra, key=repr)[0]!r})")
        if missing:
            detail.append(f"{len(missing)} expected tuple variables "
                          f"absent (e.g. "
                          f"{sorted(missing, key=repr)[0]!r})")
        raise SystemExit(
            f"repro: {path} was compiled from a different lineage: "
            + "; ".join(detail))
    wmc.adopt(formula, circuit)
    return circuit


def _resolve_engine(args) -> tuple[str, Fraction | None]:
    """The (estimator, relative_error) pair of the CLI knobs: a
    relative target implies the sequential sampler unless an engine
    was named explicitly (the fixed-n Hoeffding estimator has no
    relative mode)."""
    engine = getattr(args, "engine", "hoeffding")
    relative = getattr(args, "relative_error", None)
    if relative is not None:
        if relative <= 0:
            raise SystemExit(
                f"repro: --relative-error must be positive, "
                f"got {relative}")
        if engine == "hoeffding":
            engine = "adaptive"
    return engine, relative


def _print_estimate(query, args, formula, tid, reason: str):
    """Run and report the Monte-Carlo estimator (the degraded path of
    ``repro compile --budget`` and the whole of ``repro estimate``)."""
    from repro.booleans.adaptive import ENGINE_LABELS, estimate_with
    from repro.booleans.approximate import hoeffding_sample_count

    engine, relative = _resolve_engine(args)
    estimate = estimate_with(
        engine, formula, tid.probability,
        epsilon=args.epsilon, delta=args.delta, rng=args.seed,
        relative_error=relative)
    print(f"query:      {query}")
    print(f"block:      B_{args.p}(u, v)")
    print(f"lineage:    {len(formula)} clauses over "
          f"{len(formula.variables())} tuple variables")
    print(f"engine:     {ENGINE_LABELS[engine]} ({reason})")
    print(f"Pr(Q) ~=    {estimate.estimate} "
          f"({float(estimate.estimate):.6f})")
    print(f"interval:   [{estimate.low}, {estimate.high}] "
          f"(+/- {float(estimate.epsilon):.6g}, "
          f"confidence {1 - Fraction(estimate.delta)})")
    if estimate.relative_error is not None:
        print(f"relative:   +/- {float(estimate.relative_error):.6g} "
              f"of the interval's lower end")
    samples_line = (f"samples:    {estimate.samples} "
                    f"({estimate.successes} satisfying)")
    if engine != "hoeffding":
        worst = hoeffding_sample_count(args.epsilon, args.delta)
        if estimate.samples < worst:
            samples_line += (f" — early stop saved "
                             f"{worst - estimate.samples} of the "
                             f"{worst} worst-case draws")
    print(samples_line)
    return estimate


def cmd_estimate(args) -> int:
    from repro.tid.wmc import compiled

    query, tid, formula = _block_workload(args)
    estimate = _print_estimate(query, args, formula, tid,
                               f"seed {args.seed}")
    if args.check:
        exact = compiled(formula).probability(tid.probability)
        inside = estimate.contains(exact)
        print(f"exact:      {exact} ({float(exact):.6f}) — "
              f"{'inside' if inside else 'OUTSIDE'} the interval")
        if not inside:
            return 1
    return 0


def cmd_compile(args) -> int:
    from repro.booleans.circuit import CompilationBudgetExceeded
    from repro.tid.wmc import cache_info, compiled

    query, tid, formula = _block_workload(args)
    if args.load:
        circuit = _load_circuit(args.load, formula)
        source = f"loaded from {args.load}"
    else:
        before = cache_info()
        try:
            circuit = compiled(formula, args.budget)
        except CompilationBudgetExceeded:
            _print_estimate(
                query, args, formula, tid,
                f"compilation exceeded {args.budget} nodes")
            if args.save:
                # The caller asked for an artifact that was never
                # produced — fail loudly so scripts can tell.
                print(f"repro: --save {args.save} skipped: no circuit "
                      f"was compiled (budget exceeded); raise --budget "
                      f"or drop --save", file=sys.stderr)
                return 1
            return 0
        after = cache_info()
        if after["compiles"] > before["compiles"]:
            source = "compiled"
        elif after["store_hits"] > before["store_hits"]:
            source = "disk store"
        else:
            source = "memory cache"
    stats = circuit.stats()
    print(f"query:          {query}")
    print(f"block:          B_{args.p}(u, v)")
    print(f"lineage:        {len(formula)} clauses over "
          f"{len(formula.variables())} tuple variables")
    print(f"circuit:        {source}")
    print(f"circuit size:   {stats['size']} nodes, "
          f"{stats['edges']} edges, depth {stats['depth']}")
    print(f"node breakdown: {stats['decision_nodes']} decision, "
          f"{stats['product_nodes']} product, "
          f"{stats['leaf_nodes']} leaf")
    value = circuit.probability(tid.probability)
    print(f"Pr(Q) at block weights: {value}")
    print(f"lineage model count:    "
          f"{circuit.model_count(formula.variables())}")
    if args.save:
        from repro.booleans.store import atomic_write_bytes
        atomic_write_bytes(args.save, circuit.to_bytes())
        print(f"saved:          {args.save}")
    return 0


def cmd_sweep(args) -> int:
    from repro.evaluation import endpoint_weight_grid, probability_sweep
    from repro.tid.database import r_tuple, t_tuple
    from repro.tid.wmc import cache_info

    query, tid, formula = _block_workload(args)
    if args.load:
        _load_circuit(args.load, formula)
    k = args.grid
    if k < 1:
        raise SystemExit("repro: --grid must be at least 1")
    r_u, t_v = r_tuple("u"), t_tuple("v")
    if not {r_u, t_v} & formula.variables():
        raise SystemExit(
            f"repro: the lineage of {args.query!r} contains neither "
            f"endpoint tuple R(u) nor T(v) — an endpoint sweep would "
            f"evaluate the same weights at every grid point (queries "
            f"without R/T atoms have nothing to sweep here)")
    weight_maps = endpoint_weight_grid(formula, tid, k)
    engine = "exact"
    estimates = None
    if args.budget is not None:
        from repro.booleans.adaptive import (
            ENGINE_LABELS,
            estimate_batch_with,
        )
        from repro.booleans.circuit import CompilationBudgetExceeded
        from repro.tid.wmc import compiled

        # Probe-then-dispatch rather than wmc.probability_batch_auto:
        # the exact branch must keep --float's cross-check and
        # --processes (which the auto primitive does not carry) without
        # evaluating the batch twice.
        try:
            compiled(formula, args.budget)
        except CompilationBudgetExceeded:
            sampler, relative = _resolve_engine(args)
            engine = ENGINE_LABELS[sampler]
            estimates = estimate_batch_with(
                sampler, formula, weight_maps, args.epsilon,
                args.delta, args.seed, relative_error=relative)
            values = [estimate.estimate for estimate in estimates]
    if engine == "exact":
        # Compiled (under budget if one was given, so the circuit is
        # already cached) — the exact path keeps its --float
        # cross-check and --processes behaviour either way.
        values = probability_sweep(
            formula, weight_maps,
            numeric="float" if args.float else "exact",
            processes=args.processes)
    print(f"query:   {query}")
    # --float and --processes only apply to the exact engine; don't
    # claim a numeric mode that did not run.
    print(f"block:   B_{args.p}(u, v), {k}-vector endpoint sweep"
          f"{' (float fast path)' if args.float and engine == 'exact' else ''}")
    if estimates:
        samples = [estimate.samples for estimate in estimates]
        per_vector = (f"{samples[0]} samples per vector"
                      if len(set(samples)) == 1 else
                      f"{min(samples)}-{max(samples)} samples per "
                      f"vector (variance-adaptive early stopping)")
        print(f"engine:  {engine} (compilation exceeded "
              f"{args.budget} nodes; "
              f"+/- {float(max(e.epsilon for e in estimates)):.6g} "
              f"at confidence {1 - Fraction(estimates[0].delta)}, "
              f"{per_vector})")
    else:
        print(f"engine:  {engine}")
    print(f"{'w(R(u))':>10s} {'w(T(v))':>10s}  Pr(Q)")
    for weights, value in zip(weight_maps, values):
        shown = value if args.float and engine == "exact" else str(value)
        print(f"{str(weights[r_u]):>10s} {str(weights[t_v]):>10s}  "
              f"{shown}")
    info = cache_info()
    print(f"compilations: {info['compiles']} "
          f"(memory hits: {info['hits']}, "
          f"disk hits: {info['store_hits']}, "
          f"disk misses: {info['store_misses']}, "
          f"budget aborts: {info['budget_aborts']})")
    return 0


def _parse_auth_tokens(text: str) -> dict:
    """``"alice=TOKEN1,bob=TOKEN2"`` -> ``{token: tenant}`` for the
    service's tenant registry."""
    tokens: dict = {}
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        tenant, sep, token = piece.partition("=")
        tenant, token = tenant.strip(), token.strip()
        if not sep or not tenant or not token:
            raise SystemExit(
                f"repro: bad --auth-tokens piece {piece!r} — write "
                f"TENANT=TOKEN[,TENANT=TOKEN...]")
        if token in tokens:
            raise SystemExit(
                f"repro: --auth-tokens token for {tenant!r} collides "
                f"with tenant {tokens[token]!r} (tokens must be "
                f"unique)")
        tokens[token] = tenant
    if not tokens:
        raise SystemExit("repro: --auth-tokens named no tenants")
    return tokens


def _parse_quota(spec: str, flag: str):
    from repro.service.tenants import TenantQuota

    try:
        return TenantQuota.parse(spec)
    except ValueError as error:
        raise SystemExit(f"repro: bad {flag} {spec!r}: {error}") \
            from None


def cmd_serve(args) -> int:
    from repro.service.server import ReproServer
    from repro.tid.wmc import DEFAULT_BUDGET_NODES

    if args.workers < 0:
        raise SystemExit("repro: --workers must be non-negative")
    if args.compile_threads < 1:
        raise SystemExit("repro: --compile-threads must be at least 1")
    if args.window < 0:
        raise SystemExit("repro: --window must be non-negative")
    if args.store_max_bytes is not None and args.store_max_bytes < 0:
        raise SystemExit("repro: --store-max-bytes must be "
                         "non-negative")
    if args.store_max_bytes is not None and not (
            args.store or os.environ.get("REPRO_CIRCUIT_STORE")):
        raise SystemExit("repro: --store-max-bytes needs a store "
                         "(--store DIR or $REPRO_CIRCUIT_STORE)")
    auth_tokens = (_parse_auth_tokens(args.auth_tokens)
                   if args.auth_tokens else None)
    quota = (_parse_quota(args.quota, "--quota")
             if args.quota else None)
    tenant_quotas = {}
    for spec in args.tenant_quota or ():
        tenant, sep, body = spec.partition(":")
        if not sep or not tenant.strip():
            raise SystemExit(
                f"repro: bad --tenant-quota {spec!r} — write "
                f"TENANT:rate=...,window=...,nodes=...")
        tenant_quotas[tenant.strip()] = _parse_quota(
            body, "--tenant-quota")
    if args.slow_ms is not None and args.slow_ms < 0:
        raise SystemExit("repro: --slow-ms must be non-negative")
    if args.trace_buffer < 1:
        raise SystemExit("repro: --trace-buffer must be at least 1")
    budget = args.budget if args.budget is not None \
        else DEFAULT_BUDGET_NODES
    common = dict(
        store=args.store, window=args.window, budget_nodes=budget,
        auth_tokens=auth_tokens, quota=quota,
        tenant_quotas=tenant_quotas or None,
        store_max_bytes=args.store_max_bytes,
        tracing=not args.no_tracing, slow_ms=args.slow_ms,
        trace_buffer=args.trace_buffer, trace_dir=args.trace_dir)
    if args.workers:
        # Multi-process mode: a dispatcher front end plus
        # --workers worker processes sharing the circuit store.
        from repro.service.dispatch import ReproDispatcher
        server = ReproDispatcher(
            args.host, args.port, workers=args.workers,
            compile_threads=args.compile_threads, **common)
    else:
        # --workers 0: today's single-process server, exactly.
        server = ReproServer(
            args.host, args.port, workers=args.compile_threads,
            **common)
    host, port = server.address
    # Scripts (CI smoke, benchmarks) parse this line to find an
    # ephemeral --port 0 binding; keep its shape stable.
    print(f"repro service listening on {host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def cmd_query(args) -> int:
    import json

    from repro.service.client import ServiceClient, ServiceError
    from repro.service.protocol import OPS

    if args.op == "store_gc":
        # The op needs --max-bytes, which lives on the dedicated verb.
        raise SystemExit(
            "repro: use `repro ctl store-gc --max-bytes N` "
            "(store_gc is not addressable through `repro query`)")
    needs_query = args.op not in ("stats", "metrics", "trace", "ping",
                                  "shutdown")
    if needs_query and not args.query:
        raise SystemExit(
            f"repro: op {args.op!r} needs a query argument, e.g. "
            f"repro query {args.op} \"(R|S1)(S1|T)\"")
    params: dict = {}
    if needs_query:
        params["query"] = args.query
    if args.op == "evaluate_batch":
        if not args.ps:
            raise SystemExit(
                "repro: evaluate_batch needs --ps, e.g. --ps 2,3,4")
        try:
            ps = [int(piece) for piece in args.ps.split(",")
                  if piece.strip()]
        except ValueError:
            raise SystemExit(
                f"repro: bad --ps {args.ps!r} — comma-separated "
                f"integers, e.g. --ps 2,3,4") from None
        if not ps:
            raise SystemExit(
                f"repro: bad --ps {args.ps!r} — no block lengths")
        params["ps"] = ps
    elif needs_query:
        params["p"] = args.p
    if args.op == "sweep":
        params["grid"] = args.grid
        if args.float:
            params["numeric"] = "float"
    if args.op in ("sample", "top_k"):
        params["k"] = args.k
    if args.op in ("evaluate", "evaluate_batch") and args.method:
        params["method"] = args.method
    if args.op in ("compile", "evaluate", "evaluate_batch", "sweep",
                   "sample", "top_k") and args.budget is not None:
        params["budget_nodes"] = args.budget
    if args.op in ("evaluate", "evaluate_batch", "sweep", "estimate"):
        params["epsilon"] = str(args.epsilon)
        params["delta"] = str(args.delta)
        if args.engine != "hoeffding":
            params["estimator"] = args.engine
        if args.relative_error is not None:
            params["relative_error"] = str(args.relative_error)
    if args.op in ("evaluate", "evaluate_batch", "sweep", "estimate",
                   "sample"):
        params["seed"] = args.seed
    assert args.op in OPS
    try:
        client = ServiceClient(args.host, args.port,
                               timeout=args.timeout, auth=args.auth)
    except OSError as error:
        raise SystemExit(
            f"repro: cannot connect to {args.host}:{args.port}: "
            f"{error} (is `repro serve` running?)") from None
    with client:
        try:
            result = client.call(args.op, **params)
        except ServiceError as error:
            if args.op == "shutdown":
                result = {"stopping": True}
            else:
                raise SystemExit(f"repro: service error: {error}") \
                    from None
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _service_client(args):
    """Connect to the running service named by ``--host``/``--port``
    or exit with the usual friendly hint."""
    from repro.service.client import ServiceClient

    try:
        return ServiceClient(args.host, args.port,
                             timeout=args.timeout, auth=args.auth)
    except OSError as error:
        raise SystemExit(
            f"repro: cannot connect to {args.host}:{args.port}: "
            f"{error} (is `repro serve` running?)") from None


def _hist_quantile_ms(buckets: dict, count: int, q: float):
    """Upper-bound estimate of the ``q`` quantile in milliseconds
    from cumulative histogram buckets (ladder order, ``le`` label
    strings as keys).  ``None`` when the mass sits past the ladder
    (+Inf) or the series is empty."""
    if count <= 0:
        return None
    target = q * count
    for le, cumulative in buckets.items():
        if cumulative >= target and le != "+Inf":
            return float(le) * 1000.0
    return None


def cmd_ctl(args) -> int:
    import json

    if args.verb == "trace":
        from repro.service.client import ServiceError

        with _service_client(args) as client:
            try:
                result = client.trace(id=args.id, limit=args.limit,
                                      slow=args.slow or None)
            except ServiceError as error:
                raise SystemExit(
                    f"repro: service error: {error}") from None
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    if args.verb == "top":
        from repro.service.client import ServiceError

        with _service_client(args) as client:
            try:
                stats = client.stats()
            except ServiceError as error:
                raise SystemExit(
                    f"repro: service error: {error}") from None
        tracing = stats.get("tracing") or {}
        histograms = tracing.get("histograms") or {}
        rows = []
        for op, stages in sorted(histograms.items()):
            for stage, hist in sorted(stages.items()):
                count = hist.get("count", 0)
                buckets = hist.get("buckets") or {}
                rows.append((op, stage, count,
                             hist.get("sum_ms", 0.0),
                             _hist_quantile_ms(buckets, count, 0.50),
                             _hist_quantile_ms(buckets, count, 0.99)))
        if not rows:
            print("no traced requests yet — is the service running "
                  "with tracing enabled?")
            return 0
        # "top": heaviest (op, stage) series first, by total time.
        rows.sort(key=lambda row: (-row[3], row[0], row[1]))
        fmt = "{:<16} {:<12} {:>8} {:>12} {:>9} {:>9}"
        print(fmt.format("op", "stage", "count", "total_ms",
                         "p50_ms", "p99_ms"))
        for op, stage, count, sum_ms, p50, p99 in rows:
            render = ["-" if q is None else f"{q:g}"
                      for q in (p50, p99)]
            print(fmt.format(op, stage, count, f"{sum_ms:.3f}",
                             render[0], render[1]))
        return 0
    if args.verb == "store-gc":
        if args.max_bytes < 0:
            raise SystemExit("repro: --max-bytes must be non-negative")
        if args.store:
            # Local mode: prune the named store directory in-process.
            from repro.booleans.store import CircuitStore

            report = CircuitStore(args.store).prune(
                max_bytes=args.max_bytes)
            report["store"] = args.store
        else:
            # Remote mode: ask a running service to prune its store.
            from repro.service.client import ServiceClient, ServiceError

            try:
                client = ServiceClient(args.host, args.port,
                                       timeout=args.timeout,
                                       auth=args.auth)
            except OSError as error:
                raise SystemExit(
                    f"repro: cannot connect to {args.host}:"
                    f"{args.port}: {error} (is `repro serve` "
                    f"running? or pass --store DIR to prune "
                    f"locally)") from None
            with client:
                try:
                    report = client.store_gc(args.max_bytes)
                except ServiceError as error:
                    raise SystemExit(
                        f"repro: service error: {error}") from None
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    if args.verb == "metrics":
        # Fetch the Prometheus-style rendering from a running service
        # and print the exposition text verbatim (pipe it to a file
        # for node_exporter's textfile collector, or just read it).
        from repro.service.client import ServiceClient, ServiceError

        try:
            client = ServiceClient(args.host, args.port,
                                   timeout=args.timeout,
                                   auth=args.auth)
        except OSError as error:
            raise SystemExit(
                f"repro: cannot connect to {args.host}:{args.port}: "
                f"{error} (is `repro serve` running?)") from None
        with client:
            try:
                result = client.metrics()
            except ServiceError as error:
                raise SystemExit(
                    f"repro: service error: {error}") from None
        print(result["text"], end="")
        return 0
    if args.verb == "analyze":
        # Repo-invariant static analyzer.  Bad operands (outside the
        # repo, not Python) exit with a one-line `repro: ...` message
        # via the engine's own friendly-SystemExit convention.
        from repro.analysis import run as analysis_run

        return analysis_run(
            args.paths or None, root=args.root,
            json_output=args.json_output,
            update_baseline=args.baseline,
            baseline_file=args.baseline_file)
    raise SystemExit(f"repro: unknown ctl verb {args.verb!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dichotomy tools for generalized model counting "
                    "(Kenig & Suciu, PODS 2021)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser(
        "classify", help="safety/type/length/finality of a query")
    p_classify.add_argument("query")
    p_classify.set_defaults(fn=cmd_classify)

    p_census = sub.add_parser("census", help="classify the catalog")
    p_census.set_defaults(fn=cmd_census)

    p_reduce = sub.add_parser(
        "reduce", help="#P2CNF via the Type-I reduction")
    p_reduce.add_argument("--edges", required=True,
                          help='e.g. "0-1,1-2"')
    p_reduce.add_argument("--vars", type=int, required=True)
    p_reduce.add_argument("--length", type=int, default=1,
                          help="path-query length (default 1: RST)")
    p_reduce.add_argument("--check", action="store_true")
    p_reduce.set_defaults(fn=cmd_reduce)

    p_h0 = sub.add_parser("h0", help="#PP2CNF via one GFOMC(H0) call")
    p_h0.add_argument("--left", type=int, required=True)
    p_h0.add_argument("--right", type=int, required=True)
    p_h0.add_argument("--edges", required=True)
    p_h0.add_argument("--check", action="store_true")
    p_h0.set_defaults(fn=cmd_h0)

    from repro.booleans.approximate import DEFAULT_DELTA, DEFAULT_EPSILON

    def estimator_flags(p, with_budget=True):
        """The shared budget/estimator knobs (``Fraction`` parses
        both "0.05" and "1/20" exactly)."""
        if with_budget:
            p.add_argument("--budget", type=int, metavar="NODES",
                           default=None,
                           help="abort exact compilation past NODES "
                                "interned nodes and answer with the "
                                "Monte-Carlo estimator instead")
        p.add_argument("--epsilon", type=Fraction,
                       default=DEFAULT_EPSILON,
                       help="additive error bound of the estimator "
                            f"(default {DEFAULT_EPSILON})")
        p.add_argument("--delta", type=Fraction,
                       default=DEFAULT_DELTA,
                       help="failure probability of the estimator's "
                            f"confidence interval "
                            f"(default {DEFAULT_DELTA})")
        p.add_argument("--seed", type=int, default=0,
                       help="random seed of the estimator (default 0)")
        p.add_argument("--engine",
                       choices=("hoeffding", "adaptive", "importance"),
                       default="hoeffding",
                       help="sampler: hoeffding (fixed-n), adaptive "
                            "(empirical-Bernstein early stopping), or "
                            "importance (self-normalized tilted "
                            "sampling for small probabilities)")
        p.add_argument("--relative-error", type=Fraction, default=None,
                       metavar="REL", dest="relative_error",
                       help="target a relative (not additive) "
                            "half-width; implies --engine adaptive "
                            "unless one is named")

    p_compile = sub.add_parser(
        "compile",
        help="compile a query's path-block lineage to a d-DNNF "
             "circuit and print its statistics")
    p_compile.add_argument("query")
    p_compile.add_argument("--p", type=int, default=4,
                           help="path-block length (default 4)")
    p_compile.add_argument("--save", metavar="PATH",
                           help="serialize the circuit to PATH")
    p_compile.add_argument("--load", metavar="PATH",
                           help="load a previously --save'd circuit "
                                "instead of compiling")
    p_compile.add_argument("--store", metavar="DIR",
                           help="content-addressed circuit store "
                                "directory (two-tier cache; also "
                                "honours $REPRO_CIRCUIT_STORE)")
    estimator_flags(p_compile)
    p_compile.set_defaults(fn=cmd_compile)

    p_sweep = sub.add_parser(
        "sweep",
        help="batched endpoint-weight sweep over a query's path-block "
             "lineage (compile once, evaluate many)")
    p_sweep.add_argument("query")
    p_sweep.add_argument("--p", type=int, default=4,
                         help="path-block length (default 4)")
    p_sweep.add_argument("--grid", type=int, default=8,
                         help="number of weight vectors (default 8)")
    p_sweep.add_argument("--float", action="store_true",
                         help="float fast path (cross-checked against "
                              "exact Fractions on sampled vectors)")
    p_sweep.add_argument("--processes", type=int, default=None,
                         help="split the sweep across N worker "
                              "processes")
    p_sweep.add_argument("--load", metavar="PATH",
                         help="load a --save'd circuit instead of "
                              "compiling")
    p_sweep.add_argument("--store", metavar="DIR",
                         help="content-addressed circuit store "
                              "directory")
    estimator_flags(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_estimate = sub.add_parser(
        "estimate",
        help="Monte-Carlo Pr(Q) over a query's path-block lineage "
             "with a Hoeffding confidence interval (no compilation)")
    p_estimate.add_argument("query")
    p_estimate.add_argument("--p", type=int, default=4,
                            help="path-block length (default 4)")
    p_estimate.add_argument("--check", action="store_true",
                            help="also compile exactly and verify the "
                                 "interval contains the true value "
                                 "(exits 1 when it does not)")
    p_estimate.add_argument("--store", metavar="DIR",
                            help="content-addressed circuit store "
                                 "directory (used by --check)")
    estimator_flags(p_estimate, with_budget=False)
    p_estimate.set_defaults(fn=cmd_estimate)

    from repro.service.client import DEFAULT_PORT
    from repro.service.protocol import OPS

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived query service (line-delimited JSON "
             "over TCP; warm two-tier circuit cache shared by all "
             "clients)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"TCP port (default {DEFAULT_PORT}; "
                              f"0 picks an ephemeral port, announced "
                              f"on stdout)")
    p_serve.add_argument("--store", metavar="DIR",
                         help="content-addressed circuit store "
                              "directory (tier-2 cache; also honours "
                              "$REPRO_CIRCUIT_STORE)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="worker processes behind a dispatcher "
                              "front end (requests route by formula "
                              "fingerprint; the pool shares the "
                              "circuit store); 0 serves in-process "
                              "(default 0)")
    p_serve.add_argument("--compile-threads", type=int, default=4,
                         dest="compile_threads",
                         help="max concurrent compilations per "
                              "process (default 4)")
    p_serve.add_argument("--window", type=float, default=0.01,
                         help="sweep-coalescing window in seconds "
                              "(default 0.01)")
    p_serve.add_argument("--budget", type=int, metavar="NODES",
                         default=None,
                         help="default auto-policy compilation budget "
                              "for requests that do not override it "
                              "(default: the library default)")
    p_serve.add_argument("--auth-tokens", metavar="TENANT=TOKEN,...",
                         dest="auth_tokens", default=None,
                         help="require per-client auth: comma-"
                              "separated TENANT=TOKEN pairs; requests "
                              "must carry a known token or are "
                              "refused with code 'unauthorized'")
    p_serve.add_argument("--quota", metavar="SPEC", default=None,
                         help="default per-tenant quota, e.g. "
                              "'rate=120,window=60,nodes=500000' "
                              "(requests per window seconds + "
                              "cumulative compile-budget in interned "
                              "nodes; omitted keys are unlimited)")
    p_serve.add_argument("--tenant-quota", metavar="TENANT:SPEC",
                         dest="tenant_quota", action="append",
                         help="override the default quota for one "
                              "tenant (repeatable)")
    p_serve.add_argument("--store-max-bytes", type=int,
                         metavar="BYTES", dest="store_max_bytes",
                         default=None,
                         help="size-cap the tier-2 store: after each "
                              "fresh compilation, evict oldest-"
                              "accessed entries until the store fits "
                              "(needs --store or "
                              "$REPRO_CIRCUIT_STORE)")
    p_serve.add_argument("--slow-ms", type=float, dest="slow_ms",
                         metavar="MS", default=None,
                         help="slow-request threshold: requests whose "
                              "root span lasts at least MS "
                              "milliseconds are kept in the slow log "
                              "(and exported when --trace-dir is set)")
    p_serve.add_argument("--trace-buffer", type=int,
                         dest="trace_buffer", metavar="N", default=256,
                         help="completed request traces kept in the "
                              "in-memory ring buffer (default 256)")
    p_serve.add_argument("--trace-dir", dest="trace_dir",
                         metavar="DIR", default=None,
                         help="append slow-request traces to "
                              "DIR/TRACE_slow.jsonl (one JSON span "
                              "tree per line; needs --slow-ms)")
    p_serve.add_argument("--no-tracing", action="store_true",
                         dest="no_tracing",
                         help="disable request tracing entirely "
                              "(spans become no-ops; the trace op "
                              "answers empty)")
    p_serve.set_defaults(fn=cmd_serve)

    p_query = sub.add_parser(
        "query",
        help="send one request to a running repro service and print "
             "the JSON result")
    p_query.add_argument("op", choices=list(OPS),
                         help="operation to invoke")
    p_query.add_argument("query", nargs="?",
                         help="query text (omit for stats/ping/"
                              "shutdown)")
    p_query.add_argument("--host", default="127.0.0.1")
    p_query.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_query.add_argument("--timeout", type=float, default=60.0,
                         help="socket timeout in seconds (default 60)")
    p_query.add_argument("--p", type=int, default=4,
                         help="path-block length (default 4)")
    p_query.add_argument("--ps", metavar="P1,P2,...",
                         help="comma-separated block lengths "
                              "(evaluate_batch)")
    p_query.add_argument("--grid", type=int, default=8,
                         help="sweep grid size (default 8)")
    p_query.add_argument("--float", action="store_true",
                         help="float fast path for sweep")
    p_query.add_argument("--k", type=int, default=1,
                         help="world count for sample/top_k "
                              "(default 1)")
    p_query.add_argument("--method", default=None,
                         help="force an evaluation method "
                              "(default: auto)")
    p_query.add_argument("--auth", metavar="TOKEN", default=None,
                         help="tenant auth token (required when the "
                              "server runs with --auth-tokens)")
    estimator_flags(p_query)
    p_query.set_defaults(fn=cmd_query)

    p_ctl = sub.add_parser(
        "ctl",
        help="operational verbs for stores and running services")
    ctl_sub = p_ctl.add_subparsers(dest="verb", required=True)
    p_gc = ctl_sub.add_parser(
        "store-gc",
        help="size-capped eviction on a circuit store: delete "
             "entries, oldest access time first, until the store "
             "fits in --max-bytes")
    p_gc.add_argument("--max-bytes", type=int, required=True,
                      dest="max_bytes", metavar="BYTES",
                      help="target store size in bytes (0 empties it)")
    p_gc.add_argument("--store", metavar="DIR",
                      help="prune this store directory locally "
                           "(default: ask the running service)")
    p_gc.add_argument("--host", default="127.0.0.1")
    p_gc.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_gc.add_argument("--timeout", type=float, default=60.0,
                      help="socket timeout in seconds (default 60)")
    p_gc.add_argument("--auth", metavar="TOKEN", default=None,
                      help="tenant auth token for the remote mode")
    p_gc.set_defaults(fn=cmd_ctl)

    p_metrics = ctl_sub.add_parser(
        "metrics",
        help="print a running service's Prometheus-style metrics "
             "text (the `metrics` op) verbatim")
    p_metrics.add_argument("--host", default="127.0.0.1")
    p_metrics.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_metrics.add_argument("--timeout", type=float, default=60.0,
                           help="socket timeout in seconds "
                                "(default 60)")
    p_metrics.add_argument("--auth", metavar="TOKEN", default=None,
                           help="tenant auth token (required when "
                                "the server runs with --auth-tokens)")
    p_metrics.set_defaults(fn=cmd_ctl)

    p_trace = ctl_sub.add_parser(
        "trace",
        help="fetch request traces (span trees) from a running "
             "service: recent ones, one by --id, or only slow-log "
             "entries")
    p_trace.add_argument("--id", default=None, metavar="TRACE_ID",
                         help="fetch exactly this trace (the id "
                              "echoed in every response)")
    p_trace.add_argument("--limit", type=int, default=None,
                         metavar="N",
                         help="max traces to return (default 16)")
    p_trace.add_argument("--slow", action="store_true",
                         help="only traces that crossed the server's "
                              "--slow-ms threshold")
    p_trace.add_argument("--host", default="127.0.0.1")
    p_trace.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_trace.add_argument("--timeout", type=float, default=60.0,
                         help="socket timeout in seconds (default 60)")
    p_trace.add_argument("--auth", metavar="TOKEN", default=None,
                         help="tenant auth token (scopes the traces "
                              "you can see on an authenticated "
                              "server)")
    p_trace.set_defaults(fn=cmd_ctl)

    p_top = ctl_sub.add_parser(
        "top",
        help="per-(op, stage) latency breakdown of a running service "
             "from its tracing histograms: count, total, p50, p99")
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_top.add_argument("--timeout", type=float, default=60.0,
                       help="socket timeout in seconds (default 60)")
    p_top.add_argument("--auth", metavar="TOKEN", default=None,
                       help="tenant auth token (required when the "
                            "server runs with --auth-tokens)")
    p_top.set_defaults(fn=cmd_ctl)

    p_analyze = ctl_sub.add_parser(
        "analyze",
        help="repo-invariant static analyzer: determinism lint, "
             "lock discipline, exact/float numeric boundary, "
             "protocol drift (exit 1 on non-baselined findings)")
    p_analyze.add_argument("paths", nargs="*",
                           help="files or directories to analyze "
                                "(default: the src/ tree)")
    p_analyze.add_argument("--json", action="store_true",
                           dest="json_output",
                           help="emit the machine-readable report")
    p_analyze.add_argument("--baseline", action="store_true",
                           help="rewrite ANALYSIS_BASELINE.json to "
                                "accept all current findings")
    p_analyze.add_argument("--baseline-file", default=None,
                           help="override the baseline path")
    p_analyze.add_argument("--root", default=None,
                           help="repository root "
                                "(default: auto-detected)")
    p_analyze.set_defaults(fn=cmd_ctl)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `... | head`): exit
        # quietly like a well-behaved unix tool.
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
