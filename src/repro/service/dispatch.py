"""Multi-process front end: one dispatcher, N worker processes.

Exact ``Fraction`` evaluation is pure Python, so a hot sweep on the
single ``ThreadingTCPServer`` holds the GIL and starves every other
client.  ``ReproDispatcher`` scales the service past that limit
without changing its contract: it listens on the same line-JSON
protocol (same ops, same error codes) and proxies compute requests to
a pool of worker **processes** (``repro.service.worker``), each a
full ``ReproServer`` with its own interpreter, compile pool, and
memory LRU, all sharing one content-addressed ``CircuitStore``.

Design points:

* **Consistent-hash routing** — requests route by the workload's
  ``cnf_fingerprint`` over a virtual-node hash ring, so one formula
  always lands on the same worker: memory LRUs stay warm and
  *non-duplicated*, and same-fingerprint sweeps still coalesce inside
  their worker.  ``evaluate_batch`` is split per ``p`` (each block
  length is a different formula) and routed independently.
* **Trace propagation** — every proxied hop runs under a ``proxy``
  span tagged with the worker index and a derived child trace id the
  worker adopts; ``trace`` lookups by id graft the worker-side span
  tree under its proxy span, so one request's tree covers
  dispatch -> worker compile -> evaluate across the process boundary.
* **Centralized tenancy** — auth tokens, rate windows, and compile
  budgets live only here.  Workers run open and report fresh-compile
  spend in a ``charge`` response field the dispatcher strips and
  applies to its own ``TenantRegistry``, preserving the
  single-process semantics (fail-fast on an exhausted budget, the
  crossing request charged-but-refused, warm circuits free).
* **Crash recovery** — a torn worker connection is detected, the
  worker respawned (same ring slot, fresh memory, warm shared store),
  and the request re-dispatched once; a second failure surfaces as a
  structured ``internal`` error, never a raw socket error.

``stats``/``metrics`` aggregate across the pool: worker cache
counters are summed, each worker's ``BudgetPlanner`` growth records
are merged into one service-wide planner, and per-worker liveness
rides in a ``workers`` section.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import threading
import time

from bisect import bisect_left
from pathlib import Path
from types import MappingProxyType as _freeze

from repro.booleans.adaptive import BudgetPlanner
from repro.obs import NULL_SPAN, Tracer, current_trace_id, span
from repro.service.client import ServiceClient, ServiceError
from repro.service.metrics import CONTENT_TYPE, render_metrics
from repro.service.protocol import (
    ERROR_CODES,
    ProtocolError,
    check_fields,
    error_response,
    ok_response,
    parse_request,
    take_bool,
    take_int,
    take_int_list,
    take_str,
)
from repro.service.server import (
    WorkloadResolver,
    _Handler,
    _ServiceTCPServer,
)
from repro.service.tenants import ANONYMOUS, TenantQuota, TenantRegistry
from repro.service.worker import BANNER
from repro.tid import wmc

#: Virtual ring points per worker: enough that the keyspace split is
#: within a few percent of even for small pools, cheap to build.
VNODES = 64

#: Worker cache counters that are meaningful to sum across the pool
#: (limits and booleans are per-process configuration, not load).
_SUMMABLE_CACHE = ("entries", "nodes", "hits", "store_hits",
                   "store_misses", "compiles", "budget_aborts",
                   "tape_hits", "tape_flattens", "tape_bytes")


def _ring_hash(text: str) -> int:
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


class _HashRing:
    """Consistent ``fingerprint -> worker index`` routing.

    The ring is built once over worker *indices* (not addresses), so a
    respawned worker keeps its slot and inherits exactly the keyspace
    its predecessor warmed into the shared store.
    """

    def __init__(self, workers: int, vnodes: int = VNODES):
        points = sorted(
            (_ring_hash(f"worker-{index}:{vnode}"), index)
            for index in range(workers)
            for vnode in range(vnodes))
        self._points = points
        self._keys = [key for key, _ in points]

    def route(self, fingerprint: str) -> int:
        position = bisect_left(self._keys, _ring_hash(fingerprint))
        if position == len(self._keys):
            position = 0
        return self._points[position][1]


def _close_quietly(conn: ServiceClient) -> None:
    try:
        conn.close()
    except OSError:
        pass


class _WorkerHandle:
    """One worker subprocess: liveness, address, generation, and a
    small pool of idle connections (a ``ServiceClient`` serializes its
    own calls, so concurrent dispatcher threads each borrow one)."""

    MAX_IDLE = 8

    def __init__(self, index: int):
        self.index = index
        self.lock = threading.Lock()
        self.process = None
        self.address = None
        #: Bumped on every (re)spawn; pooled connections remember the
        #: generation they were dialed against and are discarded when
        #: it moved on.
        self.generation = 0
        self.respawns = 0
        #: Fingerprints this worker is believed to hold resident
        #: (cleared on respawn): the dispatcher's stand-in for the
        #: worker's cache probe when deciding whether an exhausted
        #: compile budget should fail fast — warm circuits stay free.
        self.resident: set[str] = set()
        self._idle: list[tuple[int, ServiceClient]] = []

    def acquire(self, timeout) -> tuple[int, ServiceClient]:
        with self.lock:
            generation = self.generation
            address = self.address
            while self._idle:
                pooled_generation, conn = self._idle.pop()
                if pooled_generation == generation:
                    return generation, conn
                _close_quietly(conn)
        conn = ServiceClient(address[0], address[1], timeout=timeout,
                             connect_retries=0)
        return generation, conn

    def release(self, generation: int, conn: ServiceClient) -> None:
        with self.lock:
            if (generation == self.generation
                    and len(self._idle) < self.MAX_IDLE):
                self._idle.append((generation, conn))
                return
        _close_quietly(conn)

    def drain_locked(self) -> None:
        """Caller holds ``lock``."""
        idle, self._idle = self._idle, []
        for _, conn in idle:
            _close_quietly(conn)


class ReproDispatcher:
    """The multi-process query service front end.

    Constructor surface mirrors ``ReproServer`` (the CLI treats the
    two uniformly) plus ``workers`` — the worker *process* count —
    and ``compile_threads``, each worker's compile-pool size.
    ``worker_timeout`` optionally bounds each proxied exchange;
    ``None`` (the default) matches the single-process behaviour of
    waiting as long as the work takes, with crash detection riding on
    the torn connection instead.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 workers: int = 2, store=None, window: float = 0.01,
                 budget_nodes: int | None = wmc.DEFAULT_BUDGET_NODES,
                 workload_cache_size: int = 128,
                 auth_tokens: dict[str, str] | None = None,
                 quota: TenantQuota | None = None,
                 tenant_quotas: dict[str, TenantQuota] | None = None,
                 store_max_bytes: int | None = None,
                 tracing: bool = True,
                 slow_ms: float | None = None,
                 trace_buffer: int = 256,
                 trace_dir=None,
                 tracer: Tracer | None = None,
                 clock=time.monotonic,
                 compile_threads: int = 4,
                 worker_timeout: float | None = None):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if compile_threads < 1:
            raise ValueError("compile_threads must be at least 1")
        if store_max_bytes is not None and store_max_bytes < 0:
            raise ValueError("store_max_bytes must be non-negative")
        if slow_ms is not None and slow_ms < 0:
            raise ValueError("slow_ms must be non-negative")
        self.worker_count = workers
        self.compile_threads = compile_threads
        self.window = window
        self.default_budget = budget_nodes
        self.worker_timeout = worker_timeout
        if store is not None:
            self.store_path = str(getattr(store, "root", store))
        else:
            self.store_path = None
        self.store_max_bytes = store_max_bytes
        self.tracing = tracing
        self.tracer = tracer if tracer is not None else Tracer(
            enabled=tracing, buffer_size=trace_buffer,
            slow_threshold=(None if slow_ms is None
                            else slow_ms / 1000.0),
            trace_dir=trace_dir)
        self.tenants = TenantRegistry(auth_tokens, quota,
                                      tenant_quotas)
        self.workloads = WorkloadResolver(workload_cache_size)
        self._ring = _HashRing(workers)
        self._tenant_local = threading.local()
        self._counter_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._op_counts: dict[str, int] = {}
        self._proxied = 0
        self._redispatches = 0
        self._child_seq = 0
        self._clock = clock
        self._started = clock()
        self._started_at = time.time()
        self._serve_thread = None
        self._closing = False
        # Both immutable after construction (handles mutate behind
        # their own locks), so reads need no dispatcher-level lock.
        self._local_ops = _freeze({
            "ping": self._op_ping,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "trace": self._op_trace,
            "store_gc": self._op_store_gc,
            "shutdown": self._op_shutdown,
        })
        self._workers = tuple(_WorkerHandle(index)
                              for index in range(workers))
        self._tcp = _ServiceTCPServer((host, port), _Handler)
        self._tcp.service = self
        try:
            for handle in self._workers:
                self._spawn(handle)
        except BaseException:
            self._tcp.server_close()
            self._shutdown_workers()
            raise

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, handle: _WorkerHandle) -> None:
        """Boot (or reboot) one worker subprocess and block on its
        banner for the bound port.  Caller holds ``handle.lock``
        except during construction, when nothing races."""
        command = [sys.executable, "-m", "repro.service.worker",
                   "--host", "127.0.0.1", "--port", "0",
                   "--compile-threads", str(self.compile_threads),
                   "--window", str(self.window),
                   "--budget", str(self.default_budget
                                   if self.default_budget is not None
                                   else 0)]
        if self.store_path:
            command += ["--store", self.store_path]
        if self.store_max_bytes is not None:
            command += ["--store-max-bytes",
                        str(self.store_max_bytes)]
        if not self.tracing:
            command += ["--no-tracing"]
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        if not existing:
            env["PYTHONPATH"] = package_root
        elif package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = package_root + os.pathsep + existing
        process = subprocess.Popen(command, stdout=subprocess.PIPE,
                                   text=True, env=env)
        banner = (process.stdout.readline() or "").strip()
        if not banner.startswith(BANNER):
            process.kill()
            process.wait(timeout=10)
            raise RuntimeError(
                f"worker {handle.index} failed to start "
                f"(banner: {banner!r})")
        worker_host, _, worker_port = banner.rsplit(
            " ", 1)[1].rpartition(":")
        handle.process = process
        handle.address = (worker_host, int(worker_port))
        handle.generation += 1
        handle.resident.clear()

    def _respawn_if_dead(self, handle: _WorkerHandle,
                         generation: int | None) -> None:
        """After a transport failure against ``handle``: respawn the
        worker if its process is gone.  A stale ``generation`` means
        another thread already respawned it; an alive process means
        the failure was the connection's, not the worker's."""
        if self._closing:
            raise ProtocolError("internal",
                                "service is shutting down")
        with handle.lock:
            if (generation is not None
                    and generation != handle.generation):
                return
            process = handle.process
            if process is not None and process.poll() is None:
                # A dying worker refuses connections before its exit
                # is reapable; give it a moment so a crash observed
                # through the socket is not misread as a healthy
                # worker with one bad connection (which would send
                # the re-dispatch to the same dead port).
                try:
                    process.wait(timeout=0.5)
                except subprocess.TimeoutExpired:
                    return
            handle.drain_locked()
            handle.respawns += 1
            self._spawn(handle)

    def _shutdown_workers(self) -> None:
        for handle in self._workers:
            with handle.lock:
                handle.drain_locked()
            process = handle.process
            if process is not None and process.poll() is None:
                process.terminate()
        for handle in self._workers:
            process = handle.process
            if process is None:
                continue
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
            if process.stdout is not None:
                process.stdout.close()

    # ------------------------------------------------------------------
    # Lifecycle (same surface as ReproServer)
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._tcp.server_address[:2]

    def serve_forever(self) -> None:
        self._tcp.serve_forever()

    def start(self) -> tuple[str, int]:
        self._serve_thread = threading.Thread(
            target=self._tcp.serve_forever, daemon=True,
            name="repro-dispatch")
        self._serve_thread.start()
        return self.address

    def close(self) -> None:
        self._closing = True
        self._tcp.shutdown()
        self._tcp.server_close()
        self._shutdown_workers()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5)
            self._serve_thread = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.close()

    # ------------------------------------------------------------------
    # Request handling (mirrors ReproServer.handle_line)
    # ------------------------------------------------------------------
    def handle_line(self, line: bytes | str) -> dict:
        request_id = None
        try:
            request_id, op, params, auth, trace_id = parse_request(line)
        except ProtocolError as error:
            self._count(None, error=True)
            return error_response(error.request_id, error.code,
                                  error.message)
        root = NULL_SPAN
        try:
            tenant = self.tenants.resolve(auth)
            self._tenant_local.tenant = tenant
            self.tenants.charge_request(tenant)
            self._count(op)
            root = self.tracer.root(op, trace_id=trace_id,
                                    tenant=tenant)
            with root:
                result = self._handle_op(op, params)
            response = ok_response(request_id, op, result)
        except ProtocolError as error:
            self._count(None, error=True)
            response = error_response(request_id, error.code,
                                      error.message)
        except Exception as error:  # never kill the connection loop
            self._count(None, error=True)
            response = error_response(
                request_id, "internal",
                f"{type(error).__name__}: {error}")
        echo = root.trace_id if root.trace_id is not None else trace_id
        if echo is not None:
            response["trace"] = echo
        return response

    def _count(self, op: str | None, error: bool = False) -> None:
        with self._counter_lock:
            if op is not None:
                self._requests += 1
                self._op_counts[op] = self._op_counts.get(op, 0) + 1
            if error:
                self._errors += 1

    def _handle_op(self, op: str, params: dict) -> dict:
        local = self._local_ops.get(op)
        if local is not None:
            return local(params)
        if op == "evaluate_batch":
            return self._op_evaluate_batch(params)
        return self._proxy(op, params)

    # ------------------------------------------------------------------
    # Proxying
    # ------------------------------------------------------------------
    def _reject_reserved(self, params: dict) -> None:
        # `timeout` and `trace` are protocol-level client/transport
        # concerns; forwarding them as op params would let a request
        # smuggle values into the worker hop.
        for reserved in ("timeout", "trace"):
            if reserved in params:
                raise ProtocolError(
                    "bad-request",
                    f"unexpected params: {reserved}")

    def _child_trace_id(self, handle: _WorkerHandle) -> str | None:
        """A derived trace id for the worker hop, unique per proxied
        call so a re-dispatch never collides with the crashed
        attempt's partial trace."""
        base = current_trace_id()
        if base is None:
            return None
        with self._counter_lock:
            self._child_seq += 1
            sequence = self._child_seq
        return f"{base[:96]}.w{handle.index}.{sequence}"

    def _proxy(self, op: str, params: dict) -> dict:
        self._reject_reserved(params)
        workload = self.workloads.resolve(params)
        handle = self._workers[self._ring.route(workload.fingerprint)]
        return self._proxy_compute(handle, op, params,
                                   workload.fingerprint)

    def _proxy_compute(self, handle: _WorkerHandle, op: str,
                       params: dict, fingerprint: str) -> dict:
        tenant = getattr(self._tenant_local, "tenant", ANONYMOUS)
        if fingerprint not in handle.resident and op != "estimate":
            # Single-process fail-fast, approximated from this side of
            # the hop: an exhausted compile budget refuses requests
            # that plausibly need fresh work, while fingerprints known
            # resident on the worker stay accessible (warm circuits
            # cost nobody anything).
            self.tenants.check_compile(tenant)
        child_trace = self._child_trace_id(handle)
        tags = {"worker": handle.index}
        if child_trace is not None:
            tags["child_trace"] = child_trace
        with span("proxy", **tags):
            result = self._call_worker(handle, op, params, child_trace)
        charge = result.pop("charge", None) \
            if isinstance(result, dict) else None
        with handle.lock:
            handle.resident.add(fingerprint)
        if charge:
            nodes = charge.get("nodes", 0)
            if isinstance(nodes, int) and nodes > 0:
                # May raise quota-exceeded: the request that crosses
                # the cap is charged but refused, exactly the
                # single-process crossing semantics.
                self.tenants.charge_compile(tenant, nodes)
        return result

    def _call_worker(self, handle: _WorkerHandle, op: str,
                     params: dict, child_trace: str | None) -> dict:
        """One request to one worker, with crash recovery: a torn
        connection triggers a respawn check and one re-dispatch; a
        second failure surfaces as a structured error."""
        attempts = 0
        while True:
            attempts += 1
            generation = conn = None
            try:
                generation, conn = handle.acquire(self.worker_timeout)
                result = conn.call(op, trace=child_trace, **params)
            except ServiceError as error:
                if conn is not None and error.code in ERROR_CODES:
                    # A structured refusal over a healthy connection:
                    # proxy it transparently (same code, same message).
                    handle.release(generation, conn)
                    raise ProtocolError(error.code,
                                        error.message) from None
                if conn is not None:
                    _close_quietly(conn)
                failure = error
            except OSError as error:
                # acquire() could not even dial: the worker is gone.
                failure = error
            else:
                handle.release(generation, conn)
                with self._counter_lock:
                    self._proxied += 1
                return result
            self._respawn_if_dead(handle, generation)
            if attempts >= 2:
                raise ProtocolError(
                    "internal",
                    f"worker {handle.index} failed while serving "
                    f"{op!r} and the re-dispatched attempt failed "
                    f"too: {failure}") from None
            with self._counter_lock:
                self._redispatches += 1

    def _call_any_worker(self, op: str, params: dict) -> dict:
        """``op`` against whichever worker answers first (for ops that
        are worker-agnostic, like ``store_gc`` over the shared
        store)."""
        last_error: ProtocolError | None = None
        for handle in self._workers:
            try:
                return self._call_worker(handle, op, params, None)
            except ProtocolError as error:
                if error.code != "internal":
                    raise
                last_error = error
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _op_ping(self, params: dict) -> dict:
        check_fields(params, ())
        return {"pong": True}

    def _op_shutdown(self, params: dict) -> dict:
        check_fields(params, ())
        # Workers are stopped by close() after serve_forever returns
        # (the CLI's finally), so in-flight proxied work drains first.
        threading.Thread(target=self._tcp.shutdown,
                         daemon=True).start()
        return {"stopping": True}

    def _op_evaluate_batch(self, params: dict) -> dict:
        """A batch is one formula *per block length*: split it and
        route every ``p`` by its own fingerprint so the batch spreads
        over the pool instead of serializing on one worker."""
        self._reject_reserved(params)
        if "p" in params:
            raise ProtocolError(
                "bad-request",
                "unexpected params: p (evaluate_batch takes 'ps')")
        ps = take_int_list(params, "ps", minimum=1, max_items=256)
        shared = {key: value for key, value in params.items()
                  if key != "ps"}
        results = [self._proxy("evaluate", {**shared, "p": p})
                   for p in ps]
        return {"results": results, "count": len(results)}

    def _op_store_gc(self, params: dict) -> dict:
        check_fields(params, ("max_bytes",))
        max_bytes = take_int(params, "max_bytes", minimum=0)
        if not self.store_path \
                and not os.environ.get("REPRO_CIRCUIT_STORE"):
            raise ProtocolError(
                "bad-request",
                "no circuit store attached to this service "
                "(start it with --store or REPRO_CIRCUIT_STORE)")
        # The pool shares one store directory; one prune pass through
        # any worker covers it.
        return self._call_any_worker("store_gc",
                                     {"max_bytes": max_bytes})

    def _op_stats(self, params: dict) -> dict:
        check_fields(params, ())
        uptime = self._clock() - self._started
        with self._counter_lock:
            service = {
                "uptime_s": round(uptime, 3),
                "uptime_seconds": round(uptime, 6),
                "started_at": round(self._started_at, 3),
                "requests": self._requests,
                "errors": self._errors,
                "ops": dict(sorted(self._op_counts.items())),
                "default_budget_nodes": self.default_budget,
                "workloads_cached": len(self.workloads),
                "auth_enabled": self.tenants.auth_enabled,
                "store_max_bytes": self.store_max_bytes,
                "workers": self.worker_count,
                "compile_threads": self.compile_threads,
                "proxied_requests": self._proxied,
                "redispatches": self._redispatches,
            }
        cache: dict = {key: 0 for key in _SUMMABLE_CACHE}
        cache["store_attached"] = bool(
            self.store_path or os.environ.get("REPRO_CIRCUIT_STORE"))
        growth: list[dict] = []
        worker_rows: list[dict] = []
        for handle in self._workers:
            row = {"worker": handle.index,
                   "respawns": handle.respawns,
                   "resident_fingerprints": len(handle.resident)}
            try:
                worker_stats = self._call_worker(handle, "stats",
                                                 {}, None)
            except ProtocolError:
                row["alive"] = False
                worker_rows.append(row)
                continue
            row["alive"] = True
            row["port"] = handle.address[1]
            worker_cache = worker_stats.get("cache") or {}
            for key in _SUMMABLE_CACHE:
                value = worker_cache.get(key, 0)
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    cache[key] += value
            worker_service = worker_stats.get("service") or {}
            planner = worker_service.get("planner") or {}
            growth.extend(planner.get("growth") or [])
            row["requests"] = worker_service.get("requests", 0)
            row["compile_jobs"] = worker_service.get(
                "compile_jobs", 0)
            worker_rows.append(row)
        service["worker_respawns"] = sum(
            handle.respawns for handle in self._workers)
        merged = BudgetPlanner.from_growth_records(growth)
        planner_info = dict(merged.stats())
        planner_info["growth"] = merged.growth_records()
        service["planner"] = planner_info
        tracing = self.tracer.stats()
        tracing["histograms"] = self.tracer.histograms()
        return {"cache": cache, "service": service,
                "tenants": self.tenants.usage(), "tracing": tracing,
                "workers": worker_rows}

    def _op_metrics(self, params: dict) -> dict:
        check_fields(params, ())
        return {"content_type": CONTENT_TYPE,
                "text": render_metrics(self._op_stats({}))}

    def _op_trace(self, params: dict) -> dict:
        """Same contract as the single-process ``trace`` op; a lookup
        by id additionally grafts each proxied hop's worker-side span
        tree under its ``proxy`` span, producing one tree that spans
        both processes."""
        check_fields(params, ("id", "limit", "slow"))
        trace_id = take_str(params, "id", default=None)
        limit = take_int(params, "limit", default=16, minimum=1,
                         maximum=256)
        slow = take_bool(params, "slow", default=False)
        tenant = getattr(self._tenant_local, "tenant", ANONYMOUS)
        scope = tenant if self.tenants.auth_enabled else None
        if trace_id is not None:
            found = self.tracer.find(trace_id, tenant=scope)
            traces = [] if found is None else [self._merge_trace(found)]
        else:
            traces = self.tracer.recent(limit, tenant=scope, slow=slow)
        return {"enabled": self.tracer.enabled,
                "count": len(traces), "traces": traces}

    def _merge_trace(self, payload: dict) -> dict:
        merged = dict(payload)
        spans = [dict(entry) for entry in payload.get("spans") or []]
        next_id = max((entry["id"] for entry in spans), default=0)
        grafted: list[dict] = []
        for entry in spans:
            tags = entry.get("tags") or {}
            child_trace = tags.get("child_trace")
            worker_index = tags.get("worker")
            if (not isinstance(child_trace, str)
                    or not isinstance(worker_index, int)
                    or not 0 <= worker_index < len(self._workers)):
                continue
            handle = self._workers[worker_index]
            try:
                fetched = self._call_worker(
                    handle, "trace", {"id": child_trace}, None)
            except ProtocolError:
                continue  # the worker (and its buffer) may be gone
            offset = entry.get("start_ms", 0.0)
            for child_payload in fetched.get("traces") or []:
                child_spans = child_payload.get("spans") or []
                id_map = {}
                for child_span in child_spans:
                    next_id += 1
                    id_map[child_span["id"]] = next_id
                for child_span in child_spans:
                    parent = child_span.get("parent")
                    grafted.append({
                        "id": id_map[child_span["id"]],
                        "parent": (entry["id"] if parent is None
                                   else id_map.get(parent)),
                        "name": child_span["name"],
                        "start_ms": round(
                            child_span.get("start_ms", 0.0) + offset,
                            3),
                        "duration_ms": child_span.get(
                            "duration_ms", 0.0),
                        "tags": {
                            **(child_span.get("tags") or {}),
                            "process": f"worker-{worker_index}",
                        },
                    })
        if grafted:
            spans = sorted(
                spans + grafted,
                key=lambda entry: (entry["start_ms"], entry["id"]))
        merged["spans"] = spans
        return merged
