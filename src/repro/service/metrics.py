"""Prometheus-style plaintext rendering of the service stats payload.

The ``stats`` op answers JSON for humans and scripts; fleet
monitoring wants the same counters in the Prometheus text exposition
format (``text/plain; version=0.0.4``) so a scraper — or ``curl`` —
can graph the perf trajectory of a running service.  The ``metrics``
op returns the rendering produced here; it is a *projection* of the
``stats`` payload, never a second set of counters, so the two can
not drift.

Layout: a curated block of stable, well-typed series (requests by
op, per-tenant usage, cache/tape/scheduler counters) plus a generic
sweep that exports every remaining numeric scalar in the ``cache``
and ``service`` sections as a gauge — a counter added to ``stats``
shows up in ``metrics`` automatically, just untyped until curated.

Everything is emitted in sorted order and floats go through
``repr``, so the text is deterministic across hash seeds (the smoke
test and the determinism probes rely on that).

When the stats payload carries a ``tracing`` section (the request
tracer is on), its per-``(op, stage)`` latency histograms render as
native Prometheus histogram families —
``repro_op_stage_seconds_bucket{op=...,stage=...,le=...}`` plus the
matching ``_sum``/``_count`` — and its scalar counters (completed
traces, slow-log hits, ring-buffer drops) as ``tracing_info``
gauges.
"""

from __future__ import annotations

#: The exposition-format content type the ``metrics`` op reports.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PREFIX = "repro"

#: ``stats`` keys rendered by the curated blocks (everything else in
#: their sections falls through to the generic gauge sweep).
_CURATED_SERVICE = ("requests", "errors", "ops", "uptime_s",
                    "uptime_seconds", "started_at")
_CURATED_CACHE = ("hits", "compiles", "store_hits", "store_misses",
                  "budget_aborts", "tape_hits", "tape_flattens")


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _sample(name: str, labels: dict, value) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(labels[key])}"'
            for key in sorted(labels))
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Writer:
    """Accumulates one metric family at a time (HELP/TYPE + samples)."""

    def __init__(self):
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str,
               samples) -> None:
        """``samples`` is an iterable of ``(labels_dict, value)``;
        an empty iterable suppresses the family entirely."""
        samples = list(samples)
        if not samples:
            return
        full = f"{_PREFIX}_{name}"
        self.lines.append(f"# HELP {full} {help_text}")
        self.lines.append(f"# TYPE {full} {kind}")
        for labels, value in samples:
            self.lines.append(_sample(full, labels, value))

    def histogram_family(self, name: str, help_text: str,
                         series) -> None:
        """A native histogram family.  ``series`` is an iterable of
        ``(labels_dict, buckets_dict, sum_value, count)`` where
        ``buckets_dict`` maps ``le`` label strings (already including
        ``"+Inf"``) to cumulative counts in ladder order."""
        series = list(series)
        if not series:
            return
        full = f"{_PREFIX}_{name}"
        self.lines.append(f"# HELP {full} {help_text}")
        self.lines.append(f"# TYPE {full} histogram")
        for labels, buckets, sum_value, count in series:
            for le, cumulative in buckets.items():
                self.lines.append(_sample(
                    f"{full}_bucket", {**labels, "le": le},
                    cumulative))
            self.lines.append(_sample(f"{full}_sum", labels,
                                      float(sum_value)))
            self.lines.append(_sample(f"{full}_count", labels, count))

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _numeric_items(section: dict, skip=()) -> list:
    return [(key, value) for key, value in sorted(section.items())
            if key not in skip
            and isinstance(value, (int, float))
            and not isinstance(value, bool)]


def render_metrics(stats: dict) -> str:
    """The ``stats`` payload (``{"cache": ..., "service": ...,
    "tenants": ...}``) as Prometheus exposition text."""
    cache = stats.get("cache") or {}
    service = stats.get("service") or {}
    tenants = stats.get("tenants") or {}
    tracing = stats.get("tracing") or {}
    w = _Writer()

    uptime = service.get("uptime_seconds", service.get("uptime_s"))
    w.family("uptime_seconds", "gauge",
             "Seconds since the service started (monotonic clock).",
             [({}, uptime)] if uptime is not None else [])
    w.family("started_at_seconds", "gauge",
             "Unix timestamp of service start.",
             [({}, service["started_at"])]
             if "started_at" in service else [])
    w.family("requests_total", "counter",
             "Requests accepted for dispatch (all ops).",
             [({}, service["requests"])] if "requests" in service
             else [])
    w.family("errors_total", "counter",
             "Requests answered with a structured error.",
             [({}, service["errors"])] if "errors" in service else [])
    w.family("op_requests_total", "counter",
             "Requests by operation.",
             [({"op": op}, count)
              for op, count in sorted((service.get("ops") or {})
                                      .items())])

    w.family("cache_hits_total", "counter",
             "Tier-1 memory circuit-cache hits.",
             [({}, cache["hits"])] if "hits" in cache else [])
    w.family("cache_compiles_total", "counter",
             "Circuit compilations performed.",
             [({}, cache["compiles"])] if "compiles" in cache else [])
    w.family("store_hits_total", "counter",
             "Tier-2 disk-store hits.",
             [({}, cache["store_hits"])]
             if "store_hits" in cache else [])
    w.family("store_misses_total", "counter",
             "Tier-2 disk-store misses.",
             [({}, cache["store_misses"])]
             if "store_misses" in cache else [])
    w.family("budget_aborts_total", "counter",
             "Compilations aborted by the node budget.",
             [({}, cache["budget_aborts"])]
             if "budget_aborts" in cache else [])
    w.family("tape_hits_total", "counter",
             "Instruction-tape cache hits.",
             [({}, cache["tape_hits"])] if "tape_hits" in cache
             else [])
    w.family("tape_flattens_total", "counter",
             "Circuits flattened to instruction tapes.",
             [({}, cache["tape_flattens"])]
             if "tape_flattens" in cache else [])

    # Per-tenant usage (the multi-tenant hardening story).
    w.family("tenant_requests_total", "counter",
             "Requests per tenant (including refused ones).",
             [({"tenant": name}, usage.get("requests", 0))
              for name, usage in sorted(tenants.items())])
    w.family("tenant_rate_limited_total", "counter",
             "Requests refused by the tenant's rate window.",
             [({"tenant": name}, usage.get("rate_limited", 0))
              for name, usage in sorted(tenants.items())])
    w.family("tenant_compiles_total", "counter",
             "Fresh compilations charged to the tenant.",
             [({"tenant": name}, usage.get("compiles", 0))
              for name, usage in sorted(tenants.items())])
    w.family("tenant_compile_nodes_total", "counter",
             "Cumulative interned nodes charged to the tenant.",
             [({"tenant": name}, usage.get("nodes_spent", 0))
              for name, usage in sorted(tenants.items())])

    # Request-tracing projection: per-(op, stage) latency histograms
    # plus the tracer's own scalar counters.  ``sum_ms`` converts to
    # seconds here so the exposition speaks base units throughout.
    histograms = tracing.get("histograms") or {}
    w.histogram_family(
        "op_stage_seconds",
        "Stage latency by operation ('total' is the whole request).",
        [({"op": op, "stage": stage}, h["buckets"],
          h["sum_ms"] / 1000.0, h["count"])
         for op, stages in sorted(histograms.items())
         for stage, h in sorted(stages.items())])
    w.family("tracing_info", "gauge",
             "Numeric request-tracer stats, by key.",
             [({"key": key}, value)
              for key, value in _numeric_items(
                  tracing, skip=("histograms",))])

    # Everything else numeric in the two sections: generic gauges, so
    # new stats counters surface without touching this module.
    w.family("service_info", "gauge",
             "Remaining numeric service-section stats, by key.",
             [({"key": key}, value)
              for key, value in _numeric_items(
                  service, skip=_CURATED_SERVICE)])
    w.family("cache_info", "gauge",
             "Remaining numeric cache-section stats, by key.",
             [({"key": key}, value)
              for key, value in _numeric_items(
                  cache, skip=_CURATED_CACHE)])
    return w.text()
