"""Client library for the repro query service.

``ServiceClient`` owns one TCP connection and speaks the versioned
line protocol; each ``call`` writes one request line and blocks for
its response line, raising ``ServiceError`` (carrying the structured
``code``) when the server answers with an error.  The convenience
methods mirror the server's operations one-to-one, so the whole
surface reads like the in-process API:

    with ServiceClient(port=7411) as client:
        client.compile("(R|S1)(S1|T)", p=6)
        result = client.sweep("(R|S1)(S1|T)", p=6, grid=32)
        print(result["engine"], client.stats()["cache"]["compiles"])

The client is thread-safe (an internal lock serializes request/response
pairs on the single connection); for genuinely concurrent traffic open
one client per thread — the server coalesces same-fingerprint sweeps
across connections either way.

Transport knobs: the constructor retries a refused connection a
bounded number of times with exponential backoff (service start-up
races), and ``call`` accepts a per-call ``timeout=`` that bounds the
wait for *this* response — expiry raises ``ServiceError`` with code
``timeout`` and closes the connection, because a response that
arrives after its deadline would desynchronize the line framing for
every later call.  ``call`` also accepts ``trace=`` to pin the
request's trace id; the id the server echoes (supplied or minted) is
kept in ``last_trace`` for correlation with the ``trace`` op.

A ``call`` on a connection that an earlier timeout (or ``close()``)
already tore down raises ``ServiceError("connection-closed", ...)``
rather than a raw ``OSError``; constructing the client with
``reconnect=True`` makes that call redial through the same bounded
connect-retry path instead — the mode for clients that must survive
a server or worker-process restart.
"""

from __future__ import annotations

import json
import socket
import threading
import time

from fractions import Fraction

from repro.service.protocol import (
    PROTOCOL_VERSION,
    dump_line,
    encode_request,
)

DEFAULT_PORT = 7411


class ServiceError(Exception):
    """An error response (or transport failure), with its code."""

    def __init__(self, code: str, message: str):
        self.code = code
        self.message = message
        super().__init__(f"{code}: {message}")


def _wire_value(value):
    """JSON-encodable rendering of one parameter value (exact
    ``Fraction``s travel as their ``"num/den"`` string)."""
    if isinstance(value, Fraction):
        return str(value)
    return value


class ServiceClient:
    """One connection to a running ``ReproServer``."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, timeout: float = 60.0,
                 auth: str | None = None, connect_retries: int = 2,
                 retry_backoff: float = 0.05, reconnect: bool = False):
        if connect_retries < 0:
            raise ValueError("connect_retries must be non-negative")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        self.host, self.port = host, port
        #: With ``reconnect=True`` a ``call`` on a connection that an
        #: earlier timeout (or ``close()``) tore down redials through
        #: the same bounded connect-retry path instead of failing —
        #: the mode for clients that must survive a server or worker
        #: restart.  Default off: a silent redial would hide the lost
        #: connection from callers that need to know.
        self.reconnect = reconnect
        #: Tenant auth token sent on every request (``None`` for an
        #: open server).  A wrong or missing token surfaces as a
        #: ``ServiceError`` with code ``unauthorized``; a tripped
        #: tenant quota as code ``quota-exceeded``.
        self.auth = auth
        #: Trace id echoed by the most recent response (the id the
        #: caller supplied, or the one the server minted) — feed it to
        #: the ``trace`` op to fetch that request's span tree.
        self.last_trace: str | None = None
        self._timeout = timeout
        self._connect_retries = connect_retries
        self._retry_backoff = retry_backoff
        self._sock = self._connect(host, port, timeout,
                                   connect_retries, retry_backoff)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False

    @staticmethod
    def _connect(host, port, timeout, retries, backoff):
        """``socket.create_connection`` with bounded retry: a refused
        or unreachable server is retried ``retries`` times with
        exponential backoff (start-up races between ``repro serve``
        and its first client); the final failure propagates."""
        attempt = 0
        while True:
            try:
                return socket.create_connection((host, port),
                                                timeout=timeout)
            except OSError:
                if attempt >= retries:
                    raise
                time.sleep(backoff * (2 ** attempt))
                attempt += 1

    # ------------------------------------------------------------------
    def call(self, op: str, *, timeout: float | None = None,
             trace: str | None = None, **params) -> dict:
        """Send one request; return its ``result`` or raise
        ``ServiceError``.  ``None``-valued params are omitted (the
        server applies its defaults).

        ``timeout`` bounds the wait for this one response; expiry
        raises ``ServiceError("timeout", ...)`` and closes the
        connection (a late response would desynchronize the framing).
        ``trace`` pins the request's trace id instead of letting the
        server mint one.
        """
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        payload = {key: _wire_value(value)
                   for key, value in params.items() if value is not None}
        with self._lock:
            if self._closed:
                # A previous timeout/close tore the connection down;
                # without this guard the write below surfaces as a raw
                # ValueError/OSError from the dead file object.
                if not self.reconnect:
                    raise ServiceError(
                        "connection-closed",
                        "connection was closed by an earlier timeout "
                        "or close(); construct the client with "
                        "reconnect=True to redial automatically")
                try:
                    self._sock = self._connect(
                        self.host, self.port, self._timeout,
                        self._connect_retries, self._retry_backoff)
                except OSError as error:
                    raise ServiceError(
                        "connection-closed",
                        f"reconnect to {self.host}:{self.port} "
                        f"failed: {error}") from None
                self._file = self._sock.makefile("rwb")
                self._closed = False
            self._next_id += 1
            request_id = self._next_id
            line = dump_line(encode_request(op, payload, request_id,
                                            auth=self.auth,
                                            trace=trace))
            restore = self._sock.gettimeout()
            if timeout is not None:
                self._sock.settimeout(timeout)
            try:
                self._file.write(line)
                self._file.flush()
                raw = self._file.readline()
            except TimeoutError:
                self.close()
                raise ServiceError(
                    "timeout",
                    f"no response to {op!r} within {timeout}s; "
                    f"connection closed") from None
            except (OSError, ValueError) as error:
                # The peer died mid-exchange (worker crash, server
                # restart).  Close and surface the structured code so
                # callers can retry — with reconnect=True the next
                # call redials.
                self.close()
                raise ServiceError(
                    "connection-closed",
                    f"connection lost during {op!r}: "
                    f"{error}") from None
            finally:
                if timeout is not None:
                    try:
                        self._sock.settimeout(restore)
                    except OSError:
                        pass  # already closed by the timeout path
        if not raw:
            self.close()
            raise ServiceError("connection-closed",
                               "server closed the connection")
        try:
            response = json.loads(raw)
        except ValueError as error:
            raise ServiceError(
                "parse-error",
                f"unreadable response: {error}") from None
        if response.get("v") != PROTOCOL_VERSION:
            raise ServiceError(
                "unsupported-version",
                f"server speaks protocol {response.get('v')!r}, "
                f"client speaks {PROTOCOL_VERSION}")
        echoed = response.get("trace")
        if isinstance(echoed, str):
            self.last_trace = echoed
        if not response.get("ok"):
            # Surface the server's structured error before id
            # bookkeeping — an unparseable request cannot echo an id.
            error = response.get("error") or {}
            raise ServiceError(error.get("code", "internal"),
                               error.get("message", "unknown error"))
        if response.get("id") != request_id:
            raise ServiceError(
                "bad-response",
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}")
        result = response.get("result")
        if not isinstance(result, dict):
            raise ServiceError("bad-response",
                               "response carries no result object")
        return result

    # ------------------------------------------------------------------
    # One convenience method per operation
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.call("ping")

    def stats(self) -> dict:
        return self.call("stats")

    def metrics(self) -> dict:
        """The Prometheus-style rendering of ``stats``: a dict with
        ``text`` (the exposition body) and ``content_type``."""
        return self.call("metrics")

    def trace(self, id: str | None = None, limit: int | None = None,
              slow: bool | None = None) -> dict:
        """Recent request traces — or one trace by id (``id=`` accepts
        the ``last_trace`` echoed by any earlier call), or only the
        slow-log entries (``slow=True``)."""
        return self.call("trace", id=id, limit=limit, slow=slow)

    def store_gc(self, max_bytes: int) -> dict:
        """Prune the service's tier-2 store down to ``max_bytes``
        (oldest access time first); errors when no store is attached."""
        return self.call("store_gc", max_bytes=max_bytes)

    def compile(self, query: str, p: int = 4,
                budget_nodes: int | None = None) -> dict:
        return self.call("compile", query=query, p=p,
                         budget_nodes=budget_nodes)

    def evaluate(self, query: str, p: int = 4, method: str | None = None,
                 budget_nodes: int | None = None, epsilon=None,
                 delta=None, seed: int | None = None,
                 estimator: str | None = None,
                 relative_error=None) -> dict:
        return self.call("evaluate", query=query, p=p, method=method,
                         budget_nodes=budget_nodes, epsilon=epsilon,
                         delta=delta, seed=seed, estimator=estimator,
                         relative_error=relative_error)

    def evaluate_batch(self, query: str, ps, method: str | None = None,
                       budget_nodes: int | None = None, epsilon=None,
                       delta=None, seed: int | None = None,
                       estimator: str | None = None,
                       relative_error=None) -> dict:
        return self.call("evaluate_batch", query=query, ps=list(ps),
                         method=method, budget_nodes=budget_nodes,
                         epsilon=epsilon, delta=delta, seed=seed,
                         estimator=estimator,
                         relative_error=relative_error)

    def sweep(self, query: str, p: int = 4, grid: int = 8,
              numeric: str | None = None,
              budget_nodes: int | None = None, epsilon=None,
              delta=None, seed: int | None = None,
              estimator: str | None = None,
              relative_error=None) -> dict:
        return self.call("sweep", query=query, p=p, grid=grid,
                         numeric=numeric, budget_nodes=budget_nodes,
                         epsilon=epsilon, delta=delta, seed=seed,
                         estimator=estimator,
                         relative_error=relative_error)

    def estimate(self, query: str, p: int = 4, epsilon=None,
                 delta=None, seed: int | None = None,
                 estimator: str | None = None,
                 relative_error=None) -> dict:
        return self.call("estimate", query=query, p=p, epsilon=epsilon,
                         delta=delta, seed=seed, estimator=estimator,
                         relative_error=relative_error)

    def sample(self, query: str, p: int = 4, k: int = 1,
               seed: int | None = None,
               budget_nodes: int | None = None) -> dict:
        return self.call("sample", query=query, p=p, k=k, seed=seed,
                         budget_nodes=budget_nodes)

    def top_k(self, query: str, p: int = 4, k: int = 1,
              budget_nodes: int | None = None) -> dict:
        return self.call("top_k", query=query, p=p, k=k,
                         budget_nodes=budget_nodes)

    def shutdown(self) -> dict:
        """Ask the server to stop.  Tolerates the connection closing
        before (or instead of) the acknowledgement — by then the
        shutdown has clearly been taken."""
        try:
            return self.call("shutdown")
        except (ServiceError, OSError):
            return {"stopping": True}

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._closed = True
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
