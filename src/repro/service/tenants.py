"""Per-tenant authentication and quota accounting for the service.

"Millions of users" starts with the server knowing *who* is asking and
being able to say *no* cheaply.  This module is that layer, at stdlib
scale (the shape follows kuberdock's rbac fixtures + system settings:
a static token -> tenant map plus a small limits record, not a policy
engine):

* **Authentication** — an optional ``token -> tenant`` map.  When it
  is empty the service is open and every request runs as the
  ``"anonymous"`` tenant (the PR 4 behaviour, unchanged); when it is
  populated, a request must carry a known ``auth`` token or it is
  refused with the structured ``unauthorized`` error code before any
  work happens.

* **Quotas** — a ``TenantQuota`` record per tenant (one default plus
  per-tenant overrides): a fixed-window request-rate cap and a
  *cumulative* compile budget in interned circuit nodes.  The rate
  window rolls over (a burst next minute is fine, a burst this minute
  is not); the compile budget never resets — it is the tenant's total
  entitlement to the exponential step, spent when their request causes
  a circuit to become resident.  Both trip the ``quota-exceeded``
  error code.  Enforcement is two-phase for compiles: ``check_compile``
  fails fast *before* any work when the budget is already exhausted,
  and ``charge_compile`` records the spend *after* a fresh compilation
  — so the request that crosses the cap still pays for the work it
  caused (the circuit stays cached for everyone), and every later
  compile-needing request from that tenant is refused without burning
  a worker.

* **Usage accounting** — per-tenant lifetime counters (requests,
  rate-limited refusals, compiles charged, nodes spent) surfaced in
  the ``stats`` payload and the Prometheus-style ``metrics`` op, so
  capacity planning reads off a scrape instead of a log dive.

All state lives behind one lock; the clock is injectable so the
window-rollover arithmetic is unit-testable without sleeping.
"""

from __future__ import annotations

import math
import threading
import time

from dataclasses import dataclass

from repro.service.protocol import ProtocolError

#: The tenant every request maps to while authentication is disabled.
ANONYMOUS = "anonymous"


@dataclass(frozen=True)
class TenantQuota:
    """Limits for one tenant; ``None`` fields are unlimited.

    ``rate`` caps requests per fixed ``window`` seconds (the window
    rolls over: the counter resets ``window`` seconds after the first
    request of the current window).  ``compile_nodes`` is a cumulative
    cap on interned circuit nodes the tenant's requests may cause to
    be compiled — the exponential step is the resource worth metering,
    and node counts are its honest unit.
    """

    rate: int | None = None
    window: float = 60.0
    compile_nodes: int | None = None

    def __post_init__(self):
        # Non-finite values slip past the ordering checks below —
        # float("nan") <= 0 is False — and then poison the rollover
        # arithmetic (a nan window never resets, an inf window never
        # rolls over), so they are refused outright.
        for name in ("rate", "window", "compile_nodes"):
            value = getattr(self, name)
            if value is not None and not math.isfinite(value):
                raise ValueError(
                    f"quota {name} must be finite, got {value!r}")
        if self.rate is not None and self.rate < 1:
            raise ValueError("quota rate must be at least 1")
        if self.window <= 0:
            raise ValueError("quota window must be positive")
        if self.compile_nodes is not None and self.compile_nodes < 0:
            raise ValueError("quota compile_nodes must be non-negative")

    @classmethod
    def parse(cls, text: str) -> "TenantQuota":
        """``"rate=120,window=60,nodes=500000"`` -> ``TenantQuota``.

        Every key is optional; unknown keys and malformed numbers
        raise ``ValueError`` with the offending piece named (the CLI
        turns that into a friendly ``SystemExit``).
        """
        fields: dict = {}
        for piece in text.split(","):
            piece = piece.strip()
            if not piece:
                continue
            key, sep, value = piece.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(
                    f"quota piece {piece!r} is not key=value")
            if key not in ("rate", "window", "nodes"):
                raise ValueError(
                    f"unknown quota key {key!r} "
                    f"(known: rate, window, nodes)")
            try:
                if key == "rate":
                    fields["rate"] = int(value)
                elif key == "window":
                    fields["window"] = float(value)
                else:
                    fields["compile_nodes"] = int(value)
            except ValueError:
                raise ValueError(
                    f"bad quota value {value!r} for {key!r}") from None
        return cls(**fields)

    def as_dict(self) -> dict:
        return {"rate": self.rate, "window": self.window,
                "compile_nodes": self.compile_nodes}


class _TenantState:
    """Mutable per-tenant accounting (guarded by the registry lock)."""

    __slots__ = ("window_start", "window_count", "nodes_spent",
                 "requests", "rate_limited", "compiles")

    def __init__(self):
        self.window_start = None
        self.window_count = 0
        self.nodes_spent = 0
        self.requests = 0
        self.rate_limited = 0
        self.compiles = 0


class TenantRegistry:
    """Token authentication plus per-tenant quota enforcement.

    ``tokens`` maps auth token -> tenant name (empty/None = open
    service, everything runs as ``ANONYMOUS``).  ``quota`` is the
    default ``TenantQuota`` applied to every tenant; ``overrides``
    maps tenant name -> a ``TenantQuota`` replacing the default for
    that tenant.  ``clock`` must be a monotonic ``() -> float``.
    """

    def __init__(self, tokens: dict[str, str] | None = None,
                 quota: TenantQuota | None = None,
                 overrides: dict[str, TenantQuota] | None = None,
                 clock=time.monotonic):
        self._lock = threading.Lock()
        self._tokens = dict(tokens or {})
        self._overrides = dict(overrides or {})
        self.default_quota = quota
        self._clock = clock
        self._states: dict[str, _TenantState] = {}

    @property
    def auth_enabled(self) -> bool:
        with self._lock:
            return bool(self._tokens)

    def quota_for(self, tenant: str) -> TenantQuota | None:
        with self._lock:
            return self._overrides.get(tenant, self.default_quota)

    # ------------------------------------------------------------------
    # Authentication
    # ------------------------------------------------------------------
    def resolve(self, token: str | None) -> str:
        """Token -> tenant name, or ``unauthorized``.

        With authentication disabled every request (token or not) is
        ``ANONYMOUS``; with it enabled a missing or unknown token is
        refused.  The error message never echoes the attempted token —
        near-miss secrets do not belong in logs.
        """
        with self._lock:
            if not self._tokens:
                return ANONYMOUS
            if token is None:
                raise ProtocolError(
                    "unauthorized",
                    "this service requires an auth token "
                    "(send a top-level 'auth' field)")
            tenant = self._tokens.get(token)
        if tenant is None:
            raise ProtocolError("unauthorized",
                                "unknown auth token")
        return tenant

    # ------------------------------------------------------------------
    # Quota enforcement
    # ------------------------------------------------------------------
    def _state(self, tenant: str) -> _TenantState:
        """Caller holds ``_lock``."""
        state = self._states.get(tenant)
        if state is None:
            state = self._states[tenant] = _TenantState()
        return state

    def charge_request(self, tenant: str) -> None:
        """Count one request against the tenant's rate window.

        The fixed window starts at the first request it admits and
        rolls over ``window`` seconds later; a request past ``rate``
        within the open window is refused (and counted as
        ``rate_limited``) without resetting the window.
        """
        quota = self.quota_for(tenant)
        with self._lock:
            state = self._state(tenant)
            state.requests += 1
            if quota is None or quota.rate is None:
                return
            now = self._clock()
            if (state.window_start is None
                    or now - state.window_start >= quota.window):
                state.window_start = now
                state.window_count = 0
            if state.window_count >= quota.rate:
                state.rate_limited += 1
                retry = quota.window - (now - state.window_start)
                raise ProtocolError(
                    "quota-exceeded",
                    f"tenant {tenant!r} exceeded {quota.rate} "
                    f"requests per {quota.window:g}s window; retry in "
                    f"{max(retry, 0):.1f}s")
            state.window_count += 1

    def check_compile(self, tenant: str) -> None:
        """Fail fast when the tenant's compile budget is already spent
        (before any compilation work is scheduled)."""
        quota = self.quota_for(tenant)
        if quota is None or quota.compile_nodes is None:
            return
        with self._lock:
            spent = self._state(tenant).nodes_spent
        if spent >= quota.compile_nodes:
            raise ProtocolError(
                "quota-exceeded",
                f"tenant {tenant!r} has spent {spent} of "
                f"{quota.compile_nodes} compile-budget nodes; "
                f"estimate-only ops (estimate, stats, metrics) "
                f"remain available")

    def charge_compile(self, tenant: str, nodes: int) -> None:
        """Record ``nodes`` freshly-compiled nodes against the
        tenant's cumulative budget.

        The spend is recorded *before* the over-budget check: the
        work already happened, so the request that crosses the cap is
        refused but still pays — and every later ``check_compile``
        fails fast on the recorded total.
        """
        quota = self.quota_for(tenant)
        with self._lock:
            state = self._state(tenant)
            state.compiles += 1
            state.nodes_spent += nodes
            spent = state.nodes_spent
        if quota is not None and quota.compile_nodes is not None \
                and spent > quota.compile_nodes:
            raise ProtocolError(
                "quota-exceeded",
                f"tenant {tenant!r} crossed its compile budget: "
                f"{spent} nodes spent of {quota.compile_nodes} "
                f"(this request's compilation is cached but further "
                f"compilation is refused)")

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def usage(self) -> dict:
        """Per-tenant counters for ``stats``/``metrics``, sorted by
        tenant name so the payload is deterministic."""
        with self._lock:
            snapshot = sorted(self._states.items())
            out = {}
            for tenant, state in snapshot:
                quota = self._overrides.get(tenant, self.default_quota)
                out[tenant] = {
                    "requests": state.requests,
                    "rate_limited": state.rate_limited,
                    "compiles": state.compiles,
                    "nodes_spent": state.nodes_spent,
                    "quota": (quota.as_dict()
                              if quota is not None else None),
                }
            return out
