"""Worker-process entry point for the multi-process query service.

``python -m repro.service.worker`` boots one ``ReproServer`` in
worker mode on an ephemeral port and prints a one-line banner the
dispatcher (``repro.service.dispatch``) parses to learn the bound
address — the same handshake ``repro serve`` uses with its smoke and
bench harnesses.  The worker speaks the full versioned line protocol,
so it is independently debuggable with a plain ``ServiceClient``.

Worker mode changes exactly two things relative to ``repro serve``:

* the worker runs **open** (no auth tokens, no quotas) — tenant
  authentication and quota state live only in the dispatcher, the one
  process with a complete view of every tenant's spend; and
* responses whose request led a fresh compilation carry a ``charge``
  record (interned-node count) the dispatcher strips and applies to
  its central :class:`~repro.service.tenants.TenantRegistry`.

The tier-2 ``CircuitStore`` (``--store`` or ``REPRO_CIRCUIT_STORE``)
is shared across the pool: writes are atomic and content-addressed,
so concurrent workers race benignly, and a respawned worker finds its
predecessor's circuits already on disk.
"""

from __future__ import annotations

import argparse
import sys

from repro.service.server import ReproServer
from repro.tid import wmc

#: Start-up handshake line, completed with ``<host>:<port>``.  The
#: dispatcher blocks on this exact prefix; change it in lockstep with
#: ``repro.service.dispatch``.
BANNER = "repro worker listening on"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="one worker process of a repro service pool "
                    "(spawned by `repro serve --workers N`)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 binds an ephemeral port (the banner "
                             "reports the choice)")
    parser.add_argument("--store", default=None,
                        help="tier-2 circuit store directory shared "
                             "with the rest of the pool")
    parser.add_argument("--compile-threads", type=int, default=4,
                        dest="compile_threads",
                        help="max concurrent compilations in this "
                             "process (default 4)")
    parser.add_argument("--window", type=float, default=0.01,
                        help="sweep-coalescing window in seconds")
    parser.add_argument("--budget", type=int, default=None,
                        help="default compilation budget in nodes "
                             "(0 = unlimited)")
    parser.add_argument("--store-max-bytes", type=int, default=None,
                        dest="store_max_bytes",
                        help="auto-prune the store under this size "
                             "after fresh compilations")
    parser.add_argument("--no-tracing", action="store_true",
                        dest="no_tracing",
                        help="disable span tracing in this worker")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.compile_threads < 1:
        print("repro-worker: --compile-threads must be at least 1",
              file=sys.stderr)
        return 2
    if args.budget is None:
        budget = wmc.DEFAULT_BUDGET_NODES
    else:
        budget = None if args.budget == 0 else args.budget
    server = ReproServer(
        args.host, args.port,
        store=args.store,
        workers=args.compile_threads,
        window=args.window,
        budget_nodes=budget,
        store_max_bytes=args.store_max_bytes,
        tracing=not args.no_tracing,
        worker_mode=True)
    host, port = server.address
    print(f"{BANNER} {host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
