"""Request scheduling for the query service.

Two schedulers make the warm circuit store pay off under concurrency:

* ``CompilePool`` — a bounded worker pool for the exponential step,
  with in-flight dedupe: while one thread compiles a fingerprint, every
  other request for the same ``(fingerprint, budget)`` blocks on that
  job and shares its result (or its ``CompilationBudgetExceeded``)
  instead of launching a duplicate exponential search.  This is the
  layer that turns "N concurrent requests" into "exactly one
  compilation" — the ``wmc`` cache alone only dedupes *completed*
  compilations.

* ``SweepCoalescer`` — request batching for the linear step: sweep
  requests against the same circuit (same coalescing key) that arrive
  within a small window are merged into **one**
  ``Circuit.probability_batch`` pass over the concatenation of their
  weight vectors; each request gets its slice back.  Batching is not
  just bookkeeping: the batched pass keeps the unswept part of the
  circuit scalar and shares it across all lanes, so one pass over N
  requests beats N passes even ignoring scheduling overhead.

Both are transport-agnostic (no sockets, no protocol) and usable by
any embedding — the TCP server is just one caller.

Both record ``repro.obs`` spans when the calling request carries an
active trace: the leader of a deduped compile gets a ``queue`` span
covering the wait for an executor slot (the submitted job runs inside
a copy of the leader's context, so compile-stage spans land in the
leader's trace), riders get a ``queue`` span covering their wait on
the shared job, tagged with the leader's trace id.  The coalescer
mirrors this with ``coalesce`` spans around the leader's batching
window and each rider's wait.  With no active trace every span call
returns the shared no-op span.
"""

from __future__ import annotations

import contextvars
import threading
import time

from concurrent.futures import ThreadPoolExecutor

from repro import obs


class _Job:
    """One in-flight compilation: a completion event plus its outcome.
    ``trace_id`` is the leader's trace id (or None), so riders can
    attribute their wait to the trace doing the actual work."""

    __slots__ = ("done", "result", "error", "trace_id")

    def __init__(self):
        self.done = threading.Event()
        self.result = None
        self.error = None
        self.trace_id = None


class CompilePool:
    """A bounded compile executor with same-key in-flight dedupe."""

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-compile")
        self._lock = threading.Lock()
        self._inflight: dict = {}
        #: Jobs actually launched vs. requests that piggybacked on an
        #: in-flight job for the same key.
        self.launched = 0
        self.joined = 0

    def run(self, key, fn):
        """``fn()`` on a pool worker, deduped by ``key``.

        The first caller for a key launches the job and blocks for its
        result; concurrent callers with the same key block on the same
        job and receive the identical result — including a raised
        exception, which is re-raised in every waiter.
        """
        return self.run_attributed(key, fn)[0]

    def run_attributed(self, key, fn):
        """``run``, but returns ``(result, leader)`` where ``leader``
        says whether *this* caller launched the job rather than
        piggybacking on an in-flight one.  The quota layer uses the
        flag to charge a fresh compilation to exactly one tenant —
        the one whose request caused the work — instead of every
        waiter that happened to join it.
        """
        with self._lock:
            job = self._inflight.get(key)
            leader = job is None
            if leader:
                job = _Job()
                job.trace_id = obs.current_trace_id()
                self._inflight[key] = job
                self.launched += 1
            else:
                self.joined += 1
        if leader:
            # The job runs on an executor worker, where contextvars do
            # not propagate by themselves: carry the leader's context
            # across so compile-stage spans attach to the leader's
            # trace.  The ``queue`` span measures the wait for a free
            # worker — it starts here and is closed by the task itself
            # the moment it begins executing.
            queue_span = obs.span("queue", role="leader").begin()
            ctx = contextvars.copy_context()

            def task():
                queue_span.finish()
                return ctx.run(fn)

            try:
                job.result = self._executor.submit(task).result()
            except BaseException as error:
                job.error = error
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                job.done.set()
        else:
            with obs.span("queue", role="rider",
                          leader=job.trace_id or ""):
                job.done.wait()
        if job.error is not None:
            raise job.error
        return job.result, leader

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False)

    def stats(self) -> dict:
        with self._lock:
            return {"workers": self.workers,
                    "compile_jobs": self.launched,
                    "compile_joins": self.joined,
                    "compiles_inflight": len(self._inflight)}


class _Batch:
    """One coalesced sweep pass: shared vector list, shared outcome.
    ``trace_id`` attributes the batch to its leader's trace."""

    __slots__ = ("vectors", "requests", "done",
                 "values", "engine", "estimates", "error", "trace_id")

    def __init__(self):
        self.vectors = []
        self.requests = 0
        self.done = threading.Event()
        self.values = None
        self.engine = None
        self.estimates = None
        self.error = None
        self.trace_id = None


class SweepCoalescer:
    """Merge concurrent same-key weight-vector requests into one pass.

    The first request for a key becomes the *leader*: it registers an
    open batch, sleeps for ``window`` seconds while followers append
    their vectors, then atomically closes the batch and runs
    ``runner`` once over every vector collected.  Followers block
    until the leader finishes and slice their own results back out.
    Requests arriving after the close simply open the next batch —
    by then the circuit is warm, so they only pay their own linear
    pass.
    """

    def __init__(self, window: float = 0.01):
        if window < 0:
            raise ValueError("window must be non-negative")
        self.window = window
        self._lock = threading.Lock()
        self._pending: dict = {}
        #: Passes run / passes that served >1 request / requests beyond
        #: the first in each such pass.
        self.batch_passes = 0
        self.coalesced_batches = 0
        self.coalesced_requests = 0

    def submit(self, key, weight_maps, runner, wait: bool = True):
        """Evaluate ``weight_maps`` through the coalesced pass for
        ``key``; returns ``(values, engine, estimates)`` for exactly
        this request's vectors.

        ``runner(vectors)`` must return an object with ``values`` /
        ``engine`` / ``estimates`` attributes covering ``vectors`` in
        order (``repro.tid.wmc.probability_batch_auto``'s ``AutoSweep``
        is the intended shape).  A runner exception propagates to
        every coalesced request of the batch.

        ``wait=False`` skips the leader's coalescing sleep: the right
        call when the circuit is already warm, where the pass is
        linear and a mandatory window would *add* latency instead of
        hiding it behind a cold compilation.  Followers can still pile
        onto an open batch either way.
        """
        weight_maps = list(weight_maps)
        with self._lock:
            batch = self._pending.get(key)
            leader = batch is None
            if leader:
                batch = _Batch()
                batch.trace_id = obs.current_trace_id()
                self._pending[key] = batch
            start = len(batch.vectors)
            batch.vectors.extend(weight_maps)
            batch.requests += 1
            stop = len(batch.vectors)
        if leader:
            if wait and self.window > 0:
                with obs.span("coalesce", role="leader"):
                    time.sleep(self.window)
            with self._lock:
                # Close the batch: late arrivals start the next one.
                self._pending.pop(key, None)
                vectors = list(batch.vectors)
                self.batch_passes += 1
                if batch.requests > 1:
                    self.coalesced_batches += 1
                    self.coalesced_requests += batch.requests - 1
            try:
                sweep = runner(vectors)
                batch.values = sweep.values
                batch.engine = sweep.engine
                batch.estimates = sweep.estimates
            except BaseException as error:
                batch.error = error
            finally:
                batch.done.set()
        else:
            with obs.span("coalesce", role="rider",
                          leader=batch.trace_id or ""):
                batch.done.wait()
        if batch.error is not None:
            raise batch.error
        estimates = (batch.estimates[start:stop]
                     if batch.estimates is not None else None)
        return batch.values[start:stop], batch.engine, estimates

    def stats(self) -> dict:
        with self._lock:
            return {"window_s": self.window,
                    "batch_passes": self.batch_passes,
                    "coalesced_batches": self.coalesced_batches,
                    "coalesced_requests": self.coalesced_requests}
