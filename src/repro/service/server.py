"""The long-lived query service: a TCP server over the warm caches.

Every ``repro`` CLI invocation pays interpreter start-up plus a cold
compilation cache; the economics of the circuit IR — compile once,
evaluate many — want the opposite: one resident process whose tier-1
LRU and tier-2 ``CircuitStore`` stay warm across requests and clients.
``ReproServer`` is that process:

* stdlib-only transport: a ``socketserver.ThreadingTCPServer`` (one
  thread per connection) speaking the line-delimited JSON protocol of
  ``repro.service.protocol``;
* all probability work routed through the ``auto`` policy
  (``cnf_probability_auto`` / ``probability_batch_auto``) with
  per-request ``budget_nodes``/``epsilon``/``delta``/``seed``
  overrides, so a blown compilation budget degrades a single request
  to the Monte-Carlo estimator — and every response records which
  engine answered, mirroring ``AutoProbability``;
* compilations run on a bounded ``CompilePool`` with in-flight dedupe,
  and concurrent sweep requests against the same ``cnf_fingerprint``
  coalesce into one ``Circuit.probability_batch`` pass
  (``SweepCoalescer``);
* the ``stats`` endpoint exposes ``wmc.cache_info()`` (hits, compiles,
  store hits/misses, budget aborts) plus the scheduler counters
  (coalesced batches, compile joins) and per-op request counts, so
  warm-cache behaviour is observable from any client.

Workloads are the same shape the CLI serves: a query in the miniature
clause syntax grounded over the ``B_p(u, v)`` path block.  The
server process is the unit of cache sharing — clients are free to
connect, query, and disconnect per request and still reuse every
compilation any other client paid for.
"""

from __future__ import annotations

import socketserver
import threading
import time

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.booleans.adaptive import (
    ENGINE_LABELS,
    ESTIMATORS,
    BudgetPlanner,
    estimate_with,
)
from repro.booleans.approximate import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    hoeffding_sample_count,
)
from repro.booleans.circuit import CompilationBudgetExceeded
from repro.booleans.cnf import CNF
from repro.booleans.store import cnf_fingerprint
from repro.core.queries import Query
from repro.core.safety import is_safe
from repro.evaluation import METHODS, endpoint_weight_grid, evaluate
from repro.reduction.blocks import path_block
from repro.obs import NULL_SPAN, Tracer, span
from repro.service.protocol import (
    MAX_REQUEST_BYTES,
    ProtocolError,
    check_fields,
    dump_line,
    encode_world,
    error_response,
    ok_response,
    parse_request,
    take_bool,
    take_fraction,
    take_int,
    take_int_list,
    take_str,
)
from repro.service.metrics import CONTENT_TYPE, render_metrics
from repro.service.scheduler import CompilePool, SweepCoalescer
from repro.service.tenants import ANONYMOUS, TenantQuota, TenantRegistry
from repro.tid import wmc
from repro.tid.database import TID, r_tuple, t_tuple
from repro.tid.lineage import lineage

#: Evaluation methods a client may force: exactly the library's —
#: "brute"/"cross-check" are expensive but legitimate validation
#: requests, and a method added to the evaluator is automatically
#: servable.
EVAL_METHODS = METHODS

_ESTIMATOR_FIELDS = ("budget_nodes", "epsilon", "delta", "seed",
                     "estimator", "relative_error")


@dataclass(frozen=True)
class Workload:
    """A resolved request target: query grounded over its path block."""

    text: str
    p: int
    query: Query = field(compare=False)
    tid: TID = field(compare=False)
    formula: CNF = field(compare=False)
    fingerprint: str = field(compare=False)
    safe: bool = field(compare=False)


class _ServiceTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    service = None  # installed by ReproServer


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):
        service = self.server.service
        while True:
            line = self.rfile.readline(MAX_REQUEST_BYTES + 1)
            if not line:
                return
            if len(line) > MAX_REQUEST_BYTES:
                response = error_response(
                    None, "bad-request",
                    f"request line exceeds {MAX_REQUEST_BYTES} bytes")
                # The connection's framing is now unrecoverable (the
                # oversized line was truncated mid-stream): answer and
                # hang up.
                self._reply(response)
                return
            if not line.strip():
                continue
            if not self._reply(service.handle_line(line)):
                return

    def _reply(self, response: dict) -> bool:
        try:
            self.wfile.write(dump_line(response))
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False


class WorkloadResolver:
    """A bounded LRU of resolved request targets: query text + block
    length -> grounded lineage plus its ``cnf_fingerprint``.

    Shared by ``ReproServer`` and the multi-process dispatcher
    (``repro.service.dispatch``) — the dispatcher needs the
    fingerprint *before* any worker is chosen (consistent-hash
    routing), and grounding is pure parsing, safe to do twice on a
    cold cache.  Resolution runs inside a ``dispatch`` span so the
    stage shows up in every request's trace either way.
    """

    def __init__(self, cache_size: int = 128):
        self._lock = threading.Lock()
        self._cache: OrderedDict = OrderedDict()
        self._cache_size = cache_size

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def resolve(self, params: dict) -> Workload:
        with span("dispatch") as sp:
            return self._resolve(params, sp)

    def _resolve(self, params: dict, sp) -> Workload:
        """``dispatch``-stage body: parse, ground, and cache the
        request target (the span tag says whether it was a cache
        hit)."""
        text = take_str(params, "query")
        p = take_int(params, "p", default=4, minimum=1, maximum=64)
        key = (text, p)
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
                sp.tag(cached=True)
                return hit
        sp.tag(cached=False)
        from repro.cli import parse_query
        try:
            query = parse_query(text)
            tid = path_block(query, p)
            formula = lineage(query, tid)
        except SystemExit as error:
            raise ProtocolError("bad-query", str(error)) from None
        except (ValueError, KeyError, TypeError) as error:
            raise ProtocolError(
                "bad-query",
                f"cannot ground {text!r} over B_{p}(u, v): "
                f"{error}") from None
        workload = Workload(text, p, query, tid, formula,
                            cnf_fingerprint(formula), is_safe(query))
        with self._lock:
            self._cache[key] = workload
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return workload


class ReproServer:
    """The resident query service (see the module docstring).

    ``port=0`` binds an ephemeral port — read the chosen one back from
    ``address``.  ``store`` installs a tier-2 ``CircuitStore`` (path or
    instance) before serving; ``workers`` bounds concurrent
    compilations; ``window`` is the sweep-coalescing window in seconds;
    ``budget_nodes`` is the default ``auto``-policy budget for requests
    that do not override it.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 store=None, workers: int = 4, window: float = 0.01,
                 budget_nodes: int | None = wmc.DEFAULT_BUDGET_NODES,
                 workload_cache_size: int = 128,
                 auth_tokens: dict[str, str] | None = None,
                 quota: TenantQuota | None = None,
                 tenant_quotas: dict[str, TenantQuota] | None = None,
                 store_max_bytes: int | None = None,
                 tracing: bool = True,
                 slow_ms: float | None = None,
                 trace_buffer: int = 256,
                 trace_dir=None,
                 tracer: Tracer | None = None,
                 clock=time.monotonic,
                 worker_mode: bool = False):
        if store is not None:
            wmc.set_circuit_store(store)
        if store_max_bytes is not None and store_max_bytes < 0:
            raise ValueError("store_max_bytes must be non-negative")
        if slow_ms is not None and slow_ms < 0:
            raise ValueError("slow_ms must be non-negative")
        self.default_budget = budget_nodes
        self.pool = CompilePool(workers)
        self.coalescer = SweepCoalescer(window)
        #: Request tracing: the tracer mints (or propagates) one trace
        #: per request, keeps the last ``trace_buffer`` span trees,
        #: feeds the (op, stage) latency histograms, and logs requests
        #: slower than ``slow_ms`` (optionally to
        #: ``trace_dir/TRACE_slow.jsonl``).  Pass a prebuilt
        #: ``tracer`` to override all of that (tests inject fake
        #: clocks this way).
        self.tracer = tracer if tracer is not None else Tracer(
            enabled=tracing, buffer_size=trace_buffer,
            slow_threshold=(None if slow_ms is None
                            else slow_ms / 1000.0),
            trace_dir=trace_dir)
        #: Multi-tenant hardening: token auth plus per-tenant quotas
        #: (``auth_tokens`` maps token -> tenant; ``quota`` is the
        #: default limits record, ``tenant_quotas`` per-tenant
        #: overrides).  With no tokens the service stays open and all
        #: requests run as the anonymous tenant.
        self.tenants = TenantRegistry(auth_tokens, quota,
                                      tenant_quotas)
        #: Size cap for the attached tier-2 store: after every fresh
        #: compilation the store is pruned back under this many bytes
        #: (oldest access time first) through ``CircuitStore.prune``.
        self.store_max_bytes = store_max_bytes
        #: Worker mode (set by ``repro.service.worker`` when this
        #: server is one process of a dispatcher's pool): every
        #: response whose request led a fresh compilation carries a
        #: ``charge`` record with the interned-node count, so the
        #: dispatcher — the single owner of tenant quota state — can
        #: apply the spend centrally.  Off by default; the field never
        #: appears in single-process responses.
        self.worker_mode = worker_mode
        #: Service-wide compilation-growth observations: every fresh
        #: leader compile feeds (clauses, circuit nodes) into one
        #: ``BudgetPlanner`` whose fit and trajectory are surfaced in
        #: ``stats`` (the dispatcher merges each worker's records into
        #: one aggregated planner via ``growth_records``).
        self.planner = BudgetPlanner()
        self._tenant_local = threading.local()
        self._counter_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._op_counts: dict[str, int] = {}
        #: Adaptive-tier observability: requests answered by a
        #: sequential sampler, individual estimates that stopped
        #: before the fixed-n Hoeffding count, and the samples that
        #: early stopping saved (sum + estimate count -> mean).
        self._adaptive_requests = 0
        self._early_stops = 0
        self._adaptive_estimates = 0
        self._samples_saved = 0
        #: Automatic store eviction: prune passes that evicted
        #: something, entries evicted, bytes reclaimed.
        self._auto_prunes = 0
        self._auto_evicted = 0
        self._auto_reclaimed_bytes = 0
        self.workloads = WorkloadResolver(workload_cache_size)
        #: Uptime runs on an injectable monotonic clock (dashboards
        #: rate-convert counters against it); ``started_at`` is the
        #: one wall-clock reading, taken exactly once at start-up.
        self._clock = clock
        self._started = clock()
        self._started_at = time.time()
        self._serve_thread = None
        self._dispatch = {
            "compile": self._op_compile,
            "evaluate": self._op_evaluate,
            "evaluate_batch": self._op_evaluate_batch,
            "sweep": self._op_sweep,
            "estimate": self._op_estimate,
            "sample": self._op_sample,
            "top_k": self._op_top_k,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "trace": self._op_trace,
            "store_gc": self._op_store_gc,
            "ping": self._op_ping,
            "shutdown": self._op_shutdown,
        }
        self._tcp = _ServiceTCPServer((host, port), _Handler)
        self._tcp.service = self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` requests."""
        return self._tcp.server_address[:2]

    def serve_forever(self) -> None:
        """Serve on the calling thread until ``shutdown`` (the op or
        the method) or KeyboardInterrupt."""
        self._tcp.serve_forever()

    def start(self) -> tuple[str, int]:
        """Serve on a background daemon thread; returns the address
        (tests and benchmarks embed the server this way)."""
        self._serve_thread = threading.Thread(
            target=self._tcp.serve_forever, daemon=True,
            name="repro-service")
        self._serve_thread.start()
        return self.address

    def close(self) -> None:
        """Stop accepting, close the listener, release the pool."""
        self._tcp.shutdown()
        self._tcp.server_close()
        self.pool.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5)
            self._serve_thread = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.close()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle_line(self, line: bytes | str) -> dict:
        """One request line to one response object (never raises).

        Every dispatched request runs inside a root span; the trace id
        (client-supplied via the top-level ``trace`` request field, or
        minted by the tracer) is echoed back as a top-level ``trace``
        response field, success or error, so clients can fetch the
        span tree afterwards through the ``trace`` op.
        """
        request_id = None
        try:
            request_id, op, params, auth, trace_id = parse_request(line)
        except ProtocolError as error:
            self._count(None, error=True)
            return error_response(error.request_id, error.code,
                                  error.message)
        root = NULL_SPAN
        try:
            # Authentication and the rate window come before any work:
            # an unauthorized or over-quota request costs one dict
            # lookup, not a compilation.  The resolved tenant rides on
            # a thread-local so the compile path (reached through the
            # schedulers) can attribute fresh work without threading a
            # tenant argument through every handler.
            tenant = self.tenants.resolve(auth)
            self._tenant_local.tenant = tenant
            # Fresh-compile spend accumulates on the request thread
            # (the compile pool runs only the build on its executor;
            # the leader/charge logic in _compiled stays on this
            # thread, as does a coalesced sweep's runner).
            self._tenant_local.charged_nodes = 0
            self.tenants.charge_request(tenant)
            self._count(op)
            root = self.tracer.root(op, trace_id=trace_id,
                                    tenant=tenant)
            with root:
                result = self._dispatch[op](params)
            if self.worker_mode:
                charged = getattr(self._tenant_local,
                                  "charged_nodes", 0)
                if charged:
                    result = dict(result)
                    result["charge"] = {"nodes": charged}
            response = ok_response(request_id, op, result)
        except ProtocolError as error:
            self._count(None, error=True)
            response = error_response(request_id, error.code,
                                      error.message)
        except Exception as error:  # never kill the connection loop
            self._count(None, error=True)
            response = error_response(
                request_id, "internal",
                f"{type(error).__name__}: {error}")
        echo = root.trace_id if root.trace_id is not None else trace_id
        if echo is not None:
            response["trace"] = echo
        return response

    def _count(self, op: str | None, error: bool = False) -> None:
        with self._counter_lock:
            if op is not None:
                self._requests += 1
                self._op_counts[op] = self._op_counts.get(op, 0) + 1
            if error:
                self._errors += 1

    # ------------------------------------------------------------------
    # Workload resolution (query text + block length -> lineage)
    # ------------------------------------------------------------------
    def _workload(self, params: dict) -> Workload:
        return self.workloads.resolve(params)

    def _compiled(self, workload: Workload,
                  budget_nodes: int | None, build=None):
        """The workload's circuit via the deduping compile pool, with
        quota attribution and automatic store eviction.

        A warm circuit costs nothing against anyone's quota; a fresh
        one is charged (its interned-node count) to the tenant whose
        request led the deduped job — joiners ride free, matching the
        "one compilation for N requests" economics.  A tenant whose
        cumulative compile budget is spent is refused *before* the
        work is scheduled; the request that crosses the cap is charged
        and refused after it (the circuit stays cached for everyone).
        """
        tenant = getattr(self._tenant_local, "tenant", ANONYMOUS)
        fresh = not wmc.is_cached(workload.formula)
        if fresh:
            self.tenants.check_compile(tenant)
        if build is None:
            def build():
                return wmc.compiled(workload.formula, budget_nodes)
        circuit, leader = self.pool.run_attributed(
            (workload.fingerprint, budget_nodes), build)
        if leader and fresh:
            self._autoprune_store()
            if len(workload.formula) >= 1 and circuit.size >= 1:
                with self._counter_lock:
                    self.planner.observe(len(workload.formula),
                                         circuit.size)
            local = self._tenant_local
            local.charged_nodes = (
                getattr(local, "charged_nodes", 0) + circuit.size)
            self.tenants.charge_compile(tenant, circuit.size)
        return circuit

    def _autoprune_store(self) -> None:
        """Size-capped automatic eviction: after a fresh compilation
        lands in the tier-2 store, prune it back under
        ``store_max_bytes`` (oldest access time first) so a long-lived
        service cannot grow its disk footprint without bound."""
        cap = self.store_max_bytes
        if cap is None:
            return
        store = wmc.get_circuit_store()
        if store is None or not hasattr(store, "prune"):
            return
        try:
            report = store.prune(max_bytes=cap)
        except OSError:
            return  # a sick disk must not fail the compile request
        reclaimed = (report.get("bytes_before", 0)
                     - report.get("bytes_after", 0))
        with self._counter_lock:
            self._auto_prunes += 1
            self._auto_evicted += report.get("removed", 0)
            self._auto_reclaimed_bytes += max(reclaimed, 0)

    def _prewarm(self, workload: Workload,
                 budget_nodes: int | None) -> None:
        """Route the compilation a downstream exact/auto evaluation
        will need through the deduping pool; a blown budget is left
        for the auto policy to degrade gracefully."""
        try:
            self._compiled(workload, budget_nodes)
        except CompilationBudgetExceeded:
            pass

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _op_ping(self, params: dict) -> dict:
        check_fields(params, ())
        return {"pong": True}

    def _op_shutdown(self, params: dict) -> dict:
        check_fields(params, ())
        # shutdown() blocks until serve_forever returns, so it must run
        # off-thread; the response is written before the accept loop
        # notices anything.
        threading.Thread(target=self._tcp.shutdown, daemon=True).start()
        return {"stopping": True}

    def _op_stats(self, params: dict) -> dict:
        check_fields(params, ())
        uptime = self._clock() - self._started
        with self._counter_lock:
            service = {
                "uptime_s": round(uptime, 3),
                "uptime_seconds": round(uptime, 6),
                "started_at": round(self._started_at, 3),
                "requests": self._requests,
                "errors": self._errors,
                "ops": dict(sorted(self._op_counts.items())),
                "default_budget_nodes": self.default_budget,
                "workloads_cached": len(self.workloads),
                "auth_enabled": self.tenants.auth_enabled,
                "store_max_bytes": self.store_max_bytes,
                "auto_prunes": self._auto_prunes,
                "auto_evicted": self._auto_evicted,
                "auto_reclaimed_bytes": self._auto_reclaimed_bytes,
            }
            planner_info = dict(self.planner.stats())
            planner_info["growth"] = self.planner.growth_records()
        service["planner"] = planner_info
        service.update(self.pool.stats())
        service.update(self.coalescer.stats())
        service.update(self._adaptive_stats())
        tracing = self.tracer.stats()
        tracing["histograms"] = self.tracer.histograms()
        return {"cache": wmc.cache_info(), "service": service,
                "tenants": self.tenants.usage(), "tracing": tracing}

    def _op_metrics(self, params: dict) -> dict:
        """The ``stats`` payload rendered in the Prometheus text
        exposition format — a projection, never separate counters, so
        the two surfaces cannot drift."""
        check_fields(params, ())
        return {"content_type": CONTENT_TYPE,
                "text": render_metrics(self._op_stats({}))}

    def _op_trace(self, params: dict) -> dict:
        """Completed request traces from the tracer's ring buffer:
        the newest ``limit`` (or the slow log with ``slow``), or one
        trace by ``id``.  Under auth, a tenant only ever sees its own
        traces — trace ids are not capabilities."""
        check_fields(params, ("id", "limit", "slow"))
        trace_id = take_str(params, "id", default=None)
        limit = take_int(params, "limit", default=16, minimum=1,
                         maximum=256)
        slow = take_bool(params, "slow", default=False)
        tenant = getattr(self._tenant_local, "tenant", ANONYMOUS)
        scope = tenant if self.tenants.auth_enabled else None
        if trace_id is not None:
            found = self.tracer.find(trace_id, tenant=scope)
            traces = [] if found is None else [found]
        else:
            traces = self.tracer.recent(limit, tenant=scope, slow=slow)
        return {"enabled": self.tracer.enabled,
                "count": len(traces), "traces": traces}

    def _op_store_gc(self, params: dict) -> dict:
        """Size-capped eviction on the attached tier-2 store
        (``CircuitStore.prune``): delete entries, oldest access time
        first, until the store fits in ``max_bytes``.  ``max_bytes``
        is required — there is no safe default for a destructive op."""
        check_fields(params, ("max_bytes",))
        max_bytes = take_int(params, "max_bytes", minimum=0)
        store = wmc.get_circuit_store()
        if store is None or not hasattr(store, "prune"):
            raise ProtocolError(
                "bad-request",
                "no circuit store attached to this service "
                "(start it with --store or REPRO_CIRCUIT_STORE)")
        report = store.prune(max_bytes=max_bytes)
        report["store"] = str(getattr(store, "root", ""))
        return report

    def _note_estimates(self, estimates, epsilon, delta) -> None:
        """Update the adaptive-tier counters after a request answered
        with sequential-sampler estimates.  Savings are measured
        against one fixed baseline — the unit-range Hoeffding count at
        the request's (epsilon, delta), i.e. what the default engine
        would have drawn — and clamped at zero: the importance
        sampler's own worst case is ``weight_cap^2`` times larger, so
        its runs can legitimately exceed the baseline without being
        early-stop failures."""
        sequential = [e for e in estimates
                      if e is not None and e.method != "hoeffding"
                      and e.samples > 0]
        if not sequential:
            return
        worst = hoeffding_sample_count(epsilon, delta)
        with self._counter_lock:
            self._adaptive_requests += 1
            for estimate in sequential:
                self._adaptive_estimates += 1
                saved = worst - estimate.samples
                if saved > 0:
                    self._early_stops += 1
                    self._samples_saved += saved

    def _adaptive_stats(self) -> dict:
        with self._counter_lock:
            mean_saved = (round(self._samples_saved
                                / self._adaptive_estimates, 2)
                          if self._adaptive_estimates else 0.0)
            return {"adaptive_requests": self._adaptive_requests,
                    "early_stops": self._early_stops,
                    "mean_samples_saved": mean_saved}

    def _op_compile(self, params: dict) -> dict:
        check_fields(params, ("query", "p", "budget_nodes"))
        budget = take_int(params, "budget_nodes", default=None, minimum=2)
        workload = self._workload(params)
        # The job itself records where its circuit came from (only the
        # leader of a deduped compile executes `build`, so the probe
        # is per-formula, never contaminated by concurrent requests on
        # other formulas); a request that piggybacked on someone
        # else's in-flight compile did no new work and says so.
        job_source: dict = {}

        def build():
            if wmc.is_cached(workload.formula):
                job_source["source"] = "memory cache"
            else:
                store = wmc.get_circuit_store()
                on_disk = (store is not None
                           and hasattr(store, "__contains__")
                           and workload.formula in store)
                job_source["source"] = ("disk store" if on_disk
                                        else "compiled")
            return wmc.compiled(workload.formula, budget)

        try:
            circuit = self._compiled(workload, budget, build)
        except CompilationBudgetExceeded:
            raise ProtocolError(
                "budget-exceeded",
                f"compilation of {workload.fingerprint[:12]} exceeded "
                f"{budget} nodes; raise budget_nodes or use "
                f"evaluate/sweep, which degrade to the estimator"
            ) from None
        source = job_source.get("source", "in-flight join")
        return {
            "fingerprint": workload.fingerprint,
            "engine": "exact",
            "source": source,
            "clauses": len(workload.formula),
            "variables": len(workload.formula.variables()),
            "circuit": circuit.stats(),
        }

    def _estimator_knobs(self, params: dict):
        budget = take_int(params, "budget_nodes",
                          default=self.default_budget, minimum=2)
        epsilon = take_fraction(params, "epsilon",
                                default=DEFAULT_EPSILON)
        delta = take_fraction(params, "delta", default=DEFAULT_DELTA)
        seed = take_int(params, "seed", default=0)
        estimator = take_str(params, "estimator", default="hoeffding",
                             choices=ESTIMATORS)
        relative = take_fraction(params, "relative_error", default=None)
        if relative is not None:
            if relative <= 0:
                raise ProtocolError(
                    "bad-request",
                    "param 'relative_error' must be positive")
            if estimator == "hoeffding":
                # The fixed-n estimator has no relative mode; a
                # relative target implies the sequential sampler
                # unless the client named one explicitly.
                estimator = "adaptive"
        return budget, epsilon, delta, seed, estimator, relative

    def _evaluate_one(self, workload: Workload, method: str,
                      budget, epsilon, delta, seed, estimator,
                      relative) -> dict:
        if method in ("auto", "wmc", "compiled", "cross-check") \
                and not workload.safe and not workload.query.is_false():
            self._prewarm(workload,
                          budget if method == "auto" else None)
        with span("evaluate", method=method):
            result = evaluate(workload.query, workload.tid, method,
                              budget_nodes=budget, epsilon=epsilon,
                              delta=delta, rng=seed,
                              estimator=estimator,
                              relative_error=relative)
        self._note_estimates([result.estimate], epsilon, delta)
        payload = result.as_dict()
        payload["p"] = workload.p
        payload["fingerprint"] = workload.fingerprint
        return payload

    def _op_evaluate(self, params: dict) -> dict:
        check_fields(params, ("query", "p", "method")
                     + _ESTIMATOR_FIELDS)
        method = take_str(params, "method", default="auto",
                          choices=EVAL_METHODS)
        knobs = self._estimator_knobs(params)
        return self._evaluate_one(self._workload(params), method,
                                  *knobs)

    def _op_evaluate_batch(self, params: dict) -> dict:
        check_fields(params, ("query", "ps", "method")
                     + _ESTIMATOR_FIELDS)
        ps = take_int_list(params, "ps", minimum=1, max_items=256)
        method = take_str(params, "method", default="auto",
                          choices=EVAL_METHODS)
        knobs = self._estimator_knobs(params)
        text = take_str(params, "query")
        results = [
            self._evaluate_one(
                self._workload({"query": text, "p": p}),
                method, *knobs)
            for p in ps]
        return {"results": results, "count": len(results)}

    def _op_sweep(self, params: dict) -> dict:
        check_fields(params, ("query", "p", "grid", "numeric")
                     + _ESTIMATOR_FIELDS)
        k = take_int(params, "grid", default=8, minimum=1,
                     maximum=100_000)
        numeric = take_str(params, "numeric", default="exact",
                           choices=("exact", "float"))
        budget, epsilon, delta, seed, estimator, relative = \
            self._estimator_knobs(params)
        workload = self._workload(params)
        r_u, t_v = r_tuple("u"), t_tuple("v")
        if not {r_u, t_v} & workload.formula.variables():
            raise ProtocolError(
                "bad-query",
                f"the lineage of {workload.text!r} contains neither "
                f"endpoint tuple R(u) nor T(v); an endpoint sweep "
                f"would evaluate the same weights at every grid point")
        weight_maps = endpoint_weight_grid(workload.formula,
                                           workload.tid, k)
        # Only *exact* work coalesces: the shared gains (one compile,
        # one batched pass) exist only there, and exact values are
        # seed-independent so merged requests cannot observe each
        # other.  The estimator path runs per request below — a
        # request's seeded estimates must not depend on which
        # concurrent requests it happened to be batched with.
        coalesce_key = (workload.fingerprint, budget, numeric)

        def runner(vectors):
            # A blown budget propagates to every coalesced waiter,
            # each of which then runs its own seeded estimate.
            self._compiled(workload, budget)
            with span("evaluate", lanes=len(vectors),
                      numeric=numeric):
                return wmc.probability_batch_auto(
                    workload.formula, vectors, budget_nodes=budget,
                    numeric=numeric)

        try:
            # Pay the coalescing window only ahead of a cold
            # compilation — that is when concurrent requests pile up
            # and one batched pass saves real work; against a hot
            # circuit the pass is linear and waiting would only add
            # latency.
            values, engine, estimates = self.coalescer.submit(
                coalesce_key, weight_maps, runner,
                wait=not wmc.is_cached(workload.formula))
        except CompilationBudgetExceeded:
            # Per-request estimator fallback: the negative budget
            # cache makes the retried compile abort instantly, and the
            # request's own rng makes an explicit seed reproduce the
            # same estimates whether or not the request was coalesced.
            with span("evaluate", lanes=len(weight_maps),
                      numeric=numeric, fallback="budget"):
                sweep = wmc.probability_batch_auto(
                    workload.formula, weight_maps,
                    budget_nodes=budget, epsilon=epsilon, delta=delta,
                    rng=seed, numeric=numeric, estimator=estimator,
                    relative_error=relative)
            values, engine, estimates = (sweep.values, sweep.engine,
                                         sweep.estimates)
            self._note_estimates(estimates or [], epsilon, delta)
        except ProtocolError as error:
            if error.code != "quota-exceeded":
                raise
            # A coalesced batch shares its leader's failure, but quota
            # errors are per-tenant: the leader blowing *their*
            # compile budget must not refuse every rider.  Retry
            # uncoalesced under this request's own tenant — if this
            # tenant is the exhausted one, the retry raises again,
            # correctly attributed this time.
            try:
                self._compiled(workload, budget)
            except CompilationBudgetExceeded:
                pass  # the auto policy below degrades per request
            with span("evaluate", lanes=len(weight_maps),
                      numeric=numeric, fallback="quota"):
                sweep = wmc.probability_batch_auto(
                    workload.formula, weight_maps,
                    budget_nodes=budget, epsilon=epsilon, delta=delta,
                    rng=seed, numeric=numeric, estimator=estimator,
                    relative_error=relative)
            values, engine, estimates = (sweep.values, sweep.engine,
                                         sweep.estimates)
            self._note_estimates(estimates or [], epsilon, delta)
        result = {
            "fingerprint": workload.fingerprint,
            "engine": engine,
            "numeric": numeric,
            "count": len(values),
            "grid": [[str(w[r_u]), str(w[t_v])] for w in weight_maps],
            "values": [v if numeric == "float" else str(v)
                       for v in values],
        }
        if estimates is not None:
            result["estimates"] = [e.as_dict() for e in estimates]
        return result

    def _op_estimate(self, params: dict) -> dict:
        check_fields(params, ("query", "p", "epsilon", "delta", "seed",
                              "estimator", "relative_error"))
        # Same knob parsing as evaluate/sweep; the budget slot is
        # inert here (check_fields already rejected budget_nodes).
        _, epsilon, delta, seed, estimator, relative = \
            self._estimator_knobs(params)
        workload = self._workload(params)
        with span("evaluate", method=estimator):
            estimate = estimate_with(
                estimator, workload.formula,
                workload.tid.probability, epsilon, delta, seed,
                relative_error=relative)
        self._note_estimates([estimate], epsilon, delta)
        return {
            "fingerprint": workload.fingerprint,
            "engine": ENGINE_LABELS[estimator],
            "estimate": estimate.as_dict(),
        }

    def _sampling_circuit(self, params: dict):
        budget = take_int(params, "budget_nodes", default=None,
                          minimum=2)
        workload = self._workload(params)
        try:
            circuit = self._compiled(workload, budget)
        except CompilationBudgetExceeded:
            raise ProtocolError(
                "budget-exceeded",
                f"sampling needs the compiled circuit and compilation "
                f"of {workload.fingerprint[:12]} exceeded {budget} "
                f"nodes") from None
        return workload, circuit

    def _op_sample(self, params: dict) -> dict:
        check_fields(params, ("query", "p", "k", "seed",
                              "budget_nodes"))
        k = take_int(params, "k", default=1, minimum=0, maximum=10_000)
        seed = take_int(params, "seed", default=0)
        workload, circuit = self._sampling_circuit(params)
        try:
            with span("evaluate", method="sample", k=k):
                worlds = circuit.sample(workload.tid.probability, k,
                                        rng=seed)
        except ValueError as error:
            raise ProtocolError("bad-request", str(error)) from None
        return {
            "fingerprint": workload.fingerprint,
            "engine": "exact",
            "seed": seed,
            "worlds": [encode_world(world) for world in worlds],
        }

    def _op_top_k(self, params: dict) -> dict:
        check_fields(params, ("query", "p", "k", "budget_nodes"))
        k = take_int(params, "k", default=1, minimum=1, maximum=10_000)
        workload, circuit = self._sampling_circuit(params)
        with span("evaluate", method="top_k", k=k):
            pairs = circuit.top_k_worlds(workload.tid.probability, k)
        return {
            "fingerprint": workload.fingerprint,
            "engine": "exact",
            "worlds": [{"probability": str(prob),
                        "float": float(prob),
                        "world": encode_world(world)}
                       for prob, world in pairs],
        }
