"""End-to-end service smoke check: ``python -m repro.service.smoke``.

Boots a real ``repro serve`` subprocess on an ephemeral port, drives it
through both the client library and the ``repro query`` CLI, and
asserts the observable contract CI cares about:

* exact answers report ``engine: exact`` and the right method;
* a starved per-request budget degrades that request to the estimator
  (``engine: estimate`` with a populated Hoeffding interval) without
  affecting later exact requests;
* the ``stats`` endpoint shows warm-cache behaviour — one compilation,
  growing memory hits — after repeated queries;
* the ``metrics`` op renders those counters as Prometheus exposition
  text, through the client and through ``repro ctl metrics``;
* request tracing works over the wire: a client-supplied trace id is
  echoed and fetchable through the ``trace`` op, a cold sweep's span
  tree covers the dispatch/coalesce/queue/compile/evaluate stages,
  the ``--slow-ms 0`` threshold lands every request in the slow log
  (including the JSONL export), the latency histograms render as
  Prometheus ``_bucket`` families, and ``repro ctl top`` prints the
  per-stage breakdown;
* shutdown-over-the-wire stops the server process;
* a second, auth-enabled server refuses missing/bad tokens with the
  ``unauthorized`` code, serves a good token, and attributes the
  tenant's usage in ``stats``/``metrics``.

Exit status 0 on success; any failed expectation raises and exits
non-zero, so this file is directly usable as a CI job step.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

QUERY = "(R|S1)(S1|T)"


def _require(condition: bool, label: str, context) -> None:
    if not condition:
        raise SystemExit(f"service smoke FAILED: {label}: {context!r}")


def _cli_query(port: int, *argv: str) -> dict:
    """One ``repro query`` CLI invocation, parsed from its JSON."""
    command = [sys.executable, "-m", "repro", "query",
               "--port", str(port), *argv]
    proc = subprocess.run(command, capture_output=True, text=True,
                          timeout=120)
    _require(proc.returncode == 0, "CLI query exited non-zero",
             (command, proc.stdout, proc.stderr))
    return json.loads(proc.stdout)


def _cli_ctl(port: int, *argv: str) -> str:
    """One ``repro ctl`` CLI invocation, raw stdout."""
    command = [sys.executable, "-m", "repro", "ctl", *argv,
               "--port", str(port)]
    proc = subprocess.run(command, capture_output=True, text=True,
                          timeout=120)
    _require(proc.returncode == 0, f"ctl {argv[0]} exited non-zero",
             (command, proc.stdout, proc.stderr))
    return proc.stdout


def _cli_metrics(port: int) -> str:
    """``repro ctl metrics`` — raw Prometheus exposition text."""
    return _cli_ctl(port, "metrics")


def main() -> int:
    env = dict(os.environ)
    trace_dir = tempfile.mkdtemp(prefix="repro-smoke-traces-")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--slow-ms", "0", "--trace-dir", trace_dir],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env)
    try:
        banner = server.stdout.readline().strip()
        _require(banner.startswith("repro service listening on"),
                 "missing listen banner", banner)
        port = int(banner.rsplit(":", 1)[1])
        print(f"smoke: server up on port {port}")

        from repro.service.client import ServiceClient

        with ServiceClient(port=port, timeout=120) as client:
            stats = client.stats()
            _require(stats["cache"]["compiles"] == 0,
                     "cold server already compiled", stats["cache"])

            # The sweep goes first so its trace shows the whole cold
            # path (coalesce window, compile pool, evaluation); the
            # evaluate afterwards demonstrates the warm cache.
            sweep = client.sweep(QUERY, p=4, grid=6)
            _require(sweep["engine"] == "exact"
                     and sweep["count"] == 6,
                     "exact sweep provenance", sweep)

            result = client.evaluate(QUERY, p=4)
            _require(result["engine"] == "exact"
                     and result["method"] == "wmc",
                     "exact evaluate provenance", result)
            _require(result["value"] == "4181/131072",
                     "exact evaluate value", result)

            stats = client.stats()
            _require(stats["cache"]["compiles"] == 1,
                     "one compilation serves evaluate + sweep",
                     stats["cache"])
            _require(stats["cache"]["hits"] >= 1,
                     "warm memory hits recorded", stats["cache"])
            _require(all(key in stats["cache"] for key in
                         ("tape_hits", "tape_flattens", "tape_bytes")),
                     "tape counters exposed in stats", stats["cache"])

            degraded = client.evaluate(QUERY, p=6, budget_nodes=2)
            _require(degraded["engine"] == "estimate"
                     and degraded["method"] == "estimate"
                     and degraded["estimate"]["samples"] > 0,
                     "budget-starved request degrades to estimator",
                     degraded)

            stats = client.stats()
            _require(stats["cache"]["budget_aborts"] >= 1,
                     "budget abort counted", stats["cache"])

            metrics = client.metrics()
            _require(metrics["content_type"].startswith("text/plain"),
                     "metrics content type", metrics["content_type"])
            _require("# TYPE repro_requests_total counter"
                     in metrics["text"]
                     and 'repro_op_requests_total{op="evaluate"}'
                     in metrics["text"]
                     and "# TYPE repro_budget_aborts_total counter"
                     in metrics["text"],
                     "metrics exposition families", metrics["text"])

            # Request tracing over the wire: supplied ids echo back,
            # span trees cover the stack, slow log catches everything
            # under --slow-ms 0, histograms render as _bucket series.
            client.call("ping", trace="smoke-trace")
            _require(client.last_trace == "smoke-trace",
                     "client trace id echoed", client.last_trace)
            fetched = client.trace(id="smoke-trace")
            _require(fetched["count"] == 1
                     and fetched["traces"][0]["op"] == "ping",
                     "trace fetchable by id", fetched)
            listing = client.trace(limit=50)
            sweeps = [p for p in listing["traces"]
                      if p["op"] == "sweep"]
            _require(bool(sweeps), "sweep trace buffered", listing)
            # recent() is newest-first: the last entry is the cold
            # sweep that paid for the whole stack.
            stages = {s["name"] for s in sweeps[-1]["spans"]}
            _require({"dispatch", "coalesce", "queue", "compile",
                      "evaluate"} <= stages,
                     "sweep span tree covers the stack", stages)
            slow = client.trace(slow=True, limit=50)
            _require(slow["count"] >= 1
                     and all(p["slow"] for p in slow["traces"]),
                     "slow log populated at --slow-ms 0", slow)
            slow_file = os.path.join(trace_dir, "TRACE_slow.jsonl")
            _require(os.path.exists(slow_file)
                     and os.path.getsize(slow_file) > 0,
                     "slow traces exported as JSONL", trace_dir)
            _require("repro_op_stage_seconds_bucket{"
                     in client.metrics()["text"],
                     "latency histograms in metrics",
                     client.metrics()["text"][:2000])

        # The same contract through the CLI client.
        result = _cli_query(port, "evaluate", QUERY, "--p", "4")
        _require(result["engine"] == "exact"
                 and result["value"] == "4181/131072",
                 "CLI evaluate", result)
        stats = _cli_query(port, "stats")
        _require(stats["cache"]["compiles"] == 1,
                 "CLI evaluate reused the warm circuit",
                 stats["cache"])
        _require(stats["service"]["requests"] >= 7,
                 "request counter advanced", stats["service"])

        exposition = _cli_metrics(port)
        _require("# TYPE repro_cache_compiles_total counter"
                 in exposition
                 and "repro_cache_compiles_total 1" in exposition,
                 "repro ctl metrics exposition", exposition)

        top = _cli_ctl(port, "top")
        _require(top.splitlines()[0].split()[:3]
                 == ["op", "stage", "count"]
                 and any("total" in line
                         for line in top.splitlines()[1:]),
                 "repro ctl top breakdown", top)
        traces_out = json.loads(_cli_ctl(port, "trace",
                                         "--id", "smoke-trace"))
        _require(traces_out["count"] == 1,
                 "repro ctl trace by id", traces_out)

        _cli_query(port, "shutdown")
        server.wait(timeout=30)
        print("service smoke: OK "
              f"(1 compilation, {stats['cache']['hits']} memory hits, "
              f"{stats['service']['requests']} requests)")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)


def main_authenticated() -> int:
    """The same server hardened with ``--auth-tokens``: bad tokens are
    refused before any work, good tokens are served and attributed."""
    token = "smoke-secret-token"
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--auth-tokens", f"smoke={token}",
         "--quota", "rate=1000,window=60"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=dict(os.environ))
    try:
        banner = server.stdout.readline().strip()
        _require(banner.startswith("repro service listening on"),
                 "missing listen banner (auth)", banner)
        port = int(banner.rsplit(":", 1)[1])
        print(f"smoke: auth-enabled server up on port {port}")

        from repro.service.client import ServiceClient, ServiceError

        with ServiceClient(port=port, timeout=120) as anonymous:
            try:
                anonymous.ping()
            except ServiceError as error:
                _require(error.code == "unauthorized",
                         "missing token error code", error.code)
            else:
                raise SystemExit(
                    "service smoke FAILED: tokenless request served")

        with ServiceClient(port=port, timeout=120,
                           auth="wrong-token") as impostor:
            try:
                impostor.evaluate(QUERY, p=4)
            except ServiceError as error:
                _require(error.code == "unauthorized",
                         "bad token error code", error.code)
                _require("wrong-token" not in str(error),
                         "error must not echo the token", str(error))
            else:
                raise SystemExit(
                    "service smoke FAILED: bad token served")

        with ServiceClient(port=port, timeout=120,
                           auth=token) as client:
            result = client.evaluate(QUERY, p=4)
            _require(result["value"] == "4181/131072",
                     "authenticated evaluate", result)
            stats = client.stats()
            _require(stats["service"]["auth_enabled"] is True,
                     "auth flag surfaced in stats", stats["service"])
            usage = stats["tenants"].get("smoke")
            _require(usage is not None and usage["requests"] >= 2
                     and usage["compiles"] == 1
                     and usage["nodes_spent"] > 0,
                     "per-tenant usage attributed", stats["tenants"])
            metrics = client.metrics()
            _require('repro_tenant_requests_total{tenant="smoke"}'
                     in metrics["text"],
                     "tenant labelled in metrics", metrics["text"])
            client.shutdown()
        server.wait(timeout=30)
        print("service smoke: auth OK "
              f"(tenant 'smoke': {usage['requests']} requests, "
              f"{usage['nodes_spent']} nodes)")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)


def main_workers() -> int:
    """The multi-process deployment: ``repro serve --workers 2``
    boots a dispatcher plus two worker processes; the protocol,
    exact answers, aggregated stats, and the cross-process trace
    tree must all hold through the extra hop."""
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--window", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=dict(os.environ))
    try:
        banner = server.stdout.readline().strip()
        _require(banner.startswith("repro service listening on"),
                 "missing listen banner (workers)", banner)
        port = int(banner.rsplit(":", 1)[1])
        print(f"smoke: 2-worker dispatcher up on port {port}")

        from repro.service.client import ServiceClient

        with ServiceClient(port=port, timeout=120) as client:
            result = client.evaluate(QUERY, p=4)
            _require(result["engine"] == "exact"
                     and result["value"] == "4181/131072",
                     "exact evaluate through the pool", result)
            _require("charge" not in result,
                     "worker charge field stripped", result)

            batch = client.evaluate_batch(QUERY, ps=[2, 3, 4])
            _require(batch["count"] == 3
                     and batch["results"][2]["value"]
                     == "4181/131072",
                     "batch split across the pool", batch)

            stats = client.stats()
            _require(stats["service"]["workers"] == 2,
                     "worker count surfaced", stats["service"])
            _require(stats["cache"]["compiles"] >= 3,
                     "aggregated worker cache counters",
                     stats["cache"])
            _require(stats["service"]["planner"]["observations"]
                     >= 3,
                     "merged service-wide planner", stats["service"])
            rows = stats.get("workers") or []
            _require(len(rows) == 2
                     and all(row["alive"] for row in rows),
                     "per-worker liveness rows", rows)

            client.call("evaluate", query=QUERY, p=4,
                        trace="smoke-xproc")
            fetched = client.trace(id="smoke-xproc")
            _require(fetched["count"] == 1, "trace fetched by id",
                     fetched)
            spans = fetched["traces"][0]["spans"]
            names = {s["name"] for s in spans}
            _require({"dispatch", "proxy", "evaluate"} <= names,
                     "dispatcher-side stages present", names)
            _require(any(str(s.get("tags", {}).get("process", ""))
                         .startswith("worker-") for s in spans),
                     "one span tree covers both processes", spans)

            metrics = client.metrics()
            _require('repro_service_info{key="workers"} 2'
                     in metrics["text"],
                     "workers gauge in metrics",
                     metrics["text"][:2000])
            client.shutdown()
        server.wait(timeout=30)
        print("service smoke: workers OK "
              f"({stats['cache']['compiles']} compiles across "
              f"{len(rows)} workers)")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)


if __name__ == "__main__":
    if "--workers" in sys.argv[1:]:
        sys.exit(main_workers())
    sys.exit(main() or main_authenticated() or main_workers())
