"""The service wire protocol: versioned, line-delimited JSON.

A connection carries a sequence of requests, one JSON object per
``\\n``-terminated line, each answered in order by one JSON response
line (so a client may pipeline).  Every request names the protocol
version explicitly — a server never guesses what an unknown client
meant:

    {"v": 1, "id": 7, "op": "sweep",
     "params": {"query": "(R|S1)(S1|T)", "p": 4, "grid": 8}}

A hardened server additionally wants a top-level ``auth`` token
(``"auth": "s3cret"``) naming the calling tenant; it travels outside
``params`` so per-op validation stays authentication-blind.  A
top-level ``trace`` string likewise rides outside ``params``: it
names the request's trace id for the server's span tracer (minted by
the server when absent) and is echoed back as a top-level ``trace``
field on the response, so a client can correlate its own requests
with the server-side span trees the ``trace`` op returns.

Responses echo the id and either carry a result or a *structured*
error (machine-readable ``code`` + human-readable ``message``):

    {"v": 1, "id": 7, "ok": true, "op": "sweep", "result": {...}}
    {"v": 1, "id": 7, "ok": false,
     "error": {"code": "bad-query", "message": "..."}}

Exact rationals travel as ``"num/den"`` strings (JSON numbers cannot
represent them); variable tokens and worlds reuse the type-tagged
circuit codec (``repro.booleans.circuit.encode_token``), so a sampled
world round-trips to *equal* tuple tokens, never list lookalikes.

This module is deliberately transport-free: it validates and
(de)serializes, the server and client own their sockets.  Malformed
input of any shape maps to a ``ProtocolError`` whose ``code`` is one
of ``ERROR_CODES`` — the server turns that into an error response
instead of dropping the connection, so one bad request never kills a
pipelined session.
"""

from __future__ import annotations

import json

from fractions import Fraction

from repro.booleans.circuit import decode_token, encode_token

#: Bump on any incompatible change to the request/response shapes.
PROTOCOL_VERSION = 1

#: Upper bound on one request line; a line longer than this is
#: rejected (and the connection dropped — its framing is unrecoverable
#: once a line has been truncated).
MAX_REQUEST_BYTES = 1_048_576

#: Every operation the server understands.
OPS = ("compile", "evaluate", "evaluate_batch", "sweep", "estimate",
       "sample", "top_k", "stats", "metrics", "trace", "store_gc",
       "ping", "shutdown")

#: Upper bound on a client-supplied trace id.
MAX_TRACE_ID_CHARS = 128

#: Machine-readable error codes a response may carry.
#: ``unauthorized``/``quota-exceeded`` are the multi-tenant refusals:
#: a missing/unknown auth token, and a tripped per-tenant rate window
#: or cumulative compile budget.
ERROR_CODES = ("parse-error", "unsupported-version", "unknown-op",
               "bad-request", "bad-query", "budget-exceeded",
               "unauthorized", "quota-exceeded", "internal")


class ProtocolError(Exception):
    """A request the server refuses, with a structured error code.

    ``request_id`` is filled in by ``parse_request`` when the failing
    request carried a readable id, so the error response can still be
    correlated by a pipelining client.
    """

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        self.code = code
        self.message = message
        self.request_id = None
        super().__init__(f"{code}: {message}")


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def dump_line(obj: dict) -> bytes:
    """One wire line: compact JSON + newline, UTF-8."""
    return (json.dumps(obj, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def parse_request(line: bytes | str):
    """Validate one request line into
    ``(request_id, op, params, auth, trace)``.

    ``auth`` is the optional top-level token string identifying the
    caller (``None`` when absent) — it rides outside ``params`` so
    per-op validation never has to know about authentication.
    ``trace`` is the optional client-supplied trace id for the
    server's span tracer, likewise top-level so instrumentation never
    leaks into per-op validation.  Anything short of a well-formed,
    version-matched request raises ``ProtocolError`` with the most
    specific code available.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError("parse-error",
                                f"request is not UTF-8: {error}") from None
    try:
        obj = json.loads(line)
    except ValueError as error:
        raise ProtocolError("parse-error",
                            f"request is not JSON: {error}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            "bad-request",
            f"request must be a JSON object, got {type(obj).__name__}")
    request_id = obj.get("id")
    if request_id is not None and (
            isinstance(request_id, bool)
            or not isinstance(request_id, (str, int))):
        raise ProtocolError("bad-request",
                            "request id must be a string or integer")

    def refuse(code: str, message: str):
        # The id was readable, so later failures can still echo it.
        error = ProtocolError(code, message)
        error.request_id = request_id
        raise error

    version = obj.get("v")
    if version != PROTOCOL_VERSION:
        refuse("unsupported-version",
               f"protocol version {version!r} not supported "
               f"(this server speaks v{PROTOCOL_VERSION})")
    op = obj.get("op")
    if not isinstance(op, str):
        refuse("bad-request", "request needs an 'op' string")
    if op not in OPS:
        refuse("unknown-op",
               f"unknown op {op!r}; supported: {', '.join(OPS)}")
    params = obj.get("params", {})
    if not isinstance(params, dict):
        refuse("bad-request", "'params' must be an object")
    auth = obj.get("auth")
    if auth is not None and not isinstance(auth, str):
        refuse("bad-request", "'auth' must be a token string")
    trace = obj.get("trace")
    if trace is not None and (
            not isinstance(trace, str) or not trace
            or len(trace) > MAX_TRACE_ID_CHARS):
        refuse("bad-request",
               f"'trace' must be a non-empty string of at most "
               f"{MAX_TRACE_ID_CHARS} characters")
    stray = set(obj) - {"v", "id", "op", "params", "auth", "trace"}
    if stray:
        refuse("bad-request",
               f"unexpected request fields: {', '.join(sorted(stray))}")
    return request_id, op, params, auth, trace


def encode_request(op: str, params: dict | None = None,
                   request_id=None, auth: str | None = None,
                   trace: str | None = None) -> dict:
    """The client-side request object (call ``dump_line`` to frame)."""
    obj = {"v": PROTOCOL_VERSION, "op": op, "params": params or {}}
    if request_id is not None:
        obj["id"] = request_id
    if auth is not None:
        obj["auth"] = auth
    if trace is not None:
        obj["trace"] = trace
    return obj


def ok_response(request_id, op: str, result: dict) -> dict:
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True,
            "op": op, "result": result}


def error_response(request_id, code: str, message: str) -> dict:
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


# ----------------------------------------------------------------------
# Value codecs
# ----------------------------------------------------------------------
def encode_fraction(value) -> str:
    """Exact rationals as ``"num/den"`` strings (``"1/3"``, ``"0"``)."""
    return str(Fraction(value))


def decode_fraction(obj, field: str = "value") -> Fraction:
    """Accept ``"num/den"``/decimal strings, ints, and floats.

    Floats go through their shortest-repr string, so a client sending
    the JSON number ``0.05`` means exactly ``1/20`` — not the nearest
    binary double — matching what a human typed.
    """
    if isinstance(obj, bool):
        raise ProtocolError("bad-request",
                            f"field {field!r} must be a number or "
                            f"rational string, not a boolean")
    if isinstance(obj, float):
        obj = repr(obj)
    if isinstance(obj, (int, str)):
        try:
            return Fraction(obj)
        except (ValueError, ZeroDivisionError) as error:
            raise ProtocolError(
                "bad-request",
                f"field {field!r}: not a rational: {error}") from None
    raise ProtocolError(
        "bad-request",
        f"field {field!r} must be a number or rational string, "
        f"got {type(obj).__name__}")


def decode_estimate(obj) -> "ProbabilityEstimate":
    """The inverse of ``ProbabilityEstimate.as_dict``: reconstruct the
    estimate with every rational *exact*.

    The PR 4 codec only type-tagged the original fields; the adaptive
    estimators added ``method``, ``relative_error``, ``samples_used``,
    and (for the self-normalized importance sampler) ``center``, and a
    client that re-serializes a decoded estimate must get the same
    wire object back — ``decode_estimate(d).as_dict() == d`` — with
    ``relative_error``/``center`` as exact Fractions, never floats.
    Derived fields (``low``/``high``/``float``) are recomputed, which
    doubles as a consistency check on the sender.
    """
    from repro.booleans.approximate import ProbabilityEstimate

    if not isinstance(obj, dict):
        raise ProtocolError(
            "bad-request",
            f"estimate must be an object, got {type(obj).__name__}")
    try:
        samples = obj["samples"]
        successes = obj["successes"]
        relative = obj.get("relative_error")
        center = obj.get("center")
        samples_used = obj.get("samples_used")
        for field, value, optional in (("samples", samples, False),
                                       ("successes", successes, False),
                                       ("samples_used", samples_used,
                                        True)):
            if value is None and optional:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(
                    "bad-request",
                    f"estimate field {field!r} must be an integer")
        return ProbabilityEstimate(
            estimate=decode_fraction(obj["estimate"], "estimate"),
            epsilon=decode_fraction(obj["epsilon"], "epsilon"),
            delta=decode_fraction(obj["delta"], "delta"),
            samples=samples,
            successes=successes,
            method=obj.get("method", "hoeffding"),
            relative_error=(None if relative is None else
                            decode_fraction(relative, "relative_error")),
            samples_used=samples_used,
            center=(None if center is None else
                    decode_fraction(center, "center")))
    except KeyError as error:
        raise ProtocolError(
            "bad-request",
            f"estimate is missing field {error}") from None


def encode_world(world: dict) -> list:
    """A ``{var: bool}`` world as ``[[token, bool], ...]``, sorted by
    token repr so the wire form is deterministic across hash seeds."""
    return [[encode_token(var), bool(world[var])]
            for var in sorted(world, key=repr)]


def decode_world(obj) -> dict:
    if not isinstance(obj, list):
        raise ProtocolError("bad-request", "world must be a list")
    return {decode_token(token): bool(value) for token, value in obj}


# ----------------------------------------------------------------------
# Typed parameter extraction (the per-op validation vocabulary)
# ----------------------------------------------------------------------
_MISSING = object()


def check_fields(params: dict, allowed) -> None:
    """Reject stray parameters by name — typos fail loudly instead of
    silently running with defaults."""
    stray = set(params) - set(allowed)
    if stray:
        raise ProtocolError(
            "bad-request",
            f"unexpected params: {', '.join(sorted(stray))} "
            f"(allowed: {', '.join(sorted(allowed))})")


def take_str(params: dict, field: str, default=_MISSING,
             choices=None) -> str:
    value = params.get(field, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ProtocolError("bad-request",
                                f"missing required param {field!r}")
        return default
    if not isinstance(value, str):
        raise ProtocolError(
            "bad-request",
            f"param {field!r} must be a string, "
            f"got {type(value).__name__}")
    if choices is not None and value not in choices:
        raise ProtocolError(
            "bad-request",
            f"param {field!r} must be one of {', '.join(choices)}; "
            f"got {value!r}")
    return value


def take_int(params: dict, field: str, default=_MISSING,
             minimum: int | None = None,
             maximum: int | None = None):
    value = params.get(field, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ProtocolError("bad-request",
                                f"missing required param {field!r}")
        return default
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(
            "bad-request",
            f"param {field!r} must be an integer, "
            f"got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ProtocolError("bad-request",
                            f"param {field!r} must be >= {minimum}")
    if maximum is not None and value > maximum:
        raise ProtocolError("bad-request",
                            f"param {field!r} must be <= {maximum}")
    return value


def take_bool(params: dict, field: str, default=_MISSING) -> bool:
    value = params.get(field, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ProtocolError("bad-request",
                                f"missing required param {field!r}")
        return default
    if not isinstance(value, bool):
        raise ProtocolError(
            "bad-request",
            f"param {field!r} must be a boolean, "
            f"got {type(value).__name__}")
    return value


def take_fraction(params: dict, field: str, default=_MISSING):
    value = params.get(field, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ProtocolError("bad-request",
                                f"missing required param {field!r}")
        return default
    return decode_fraction(value, field)


def take_int_list(params: dict, field: str, minimum: int | None = None,
                  max_items: int = 1024) -> list[int]:
    value = params.get(field)
    if not isinstance(value, list) or not value:
        raise ProtocolError(
            "bad-request",
            f"param {field!r} must be a non-empty list of integers")
    if len(value) > max_items:
        raise ProtocolError("bad-request",
                            f"param {field!r} has {len(value)} items; "
                            f"the limit is {max_items}")
    out = []
    for i, item in enumerate(value):
        if not isinstance(item, int) or isinstance(item, bool):
            raise ProtocolError(
                "bad-request",
                f"param {field!r}[{i}] must be an integer, "
                f"got {type(item).__name__}")
        if minimum is not None and item < minimum:
            raise ProtocolError("bad-request",
                                f"param {field!r}[{i}] must be "
                                f">= {minimum}")
        out.append(item)
    return out
