"""Service mode: a long-lived query server over the warm caches.

The package splits along transport-independent seams:

* ``protocol`` — the versioned line-delimited JSON wire format and its
  validation (pure functions, no sockets);
* ``scheduler`` — the deduping compile pool and the sweep coalescer
  (pure threading, no sockets);
* ``server`` — ``ReproServer``, the ``socketserver`` embedding that
  routes protocol requests through the schedulers into the ``wmc``
  auto policy and two-tier circuit cache;
* ``tenants`` — token authentication and per-tenant quotas (request
  rate windows + cumulative compile budgets);
* ``metrics`` — the Prometheus-style text rendering of ``stats``;
* ``client`` — ``ServiceClient``, the library behind ``repro query``;
* ``smoke`` — ``python -m repro.service.smoke``, the end-to-end check
  CI runs against a real server subprocess.

Start one with ``repro serve``; talk to it with ``repro query`` or
``ServiceClient``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.service.scheduler import CompilePool, SweepCoalescer
from repro.service.server import ReproServer
from repro.service.tenants import TenantQuota, TenantRegistry

__all__ = [
    "CompilePool",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReproServer",
    "ServiceClient",
    "ServiceError",
    "SweepCoalescer",
    "TenantQuota",
    "TenantRegistry",
]
