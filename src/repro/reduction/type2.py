"""The Type-II counting pipeline: CCP(m, n) <=^P GFOMC (Theorem C.4).

This module implements the *linear-algebra core* of the Type-II
reduction.  Appendix C splits the proof into two halves:

1. an existence half (Sections C.5-C.11): blocks B^(p)(u, v) can be
   designed, with probabilities in {0, 1/2, 1}, so that the conditioned
   lineage probabilities take the exponential form

       y_i(p) = prod_j (a_i * lambda1^{p_j} + b_i * lambda2^{p_j})

   with conditions (68)-(70) — the block construction itself lives in
   ``repro.reduction.type2_blocks``, its connectivity and invertibility
   prerequisites in ``type2_lattice`` / the test-suite lemmas;

2. a counting half (Sections C.1-C.4): *given* such y-values, a
   polynomial number of oracle answers determines every coloring count
   #k, hence #PP2CNF (Theorem C.3).

``Type2Reduction`` implements the counting half in full generality: it
enumerates the consistent coloring signatures, assembles the Eq. (66)
system with greedy full-rank row selection (exactly as in the Type-I
reduction), solves it exactly, and extracts #PP2CNF.  The oracle values
are computed through the Moebius block-product expansion of Corollary
C.20 — the same formula a real GFOMC oracle call factors through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from itertools import product as iter_product
from typing import Callable, Mapping, Sequence

from repro.algebra.matrices import Matrix
from repro.counting.ccp import TOP_COLOR
from repro.counting.pp2cnf import PP2CNF

Pair = tuple  # (alpha, beta); TOP_COLOR plays the paper's "1^".


def compositions(total: int, parts: int):
    """All tuples of ``parts`` non-negative ints summing to ``total``."""
    if parts == 0:
        if total == 0:
            yield ()
        return
    for first in range(total + 1):
        for rest in compositions(total - first, parts - 1):
            yield (first, *rest)


def exponential_y_provider(coeffs: Mapping[Pair, tuple[Fraction, Fraction]],
                           lambda1: Fraction, lambda2: Fraction
                           ) -> Callable[[Pair, int], Fraction]:
    """y-values of the paper's form (67): y_pair(p) = a * l1^p + b * l2^p."""
    def y_single(pair: Pair, p: int) -> Fraction:
        a, b = coeffs[pair]
        return a * lambda1 ** p + b * lambda2 ** p
    return y_single


def conditions_68_70(coeffs: Mapping[Pair, tuple[Fraction, Fraction]],
                     lambda1: Fraction, lambda2: Fraction) -> bool:
    """Check conditions (68)-(70) on the coefficient family."""
    if lambda1 in (0, lambda2, -lambda2) or lambda2 == 0:
        return False
    if any(b == 0 for _, b in coeffs.values()):
        return False
    items = list(coeffs.values())
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            ai, bi = items[i]
            aj, bj = items[j]
            if ai * bj == aj * bi:
                return False
    return True


@dataclass
class Type2Reduction:
    """CCP(m, n) <=^P GFOMC: recover coloring counts from oracle values.

    ``left_colors`` / ``right_colors`` play L0(G) / L0(H);
    ``mu_left`` / ``mu_right`` their (non-zero) Moebius values;
    ``y_single(pair, p)`` the single-branch block probability for the
    pair (alpha, beta), with TOP_COLOR standing for 1^.
    """

    left_colors: Sequence
    right_colors: Sequence
    mu_left: Mapping
    mu_right: Mapping
    y_single: Callable[[Pair, int], Fraction]
    _row_cache: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    @property
    def pairs(self) -> list[Pair]:
        """(alpha, beta) combinations excluding (1^, 1^) — the exponent
        coordinates of Eq. (66)."""
        out = [(alpha, beta) for alpha in self.left_colors
               for beta in self.right_colors]
        out += [(alpha, TOP_COLOR) for alpha in self.left_colors]
        out += [(TOP_COLOR, beta) for beta in self.right_colors]
        return out

    def y_value(self, pair: Pair, p_vector: Sequence[int]) -> Fraction:
        value = Fraction(1)
        for p in p_vector:
            value *= Fraction(self.y_single(pair, p))
        return value

    # ------------------------------------------------------------------
    def valid_signatures(self, n_edges: int, n_left: int,
                         n_right: int) -> list[tuple[int, ...]]:
        """Signatures consistent with the graph cardinalities: edge
        pairs sum to |E|, left node counts to |U|, right to |V|."""
        edge_pairs = len(self.left_colors) * len(self.right_colors)
        signatures = []
        for edge_part in compositions(n_edges, edge_pairs):
            for left_part in compositions(n_left, len(self.left_colors)):
                for right_part in compositions(n_right,
                                               len(self.right_colors)):
                    signatures.append(edge_part + left_part + right_part)
        return signatures

    def coefficient_row(self, signatures, p_vector) -> list[Fraction]:
        y_values = [self.y_value(pair, p_vector) for pair in self.pairs]
        row = []
        for signature in signatures:
            coeff = Fraction(1)
            for y, k in zip(y_values, signature):
                coeff *= y ** k
            row.append(coeff)
        return row

    # ------------------------------------------------------------------
    def oracle_value(self, phi: PP2CNF, p_vector) -> Fraction:
        """The Corollary C.20 expansion of Pr(Q) on the block database
        for ``phi`` — the value a GFOMC oracle call would return."""
        y = {pair: self.y_value(pair, p_vector) for pair in self.pairs}
        total = Fraction(0)
        for sigma in iter_product(self.left_colors, repeat=phi.n_left):
            mu_s = Fraction(1)
            for alpha in sigma:
                mu_s *= self.mu_left[alpha]
            for tau in iter_product(self.right_colors,
                                    repeat=phi.n_right):
                term = mu_s
                for beta in tau:
                    term *= self.mu_right[beta]
                for i, j in phi.edges:
                    term *= y[(sigma[i], tau[j])]
                for alpha in sigma:
                    term *= y[(alpha, TOP_COLOR)]
                for beta in tau:
                    term *= y[(TOP_COLOR, beta)]
                total += term
        return total

    # ------------------------------------------------------------------
    def run(self, phi: PP2CNF, max_candidates: int = 4096
            ) -> dict[tuple[int, ...], int]:
        """Recover every coloring count #k of phi's graph (Eq. 66)."""
        signatures = self.valid_signatures(phi.m, phi.n_left, phi.n_right)
        h = len(self.pairs)
        target = len(signatures)

        selected: list[tuple[tuple[int, ...], list[Fraction]]] = []
        basis: dict[int, list[Fraction]] = {}
        width = 2
        while len(selected) < target:
            candidates = sorted(
                iter_product(range(1, width + 1), repeat=h),
                key=lambda p: (max(p), sum(p), p))
            if len(candidates) > max_candidates:
                candidates = candidates[:max_candidates]
            for p_vector in candidates:
                if len(selected) == target:
                    break
                if any(p_vector == used for used, _ in selected):
                    continue
                row = self.coefficient_row(signatures, p_vector)
                residual = list(row)
                for col, pivot_row in basis.items():
                    if residual[col] != 0:
                        factor = residual[col]
                        residual = [a - factor * b
                                    for a, b in zip(residual, pivot_row)]
                pivot = next(
                    (i for i, a in enumerate(residual) if a != 0), None)
                if pivot is None:
                    continue
                scale = residual[pivot]
                basis[pivot] = [a / scale for a in residual]
                selected.append((p_vector, row))
            if len(selected) < target:
                width += 1
                if width > 8:
                    raise AssertionError(
                        "cannot reach full rank; conditions (68)-(70) "
                        "appear violated")

        rows = [row for _, row in selected]
        rhs = [self.oracle_value(phi, p_vector)
               for p_vector, _ in selected]
        solution = Matrix(rows).solve(rhs)

        counts: dict[tuple[int, ...], int] = {}
        pair_list = self.pairs
        for signature, x in zip(signatures, solution):
            # x_k = #k * prod mu(alpha)^{k_{alpha,1^}} * prod mu(beta)^...
            mu_factor = Fraction(1)
            for pair, k in zip(pair_list, signature):
                alpha, beta = pair
                if beta == TOP_COLOR:
                    mu_factor *= Fraction(self.mu_left[alpha]) ** k
                elif alpha == TOP_COLOR:
                    mu_factor *= Fraction(self.mu_right[beta]) ** k
            value = x / mu_factor
            if value.denominator != 1 or value < 0:
                raise AssertionError(f"bad count: {value}")
            if value:
                counts[signature] = int(value)
        return counts

    # ------------------------------------------------------------------
    def count_pp2cnf(self, phi: PP2CNF, false_left, true_left,
                     false_right, true_right) -> int:
        """#Phi via the recovered coloring counts (Theorem C.3): sum the
        counts of colorings that use only the designated truth-value
        colors and have no (false, false) edge."""
        counts = self.run(phi)
        pair_list = self.pairs
        total = 0
        allowed_left = {false_left, true_left}
        allowed_right = {false_right, true_right}
        for signature, count in counts.items():
            valid = True
            for pair, k in zip(pair_list, signature):
                if k == 0:
                    continue
                alpha, beta = pair
                if alpha not in allowed_left | {TOP_COLOR}:
                    valid = False
                    break
                if beta not in allowed_right | {TOP_COLOR}:
                    valid = False
                    break
                if alpha == false_left and beta == false_right:
                    valid = False
                    break
            if valid:
                total += count
        return total
