"""The Type-II link matrix z and its eigenvalues (Section C.8).

Conditioning the zig-zag lineage on an *articulation symbol*'s odd-class
tuples S_0 = S(r_0, t_0), S_1 = S(r_1, t_1), ... splits it into
independent factors (Eq. 75):

    Y[S_0 := v_0, ..., S_p := v_p]
        = U^(v0) & Z_1^(v0 v1) & ... & Z_p^(v_{p-1} v_p) & V^(vp),

and the 2x2 matrix z with z_ab = Pr(Z_i^(ab)) drives the exponential
form y(p) ~ a lambda1^p + b lambda2^p.  This module extracts z for the
single-step block, and verifies:

* Lemma C.28: the articulation tuples disconnect the prefix from the
  suffix part of the block;
* Lemma C.32: all four z entries are positive;
* Theorem C.33: 0 < |lambda1| < lambda2 (checked exactly in
  Q(sqrt(disc))).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from repro.algebra.eigen2x2 import spectral_decomposition_2x2
from repro.algebra.matrices import Matrix
from repro.algebra.quadratic import QuadraticNumber
from repro.booleans.circuit import WeightOverlay
from repro.booleans.cnf import CNF
from repro.booleans.connectivity import clause_components, variable_disconnects
from repro.core.queries import Query
from repro.core.safety import is_safe
from repro.reduction.type2_blocks import type2_block
from repro.reduction.type2_lattice import TypeIIStructure
from repro.booleans.adaptive import resolve_sweep_method
from repro.booleans.approximate import DEFAULT_DELTA, DEFAULT_EPSILON
from repro.tid.database import s_tuple
from repro.tid.lineage import lineage
from repro.tid.wmc import (
    DEFAULT_BUDGET_NODES,
    cnf_probability,
    cnf_probability_auto,
    compiled,
    ensure_tape,
    probability_batch_auto,
)

HALF = Fraction(1, 2)


def articulation_symbols(query: Query) -> list[str]:
    """Binary symbols S whose 0/1-rewritings both make Q safe — the
    candidates used in Section C.8 (final queries: all of them)."""
    out = []
    for symbol in sorted(query.binary_symbols):
        if is_safe(query.set_symbol(symbol, False)) and \
                is_safe(query.set_symbol(symbol, True)):
            out.append(symbol)
    return out


def _middle_factor(conditioned: CNF, middle_tuples: frozenset) -> CNF:
    """The conjunction of components touching the given tuples."""
    groups = [g for g in clause_components(conditioned)
              if frozenset(v for c in g for v in c) & middle_tuples]
    # Components of a minimized CNF are subsets of its clause set, so
    # their union is already absorption-minimal.
    return CNF._from_minimized(c for g in groups for c in g)


def link_matrix_type2(query: Query, symbol: str,
                      assignment: Mapping[tuple, Fraction] | None = None,
                      tag: str = "", *,
                      method: str = "exact",
                      budget_nodes: int | None = DEFAULT_BUDGET_NODES,
                      epsilon=DEFAULT_EPSILON, delta=DEFAULT_DELTA,
                      rng=None, estimator: str = "hoeffding",
                      relative_error=None, planner=None) -> Matrix:
    """The 2x2 matrix z for one zig-zag step (p = 1).

    Conditioning S_0 = S(r0, t0) and S_1 = S(r1, t1) on (a, b) isolates
    the middle factor Z^(ab) around the elementary block B(r1, t0);
    z_ab is its probability with all remaining tuples at 1/2 (or at the
    supplied consistent assignment).  Each factor is evaluated through
    the shared compilation cache, so repeated link-matrix extractions
    over the same block (the spectral checks, the exponential-form
    verification, the assignment sweeps) compile each factor only once.

    ``method="auto"`` evaluates each factor under the compilation
    budget, degrading to an (epsilon, delta) estimate from the chosen
    ``estimator`` past it; ``method="adaptive"`` is ``auto`` with the
    sequential empirical-Bernstein sampler.  A ``planner``
    (``repro.booleans.adaptive.BudgetPlanner``) picks each factor's
    budget from the observed circuit-size trajectory — this is where
    budget-aware planning pays: the four conditioned middle factors of
    a link matrix differ in size, and a trajectory-planned budget
    aborts a hopeless factor early without strangling its siblings.
    The default is unconditionally exact.
    """
    method, estimator = resolve_sweep_method(method, estimator)
    block = type2_block(query, p=1, tag=tag)
    if assignment:
        for token, value in assignment.items():
            block = block.with_probability(token, value)
    formula = lineage(query, block)
    s0 = s_tuple(symbol, f"r0{tag}", f"t0{tag}")
    s1 = s_tuple(symbol, f"r1{tag}", f"t1{tag}")
    middle = frozenset(
        s_tuple(s, f"r1{tag}", f"t0{tag}")
        for s in sorted(query.binary_symbols)) - {s0, s1}
    rows = []
    for a in (False, True):
        row = []
        for b in (False, True):
            conditioned = formula.condition(s0, a).condition(s1, b)
            factor = _middle_factor(conditioned, middle)
            if method == "auto":
                row.append(cnf_probability_auto(
                    factor, block.probability,
                    budget_nodes=budget_nodes, epsilon=epsilon,
                    delta=delta, rng=rng, estimator=estimator,
                    relative_error=relative_error,
                    planner=planner).value)
            else:
                row.append(cnf_probability(factor, block.probability))
        rows.append(row)
    return Matrix(rows)


def link_matrix_sweep(query: Query, symbol: str,
                      assignments, tag: str = "", *,
                      method: str = "exact",
                      numeric: str = "exact",
                      budget_nodes: int | None = DEFAULT_BUDGET_NODES,
                      epsilon=DEFAULT_EPSILON, delta=DEFAULT_DELTA,
                      rng=None, estimator: str = "hoeffding",
                      relative_error=None,
                      planner=None) -> list[Matrix]:
    """The link matrices z(theta) for a sweep of theta-assignments.

    For assignments with *interior* values (0 < p < 1) the block
    lineage — and hence all four conditioned middle factors — is
    independent of theta, so the whole sweep is four batched circuit
    passes (one per factor, ``Circuit.probability_batch``) instead of
    4k grounding-plus-search runs.  Assignments that pin tuples to 0
    or 1 change the grounded lineage structurally (and with it which
    components count as the middle factor), so those fall back to
    per-assignment ``link_matrix_type2``; the returned matrices are
    bit-identical to per-assignment extraction either way.

    ``method="auto"`` runs each factor under the compilation budget
    and degrades its sweep lanes to (epsilon, delta) estimates from
    the chosen ``estimator`` past it; ``method="adaptive"`` is
    ``auto`` with the sequential empirical-Bernstein sampler, and a
    ``planner`` picks each factor's budget from the observed
    circuit-size trajectory.  The default is unconditionally exact.

    ``numeric="float"`` runs the interior-theta batched passes in
    hardware floats on the flat instruction tape — useful for
    screening wide theta-grids; it requires interior assignments (the
    structural fallback path is exact-only) and returns float-entry
    matrices, so keep the exact default wherever the spectral algebra
    consumes the result.
    """
    method, estimator = resolve_sweep_method(method, estimator)
    if numeric not in ("exact", "float"):
        raise ValueError(
            f"numeric must be 'exact' or 'float', got {numeric!r}")
    assignments = [dict(theta) for theta in assignments]
    interior = all(
        0 < Fraction(value) < 1
        for theta in assignments for value in theta.values())
    if not interior and numeric == "float":
        raise ValueError(
            "numeric='float' requires interior theta-assignments "
            "(0 < value < 1); boundary assignments take the "
            "structural per-assignment path, which is exact-only")
    if not interior:
        return [link_matrix_type2(query, symbol, theta, tag,
                                  method=method,
                                  budget_nodes=budget_nodes,
                                  epsilon=epsilon, delta=delta, rng=rng,
                                  estimator=estimator,
                                  relative_error=relative_error,
                                  planner=planner)
                for theta in assignments]

    block = type2_block(query, p=1, tag=tag)
    formula = lineage(query, block)
    s0 = s_tuple(symbol, f"r0{tag}", f"t0{tag}")
    s1 = s_tuple(symbol, f"r1{tag}", f"t1{tag}")
    middle = frozenset(
        s_tuple(s, f"r1{tag}", f"t0{tag}")
        for s in sorted(query.binary_symbols)) - {s0, s1}
    base = block.probability
    # WeightOverlay (not a closure) so the tape float kernel can fill
    # its weight matrix from the shared base plus the pinned tuples.
    specs = [
        WeightOverlay(base, {token: Fraction(v)
                             for token, v in theta.items()})
        for theta in assignments]
    entries: dict[tuple[int, int], list[Fraction]] = {}
    for a in (False, True):
        for b in (False, True):
            conditioned = formula.condition(s0, a).condition(s1, b)
            factor = _middle_factor(conditioned, middle)
            if method == "auto":
                entries[int(a), int(b)] = probability_batch_auto(
                    factor, specs, budget_nodes=budget_nodes,
                    epsilon=epsilon, delta=delta, rng=rng,
                    estimator=estimator,
                    relative_error=relative_error,
                    numeric=numeric, planner=planner).values
            else:
                circuit = compiled(factor)
                if numeric == "float":
                    ensure_tape(factor, circuit)
                entries[int(a), int(b)] = circuit.probability_batch(
                    specs, numeric=numeric)
    return [
        Matrix([[entries[0, 0][i], entries[0, 1][i]],
                [entries[1, 0][i], entries[1, 1][i]]])
        for i in range(len(assignments))]


def articulation_disconnects(query: Query, symbol: str,
                             tag: str = "") -> bool:
    """Lemma C.28 (p = 1 form): the odd-class articulation tuple
    S(r1, t1) disconnects the B(r0, t0)-side from the suffix side in
    the block lineage."""
    block = type2_block(query, p=1, tag=tag)
    formula = lineage(query, block)
    left = frozenset(
        s_tuple(s, f"r0{tag}", f"t0{tag}")
        for s in sorted(query.binary_symbols))
    right = frozenset(
        s_tuple(s, f"rsuff0{tag}", "v")
        for s in sorted(query.binary_symbols))
    token = s_tuple(symbol, f"r1{tag}", f"t1{tag}")
    live_left = left & formula.variables()
    live_right = right & formula.variables()
    if not live_left or not live_right:
        return False
    return variable_disconnects(formula, token, live_left, live_right)


def y_sequence(query: Query, alpha, beta, p_max: int,
               tag: str = "") -> list[Fraction]:
    """y_alpha_beta(p) on the pure zig-zag block (no prefix/suffix)
    for p = 0..p_max (Eq. 73), all probabilities 1/2."""
    structure = TypeIIStructure(query)
    values = []
    for p in range(p_max + 1):
        block = type2_block(query, p=p, branches=0, tag=tag)
        values.append(structure.y_probability(
            block, f"r0{tag}", f"t{p}{tag}", alpha, beta))
    return values


def verify_exponential_form(query: Query, symbol: str, alpha, beta,
                            p_max: int = 4, tag: str = "") -> bool:
    """Eq. (79): y(p) = (a (lambda1/2)^p + b (lambda2/2)^p) implies the
    exact linear recurrence

        y(p+2) = (tr(z)/2) y(p+1) - (det(z)/4) y(p),

    with z the articulation link matrix.  Verifying the recurrence on
    measured y-values confirms the exponential form without leaving
    rational arithmetic."""
    z = link_matrix_type2(query, symbol, tag=tag)
    trace = z[0, 0] + z[1, 1]
    det = z.determinant()
    ys = y_sequence(query, alpha, beta, p_max, tag=tag)
    return all(
        ys[p + 2] == (trace / 2) * ys[p + 1] - (det / 4) * ys[p]
        for p in range(p_max - 1))


def theorem_c33_conditions(z: Matrix) -> dict[str, bool]:
    """Lemma C.32 and Theorem C.33 on a computed link matrix."""
    entries_positive = all(
        z[i, j] > 0 for i in range(2) for j in range(2))
    result = {"c32_entries_positive": entries_positive,
              "c33_eigenvalues": False}
    try:
        dec = spectral_decomposition_2x2(z)
    except ValueError:
        return result
    zero = QuadraticNumber(0)
    l1, l2 = dec.lambda1, dec.lambda2
    # Order |lambda1| < lambda2 with lambda2 the dominant (positive).
    if l2 < l1:
        l1, l2 = l2, l1
    magnitude_l1 = l1 if l1 >= zero else -l1
    result["c33_eigenvalues"] = (magnitude_l1 > zero
                                 and l2 > zero
                                 and magnitude_l1 < l2)
    return result
