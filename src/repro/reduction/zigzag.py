"""The zig-zag rewriting zg(Q) (Appendix A, Lemma 2.6, Figure 2).

Given an unsafe bipartite query Q of type A-B, the construction produces

* a new vocabulary zg(R): n disjoint copies S^(1)..S^(n) of every binary
  symbol; when Q has the left unary R, the copies R^(1) and R^(n) become
  the unary symbols of zg(Q) (its new "R" and "T") while R^(2..n-1) turn
  binary; the right unary T becomes the binary T^(12);
* the query zg(Q) over zg(R), of type A-A and length >= 2k (clauses
  (38)-(45));
* for any bipartite database Delta over zg(R), a database zg(Delta)
  over R with the *same probability values* such that
  Pr_Delta(zg(Q)) = Pr_{zg(Delta)}(Q) (Lemma A.1).

The branching width n is 2 when Q's right part is Type I, and otherwise
max(3, largest subclause count of a right clause); the "dead end"
constants f^(i)_uv (Example A.3) keep the translated right clauses
non-redundant.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product as iter_product

from repro.core.clauses import Clause
from repro.core.queries import Query
from repro.core.safety import query_type
from repro.core.symbols import LEFT_UNARY, RIGHT_UNARY
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple


def branch_width(query: Query) -> int:
    """The number n of branches (Appendix A): 2 for Type-*-I queries,
    otherwise max(3, largest right-clause subclause count)."""
    qtype = query_type(query)
    if qtype is None:
        raise ValueError("zg needs a bipartite query (no full clauses)")
    if qtype[1] == "I":
        return 2
    widest = max((len(c.subclauses) for c in query.right_clauses
                  if c.is_type2), default=0)
    return max(3, widest)


def _copy_name(symbol: str, i: int) -> str:
    return f"{symbol}^({i})"


def zigzag_vocabulary(query: Query) -> dict[str, object]:
    """Describe zg(R): branch width, copies, and unary handling."""
    n = branch_width(query)
    has_r = any(LEFT_UNARY in c.unaries for c in query.clauses)
    has_t = any(RIGHT_UNARY in c.unaries for c in query.clauses)
    return {
        "n": n,
        "has_left_unary": has_r,
        "has_right_unary": has_t,
        "binary_copies": {
            symbol: tuple(_copy_name(symbol, i) for i in range(1, n + 1))
            for symbol in sorted(query.binary_symbols)},
        # R^(2..n-1) become binary symbols of zg(Q); R^(1)/R^(n) are the
        # new unaries, represented as "R" / "T" in the new query.
        "r_middle_copies": tuple(
            _copy_name(LEFT_UNARY, i) for i in range(2, n)) if has_r else (),
        "t_copy": _copy_name(RIGHT_UNARY, 12) if has_t else None,
    }


def _sub_copy(subclause: frozenset[str], i: int) -> frozenset[str]:
    return frozenset(_copy_name(s, i) for s in subclause)


def zigzag_query(query: Query) -> Query:
    """zg(Q): the zig-zag query over zg(R) (clauses (38)-(45))."""
    vocab = zigzag_vocabulary(query)
    n = vocab["n"]
    clauses: list[Clause] = []
    for clause in query.clauses:
        if clause.side == "left":
            clauses.extend(_translate_left(clause, n))
        elif clause.side == "middle":
            (j,) = clause.subclauses
            for i in range(1, n + 1):
                clauses.append(Clause.middle(*_sub_copy(j, i)))
        elif clause.side == "right":
            clauses.extend(_translate_right(clause, n))
        else:
            raise ValueError("zg does not apply to full clauses (H0)")
    return Query(clauses)


def _translate_left(clause: Clause, n: int) -> list[Clause]:
    out: list[Clause] = []
    if LEFT_UNARY in clause.unaries:
        # Type I left clause: Eqs. (38), middles, (39).
        (j,) = clause.subclauses
        out.append(Clause.left_type1(*_sub_copy(j, 1)))
        for i in range(2, n):
            out.append(Clause.middle(
                _copy_name(LEFT_UNARY, i), *_sub_copy(j, i)))
        out.append(Clause.right_type1(*_sub_copy(j, n)))
    else:
        # Type II left clause: Eqs. (40), middles, (41).
        subs = clause.subclauses
        out.append(Clause.left_type2(*[_sub_copy(j, 1) for j in subs]))
        for i in range(2, n):
            union = frozenset(s for j in subs for s in _sub_copy(j, i))
            out.append(Clause.middle(*union))
        out.append(Clause.right_type2(*[_sub_copy(j, n) for j in subs]))
    return out


def _translate_right(clause: Clause, n: int) -> list[Clause]:
    out: list[Clause] = []
    if RIGHT_UNARY in clause.unaries:
        # Type I right clause: Eqs. (43)-(44); here n == 2.
        (j,) = clause.subclauses
        t12 = _copy_name(RIGHT_UNARY, 12)
        out.append(Clause.middle(t12, *_sub_copy(j, 1)))
        out.append(Clause.middle(t12, *_sub_copy(j, 2)))
    else:
        # Type II right clause: Eq. (45), one middle clause per
        # phi : [l] -> [n]; redundant ones are removed by Query.
        subs = clause.subclauses
        for phi in iter_product(range(1, n + 1), repeat=len(subs)):
            union = frozenset(
                s for j, i in zip(subs, phi) for s in _sub_copy(j, i))
            out.append(Clause.middle(*union))
    return out


# ----------------------------------------------------------------------
# The database mapping zg(Delta)
# ----------------------------------------------------------------------
def zigzag_database(query: Query, delta: TID) -> TID:
    """zg(Delta): a database for Q over R from a database for zg(Q)
    over zg(R), preserving Pr (Lemma A.1) and the probability values.

    ``delta``'s left domain hosts the new unary R = R^(1); its right
    domain hosts the new unary T = R^(n); binary tuples of delta carry
    the copies S^(i), R^(2..n-1) and T^(12) under their copy names.
    """
    vocab = zigzag_vocabulary(query)
    n = vocab["n"]
    v1 = list(delta.left_domain)
    v2 = list(delta.right_domain)

    def f_const(u, v, i) -> str:
        return f"f({u},{v})^({i})"

    def e_const(u, v) -> str:
        return f"e({u},{v})"

    left = list(v1) + list(v2) + [
        f_const(u, v, i) for u in v1 for v in v2 for i in range(2, n)]
    right = [e_const(u, v) for u in v1 for v in v2]
    probs: dict[tuple, Fraction] = {}

    if vocab["has_left_unary"]:
        for u in v1:
            probs[r_tuple(u)] = delta.probability(r_tuple(u))
        for u in v1:
            for v in v2:
                for i in range(2, n):
                    probs[r_tuple(f_const(u, v, i))] = delta.probability(
                        s_tuple(_copy_name(LEFT_UNARY, i), u, v))
        for v in v2:
            probs[r_tuple(v)] = delta.probability(t_tuple(v))

    for symbol in sorted(query.binary_symbols):
        for u in v1:
            for v in v2:
                e = e_const(u, v)
                probs[s_tuple(symbol, u, e)] = delta.probability(
                    s_tuple(_copy_name(symbol, 1), u, v))
                for i in range(2, n):
                    probs[s_tuple(symbol, f_const(u, v, i), e)] = (
                        delta.probability(
                            s_tuple(_copy_name(symbol, i), u, v)))
                probs[s_tuple(symbol, v, e)] = delta.probability(
                    s_tuple(_copy_name(symbol, n), u, v))

    if vocab["has_right_unary"]:
        for u in v1:
            for v in v2:
                probs[t_tuple(e_const(u, v))] = delta.probability(
                    s_tuple(vocab["t_copy"], u, v))

    return TID(left, right, probs, default=Fraction(1))
