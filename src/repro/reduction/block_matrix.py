"""The block matrix A(p) and its spectral form (Section 3.3).

z_ab(p) is the probability of the conditioned link lineage Y^(p)_ab when
every random tuple has probability 1/2 (Eq. 20).  Lemma 3.19 proves

    A(p) = [[z00(p), z01(p)], [z10(p), z11(p)]] = A(1)^p / 2^{p-1},

which lets the reduction evaluate z_ab(p) by exact matrix powers instead
of exponential WMC; ``z_matrix_direct`` (WMC) and ``z_matrix_power``
must agree — that equality is experiment E5.

Theorem 3.14 then gives z_i(p) = a_i lambda1^p + b_i lambda2^p with the
three conditions (22)-(24), verified exactly in Q(sqrt(disc)) by
``block_spectral_data`` and the checkers from ``repro.algebra.eigen2x2``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.algebra.eigen2x2 import (
    SpectralDecomposition,
    check_condition_22,
    check_condition_23,
    check_condition_24,
    spectral_decomposition_2x2,
)
from repro.algebra.matrices import Matrix
from repro.booleans.adaptive import resolve_sweep_method
from repro.booleans.approximate import DEFAULT_DELTA, DEFAULT_EPSILON
from repro.core.queries import Query
from repro.reduction.blocks import path_block
from repro.tid.database import r_tuple
from repro.tid.lineage import lineage
from repro.tid.wmc import (
    DEFAULT_BUDGET_NODES,
    compiled,
    ensure_tape,
    probability_batch_auto,
)

HALF = Fraction(1, 2)


def z_matrix_direct(query: Query, p: int, *,
                    method: str = "exact",
                    numeric: str = "exact",
                    budget_nodes: int | None = DEFAULT_BUDGET_NODES,
                    epsilon=DEFAULT_EPSILON, delta=DEFAULT_DELTA,
                    rng=None, estimator: str = "hoeffding",
                    relative_error=None, planner=None) -> Matrix:
    """A(p) computed honestly: ground B_p(u, v), compile the lineage
    once, and sweep the endpoint conditioning grid over the circuit.

    Conditioning a monotone lineage on an endpoint tuple equals pinning
    that tuple's marginal to 0/1, so all four entries are linear passes
    over one compiled circuit with the endpoint weights overridden —
    the probabilities are bit-identical to conditioning structurally
    and re-running WMC per entry.

    ``method="auto"`` runs the sweep under the compilation budget and
    degrades each entry to an (epsilon, delta) estimate when the
    lineage blows up (``budget_nodes``/``epsilon``/``delta``/``rng``/
    ``estimator``/``relative_error``/``planner`` as in
    ``repro.tid.wmc.probability_batch_auto``); ``method="adaptive"``
    is ``auto`` with the sequential empirical-Bernstein sampler as the
    degraded engine.  The default is the unconditionally exact path.

    ``numeric="float"`` answers the grid in hardware floats on the
    flat instruction tape (``repro.booleans.tape``) — the fast engine
    for screening large p; downstream algebra (spectral checks, matrix
    powers) requires the exact rationals, so keep the default there.
    """
    tid = path_block(query, p)
    formula = lineage(query, tid)
    r_u, r_v = r_tuple("u"), r_tuple("v")
    base = tid.probability
    grid = [
        (lambda t, pinned={r_u: Fraction(a), r_v: Fraction(b)}:
            pinned.get(t, base(t)))
        for a in (0, 1) for b in (0, 1)]
    method, estimator = resolve_sweep_method(method, estimator)
    if numeric not in ("exact", "float"):
        raise ValueError(
            f"numeric must be 'exact' or 'float', got {numeric!r}")
    if method == "auto":
        answer = probability_batch_auto(
            formula, grid, budget_nodes=budget_nodes,
            epsilon=epsilon, delta=delta, rng=rng,
            estimator=estimator, relative_error=relative_error,
            numeric=numeric, planner=planner)
        z00, z01, z10, z11 = answer.values
    else:
        circuit = compiled(formula)
        if numeric == "float":
            ensure_tape(formula, circuit)
        z00, z01, z10, z11 = circuit.probability_batch(
            grid, numeric=numeric)
    return Matrix([[z00, z01], [z10, z11]])


def z_matrix_power(query: Query, p: int,
                   base: Matrix | None = None) -> Matrix:
    """A(p) = A(1)^p / 2^{p-1} (Lemma 3.19)."""
    if base is None:
        base = z_matrix_direct(query, 1)
    return (base ** p).scale(Fraction(1, 2 ** (p - 1)))


def z_value(query: Query, p: int, a: int, b: int,
            base: Matrix | None = None) -> Fraction:
    """z_ab(p) via the matrix-power fast path."""
    return z_matrix_power(query, p, base)[a, b]


def block_spectral_data(query: Query) -> SpectralDecomposition:
    """Exact eigen-data of A(1); z_i(p) = (a_i lambda1^p + b_i lambda2^p)
    up to the 2^{p-1} normalization (Theorem 3.14)."""
    return spectral_decomposition_2x2(z_matrix_direct(query, 1))


def theorem_314_conditions(query: Query) -> dict[str, bool]:
    """The three conditions of Theorem 3.14 for a final Type-I query.

    Note the coefficients of z_i(p) = a_i lambda1^p + b_i lambda2^p use
    the *normalized* link matrix A(1)/2 whose powers give z(p)/2^... —
    conditions (22)-(24) are invariant under that scaling, so we verify
    them on A(1) directly.
    """
    dec = block_spectral_data(query)
    return {
        "eq22_eigenvalues": check_condition_22(dec),
        "eq23_b_nonzero": check_condition_23(dec),
        "eq24_cross_products": check_condition_24(dec),
    }
