"""The Theorem 2.2 driver: from any unsafe bipartite query to a
hardness certificate.

The paper's proof of the main theorem routes every unsafe forall-CNF
query through a chain of reductions:

1. Lemma 2.7 rewrites (Q[S := 0/1]) that preserve unsafety, down to a
   *final* query (Definition 2.8);
2. when the final query is of type A-B with B != A, the zig-zag
   rewriting zg (Lemma 2.6) converts it to type A-A (and at least
   doubles the length), after which it is re-finalized;
3. final Type I-I queries feed the #P2CNF reduction of Theorem 3.1
   (executable here end-to-end); final Type II-II queries feed the
   CCP machinery of Appendix C (executable at the level of its two
   halves — see ``repro.reduction.type2``).

``hardness_certificate`` performs that routing and returns a structured
record of every step, so a caller can replay — and the test-suite can
machine-check — the exact chain the proof of Theorem 2.2 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.final import find_final, is_final
from repro.core.queries import Query
from repro.core.safety import is_unsafe, query_length, query_type
from repro.reduction.zigzag import zigzag_query


@dataclass(frozen=True)
class CertificateStep:
    """One step of the hardness chain."""

    kind: str           # "rewrite" | "zigzag"
    detail: str
    query: Query


@dataclass(frozen=True)
class HardnessCertificate:
    """The routing record for an unsafe query.

    ``route`` is "H0" for H0-like queries (full clauses), "type1" when
    the chain ends at a final Type I-I query (Theorem 2.9(1) applies,
    and ``repro.reduction.type1.Type1Reduction`` is executable on
    ``final_query``), and "type2" when it ends at a final Type II-II
    query (Theorem 2.9(2) / Appendix C applies).
    """

    source: Query
    final_query: Query
    route: str
    steps: tuple[CertificateStep, ...] = field(default_factory=tuple)

    @property
    def length(self) -> int | None:
        return query_length(self.final_query)


def hardness_certificate(query: Query,
                         max_zigzags: int = 3) -> HardnessCertificate:
    """Route an unsafe query to its hardness class (Theorem 2.2).

    Raises ``ValueError`` on safe or constant queries.
    """
    if not is_unsafe(query):
        raise ValueError("hardness certificates exist only for unsafe "
                         "queries (safe queries are in PTIME)")
    if query.full_clauses:
        return HardnessCertificate(source=query, final_query=query,
                                   route="H0")

    steps: list[CertificateStep] = []
    current = query
    for _ in range(max_zigzags + 1):
        current, trace = _finalize(current, steps)
        qtype = query_type(current)
        if qtype is None:  # pragma: no cover - bipartite input keeps type
            raise AssertionError("lost the bipartite type during routing")
        if qtype[0] == qtype[1]:
            route = "type1" if qtype == ("I", "I") else "type2"
            return HardnessCertificate(source=query, final_query=current,
                                       route=route, steps=tuple(steps))
        # Mixed type A-B: apply the zig-zag (Lemma 2.6) and re-finalize.
        current = zigzag_query(current)
        steps.append(CertificateStep(
            "zigzag", f"zg applied; type now "
            f"{'-'.join(query_type(current) or ('?',))}, length "
            f"{query_length(current)}", current))
    raise AssertionError(  # pragma: no cover - Lemma 2.6 guarantees A-A
        "zig-zag chain did not converge to a type A-A query")


def _finalize(query: Query, steps: list[CertificateStep]):
    """Drive the query to a final one, recording each rewrite."""
    if is_final(query):
        return query, []
    final, trace = find_final(query)
    for symbol, value in trace:
        steps.append(CertificateStep(
            "rewrite", f"{symbol} := {int(value)}", final))
    return final, trace
