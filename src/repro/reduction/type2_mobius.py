"""Moebius inversion over blocks for Type-II queries (Theorem C.19).

For a TID that is a disjoint union of blocks B(u, v) (sharing only
endpoint constants), Theorem C.19 expands

    Pr(Q) = (-1)^{|U|+|V|} * sum over sigma: U -> L0(G), tau: V -> L0(H)
            of  prod_u mu(sigma(u)) * prod_v mu(tau(v))
              * prod_{u,v} Pr(Y_{sigma(u), tau(v)}(u, v)).

This module evaluates that sum exactly and is tested against the direct
WMC probability of Q on the unioned database — the computational heart
of the Type-II hardness proof.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product as iter_product
from typing import Mapping

from repro.reduction.type2_lattice import TypeIIStructure
from repro.tid.database import TID


def union_of_blocks(blocks: Mapping[tuple, TID]) -> TID:
    """The disjoint union of blocks (shared endpoints allowed)."""
    result: TID | None = None
    for block in blocks.values():
        result = block if result is None else result.union(block)
    if result is None:
        raise ValueError("no blocks")
    return result


def mobius_block_probability(structure: TypeIIStructure,
                             blocks: Mapping[tuple, TID]) -> Fraction:
    """The right-hand side of Theorem C.19.

    ``blocks`` maps every pair (u, v) in U x V to its block TID (use a
    trivial all-certain block for non-edges).
    """
    left_nodes = sorted({u for (u, _) in blocks}, key=repr)
    right_nodes = sorted({v for (_, v) in blocks}, key=repr)
    if set(blocks) != {(u, v) for u in left_nodes for v in right_nodes}:
        raise ValueError("blocks must cover the full U x V grid")

    l0_g = structure.left_lattice.strict_support
    l0_h = structure.right_lattice.strict_support
    mu_g = structure.left_lattice.mobius
    mu_h = structure.right_lattice.mobius

    # Pr(Y_alpha_beta(u, v)) for every block and lattice pair, cached.
    y: dict[tuple, Fraction] = {}
    for (u, v), block in blocks.items():
        for alpha in l0_g:
            for beta in l0_h:
                y[(u, v, alpha, beta)] = structure.y_probability(
                    block, u, v, alpha, beta)

    total = Fraction(0)
    for sigma in iter_product(l0_g, repeat=len(left_nodes)):
        mu_sigma = Fraction(1)
        for alpha in sigma:
            mu_sigma *= mu_g[alpha]
        if mu_sigma == 0:
            continue
        for tau in iter_product(l0_h, repeat=len(right_nodes)):
            term = mu_sigma
            for beta in tau:
                term *= mu_h[beta]
            if term == 0:
                continue
            for i, u in enumerate(left_nodes):
                for j, v in enumerate(right_nodes):
                    term *= y[(u, v, sigma[i], tau[j])]
                    if term == 0:
                        break
                if term == 0:
                    break
            total += term
    sign = (-1) ** (len(left_nodes) + len(right_nodes))
    return sign * total


def trivial_block(structure: TypeIIStructure, u, v) -> TID:
    """The block for a non-edge: every tuple certain (probability 1)."""
    return TID([u], [v], {}, default=Fraction(1))
