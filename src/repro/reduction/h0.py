"""Hardness of H0 = forall x forall y (R(x) v S(x,y) v T(y)).

Section 2 notes that GFOMC_bi(H0) is #P-hard with probabilities in
{0, 1/2, 1} (the proof in [4] only uses those values).  The reduction is
a one-call Karp-style reduction from #PP2CNF, reconstructed here:

given Phi = AND_{(i,j) in E} (X_i v Y_j), build the bipartite TID with

* Pr(R(u_i))   = 1/2   for every left variable X_i,
* Pr(T(v_j))   = 1/2   for every right variable Y_j,
* Pr(S(u,v))   = 0     when (u, v) is an edge of Phi,
* Pr(S(u,v))   = 1     otherwise.

Grounded at an edge, H0's clause degenerates to R(u) v T(v); at a
non-edge it is satisfied by the certain S tuple.  Hence the lineage *is*
Phi (reading R as X and T as Y), and

    #Phi = Pr(H0) * 2^(n_left + n_right).

This was strengthened by Amarilli & Kimelfeld to probabilities {1/2}
only (model counting); the {0, 1/2, 1} construction below is the one
this paper's Theorem 2.5 plugs in.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.catalog import h0
from repro.counting.pp2cnf import PP2CNF
from repro.counting.problems import gfomc
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple

HALF = Fraction(1, 2)


def h0_reduction_tid(phi: PP2CNF) -> TID:
    """The GFOMC database encoding a #PP2CNF instance for H0."""
    left = [f"u{i}" for i in range(phi.n_left)]
    right = [f"v{j}" for j in range(phi.n_right)]
    probs: dict[tuple, Fraction] = {}
    for u in left:
        probs[r_tuple(u)] = HALF
    for v in right:
        probs[t_tuple(v)] = HALF
    for i, j in phi.edges:
        probs[s_tuple("S", f"u{i}", f"v{j}")] = Fraction(0)
    # Non-edges default to probability 1.
    return TID(left, right, probs, default=Fraction(1))


def count_pp2cnf_via_h0(phi: PP2CNF, oracle=None) -> int:
    """#Phi from a single GFOMC(H0) oracle call.

    ``oracle`` defaults to the exact engine; any callable
    ``oracle(query, tid) -> Fraction`` may be substituted.
    """
    tid = h0_reduction_tid(phi)
    query = h0()
    pr = gfomc(query, tid) if oracle is None else oracle(query, tid)
    count = pr * Fraction(2) ** (phi.n_left + phi.n_right)
    if count.denominator != 1:
        raise AssertionError("non-integral count from the H0 reduction")
    return int(count)
