"""The end-to-end Cook reduction #P2CNF -> FOMC_bi(Q) (Theorem 3.1).

Given a final Type-I query Q and a P2CNF instance Phi with m clauses
over n variables, the reduction:

1. builds, for parameter pairs p = (p1, p2), the disjoint-block database
   Delta(p) whose probabilities all lie in {1/2, 1} (Section 3.3) — one
   parallel block per 2CNF clause, path lengths p1 and p2;
2. obtains Pr_{Delta(p)}(Q) from the FOMC oracle;
3. assembles the linear system of Eq. (10): one unknown per undirected
   signature k' = (k00, k01_10, k11) with k00 + k01_10 + k11 = m,
   coefficient y00^{k00} * y10^{k01,10} * y11^{k11} where
   y_ab(p) = z_ab(p1) z_ab(p2) (Eq. 25) and z_ab(p) comes from the
   block-matrix power A(p) = A(1)^p / 2^{p-1} (Lemma 3.19);
4. solves it exactly, recovering every signature count #k', and returns
   #Phi = sum of #k' over signatures with k00 = 0.

Row selection.  Since y_ab is symmetric in (p1, p2), rows indexed by the
full grid {1..m+1}^2 repeat; we therefore enumerate parameter
*multisets* p1 <= p2 in increasing order and keep exactly those rows
that increase the rank (decided exactly over Q), stopping at full rank.
Theorem 3.6 (via conditions (22)-(24), which hold for final queries by
Theorem 3.14) guarantees the row space reaches full rank; the oracle is
consulted only for kept rows, so the reduction stays polynomial.

Two built-in oracles:

* ``"wmc"`` — the honest oracle: materialize Delta(p) and run the exact
  weighted model counter on the full lineage;
* ``"product"`` — the block-product fast path of Theorem 3.4
  (Pr = 2^-n * sum_theta prod_edges y_{theta(u), theta(v)}), itself
  validated against "wmc" in the test suite.

The recovered counts are integers, non-negative and sum to 2^n — all
asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product as iter_product
from typing import Callable

from repro.algebra.matrices import Matrix
from repro.core.final import is_final
from repro.core.safety import query_type
from repro.counting.p2cnf import P2CNF, Signature
from repro.reduction.block_matrix import z_matrix_direct, z_matrix_power
from repro.reduction.blocks import reduction_tid
from repro.tid.database import TID
from repro.tid.lineage import lineage
from repro.tid.wmc import compiled

Oracle = Callable[[TID], Fraction]


@dataclass(frozen=True)
class ReductionResult:
    """Output of the Type-I reduction."""

    signature_counts: dict[Signature, int]
    model_count: int
    oracle_calls: int
    system_size: int
    parameters_used: tuple[tuple[int, int], ...]


def valid_signatures(m: int) -> list[Signature]:
    """All undirected signatures (k00, k01_10, k11) with sum m."""
    return [(m - k1 - k2, k1, k2)
            for k1 in range(m + 1) for k2 in range(m + 1 - k1)]


class Type1Reduction:
    """#P2CNF <=^P FOMC_bi(Q) for a final Type-I query Q (Theorem 3.1)."""

    def __init__(self, query, *, check_final: bool = True):
        qtype = query_type(query)
        if qtype is None or qtype != ("I", "I"):
            raise ValueError(f"Type-I reduction needs a type I-I query, "
                             f"got {qtype}")
        if check_final and not is_final(query):
            raise ValueError(
                "the query must be final (Definition 2.8) for the "
                "reduction's non-singularity argument; pass "
                "check_final=False to override")
        self.query = query
        # The one-link block matrix A(1), computed once by exact WMC.
        self.base_matrix = z_matrix_direct(query, 1)
        self._z_cache: dict[int, dict[str, Fraction]] = {}

    # ------------------------------------------------------------------
    def z_values(self, p: int) -> dict[str, Fraction]:
        """z_ab(p) for ab in {00, 10, 11} via Lemma 3.19."""
        cached = self._z_cache.get(p)
        if cached is not None:
            return cached
        a_p = z_matrix_power(self.query, p, self.base_matrix)
        if a_p[0, 1] != a_p[1, 0]:
            raise AssertionError("block is not symmetric (Prop. 3.20)")
        values = {"00": a_p[0, 0], "10": a_p[1, 0], "11": a_p[1, 1]}
        self._z_cache[p] = values
        return values

    def y_values(self, params: tuple[int, int]) -> dict[str, Fraction]:
        """y_ab(p1, p2) = z_ab(p1) * z_ab(p2) (Eq. 25)."""
        z1 = self.z_values(params[0])
        z2 = self.z_values(params[1])
        return {key: z1[key] * z2[key] for key in z1}

    def coefficient_row(self, m: int,
                        params: tuple[int, int]) -> list[Fraction]:
        """The Eq. (10) coefficients of the unknowns #k' for one
        parameter pair."""
        y = self.y_values(params)
        return [y["00"] ** k00 * y["10"] ** k01_10 * y["11"] ** k11
                for (k00, k01_10, k11) in valid_signatures(m)]

    # ------------------------------------------------------------------
    def product_oracle_value(self, phi: P2CNF,
                             params: tuple[int, int]) -> Fraction:
        """2^n * Pr_Delta(Q) by the block-product formula (Theorem 3.4 /
        Eq. 8): sum over theta of the per-edge conditioned lineage
        probabilities."""
        y = self.y_values(params)
        lookup = {(0, 0): y["00"], (0, 1): y["10"],
                  (1, 0): y["10"], (1, 1): y["11"]}
        total = Fraction(0)
        for bits in iter_product((0, 1), repeat=phi.n):
            term = Fraction(1)
            for i, j in phi.edges:
                term *= lookup[(bits[i], bits[j])]
                if term == 0:
                    break
            total += term
        return total

    def reduction_database(self, phi: P2CNF,
                           params: tuple[int, int]) -> TID:
        """Delta(params): the disjoint-block FOMC database for Phi."""
        nodes = [f"x{i}" for i in range(phi.n)]
        edges = [(f"x{i}", f"x{j}") for i, j in phi.edges]
        return reduction_tid(self.query, nodes, edges, list(params))

    def wmc_oracle_value(self, phi: P2CNF,
                         params: tuple[int, int]) -> Fraction:
        """2^n * Pr_Delta(Q) by materializing Delta, compiling its
        lineage to a d-DNNF circuit (cached across repeated calls with
        the same parameters), and evaluating one linear pass."""
        tid = self.reduction_database(phi, params)
        circuit = compiled(lineage(self.query, tid))
        return circuit.probability(tid.probability) * Fraction(2) ** phi.n

    # ------------------------------------------------------------------
    def _select_rows(self, m: int, max_parameter: int
                     ) -> list[tuple[tuple[int, int], list[Fraction]]]:
        """Greedily pick parameter multisets whose Eq. (10) rows reach
        full rank (exact arithmetic)."""
        target = len(valid_signatures(m))
        selected: list[tuple[tuple[int, int], list[Fraction]]] = []
        # Incremental Gaussian basis: pivot column -> normalized row.
        basis: dict[int, list[Fraction]] = {}
        limit = max(m + 1, 2)
        while len(selected) < target and limit <= max_parameter:
            candidates = [(p1, p2)
                          for p2 in range(1, limit + 1)
                          for p1 in range(1, p2 + 1)]
            candidates.sort(key=lambda p: (max(p), sum(p), p))
            for params in candidates:
                if len(selected) == target:
                    break
                if any(params == used for used, _ in selected):
                    continue
                row = self.coefficient_row(m, params)
                residual = list(row)
                for col, pivot_row in basis.items():
                    if residual[col] != 0:
                        factor = residual[col]
                        residual = [a - factor * b
                                    for a, b in zip(residual, pivot_row)]
                pivot = next((i for i, a in enumerate(residual) if a != 0),
                             None)
                if pivot is None:
                    continue
                scale = residual[pivot]
                basis[pivot] = [a / scale for a in residual]
                selected.append((params, row))
            limit += m + 1
        if len(selected) < target:
            raise AssertionError(
                "could not reach full rank; Theorem 3.6's conditions "
                "appear violated (is the query final?)")
        return selected

    def run(self, phi: P2CNF, oracle: str | Oracle = "product",
            max_parameter: int = 64) -> ReductionResult:
        """Execute the reduction and recover #Phi."""
        m = phi.m
        if m == 0:
            count = 2 ** phi.n
            return ReductionResult({(0, 0, 0): count}, count, 0, 0, ())
        signatures = valid_signatures(m)
        selected = self._select_rows(m, max_parameter)
        rows = [row for _, row in selected]
        params_used = tuple(params for params, _ in selected)

        rhs = []
        for params in params_used:
            if oracle == "product":
                value = self.product_oracle_value(phi, params)
            elif oracle == "wmc":
                value = self.wmc_oracle_value(phi, params)
            else:
                tid = self.reduction_database(phi, params)
                value = oracle(tid) * Fraction(2) ** phi.n
            rhs.append(value)

        solution = Matrix(rows).solve(rhs)

        counts: dict[Signature, int] = {}
        total = 0
        for signature, value in zip(signatures, solution):
            if value.denominator != 1 or value < 0:
                raise AssertionError(
                    f"non-integral or negative count: {value}")
            count = int(value)
            if count:
                counts[signature] = count
            total += count
        if total != 2 ** phi.n:
            raise AssertionError(
                f"counts sum to {total}, expected {2 ** phi.n}")
        model_count = sum(c for (k00, _, _), c in counts.items()
                          if k00 == 0)
        return ReductionResult(counts, model_count, len(params_used),
                               len(signatures), params_used)


def count_p2cnf(query, phi: P2CNF, oracle: str | Oracle = "product") -> int:
    """Convenience wrapper: #Phi via the Type-I reduction through Q."""
    return Type1Reduction(query).run(phi, oracle=oracle).model_count
