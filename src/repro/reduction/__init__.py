"""The hardness machinery: block databases, small/big matrices, the
Type-I Cook reduction (Section 3), the zig-zag rewriting (Appendix A),
and the Type-II lattice/Moebius apparatus (Appendix C)."""

from repro.reduction.blocks import path_block, parallel_block, reduction_tid
from repro.reduction.small_matrix import (
    link_lineage,
    small_matrix_polynomials,
    small_matrix_determinant,
    lemma12_check,
)
from repro.reduction.block_matrix import (
    z_matrix_direct,
    z_matrix_power,
    z_value,
    block_spectral_data,
)
from repro.reduction.big_matrix import big_matrix, theorem36_matrix
from repro.reduction.type1 import Type1Reduction
from repro.reduction.zigzag import zigzag_query, zigzag_database, zigzag_vocabulary

__all__ = [
    "path_block",
    "parallel_block",
    "reduction_tid",
    "link_lineage",
    "small_matrix_polynomials",
    "small_matrix_determinant",
    "lemma12_check",
    "z_matrix_direct",
    "z_matrix_power",
    "z_value",
    "block_spectral_data",
    "big_matrix",
    "theorem36_matrix",
    "Type1Reduction",
    "zigzag_query",
    "zigzag_database",
    "zigzag_vocabulary",
]
