"""Consistent assignments over the Type-II zig-zag block (Section C.7).

The probability-tuning argument of Appendix C requires assigning the
same value to *equivalent* tuples across the zig-zag: for each binary
symbol S the odd class {S(r_0,t_0), S(r_1,t_1), ...}, the even class
{S(r_1,t_0), S(r_2,t_1), ...}, and one class per dead-end branch
(Definition C.26).  The partial assignment theta_0 sets whole dead-end
classes to 0 or 1 — but only when the endpoints-connectivity of every
Y_alpha_beta survives; the remaining classes stay at 1/2
(Definition C.27: a *final* consistent assignment).

This module enumerates the equivalence classes of the blocks built by
``repro.reduction.type2_blocks`` and searches for theta_0 greedily,
mirroring the construction below Definition C.26.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from repro.booleans.connectivity import disconnects
from repro.core.queries import Query
from repro.reduction.type2_blocks import dead_end_count, type2_block
from repro.reduction.type2_lattice import TypeIIStructure
from repro.tid.database import TID, s_tuple

HALF = Fraction(1, 2)

ClassKey = tuple  # (symbol, kind, extra)


def zigzag_equivalence_classes(query: Query, p: int, tag: str = "",
                               branches: int = 1
                               ) -> dict[ClassKey, list[tuple]]:
    """The tuple equivalence classes of B^(p)(u, v) (Definition C.26).

    Keys: (symbol, "odd"), (symbol, "even"),
    (symbol, "dead-left", j), (symbol, "dead-right", j),
    (symbol, "prefix", i), (symbol, "suffix", i).
    """
    deads = dead_end_count(query)
    classes: dict[ClassKey, list[tuple]] = {}
    for symbol in sorted(query.binary_symbols):
        odd = [s_tuple(symbol, f"r{i}{tag}", f"t{i}{tag}")
               for i in range(p + 1)]
        even = [s_tuple(symbol, f"r{i}{tag}", f"t{i - 1}{tag}")
                for i in range(1, p + 1)]
        classes[(symbol, "odd")] = odd
        if even:
            classes[(symbol, "even")] = even
        for j in range(deads):
            classes[(symbol, "dead-left", j)] = [
                s_tuple(symbol, f"r{i}{tag}", f"e{i}_{j}{tag}")
                for i in range(p + 1)]
            classes[(symbol, "dead-right", j)] = [
                s_tuple(symbol, f"f{i}_{j}{tag}", f"t{i}{tag}")
                for i in range(p + 1)]
        for i in range(branches):
            classes[(symbol, "prefix", i)] = [
                s_tuple(symbol, "u", f"tpref{i}{tag}"),
                s_tuple(symbol, f"r0{tag}", f"tpref{i}{tag}")]
            classes[(symbol, "suffix", i)] = [
                s_tuple(symbol, f"rsuff{i}{tag}", f"t{p}{tag}"),
                s_tuple(symbol, f"rsuff{i}{tag}", "v")]
    return classes


def is_consistent(assignment: Mapping[tuple, Fraction],
                  classes: Mapping[ClassKey, list[tuple]]) -> bool:
    """Does the assignment give every class a single value?"""
    for tuples in classes.values():
        values = {assignment[t] for t in tuples if t in assignment}
        if len(values) > 1:
            return False
    return True


def endpoint_tuples(structure: TypeIIStructure, tag: str = "",
                    p: int = 1) -> tuple[frozenset, frozenset]:
    """The 'far left' and 'far right' tuple groups whose connectivity
    theta_0 must preserve: all tuples of the first and last elementary
    blocks of the zig-zag."""
    symbols = sorted(structure.query.binary_symbols)
    left = frozenset(s_tuple(s, f"r0{tag}", f"t0{tag}") for s in symbols)
    right = frozenset(s_tuple(s, f"r{p}{tag}", f"t{p}{tag}")
                      for s in symbols)
    return left, right


def assignment_keeps_connectivity(structure: TypeIIStructure, block: TID,
                                  assignment: Mapping[tuple, Fraction],
                                  p: int, tag: str = "") -> bool:
    """Check that under ``assignment`` every Y_alpha_beta stays
    connected and keeps the far-left and far-right tuples joined."""
    adjusted = block
    for token, value in assignment.items():
        adjusted = adjusted.with_probability(token, value)
    far_left, far_right = endpoint_tuples(structure, tag, p)
    for alpha in structure.left_lattice.strict_support:
        for beta in structure.right_lattice.strict_support:
            y = structure.lineage_y(adjusted, "u", "v", alpha, beta)
            if y.is_false() or y.is_true():
                return False
            live_left = far_left & y.variables()
            live_right = far_right & y.variables()
            if not live_left or not live_right:
                return False
            if disconnects(y, live_left, live_right):
                return False
    return True


def find_theta0(query: Query, p: int = 1, tag: str = "",
                branches: int = 1) -> dict[tuple, Fraction]:
    """Greedy search for the partial assignment theta_0: try to pin
    each dead-end class to 0 or 1, keeping connectivity; everything
    else stays at 1/2 (the construction below Definition C.27)."""
    structure = TypeIIStructure(query)
    block = type2_block(query, p, tag=tag, branches=branches)
    classes = zigzag_equivalence_classes(query, p, tag, branches)
    theta0: dict[tuple, Fraction] = {}
    for key, tuples in sorted(classes.items(), key=repr):
        if key[1] not in ("dead-left", "dead-right"):
            continue
        for value in (Fraction(0), Fraction(1)):
            candidate = dict(theta0)
            candidate.update({t: value for t in tuples})
            if assignment_keeps_connectivity(structure, block,
                                             candidate, p, tag):
                theta0 = candidate
                break
    assert is_consistent(theta0, classes)
    return theta0
