"""The big matrix M of Theorem 3.6 and the linear system of Section 3.2.

The reduction collects one oracle answer per parameter vector
p = (p_1, ..., p_h) in {1..m+1}^h; Eq. (10) expresses each answer as a
linear combination of the unknown signature counts with coefficients

    y_00^{k_00} * y_10^{k_01,10} * y_11^{k_11},      (h = 2)

where k_00 = m - k_01,10 - k_11.  We index columns by the free exponents
k in {0..m}^h and write the coefficient as
y_0^m * prod_i (y_i / y_0)^{k_i}, which is well-defined because y_0 > 0;
columns whose implied k_0 is negative correspond to impossible
signatures and receive count 0 in the unique solution.

``theorem36_matrix`` builds M directly from spectral data
(y_i(p) = prod_j (a_i lambda1^{p_j} + b_i lambda2^{p_j}), Eq. 14) so the
non-singularity theorem can be machine-checked on arbitrary coefficient
sets satisfying conditions (11)-(13).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product as iter_product
from typing import Callable, Sequence

from repro.algebra.matrices import Matrix


def exponent_vectors(m: int, h: int) -> list[tuple[int, ...]]:
    """Column index set {0..m}^h, in lexicographic order."""
    return list(iter_product(range(m + 1), repeat=h))


def parameter_vectors(m: int, h: int) -> list[tuple[int, ...]]:
    """Row index set {1..m+1}^h, in lexicographic order."""
    return list(iter_product(range(1, m + 2), repeat=h))


def big_matrix(m: int, h: int,
               y: Callable[[int, tuple[int, ...]], Fraction]) -> Matrix:
    """M[p, k] = y_0(p)^{m - sum(k)} * prod_i y_i(p)^{k_i}.

    ``y(i, p)`` returns y_i evaluated at the parameter vector p, for
    i = 0..h (i = 0 plays the role of y_00, the reference entry).
    """
    rows = []
    for p in parameter_vectors(m, h):
        y_values = [Fraction(y(i, p)) for i in range(h + 1)]
        if y_values[0] == 0:
            raise ValueError("y_0(p) must be non-zero")
        row = []
        for k in exponent_vectors(m, h):
            coeff = y_values[0] ** (m - sum(k))
            for i, exponent in enumerate(k):
                coeff *= y_values[i + 1] ** exponent
            row.append(coeff)
        rows.append(row)
    return Matrix(rows)


def theorem36_matrix(m: int, h: int, lambda1: Fraction, lambda2: Fraction,
                     coeffs: Sequence[tuple[Fraction, Fraction]],
                     ) -> Matrix:
    """The matrix of Theorem 3.6 built from y_i(p) = prod_j
    (a_i lambda1^{p_j} + b_i lambda2^{p_j}) (Eq. 14).

    ``coeffs[i] = (a_i, b_i)`` for i = 0..h; the caller is responsible
    for conditions (11)-(13) when expecting non-singularity.
    """
    if len(coeffs) != h + 1:
        raise ValueError("need h + 1 coefficient pairs (i = 0..h)")

    def y(i: int, p: tuple[int, ...]) -> Fraction:
        a, b = coeffs[i]
        value = Fraction(1)
        for pj in p:
            value *= a * lambda1 ** pj + b * lambda2 ** pj
        return value

    return big_matrix(m, h, y)


def conditions_11_13(lambda1, lambda2, coeffs) -> bool:
    """Check conditions (11)-(13) on eigenvalues and coefficients."""
    if lambda1 in (0, lambda2, -lambda2) or lambda2 == 0:
        return False
    if any(b == 0 for _, b in coeffs):
        return False
    for i in range(len(coeffs)):
        for j in range(i + 1, len(coeffs)):
            ai, bi = coeffs[i]
            aj, bj = coeffs[j]
            if ai * bj == aj * bi:
                return False
    return True
