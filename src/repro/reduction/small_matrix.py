"""The small matrix A(1) and the logic-algebra bridge (Section 1.6, 3.3).

For a bipartite query Q, the lineage on the single-link block B_1(u, v)
is Y(u,v) = Q(u, t1) & Q(v, t1).  Substituting the endpoint variables
R(u) := a, R(v) := b gives four Boolean formulas Y_ab, whose
arithmetizations y_ab form the 2x2 *small matrix* of polynomials.

* Lemma 1.2: det(y) == 0  iff  Y disconnects R(u) from R(v).
* Lemma 3.15: for unsafe Type-I queries Y is connected, so det != 0.
* Theorem 3.16 / Corollary 3.18: for *final* Type-I queries,
  det = c * prod_i u_i (1 - u_i) with c != 0, hence the determinant is
  non-zero on every interior point — in particular at (1/2, ..., 1/2).
"""

from __future__ import annotations

from fractions import Fraction

from repro.algebra.polynomials import Polynomial
from repro.booleans.arithmetize import arithmetize
from repro.booleans.cnf import CNF
from repro.booleans.connectivity import disconnects
from repro.core.queries import Query
from repro.reduction.blocks import path_block
from repro.tid.database import r_tuple
from repro.tid.lineage import lineage


def _variable_name(token) -> str:
    """Deterministic polynomial-variable name for a ground tuple."""
    return "p_" + "_".join(str(part) for part in token)


def link_lineage(query: Query, p: int = 1, u: str = "u",
                 v: str = "v") -> CNF:
    """Y^(p)(u, v): the lineage of Q over the block B_p(u, v)."""
    return lineage(query, path_block(query, p, u, v))


def small_matrix_polynomials(query: Query, p: int = 1
                             ) -> dict[tuple[int, int], Polynomial]:
    """The polynomials y_ab = arithmetization of Y_ab, ab in {0,1}^2."""
    formula = link_lineage(query, p)
    r_u, r_v = r_tuple("u"), r_tuple("v")
    out: dict[tuple[int, int], Polynomial] = {}
    cache: dict[CNF, Polynomial] = {}
    for a in (0, 1):
        for b in (0, 1):
            conditioned = formula.condition(r_u, bool(a)).condition(
                r_v, bool(b))
            out[(a, b)] = arithmetize(conditioned, _variable_name, cache)
    return out


def small_matrix_determinant(query: Query, p: int = 1) -> Polynomial:
    """f_A = y00*y11 - y01*y10 (Eq. 28), a per-variable degree-<=2
    polynomial in the internal tuple probabilities."""
    y = small_matrix_polynomials(query, p)
    return y[(0, 0)] * y[(1, 1)] - y[(0, 1)] * y[(1, 0)]


def lemma12_check(query: Query, p: int = 1) -> tuple[bool, bool]:
    """Return (determinant_is_zero, lineage_disconnects_endpoints).

    Lemma 1.2 asserts these two Booleans always agree.
    """
    det = small_matrix_determinant(query, p)
    formula = link_lineage(query, p)
    disconnected = disconnects(formula, {r_tuple("u")}, {r_tuple("v")})
    return det.is_zero(), disconnected


def determinant_constant(query: Query, p: int = 1) -> Fraction:
    """The constant c of Corollary 3.18: f_A = c * prod u_i(1 - u_i).

    Raises ``ValueError`` when f_A does not have that shape (i.e. the
    query is not a final Type-I query).
    """
    det = small_matrix_determinant(query, p)
    if det.is_zero():
        return Fraction(0)
    variables = sorted(det.variables())
    shape = Polynomial.one()
    for var in variables:
        x = Polynomial.variable(var)
        shape = shape * x * (Polynomial.one() - x)
    # c = det / shape must be constant: compare leading behaviour by
    # evaluating both at a generic interior point and checking equality
    # of the full polynomials.
    point = {var: Fraction(1, 2) for var in variables}
    denom = shape.evaluate(point)
    c = det.evaluate(point) / denom
    if det != shape * Polynomial.constant(c):
        raise ValueError("determinant is not of the form c * prod u(1-u)")
    return c
