"""The Type-I block databases B_p(u, v) (Section 3.3).

``path_block`` builds the zig-zag path TID of Example 3.13:

    u = r_0 - t_1 - r_1 - t_2 - ... - r_{p-1} - t_p - r_p = v

Every constant on the left side carries R with probability 1/2, every
right constant carries T with probability 1/2, binary tuples on path
edges have probability 1/2, and everything else is certain (probability
1) — hence the block is a legal FOMC instance (probabilities in
{1/2, 1}).

``parallel_block`` composes two such paths between the same endpoints
(Figure 1): since the internal tuples are disjoint, the conditioned
lineages multiply, giving y_ab(p1, p2) = y_ab(p1) * y_ab(p2) (Eq. 25).

``reduction_tid`` assembles the disjoint-block database associated with
the graph of a P2CNF instance (Section 3.1): one parallel block per
edge, with the 2CNF variables as shared endpoints.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.core.queries import Query
from repro.tid.database import TID, r_tuple, s_tuple, t_tuple

HALF = Fraction(1, 2)


def path_block(query: Query, p: int, u: str = "u", v: str = "v",
               tag: str = "") -> TID:
    """The block B_p(u, v) for the binary vocabulary of ``query``.

    ``tag`` namespaces the internal constants so multiple blocks can be
    unioned disjointly; the endpoints u, v are shared verbatim.
    """
    if p < 1:
        raise ValueError("block parameter p must be >= 1")
    symbols = sorted(query.binary_symbols)
    internal_left = [f"r{k}{tag}" for k in range(1, p)]
    right = [f"t{k}{tag}" for k in range(1, p + 1)]
    left = [u, v] + internal_left

    probs: dict[tuple, Fraction] = {}
    for w in left:
        probs[r_tuple(w)] = HALF
    for t in right:
        probs[t_tuple(t)] = HALF

    # Path edges: r_{k-1} - t_k and r_k - t_k with r_0 = u, r_p = v.
    def left_constant(k: int) -> str:
        if k == 0:
            return u
        if k == p:
            return v
        return f"r{k}{tag}"

    edges = []
    for k in range(1, p + 1):
        edges.append((left_constant(k - 1), f"t{k}{tag}"))
        edges.append((left_constant(k), f"t{k}{tag}"))
    for a, b in edges:
        for symbol in symbols:
            probs[s_tuple(symbol, a, b)] = HALF
    return TID(left, right, probs, default=Fraction(1))


def parallel_block(query: Query, params: Sequence[int], u: str = "u",
                   v: str = "v", tag: str = "") -> TID:
    """B^{p}(u, v): the disjoint parallel composition of path blocks
    B_{p_1}, ..., B_{p_h} sharing only the endpoints (Figure 1)."""
    result: TID | None = None
    for index, p in enumerate(params):
        block = path_block(query, p, u, v, tag=f"{tag}_par{index}")
        result = block if result is None else result.union(block)
    if result is None:
        raise ValueError("need at least one parameter")
    return result


def reduction_tid(query: Query, nodes: Iterable[str],
                  edges: Iterable[tuple[str, str]],
                  params: Sequence[int]) -> TID:
    """The disjoint-block TID associated with a graph (Section 3.1).

    Nodes become shared left constants with Pr(R) = 1/2; every edge
    (a, b) carries a parallel block B^{params}(a, b); non-edges are
    trivial (probability-1) blocks, i.e. simply absent.
    """
    nodes = list(nodes)
    result = TID(nodes, [], {r_tuple(a): HALF for a in nodes},
                 default=Fraction(1))
    for a, b in edges:
        block = parallel_block(query, params, a, b, tag=f"_{a}_{b}")
        result = result.union(block)
    return result
