"""The Type-II zig-zag block B^(p)(u, v) (Definition C.21, Figure 3).

The block is a union of *elementary blocks* B(a, b) — one tuple S(a, b)
per binary symbol, probability 1/2 unless overridden:

* a prefix of ``r`` parallel branches  B(u, tpref_i) u B(r0, tpref_i);
* the zig-zag chain B(r0, t0), B(r1, t0), B(r1, t1), ..., B(rp, tp);
* a suffix of ``r`` parallel branches  B(rsuff_i, tp) u B(rsuff_i, v);
* m - 2 dead-end branches B(r_i, e^(j)_i) at every left constant and
  B(f^(j)_i, t_i) at every right constant, where m is the largest
  subclause count of any Type-II clause (Example A.3 explains why the
  dead ends are necessary to keep clauses non-redundant).

The paper tunes the probabilities of prefix/suffix tuples (the
assignments theta, theta' of Sections C.7-C.10) to meet conditions
(68)-(70); ``assignment`` lets callers install any such choice, and
``consistent_assignment_candidates`` enumerates the {0, 1/2, 1} values
that Lemma 1.1 searches over.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from repro.core.queries import Query
from repro.tid.database import TID, s_tuple

HALF = Fraction(1, 2)


def dead_end_count(query: Query) -> int:
    """m - 2, with m the largest subclause count of any Type-II clause."""
    widest = max((len(c.subclauses) for c in query.clauses
                  if c.is_type2), default=2)
    return max(widest - 2, 0)


def elementary_block_tuples(query: Query, a, b) -> list[tuple]:
    """The tuples of the elementary block B(a, b)."""
    return [s_tuple(symbol, a, b) for symbol in sorted(query.binary_symbols)]


def type2_block(query: Query, p: int, u: str = "u", v: str = "v",
                tag: str = "", branches: int = 1,
                assignment: Mapping[tuple, Fraction] | None = None) -> TID:
    """B^(p)(u, v): the zig-zag block of Definition C.21.

    ``branches`` is the number r of parallel prefix/suffix branches;
    ``assignment`` overrides probabilities of specific tuples (the
    theta assignments); everything else defaults to 1/2 on elementary
    blocks and 1 elsewhere.
    """
    if p < 0:
        raise ValueError("p must be >= 0")
    deads = dead_end_count(query)

    lefts: list[str] = [u]
    rights: list[str] = []
    pairs: list[tuple[str, str]] = []

    r_const = [f"r{i}{tag}" for i in range(p + 1)]
    t_const = [f"t{i}{tag}" for i in range(p + 1)]
    lefts += r_const
    rights += t_const

    # Prefix branches: B(u, tpref_i) u B(r0, tpref_i).
    for i in range(branches):
        tpref = f"tpref{i}{tag}"
        rights.append(tpref)
        pairs.append((u, tpref))
        pairs.append((r_const[0], tpref))

    # Zig-zag chain: B(r0, t0), then B(r_i, t_{i-1}) u B(r_i, t_i).
    pairs.append((r_const[0], t_const[0]))
    for i in range(1, p + 1):
        pairs.append((r_const[i], t_const[i - 1]))
        pairs.append((r_const[i], t_const[i]))

    # Suffix branches: B(rsuff_i, tp) u B(rsuff_i, v).
    rights.append(v)
    for i in range(branches):
        rsuff = f"rsuff{i}{tag}"
        lefts.append(rsuff)
        pairs.append((rsuff, t_const[p]))
        pairs.append((rsuff, v))

    # Dead ends: m-2 at every r_i (right constants e) and t_i (left f).
    for i in range(p + 1):
        for j in range(deads):
            e = f"e{i}_{j}{tag}"
            rights.append(e)
            pairs.append((r_const[i], e))
            f = f"f{i}_{j}{tag}"
            lefts.append(f)
            pairs.append((f, t_const[i]))

    probs: dict[tuple, Fraction] = {}
    for a, b in pairs:
        for token in elementary_block_tuples(query, a, b):
            probs[token] = HALF
    if assignment:
        for token, value in assignment.items():
            if token not in probs:
                raise ValueError(f"assignment to non-block tuple: {token}")
            probs[token] = Fraction(value)
    return TID(lefts, rights, probs, default=Fraction(1))


def block_pairs(query: Query, p: int, u: str = "u", v: str = "v",
                tag: str = "", branches: int = 1) -> list[tuple[str, str]]:
    """The elementary-block pairs of B^(p)(u, v) (for inspection and
    for enumerating assignment targets)."""
    tid = type2_block(query, p, u, v, tag, branches)
    pairs = set()
    for token in tid.probs:
        if len(token) == 3:
            pairs.add((token[1], token[2]))
    return sorted(pairs)
