"""``python -m repro.analysis`` — same surface as ``repro ctl
analyze``."""

import sys

from repro.analysis import main

if __name__ == "__main__":
    sys.exit(main())
