"""Numeric-boundary rule: exact kernels stay rational, float lanes
stay cheap.

The repo's exactness contract is that ``Fraction`` kernels never touch
binary floating point: a single ``0.5`` literal or ``math.log`` call
inside ``Circuit._forward`` would silently turn "exact WMC" into
"approximately exact WMC" with no test catching small inputs.  The
mirror-image bug is building ``Fraction`` objects inside the per-lane
loops of the float kernels, which erases the 10x+ speedup the tape
exists for.

Zones:

* **exact** — functions whose qualname contains ``exact``, plus the
  explicitly listed exact surfaces of ``booleans/circuit.py`` and
  ``booleans/tape.py`` (``Circuit.probability``/``_forward``/
  ``model_count``/``marginals``/``sample``/``top_k_worlds``, the
  ``_kbest_*`` helpers, ``_Compiler``, ``compile_cnf``,
  ``_Flattener``/``flatten_circuit``).  Flags float literals,
  ``float(...)``/``complex(...)`` casts, and any ``math.*`` use other
  than the exact-integer helpers (``isqrt``/``gcd``/``lcm``/``comb``/
  ``perm``/``factorial``).
* **float** — functions whose qualname contains ``float``, ``numpy``,
  or ``lanes``.  Flags ``Fraction(...)`` constructed inside a loop or
  comprehension (hoisting to before the loop is always possible and is
  the idiom ``_float_rows`` uses).

``Circuit.probability_batch`` is deliberately *not* a zone: it is the
documented mixed dispatcher between the two kernels.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import (
    Finding, Rule, SourceModule, iter_function_scopes, last_name,
    own_nodes, register,
)

_EXACT_NAME = re.compile(r"exact", re.IGNORECASE)
_FLOAT_NAME = re.compile(r"float|numpy|lanes", re.IGNORECASE)

#: Explicit exact surfaces, keyed by module rel-path suffix.  An entry
#: covers the scope itself and everything nested inside it.
_EXACT_ZONES = {
    "booleans/circuit.py": (
        "Circuit.probability", "Circuit._forward", "Circuit.model_count",
        "Circuit.marginals", "Circuit.sample", "Circuit.top_k_worlds",
        "_kbest_top", "_kbest_scale", "_kbest_product", "_kbest_smooth",
        "_Compiler", "compile_cnf",
    ),
    "booleans/tape.py": ("_Flattener", "flatten_circuit"),
}

#: ``math.*`` members that stay in exact integer arithmetic.
_EXACT_MATH = {"isqrt", "gcd", "lcm", "comb", "perm", "factorial"}

_LOOPS = (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
          ast.DictComp, ast.GeneratorExp)
_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _explicit_exact(rel: str, qualname: str) -> bool:
    for suffix, entries in _EXACT_ZONES.items():
        if rel.endswith(suffix):
            return any(qualname == e or qualname.startswith(e + ".")
                       for e in entries)
    return False


class NumericBoundaryRule(Rule):
    id = "numeric-boundary"
    summary = ("float contamination in exact kernels / Fraction "
               "construction in per-lane float loops")

    def check_module(self, module: SourceModule):
        for qualname, func in iter_function_scopes(module.tree):
            exact = (_explicit_exact(module.rel, qualname)
                     or bool(_EXACT_NAME.search(qualname)))
            if exact:
                yield from self._check_exact(module, qualname, func)
            elif _FLOAT_NAME.search(qualname):
                yield from self._check_float(module, qualname, func)

    # ------------------------------------------------------------------
    def _check_exact(self, module: SourceModule, qualname: str,
                     func: ast.AST):
        for node in own_nodes(func):
            if isinstance(node, ast.Constant) and \
                    isinstance(node.value, float):
                yield Finding(
                    rule=self.id, path=module.rel, line=node.lineno,
                    context=qualname,
                    message=(f"float literal {node.value!r} in exact "
                             f"kernel; use Fraction"))
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ("float", "complex"):
                yield Finding(
                    rule=self.id, path=module.rel, line=node.lineno,
                    context=qualname,
                    message=(f"{node.func.id}(...) cast in exact "
                             f"kernel; stay in Fraction"))
            elif isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id == "math" and \
                    node.attr not in _EXACT_MATH:
                yield Finding(
                    rule=self.id, path=module.rel, line=node.lineno,
                    context=qualname,
                    message=(f"math.{node.attr} in exact kernel "
                             f"returns binary floats"))

    # ------------------------------------------------------------------
    def _check_float(self, module: SourceModule, qualname: str,
                     func: ast.AST):
        def visit(node: ast.AST, in_loop: bool):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _SCOPES):
                    continue  # nested scopes are their own zones
                if (in_loop and isinstance(child, ast.Call)
                        and last_name(child.func) == "Fraction"):
                    yield Finding(
                        rule=self.id, path=module.rel,
                        line=child.lineno, context=qualname,
                        message=("Fraction(...) constructed inside a "
                                 "per-lane loop of a float kernel; "
                                 "hoist it out of the loop"))
                yield from visit(child,
                                 in_loop or isinstance(child, _LOOPS))
        yield from visit(func, False)


register(NumericBoundaryRule())
