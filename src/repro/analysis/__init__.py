"""Repo-invariant static analyzer (``repro ctl analyze``).

Four rule packs over the live source tree:

* ``determinism`` — no unordered set/dict iteration feeding
  serialization, fingerprinting, or compile ordering;
* ``lock-discipline`` — module/instance mutable state only under its
  ``with <lock>:`` region;
* ``numeric-boundary`` — exact Fraction kernels free of float
  contamination, float lanes free of per-lane Fraction construction;
* ``protocol-drift`` — service ops/params in sync across
  ``protocol.OPS``, the server dispatch table, the client methods,
  and the README op table.

See ``engine`` for suppressions (``# repro: allow[rule-id] reason``)
and the committed ``ANALYSIS_BASELINE.json``.
"""

from repro.analysis import (  # noqa: F401  (rule packs self-register)
    determinism, drift, locks, numeric,
)
from repro.analysis.engine import (
    BASELINE_NAME, Finding, Project, Report, Rule, SourceModule,
    all_rules, analyze, main, register, run,
)

__all__ = [
    "BASELINE_NAME", "Finding", "Project", "Report", "Rule",
    "SourceModule", "all_rules", "analyze", "main", "register", "run",
]
