"""AST-based repo-invariant analyzer: engine.

The correctness story of this reproduction rests on invariants no
off-the-shelf linter understands: bit-identical serialization across
``PYTHONHASHSEED`` values, exact ``Fraction`` kernels never contaminated
by floats, module state touched only under ``_LOCK``, and a service
protocol whose server ops, client methods, validators, and README docs
stay in sync.  This package checks those invariants *statically* so a
violation fails CI at lint time instead of probabilistically in a
two-hashseed subprocess probe.

This module is the rule-agnostic machinery:

* a file walker rooted at the repository (``collect_files``);
* a rule registry (``register`` / ``all_rules``) — rule packs live in
  sibling modules and self-register on import;
* suppression comments — ``# repro: allow[rule-id] reason`` on the
  finding line or the line above silences that rule there; the reason
  is mandatory (a reasonless allow is itself reported);
* a committed baseline (``ANALYSIS_BASELINE.json``) keyed by
  line-number-independent finding keys, so pre-existing, justified
  findings don't block CI but *new* ones do;
* human-readable and ``--json`` reporters and the shared CLI entry
  used by both ``python -m repro.analysis`` and ``repro ctl analyze``.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Name of the committed baseline file at the repository root.
BASELINE_NAME = "ANALYSIS_BASELINE.json"
BASELINE_VERSION = 1

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_*,\- ]+)\]"
    r"[ \t]*(?P<reason>.*)$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site.

    ``key`` deliberately omits the line number: baselines must survive
    unrelated edits that shift code up or down, so identity is
    (path, rule, enclosing scope, message) and the line is display-only.
    """

    rule: str
    path: str      # repository-relative posix path
    line: int
    context: str   # enclosing qualname, or "module"
    message: str

    @property
    def key(self) -> str:
        return f"{self.path}::{self.rule}::{self.context}::{self.message}"

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] "
                f"{self.context}: {self.message}")

    def to_json(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "context": self.context, "message": self.message,
                "key": self.key}


class SourceModule:
    """A parsed Python file plus its suppression-comment table."""

    def __init__(self, path: Path, rel: str, source: str):
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        #: line -> (rule-id set, reason)
        self.suppressions: dict[int, tuple[frozenset, str]] = {}
        for lineno, text in enumerate(self.lines, 1):
            m = _SUPPRESS_RE.search(text)
            if m is not None:
                rules = frozenset(
                    r.strip() for r in m.group("rules").split(",")
                    if r.strip())
                self.suppressions[lineno] = (rules,
                                             m.group("reason").strip())

    def suppression_for(self, finding: Finding) -> str | None:
        """The justification silencing ``finding``, or ``None``.

        A suppression applies on the finding's own line or the line
        above, must name the rule (or ``*``), and must carry a
        non-empty reason.
        """
        for lineno in (finding.line, finding.line - 1):
            entry = self.suppressions.get(lineno)
            if entry is None:
                continue
            rules, reason = entry
            if reason and ("*" in rules or finding.rule in rules):
                return reason
        return None

    def reasonless_suppressions(self) -> Iterator[Finding]:
        for lineno, (rules, reason) in sorted(self.suppressions.items()):
            if not reason:
                yield Finding(
                    rule="suppression", path=self.rel, line=lineno,
                    context="module",
                    message=("suppression comment for "
                             f"[{', '.join(sorted(rules))}] has no "
                             "reason — `# repro: allow[rule] why`"))


class Project:
    """The set of modules under analysis plus the repository root."""

    def __init__(self, root: Path, modules: list[SourceModule]):
        self.root = root
        self.modules = modules
        self._by_rel = {m.rel: m for m in modules}

    def module(self, rel_suffix: str) -> SourceModule | None:
        """Exact rel-path match, else unique ``/``-suffix match."""
        hit = self._by_rel.get(rel_suffix)
        if hit is not None:
            return hit
        for m in self.modules:
            if m.rel.endswith("/" + rel_suffix):
                return m
        return None

    def text(self, rel: str) -> str | None:
        path = self.root / rel
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return None


class Rule:
    """Base class for rule packs.  Subclasses set ``id``/``summary``
    and override ``check_module`` (per file) and/or ``check_repo``
    (once, cross-file)."""

    id: str = ""
    summary: str = ""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def check_repo(self, project: Project) -> Iterable[Finding]:
        return ()


_RULES: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if not rule.id:
        raise ValueError("rule must define a non-empty id")
    _RULES[rule.id] = rule
    return rule


def all_rules() -> list[Rule]:
    return [_RULES[name] for name in sorted(_RULES)]


# ----------------------------------------------------------------------
# Shared AST helpers for the rule packs
# ----------------------------------------------------------------------
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def iter_scopes(tree: ast.Module) -> Iterator[tuple[str, ast.AST]]:
    """Yield ``(dotted qualname, node)`` for every function and class,
    depth-first, outermost first."""
    def walk(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                yield qual, child
                yield from walk(child, qual)
    yield from walk(tree, "")


def iter_function_scopes(
        tree: ast.Module) -> Iterator[tuple[str, ast.AST]]:
    for qual, node in iter_scopes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield qual, node


def own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a function/class body without descending into nested
    function or class scopes (those are visited as their own scopes)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def last_name(func: ast.AST) -> str | None:
    """The trailing identifier of a call target: ``OrderedDict`` for
    both ``OrderedDict(...)`` and ``collections.OrderedDict(...)``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def load_baseline(path: Path) -> dict[str, str]:
    """``finding key -> justification`` from the committed baseline."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError:
        return {}
    except json.JSONDecodeError as e:
        raise SystemExit(
            f"repro: ctl analyze: corrupt baseline {path}: {e}") from None
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise SystemExit(
            f"repro: ctl analyze: unsupported baseline format in {path}")
    out: dict[str, str] = {}
    for entry in raw.get("findings", ()):
        if isinstance(entry, dict) and isinstance(entry.get("key"), str):
            out[entry["key"]] = str(entry.get("reason", ""))
    return out


def write_baseline(path: Path, findings: Sequence[Finding],
                   reasons: dict[str, str]) -> None:
    """Rewrite the baseline to exactly the current finding set,
    carrying forward justifications for keys that persist."""
    entries = []
    seen = set()
    for f in findings:
        if f.key in seen:
            continue
        seen.add(f.key)
        entries.append({
            "key": f.key,
            "reason": reasons.get(
                f.key, "TODO: justify or fix (added by --baseline)"),
        })
    entries.sort(key=lambda e: e["key"])
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


# ----------------------------------------------------------------------
# File collection
# ----------------------------------------------------------------------
def _fail(message: str) -> None:
    raise SystemExit(f"repro: ctl analyze: {message}")


def _walk_py(base: Path) -> Iterator[Path]:
    for path in sorted(base.rglob("*.py")):
        parts = path.relative_to(base).parts
        if any(p == "__pycache__" or p.startswith(".") for p in parts):
            continue
        yield path


def discover_root(start: Path | None = None) -> Path:
    """The repository root: nearest ancestor of the working directory
    holding the baseline file or ``.git``; else the checkout containing
    this package (``src/repro`` layout)."""
    here = (start or Path.cwd()).resolve()
    for cand in (here, *here.parents):
        if (cand / BASELINE_NAME).is_file() or (cand / ".git").exists():
            return cand
    return Path(__file__).resolve().parents[3]


def collect_files(root: Path, paths: Sequence[str] | None) -> list[Path]:
    """Resolve analysis targets to a sorted, de-duplicated ``.py`` list.

    With no explicit paths the whole ``src/`` tree (or the root, when
    there is no ``src/``) is analyzed.  Explicit paths must exist, live
    inside ``root``, and be Python files or directories — anything else
    is a friendly ``SystemExit`` (satellite: no tracebacks for bad
    operands).
    """
    root = root.resolve()
    if not paths:
        base = root / "src"
        targets: list[Path] = [base if base.is_dir() else root]
    else:
        targets = []
        for raw in paths:
            p = Path(raw).expanduser()
            p = (p if p.is_absolute() else Path.cwd() / p).resolve()
            if not p.exists():
                _fail(f"path does not exist: {raw}")
            try:
                p.relative_to(root)
            except ValueError:
                _fail(f"{raw} is outside the analyzed repository "
                      f"root ({root})")
            if p.is_file() and p.suffix != ".py":
                _fail(f"not a Python source file: {raw}")
            targets.append(p)
    files: dict[Path, None] = {}
    for target in targets:
        if target.is_file():
            files.setdefault(target)
        else:
            for path in _walk_py(target):
                files.setdefault(path)
    return sorted(files)


def load_project(root: Path,
                 files: Sequence[Path]) -> tuple[Project, list[Finding]]:
    modules: list[SourceModule] = []
    findings: list[Finding] = []
    for path in files:
        rel = path.relative_to(root).as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as e:
            findings.append(Finding(
                rule="parse-error", path=rel, line=1, context="module",
                message=f"cannot read source: {e}"))
            continue
        try:
            modules.append(SourceModule(path, rel, source))
        except SyntaxError as e:
            findings.append(Finding(
                rule="parse-error", path=rel, line=e.lineno or 1,
                context="module", message=f"cannot parse: {e.msg}"))
    return Project(root, modules), findings


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclass
class Report:
    root: Path
    files: int
    findings: list[Finding]             # active: fail the run
    baselined: list[tuple[Finding, str]]
    suppressed: list[tuple[Finding, str]]
    stale_baseline: list[str]           # baseline keys nothing matched

    def to_json(self) -> dict:
        return {
            "version": 1,
            "root": str(self.root),
            "files": self.files,
            "findings": [f.to_json() for f in self.findings],
            "baselined": [dict(f.to_json(), reason=r)
                          for f, r in self.baselined],
            "suppressed": [dict(f.to_json(), reason=r)
                           for f, r in self.suppressed],
            "stale_baseline": list(self.stale_baseline),
        }

    def render_text(self) -> str:
        out = [f.render() for f in self.findings]
        for key in self.stale_baseline:
            out.append(f"warning: stale baseline entry (nothing "
                       f"matches): {key}")
        out.append(
            f"repro.analysis: {len(self.findings)} finding(s) "
            f"({len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed) "
            f"across {self.files} file(s)")
        return "\n".join(out)


def analyze(root: Path, paths: Sequence[str] | None = None,
            rules: Sequence[Rule] | None = None,
            baseline: dict[str, str] | None = None) -> Report:
    files = collect_files(root, paths)
    project, raw = load_project(root, files)
    for module in project.modules:
        raw.extend(module.reasonless_suppressions())
    for rule in (rules if rules is not None else all_rules()):
        for module in project.modules:
            raw.extend(rule.check_module(module))
        raw.extend(rule.check_repo(project))
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    by_rel = {m.rel: m for m in project.modules}
    baseline = dict(baseline or {})
    active: list[Finding] = []
    baselined: list[tuple[Finding, str]] = []
    suppressed: list[tuple[Finding, str]] = []
    matched_keys: set[str] = set()
    for f in raw:
        module = by_rel.get(f.path)
        reason = (module.suppression_for(f)
                  if module is not None else None)
        if reason is not None:
            suppressed.append((f, reason))
        elif f.key in baseline:
            matched_keys.add(f.key)
            baselined.append((f, baseline[f.key]))
        else:
            active.append(f)
    # Stale-entry detection is only meaningful when the whole tree was
    # scanned; a subset run would flag every out-of-scope entry.
    stale = (sorted(set(baseline) - matched_keys) if not paths else [])
    return Report(root=root, files=len(files), findings=active,
                  baselined=baselined, suppressed=suppressed,
                  stale_baseline=stale)


def run(paths: Sequence[str] | None = None, *,
        root: str | Path | None = None,
        json_output: bool = False,
        update_baseline: bool = False,
        baseline_file: str | Path | None = None,
        stream=None) -> int:
    """Shared entry for ``repro ctl analyze`` and
    ``python -m repro.analysis``.  Returns the process exit status:
    0 when clean (modulo baseline + suppressions), 1 otherwise."""
    out = stream if stream is not None else sys.stdout
    root_path = (Path(root).expanduser().resolve() if root is not None
                 else discover_root())
    if not root_path.is_dir():
        _fail(f"repository root is not a directory: {root_path}")
    bl_path = (Path(baseline_file).expanduser().resolve()
               if baseline_file is not None
               else root_path / BASELINE_NAME)
    baseline = load_baseline(bl_path)

    if update_baseline:
        report = analyze(root_path, paths, baseline={})
        write_baseline(bl_path, report.findings, baseline)
        print(f"repro.analysis: baseline rewritten with "
              f"{len(report.findings)} finding(s) -> {bl_path}",
              file=out)
        return 0

    report = analyze(root_path, paths, baseline=baseline)
    if json_output:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True),
              file=out)
    else:
        print(report.render_text(), file=out)
    return 1 if report.findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=("Repo-invariant static analyzer: determinism, "
                     "lock discipline, exact/float numeric boundary, "
                     "protocol drift."))
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze "
                             "(default: the src/ tree)")
    parser.add_argument("--json", action="store_true",
                        dest="json_output",
                        help="emit the machine-readable report")
    parser.add_argument("--baseline", action="store_true",
                        help="rewrite the baseline file to accept all "
                             "current findings")
    parser.add_argument("--baseline-file", default=None,
                        help=f"override the baseline path "
                             f"(default: <root>/{BASELINE_NAME})")
    parser.add_argument("--root", default=None,
                        help="repository root (default: auto-detected)")
    args = parser.parse_args(argv)
    return run(args.paths or None, root=args.root,
               json_output=args.json_output,
               update_baseline=args.baseline,
               baseline_file=args.baseline_file)
