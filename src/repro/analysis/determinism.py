"""Determinism rule: no unordered iteration in order-sensitive code.

The repository's serialization contract is byte-identical output across
``PYTHONHASHSEED`` values (``Circuit.to_bytes``, ``Tape.to_bytes``,
``cnf_fingerprint``, the compiler's component ordering).  Set and
frozenset iteration order follows the hash seed, so a ``for clause in
clauses:`` inside a fingerprint is exactly the class of bug PR 2 fixed
by hand in the Shannon engine and compiler.  Dict *views*
(``.keys()``/``.values()``/``.items()``) are flagged too: insertion
order is deterministic per process but not canonical, and canonical
output is the point of these scopes.

Scope: any function or method whose dotted qualname matches
``_ORDER_SENSITIVE`` (serialization, fingerprinting, encoding,
compilation, flattening, interning).  The class name counts —
``_Compiler.conjoin`` is in scope via ``_Compiler``.

Flagged sinks, when fed a syntactically unordered expression (set
literal / set comprehension / ``set()`` / ``frozenset()`` / a dict
view / a local name bound to one of those) that is not wrapped in
``sorted(...)``:

* ``for x in <unordered>:`` and comprehension generators;
* ``list(...)``, ``tuple(...)``, ``iter(...)``, ``enumerate(...)``,
  ``reversed(...)``, and ``<sep>.join(...)``.

Order-insensitive consumers (``sorted``, ``min``, ``max``, ``sum``,
``len``, ``any``, ``all``, ``set``, ``frozenset``) are exempt.
Attribute expressions (``formula.clauses``) are *not* inferred — the
rule only trusts syntax, keeping false positives near zero.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import (
    Finding, Rule, SourceModule, iter_function_scopes, last_name,
    own_nodes, register,
)

_ORDER_SENSITIVE = re.compile(
    r"to_bytes|from_bytes|fingerprint|serializ|canonical|encode|decode|"
    r"dump|compil|flatten|intern|stable_|cache_key", re.IGNORECASE)

#: Calls whose result ordering is hash-seed dependent when iterated.
_UNORDERED_CTORS = {"set", "frozenset"}
_DICT_VIEWS = {"keys", "values", "items"}

#: Consumers that do not observe iteration order.
_ORDER_FREE_CONSUMERS = {"sorted", "min", "max", "sum", "len", "any",
                         "all", "set", "frozenset"}

#: Order-observing call sinks.
_ORDERED_SINKS = {"list", "tuple", "iter", "enumerate", "reversed"}


def _unordered(node: ast.AST, locals_map: dict[str, str]) -> str | None:
    """A human description when ``node`` is syntactically unordered."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _UNORDERED_CTORS:
            return f"a {func.id}() value"
        if (isinstance(func, ast.Attribute)
                and func.attr in _DICT_VIEWS and not node.args
                and not node.keywords):
            return f"a .{func.attr}() dict view"
    if isinstance(node, ast.Name) and node.id in locals_map:
        return f"{locals_map[node.id]} (local {node.id!r})"
    return None


class DeterminismRule(Rule):
    id = "determinism"
    summary = ("unordered set/dict iteration feeding serialization, "
               "fingerprinting, or compile ordering")

    def check_module(self, module: SourceModule):
        for qualname, func in iter_function_scopes(module.tree):
            if _ORDER_SENSITIVE.search(qualname):
                yield from self._check_scope(module, qualname, func)

    # ------------------------------------------------------------------
    def _check_scope(self, module: SourceModule, qualname: str,
                     func: ast.AST):
        # Pass 1: local names bound (anywhere in this scope) to a
        # syntactically unordered value.  Last-write-wins inference is
        # deliberately naive; rebinding to an ordered value between
        # uses should simply rename the variable.
        locals_map: dict[str, str] = {}
        for node in own_nodes(func):
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if isinstance(target, ast.Name) and node.value is not None:
                desc = _unordered(node.value, {})
                if desc is not None:
                    locals_map[target.id] = desc

        blessed: set[int] = set()
        for node in own_nodes(func):
            if isinstance(node, ast.Call):
                name = last_name(node.func)
                if name in _ORDER_FREE_CONSUMERS:
                    for arg in node.args:
                        blessed.add(id(arg))
                        if isinstance(arg, ast.GeneratorExp):
                            for gen in arg.generators:
                                blessed.add(id(gen.iter))

        def flag(site: ast.AST, sink: str, desc: str):
            return Finding(
                rule=self.id, path=module.rel, line=site.lineno,
                context=qualname,
                message=(f"{sink} over {desc} in order-sensitive "
                         f"scope; wrap in sorted(...)"))

        for node in own_nodes(func):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if id(node.iter) not in blessed:
                    desc = _unordered(node.iter, locals_map)
                    if desc is not None:
                        yield flag(node.iter, "for-loop", desc)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if id(gen.iter) in blessed or id(node) in blessed:
                        continue
                    desc = _unordered(gen.iter, locals_map)
                    if desc is not None:
                        yield flag(gen.iter, "comprehension", desc)
            elif isinstance(node, ast.Call):
                name = last_name(node.func)
                sink = None
                if (isinstance(node.func, ast.Name)
                        and name in _ORDERED_SINKS):
                    sink = f"{name}(...)"
                elif (isinstance(node.func, ast.Attribute)
                        and name == "join"):
                    sink = "str.join(...)"
                if sink is None or not node.args:
                    continue
                arg = node.args[0]
                if id(arg) in blessed:
                    continue
                desc = _unordered(arg, locals_map)
                if desc is not None:
                    yield flag(node, sink, desc)


register(DeterminismRule())
