"""Lock-discipline rule: shared mutable state only under its lock.

The GIL does not make read-modify-write sequences atomic, and ROADMAP
item 1 (multi-process workers) will widen every window.  This rule is a
static race detector for the two locking idioms the repo actually uses:

**Module level** (``tid/wmc.py``, ``booleans/tape.py``): a module that
binds ``threading.Lock()``/``RLock()`` to a top-level name declares a
lock.  Guarded state is every top-level name bound to a mutable
container (dict/list/set display or ``dict``/``OrderedDict``/... call)
plus every name a function rebinds via ``global``.  Any read or write
of a guarded name inside a function body must sit inside ``with
<lock>:``.  Functions whose docstring says the caller holds the lock
(the existing ``"Caller holds ``_LOCK``."`` idiom) are exempt.

**Instance level** (``service/server.py``, ``service/scheduler.py``,
``service/client.py``): a class whose ``__init__`` binds
``threading.Lock()``/``RLock()`` to ``self.<name>`` declares instance
locks.  Guarded attributes are those ``__init__`` binds to mutable
containers plus any ``self.<attr>`` that is ever the target of an
augmented assignment (counters).  Methods other than ``__init__`` must
touch guarded attributes inside ``with self.<lock>:`` for *some*
declared lock — mapping attributes to a specific lock is left to code
review; the checker enforces "never bare".

Module top-level statements (import-time init) are exempt: nothing
else runs concurrently during first import of a module.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    Finding, Rule, SourceModule, last_name, register,
)

_LOCK_CTORS = {"Lock", "RLock"}
_MUTABLE_CTORS = {"dict", "list", "set", "OrderedDict", "defaultdict",
                  "deque", "Counter"}
_MUTABLE_DISPLAYS = (ast.Dict, ast.List, ast.Set, ast.DictComp,
                     ast.ListComp, ast.SetComp)
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_lock_ctor(value: ast.AST) -> bool:
    return (isinstance(value, ast.Call)
            and last_name(value.func) in _LOCK_CTORS)


def _is_mutable_container(value: ast.AST) -> bool:
    if isinstance(value, _MUTABLE_DISPLAYS):
        return True
    return (isinstance(value, ast.Call)
            and last_name(value.func) in _MUTABLE_CTORS)


def _holds_lock_docstring(func: ast.AST, lock_names) -> bool:
    doc = ast.get_docstring(func) or ""
    return "holds" in doc and any(name in doc for name in lock_names)


def _with_lock_names(node: ast.With | ast.AsyncWith,
                     module_locks, self_locks) -> bool:
    """Whether any with-item acquires a recognized lock (``with _LOCK:``
    or ``with self._lock:``)."""
    for item in node.items:
        ctx = item.context_expr
        if isinstance(ctx, ast.Name) and ctx.id in module_locks:
            return True
        if (isinstance(ctx, ast.Attribute)
                and isinstance(ctx.value, ast.Name)
                and ctx.value.id == "self"
                and ctx.attr in self_locks):
            return True
    return False


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    summary = ("module/instance mutable state accessed outside its "
               "`with <lock>:` region")

    def check_module(self, module: SourceModule):
        yield from self._check_module_level(module)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    # ------------------------------------------------------------------
    # Module-level lock + globals
    # ------------------------------------------------------------------
    def _check_module_level(self, module: SourceModule):
        locks: set[str] = set()
        guarded: set[str] = set()
        for node in module.tree.body:
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if not isinstance(target, ast.Name) or \
                    getattr(node, "value", None) is None:
                continue
            if _is_lock_ctor(node.value):
                locks.add(target.id)
            elif _is_mutable_container(node.value):
                guarded.add(target.id)
        for sub in ast.walk(module.tree):
            if isinstance(sub, ast.Global):
                guarded.update(sub.names)
        guarded -= locks
        if not locks or not guarded:
            return

        for qualname, func in _named_functions(module.tree):
            if _holds_lock_docstring(func, locks):
                continue
            yield from self._scan_body(
                module, qualname, func, locks, set(),
                is_guarded=lambda n: (isinstance(n, ast.Name)
                                      and n.id in guarded),
                describe=lambda n: f"module global {n.id!r}",
                lock_hint="/".join(sorted(locks)))

    # ------------------------------------------------------------------
    # Instance-level locks + attributes
    # ------------------------------------------------------------------
    def _check_class(self, module: SourceModule, cls: ast.ClassDef):
        init = next((n for n in cls.body
                     if isinstance(n, _FUNC_NODES)
                     and n.name == "__init__"), None)
        if init is None:
            return
        locks: set[str] = set()
        guarded: set[str] = set()
        for node in ast.walk(init):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                value = node.value
                if value is None:
                    continue
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        if _is_lock_ctor(value):
                            locks.add(target.attr)
                        elif _is_mutable_container(value):
                            guarded.add(target.attr)
        if not locks:
            return
        for node in ast.walk(cls):
            if (isinstance(node, ast.AugAssign)
                    and isinstance(node.target, ast.Attribute)
                    and isinstance(node.target.value, ast.Name)
                    and node.target.value.id == "self"):
                guarded.add(node.target.attr)
        guarded -= locks
        if not guarded:
            return

        for method in cls.body:
            if not isinstance(method, _FUNC_NODES) or \
                    method.name == "__init__":
                continue
            if _holds_lock_docstring(method, locks):
                continue
            qualname = f"{cls.name}.{method.name}"

            def is_guarded(n, attrs=frozenset(guarded)):
                return (isinstance(n, ast.Attribute)
                        and isinstance(n.value, ast.Name)
                        and n.value.id == "self"
                        and n.attr in attrs)

            yield from self._scan_body(
                module, qualname, method, set(), locks,
                is_guarded=is_guarded,
                describe=lambda n: f"self.{n.attr}",
                lock_hint="self." + "/self.".join(sorted(locks)))

    # ------------------------------------------------------------------
    def _scan_body(self, module: SourceModule, qualname: str,
                   func: ast.AST, module_locks: set, self_locks: set,
                   *, is_guarded, describe, lock_hint: str):
        def visit(node: ast.AST, locked: bool):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.With, ast.AsyncWith)):
                    inner = locked or _with_lock_names(
                        child, module_locks, self_locks)
                    yield from visit(child, inner)
                elif isinstance(child, _FUNC_NODES + (ast.ClassDef,)):
                    # A nested def runs later, when the lock may no
                    # longer be held: treat its body as unlocked.
                    yield from visit(child, False)
                else:
                    if not locked and is_guarded(child):
                        kind = ("write"
                                if isinstance(getattr(child, "ctx",
                                                      None),
                                              (ast.Store, ast.Del))
                                else "read")
                        yield Finding(
                            rule=self.id, path=module.rel,
                            line=child.lineno, context=qualname,
                            message=(f"{kind} of {describe(child)} "
                                     f"outside `with {lock_hint}:`"))
                    yield from visit(child, locked)
        yield from visit(func, False)


def _named_functions(tree: ast.Module):
    """Top-level and class-nested functions with dotted qualnames
    (module-level globals may be touched from methods too)."""
    def walk(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNC_NODES):
                qual = f"{prefix}.{child.name}" if prefix \
                    else child.name
                yield qual, child
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}.{child.name}" if prefix \
                    else child.name
                yield from walk(child, qual)
    yield from walk(tree, "")


register(LockDisciplineRule())
