"""Protocol-drift rule: one op surface, four projections, zero skew.

The service protocol lives in four places that only convention keeps
aligned: ``protocol.OPS`` (the wire-validated op vocabulary),
``server.py``'s ``self._dispatch`` table and ``_op_*`` handlers (with
their ``check_fields`` allow-lists), ``client.py``'s convenience
methods (one ``self.call("<op>", ...)`` each), and the README op
table.  Adding an op to three of the four is exactly the drift this
rule exists to catch before a release does.

Cross-checks (all repo-level, reported once per skew):

* every op in ``OPS`` has a dispatch entry, a client ``self.call``
  site, and a README table row — and vice versa;
* every ``_op_*`` handler is reachable from the dispatch table;
* per op, the README's documented params equal the server's
  ``check_fields`` allow-list (module-level tuple constants such as
  ``_ESTIMATOR_FIELDS`` are resolved through ``+`` concatenation);
* per op, every keyword the client method sends is accepted by the
  server's allow-list.

The README table is any markdown table whose header row contains
``op`` and ``params`` columns; params are the backticked names in the
cell (``—`` or empty means "none").
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import (
    Finding, Project, Rule, register,
)

_PARAM_RE = re.compile(r"`([A-Za-z_][A-Za-z0-9_]*)`")


def _tuple_value(node: ast.AST, consts: dict) -> tuple | None:
    """Evaluate a tuple expression made of string-constant tuples,
    module-level tuple names, and ``+`` concatenation."""
    if isinstance(node, ast.Tuple):
        out = []
        for elt in node.elts:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                return None
            out.append(elt.value)
        return tuple(out)
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _tuple_value(node.left, consts)
        right = _tuple_value(node.right, consts)
        if left is not None and right is not None:
            return left + right
    return None


def _module_tuple_consts(tree: ast.Module) -> dict:
    consts: dict = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            value = _tuple_value(node.value, consts)
            if value is not None:
                consts[node.targets[0].id] = value
    return consts


def _parse_readme_table(text: str) -> dict[str, set] | None:
    """``op -> set(params)`` from the first markdown table whose
    header has ``op`` and ``params`` columns, else ``None``."""
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if not line.lstrip().startswith("|"):
            continue
        cells = [c.strip().strip("`*").strip().lower()
                 for c in line.strip().strip("|").split("|")]
        if "op" not in cells or "params" not in cells:
            continue
        op_col = cells.index("op")
        params_col = cells.index("params")
        table: dict[str, set] = {}
        for row in lines[i + 2:]:
            if not row.lstrip().startswith("|"):
                break
            raw = [c.strip() for c in row.strip().strip("|").split("|")]
            if len(raw) <= max(op_col, params_col):
                continue
            op = raw[op_col].strip("`").strip()
            if not op or set(op) <= {"-", ":", " "}:
                continue
            table[op] = set(_PARAM_RE.findall(raw[params_col]))
        return table
    return None


class ProtocolDriftRule(Rule):
    id = "protocol-drift"
    summary = ("service op surface out of sync across protocol.OPS, "
               "server dispatch, client methods, and the README table")

    def check_repo(self, project: Project):
        proto = project.module("service/protocol.py")
        server = project.module("service/server.py")
        client = project.module("service/client.py")
        if proto is None or server is None or client is None:
            return  # subset run or unrelated tree: nothing to check

        ops = self._protocol_ops(proto.tree)
        if ops is None:
            yield Finding(
                rule=self.id, path=proto.rel, line=1, context="module",
                message="no literal OPS tuple found in protocol module")
            return
        dispatch, handlers, params = self._server_surface(server.tree)
        client_ops = self._client_surface(client.tree)

        def at(module, message, line=1, context="service"):
            return Finding(rule=self.id, path=module.rel, line=line,
                           context=context, message=message)

        for op in ops:
            if op not in dispatch:
                yield at(server, f"op {op!r} in protocol.OPS has no "
                                 f"server dispatch entry")
            if op not in client_ops:
                yield at(client, f"ServiceClient has no method issuing "
                                 f"op {op!r}")
        for op in sorted(set(dispatch) - set(ops)):
            yield at(server, f"server dispatches op {op!r} missing "
                             f"from protocol.OPS",
                     line=dispatch[op][1])
        for op in sorted(set(client_ops) - set(ops)):
            yield at(client, f"client issues op {op!r} missing from "
                             f"protocol.OPS", line=client_ops[op][1])
        for name, line in sorted(handlers.items()):
            if name not in {m for m, _ in dispatch.values()}:
                yield at(server, f"handler {name} is not reachable "
                                 f"from the dispatch table", line=line)

        # Client keywords must be accepted by the server allow-list.
        for op, (kwargs, line) in sorted(client_ops.items()):
            allowed = params.get(op)
            if allowed is None:
                continue
            for kw in sorted(set(kwargs) - set(allowed)):
                yield at(client, f"op {op!r}: client sends param "
                                 f"{kw!r} the server rejects",
                         line=line)

        readme_text = project.text("README.md")
        if readme_text is None:
            yield at(server, "README.md not found; the op table is "
                             "part of the protocol surface")
            return
        table = _parse_readme_table(readme_text)
        if table is None:
            yield Finding(
                rule=self.id, path="README.md", line=1,
                context="service",
                message="README has no op/params markdown table")
            return
        for op in ops:
            if op not in table:
                yield Finding(
                    rule=self.id, path="README.md", line=1,
                    context="service",
                    message=f"op {op!r} undocumented in the README "
                            f"op table")
        for op in sorted(set(table) - set(ops)):
            yield Finding(
                rule=self.id, path="README.md", line=1,
                context="service",
                message=f"README documents unknown op {op!r}")
        for op in ops:
            documented = table.get(op)
            allowed = params.get(op)
            if documented is None or allowed is None:
                continue
            for p in sorted(set(allowed) - documented):
                yield Finding(
                    rule=self.id, path="README.md", line=1,
                    context="service",
                    message=(f"op {op!r}: param {p!r} accepted by the "
                             f"server but absent from the README op "
                             f"table"))
            for p in sorted(documented - set(allowed)):
                yield Finding(
                    rule=self.id, path="README.md", line=1,
                    context="service",
                    message=(f"op {op!r}: README documents param "
                             f"{p!r} the server rejects"))

    # ------------------------------------------------------------------
    @staticmethod
    def _protocol_ops(tree: ast.Module) -> tuple | None:
        for node in tree.body:
            if isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id == "OPS":
                return _tuple_value(node.value, {})
        return None

    @staticmethod
    def _server_surface(tree: ast.Module):
        """``(dispatch op -> (method, line), _op_* handlers ->
        line, op -> allowed params)``."""
        consts = _module_tuple_consts(tree)
        dispatch: dict[str, tuple[str, int]] = {}
        handlers: dict[str, int] = {}
        handler_params: dict[str, tuple] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Attribute) \
                    and node.targets[0].attr == "_dispatch" \
                    and isinstance(node.value, ast.Dict):
                for key, value in zip(node.value.keys,
                                      node.value.values):
                    if isinstance(key, ast.Constant) \
                            and isinstance(key.value, str) \
                            and isinstance(value, ast.Attribute):
                        dispatch[key.value] = (value.attr, key.lineno)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)) \
                    and node.name.startswith("_op_"):
                handlers[node.name] = node.lineno
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call) \
                            and isinstance(sub.func, ast.Name) \
                            and sub.func.id == "check_fields" \
                            and len(sub.args) >= 2:
                        allowed = _tuple_value(sub.args[1], consts)
                        if allowed is not None:
                            handler_params[node.name] = allowed
                        break
        params = {op: handler_params[m]
                  for op, (m, _) in dispatch.items()
                  if m in handler_params}
        return dispatch, handlers, params

    @staticmethod
    def _client_surface(tree: ast.Module) -> dict:
        """``op -> (sent keyword names, line)`` from every
        ``self.call("<op>", ...)`` site."""
        out: dict[str, tuple[list, int]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "call" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == "self" \
                    and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                kwargs = [kw.arg for kw in node.keywords
                          if kw.arg is not None]
                out[node.args[0].value] = (kwargs, node.lineno)
        return out


register(ProtocolDriftRule())
