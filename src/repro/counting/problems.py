"""The probabilistic query evaluation problems of Section 2.

* ``PQE(Q)``: arbitrary rational probabilities;
* ``GFOMC(Q)``: probabilities restricted to {0, 1/2, 1} — equivalent to
  the *generalized model counting problem* (count subsets of a database
  that contain all designated deterministic tuples and satisfy Q);
* ``FOMC(Q)`` for forall-CNF: probabilities restricted to {1/2, 1}
  (the dual of model counting for UCQs, Section 1.3/2).

The counting <-> probability correspondence: with D1 (certain) tuples at
probability 1 and the remaining database tuples at 1/2,

    #{W : D1 subseteq W subseteq DB, W |= Q} = 2^{|DB - D1|} * Pr(Q).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.core.queries import Query
from repro.tid.database import TID, HALF, ONE, ZERO
from repro.tid.lineage import lineage
from repro.tid.wmc import compiled, probability

GFOMC_VALUES = frozenset({ZERO, HALF, ONE})
FOMC_VALUES = frozenset({HALF, ONE})


def pqe(query: Query, tid: TID) -> Fraction:
    """PQE(Q): Pr(Q) over an arbitrary TID."""
    return probability(query, tid)


def gfomc(query: Query, tid: TID) -> Fraction:
    """GFOMC(Q): Pr(Q) with probabilities restricted to {0, 1/2, 1}."""
    if not tid.restrict_check(GFOMC_VALUES):
        raise ValueError(
            f"GFOMC requires probabilities in {{0, 1/2, 1}}; "
            f"found {sorted(tid.probability_values())}")
    return probability(query, tid)


def fomc(query: Query, tid: TID) -> Fraction:
    """FOMC(Q) for forall-CNF: Pr(Q) with probabilities in {1/2, 1}
    (Section 2: the model counting problem for duals of UCQs)."""
    if not tid.restrict_check(FOMC_VALUES):
        raise ValueError(
            f"FOMC requires probabilities in {{1/2, 1}}; "
            f"found {sorted(tid.probability_values())}")
    return probability(query, tid)


def generalized_model_count(query: Query, tid_shape: TID,
                            database: Iterable, certain: Iterable) -> int:
    """The generalized model counting problem (Section 1).

    ``database`` lists the tuples of DB; ``certain`` is D1 subseteq DB.
    Counts subsets W with D1 subseteq W subseteq DB satisfying Q.
    ``tid_shape`` supplies the bipartite domain.
    """
    database = set(database)
    certain = set(certain)
    if not certain <= database:
        raise ValueError("certain tuples must belong to the database")
    probs = {token: ONE for token in certain}
    probs.update({token: HALF for token in database - certain})
    tid = TID(tid_shape.left_domain, tid_shape.right_domain,
              probs, default=ZERO)
    if query.is_false():
        return 0
    # Certain/absent tuples fold into the lineage, whose variables are
    # exactly a subset of the uncertain tuples; the count is then an
    # unweighted d-DNNF model count over DB - D1.
    formula = lineage(query, tid)
    return compiled(formula).model_count(database - certain)


def model_count(query: Query, tid_shape: TID, database: Iterable) -> int:
    """Standard model counting: D1 = empty set."""
    return generalized_model_count(query, tid_shape, database, ())
