"""Positive partitioned 2CNF (#PP2CNF), Provan & Ball's hard problem.

Phi = AND_{(i,j) in E} (X_i v Y_j) with E a bipartite edge relation
between X-variables and Y-variables.  #PP2CNF is #P-hard even though the
clause graph is bipartite; the Type-II reduction (Appendix C) reduces
from it via the coloring count problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product


@dataclass(frozen=True)
class PP2CNF:
    """Phi = AND_{(i,j) in E} (X_i v Y_j), i < n_left, j < n_right."""

    n_left: int
    n_right: int
    edges: tuple[tuple[int, int], ...]

    def __post_init__(self):
        seen = set()
        for (i, j) in self.edges:
            if not (0 <= i < self.n_left and 0 <= j < self.n_right):
                raise ValueError(f"edge off-range: {(i, j)}")
            if (i, j) in seen:
                raise ValueError(f"duplicate edge: {(i, j)}")
            seen.add((i, j))

    @property
    def m(self) -> int:
        return len(self.edges)

    def satisfied(self, x_bits, y_bits) -> bool:
        return all(x_bits[i] or y_bits[j] for i, j in self.edges)

    def to_cnf(self):
        """Phi as a monotone CNF over ("x", i) and ("y", j) variables."""
        from repro.booleans.cnf import CNF
        return CNF([[("x", i), ("y", j)] for i, j in self.edges])

    def count_satisfying(self) -> int:
        """#Phi via the d-DNNF model counter (Phi is a monotone CNF);
        exact, and far cheaper than enumeration on sparse instances."""
        from repro.tid.wmc import compiled
        scope = [("x", i) for i in range(self.n_left)]
        scope += [("y", j) for j in range(self.n_right)]
        return compiled(self.to_cnf()).model_count(scope)

    def count_satisfying_brute(self) -> int:
        """#Phi by brute force over all assignments (the independent
        validation oracle for ``count_satisfying``)."""
        total = 0
        for x_bits in iter_product((0, 1), repeat=self.n_left):
            for y_bits in iter_product((0, 1), repeat=self.n_right):
                if self.satisfied(x_bits, y_bits):
                    total += 1
        return total

    # ------------------------------------------------------------------
    @staticmethod
    def complete(n_left: int, n_right: int) -> "PP2CNF":
        return PP2CNF(n_left, n_right, tuple(
            (i, j) for i in range(n_left) for j in range(n_right)))

    @staticmethod
    def matching(n: int) -> "PP2CNF":
        return PP2CNF(n, n, tuple((i, i) for i in range(n)))
