"""Positive 2CNF formulas, #P2CNF, and signature counts (Section 3).

A P2CNF is Phi = AND_{(i,j) in E} (X_i v X_j) over n variables, with E a
set of directed edges containing at most one of (i, j), (j, i).  The
counting problem #P2CNF is #P-hard; the reduction of Theorem 3.1
recovers #Phi from the *undirected signature counts*

    #k' = #{assignments theta with signature k'(theta)}
    k'(theta) = (k00, k01+k10, k11)

where k_ab counts edges whose endpoints theta maps to (a, b).  This
module provides exact computation of #Phi (via the d-DNNF model
counter, with a brute-force validation oracle alongside) and of all
signature counts, which the reduction's output is checked against.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product

Signature = tuple[int, int, int]  # (k00, k01_10, k11)


@dataclass(frozen=True)
class P2CNF:
    """Phi = AND_{(i,j) in E} (X_i v X_j) over variables 0..n-1."""

    n: int
    edges: tuple[tuple[int, int], ...]

    def __post_init__(self):
        seen = set()
        for (i, j) in self.edges:
            if not (0 <= i < self.n and 0 <= j < self.n):
                raise ValueError(f"edge off-range: {(i, j)}")
            if i == j:
                raise ValueError("self-loop")
            if (i, j) in seen or (j, i) in seen:
                raise ValueError(f"duplicate edge: {(i, j)}")
            seen.add((i, j))

    @property
    def m(self) -> int:
        return len(self.edges)

    # ------------------------------------------------------------------
    def satisfied(self, assignment) -> bool:
        return all(assignment[i] or assignment[j] for i, j in self.edges)

    def signature(self, assignment) -> Signature:
        """The undirected signature k'(theta) = (k00, k01+k10, k11)."""
        k00 = k01_10 = k11 = 0
        for i, j in self.edges:
            a, b = assignment[i], assignment[j]
            if a and b:
                k11 += 1
            elif a or b:
                k01_10 += 1
            else:
                k00 += 1
        return (k00, k01_10, k11)

    def to_cnf(self):
        """Phi as a monotone CNF over variables ("x", 0..n-1)."""
        from repro.booleans.cnf import CNF
        return CNF([[("x", i), ("x", j)] for i, j in self.edges])

    def count_satisfying(self) -> int:
        """#Phi via the d-DNNF model counter (Phi is a monotone CNF);
        polynomial on tree-like clause graphs, exponential at worst."""
        from repro.tid.wmc import compiled
        return compiled(self.to_cnf()).model_count(
            ("x", i) for i in range(self.n))

    def count_satisfying_brute(self) -> int:
        """#Phi by brute force over all 2^n assignments (the
        independent validation oracle for ``count_satisfying``)."""
        return sum(
            1 for bits in iter_product((0, 1), repeat=self.n)
            if self.satisfied(bits))

    def signature_counts(self) -> dict[Signature, int]:
        """#k' for every undirected signature (Eq. 3), brute force."""
        counts: dict[Signature, int] = {}
        for bits in iter_product((0, 1), repeat=self.n):
            sig = self.signature(bits)
            counts[sig] = counts.get(sig, 0) + 1
        return counts

    # ------------------------------------------------------------------
    @staticmethod
    def path(n: int) -> "P2CNF":
        """(X0 v X1) & (X1 v X2) & ... — a path of n variables."""
        return P2CNF(n, tuple((i, i + 1) for i in range(n - 1)))

    @staticmethod
    def cycle(n: int) -> "P2CNF":
        return P2CNF(n, tuple((i, (i + 1) % n) for i in range(n)))

    @staticmethod
    def star(n: int) -> "P2CNF":
        """Center variable 0 paired with each of 1..n-1."""
        return P2CNF(n, tuple((0, i) for i in range(1, n)))

    @staticmethod
    def complete(n: int) -> "P2CNF":
        return P2CNF(n, tuple(
            (i, j) for i in range(n) for j in range(i + 1, n)))
