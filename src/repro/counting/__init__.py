"""Counting problems: PQE, FOMC, GFOMC, #P2CNF, #PP2CNF, and the
coloring count problem CCP(m, n) of Appendix C."""

from repro.counting.problems import (
    pqe,
    gfomc,
    fomc,
    generalized_model_count,
    model_count,
    GFOMC_VALUES,
    FOMC_VALUES,
)
from repro.counting.p2cnf import P2CNF
from repro.counting.pp2cnf import PP2CNF
from repro.counting.ccp import coloring_counts, pp2cnf_count_from_ccp

__all__ = [
    "pqe",
    "gfomc",
    "fomc",
    "generalized_model_count",
    "model_count",
    "GFOMC_VALUES",
    "FOMC_VALUES",
    "P2CNF",
    "PP2CNF",
    "coloring_counts",
    "pp2cnf_count_from_ccp",
]
