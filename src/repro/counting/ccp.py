"""The Coloring Count Problem CCP(m, n) (Definition C.2).

Given a bipartite graph (U, V, E), a coloring assigns each u in U one of
m colors and each v in V one of n colors.  Its *signature* k records,
for every color pair (alpha, beta), the number of edges so colored, plus
per-color node counts (indexed with the sentinel TOP_COLOR, the paper's
"1^").  CCP asks for the number of colorings realizing every signature.

Theorem C.3: an oracle for CCP(m, n) (any m, n >= 2) solves #PP2CNF —
restrict to colorings that use only colors {0, 1}, read color 0 as false
and color 1 as true, and sum the counts of signatures with k_{1,1}...
(false-false) edges equal to zero.  Both directions are implemented
here: exact brute-force coloring counts, and the #PP2CNF extraction.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Hashable, Mapping, Sequence

#: Sentinel playing the role of the paper's "1^" index in signatures.
TOP_COLOR = "TOP"

Signature = frozenset  # of ((alpha, beta), count) pairs


def coloring_signature(left_nodes: Sequence[Hashable],
                       right_nodes: Sequence[Hashable],
                       edges: Sequence[tuple[Hashable, Hashable]],
                       sigma: Mapping, tau: Mapping) -> Signature:
    """k(sigma, tau): edge counts per color pair plus node counts per
    color (paired with TOP_COLOR), as a hashable frozenset."""
    counts: dict[tuple, int] = {}
    for u, v in edges:
        key = (sigma[u], tau[v])
        counts[key] = counts.get(key, 0) + 1
    for u in left_nodes:
        key = (sigma[u], TOP_COLOR)
        counts[key] = counts.get(key, 0) + 1
    for v in right_nodes:
        key = (TOP_COLOR, tau[v])
        counts[key] = counts.get(key, 0) + 1
    return frozenset(counts.items())


def coloring_counts(left_nodes: Sequence[Hashable],
                    right_nodes: Sequence[Hashable],
                    edges: Sequence[tuple[Hashable, Hashable]],
                    m: int, n: int) -> dict[Signature, int]:
    """All coloring counts #k of CCP(m, n), by brute force."""
    counts: dict[Signature, int] = {}
    for sigma_bits in iter_product(range(m), repeat=len(left_nodes)):
        sigma = dict(zip(left_nodes, sigma_bits))
        for tau_bits in iter_product(range(n), repeat=len(right_nodes)):
            tau = dict(zip(right_nodes, tau_bits))
            sig = coloring_signature(left_nodes, right_nodes, edges,
                                     sigma, tau)
            counts[sig] = counts.get(sig, 0) + 1
    return counts


def pp2cnf_count_from_ccp(counts: Mapping[Signature, int],
                          false_color=0, true_color=1) -> int:
    """Extract #PP2CNF from coloring counts (proof of Theorem C.3).

    A coloring is *valid* when it only uses {false_color, true_color};
    it encodes a satisfying assignment iff no edge is colored
    (false, false).
    """
    allowed = {false_color, true_color}
    total = 0
    for signature, count in counts.items():
        sig = dict(signature)
        valid = True
        for (alpha, beta), edge_count in sig.items():
            if edge_count == 0:
                continue
            if alpha not in allowed | {TOP_COLOR}:
                valid = False
                break
            if beta not in allowed | {TOP_COLOR}:
                valid = False
                break
        if not valid:
            continue
        if sig.get((false_color, false_color), 0) != 0:
            continue
        total += count
    return total
